/**
 * @file
 * Figure 5 reproduction: average deviation from the miss-rate goal
 * versus cache size for traditional caches (DM/2/4/8-way) and the
 * molecular cache (Random and Randy), on the 4-benchmark SPEC workload.
 *
 * Graph A: a 10% goal for all four of art, ammp, parser, mcf.
 * Graph B: a 10% goal for art, ammp, parser only (mcf runs without a
 *          goal and is excluded from the deviation average; its partition
 *          still resizes against the default goal).
 *
 * The paper's headline shapes: traditional deviation falls slowly with
 * size/associativity; molecular deviation drops sharply once enough
 * molecules are available — at 4 MB in graph A and 2 MB in graph B.
 */

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

double
runTraditional(Bytes size, u32 assoc, const GoalSet &goals, u64 refs, u64 seed)
{
    SetAssocCache cache(traditionalParams(size, assoc, seed));
    return runWorkload(spec4Names(), cache, goals, refs, seed)
        .qos.averageDeviation;
}

double
runMolecular(Bytes size, PlacementPolicy placement, const GoalSet &goals,
             double resizeGoal, u64 refs, u64 seed)
{
    MolecularCache cache(fig5MolecularParams(size, placement, seed));
    // One application per tile, as the paper assigns processors to tiles.
    const auto apps = spec4Names();
    for (u32 i = 0; i < apps.size(); ++i) {
        cache.registerApplication(Asid{static_cast<u16>(i)}, resizeGoal, ClusterId{0},
                                  i % cache.params().tilesPerCluster, 1);
    }
    return runWorkload(apps, cache, goals, refs, seed)
        .qos.averageDeviation;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("fig5_deviation",
                  "Figure 5: average deviation from the miss-rate goal vs "
                  "cache size");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.addOption("goal", "0.1", "per-application miss-rate goal");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const double goal = cli.real("goal");

    const std::vector<Bytes> sizes = {1_MiB, 2_MiB, 4_MiB, 8_MiB};

    for (const bool graph_b : {false, true}) {
        bench::banner(graph_b
                          ? "Figure 5 Graph B: goal 10% for art/ammp/parser "
                            "(mcf goal-less)"
                          : "Figure 5 Graph A: goal 10% for all four");

        GoalSet goals;
        // spec4Names() order: art(0), ammp(1), parser(2), mcf(3).
        goals.set(Asid{0}, goal);
        goals.set(Asid{1}, goal);
        goals.set(Asid{2}, goal);
        if (!graph_b)
            goals.set(Asid{3}, goal);

        TablePrinter table({"cache size", "DM", "2-way", "4-way", "8-way",
                            "Mol(Random)", "Mol(Randy)"});
        for (const Bytes size : sizes) {
            const size_t row = table.addRow();
            table.cell(row, 0, formatSize(size));
            table.cell(row, 1,
                       runTraditional(size, 1, goals, refs, seed), 4);
            table.cell(row, 2,
                       runTraditional(size, 2, goals, refs, seed), 4);
            table.cell(row, 3,
                       runTraditional(size, 4, goals, refs, seed), 4);
            table.cell(row, 4,
                       runTraditional(size, 8, goals, refs, seed), 4);
            table.cell(row, 5,
                       runMolecular(size, PlacementPolicy::Random, goals,
                                    goal, refs, seed),
                       4);
            table.cell(row, 6,
                       runMolecular(size, PlacementPolicy::Randy, goals,
                                    goal, refs, seed),
                       4);
        }
        if (cli.flag("csv"))
            table.printCsv(std::cout);
        else
            table.print(std::cout);
    }
    return 0;
}
