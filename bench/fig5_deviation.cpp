/**
 * @file
 * Figure 5 reproduction: average deviation from the miss-rate goal
 * versus cache size for traditional caches (DM/2/4/8-way) and the
 * molecular cache (Random and Randy), on the 4-benchmark SPEC workload.
 *
 * Graph A: a 10% goal for all four of art, ammp, parser, mcf.
 * Graph B: a 10% goal for art, ammp, parser only (mcf runs without a
 *          goal and is excluded from the deviation average; its partition
 *          still resizes against the default goal).
 *
 * The paper's headline shapes: traditional deviation falls slowly with
 * size/associativity; molecular deviation drops sharply once enough
 * molecules are available — at 4 MB in graph A and 2 MB in graph B.
 *
 * All 48 points (6 cache kinds x 4 sizes x 2 goal graphs) run as one
 * SweepSpec on the work-stealing pool; the two graphs are the sweep's
 * workload axis, each carrying its own GoalSet.
 */

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

const char *const kKinds[] = {"DM", "2-way", "4-way", "8-way",
                              "Mol(Random)", "Mol(Randy)"};

std::string
modelLabel(const char *kind, Bytes size)
{
    return std::string(kind) + "@" + formatSize(size);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("fig5_deviation",
                  "Figure 5: average deviation from the miss-rate goal vs "
                  "cache size");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.addOption("goal", "0.1", "per-application miss-rate goal");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const double goal = cli.real("goal");

    const std::vector<Bytes> sizes = {1_MiB, 2_MiB, 4_MiB, 8_MiB};

    // spec4Names() order: art(0), ammp(1), parser(2), mcf(3).
    GoalSet goals_a;
    for (u16 i = 0; i < 4; ++i)
        goals_a.set(Asid{i}, goal);
    GoalSet goals_b;
    for (u16 i = 0; i < 3; ++i)
        goals_b.set(Asid{i}, goal);

    SweepSpec spec("fig5_deviation");
    for (const Bytes size : sizes) {
        spec.setAssoc(modelLabel("DM", size), traditionalParams(size, 1));
        spec.setAssoc(modelLabel("2-way", size),
                      traditionalParams(size, 2));
        spec.setAssoc(modelLabel("4-way", size),
                      traditionalParams(size, 4));
        spec.setAssoc(modelLabel("8-way", size),
                      traditionalParams(size, 8));
        // One application per tile, as the paper assigns processors to
        // tiles (registerApplications lays ASID i on tile i here).
        spec.molecular(modelLabel("Mol(Random)", size),
                       fig5MolecularParams(size, PlacementPolicy::Random));
        spec.molecular(modelLabel("Mol(Randy)", size),
                       fig5MolecularParams(size, PlacementPolicy::Randy));
    }
    spec.workload("graphA", spec4Names(), goals_a)
        .workload("graphB", spec4Names(), goals_b)
        .seeds({seed})
        .references(refs)
        .registrationGoal(goal);

    const SweepReport report = bench::runSweep(cli, spec);

    for (const bool graph_b : {false, true}) {
        bench::banner(graph_b
                          ? "Figure 5 Graph B: goal 10% for art/ammp/parser "
                            "(mcf goal-less)"
                          : "Figure 5 Graph A: goal 10% for all four");
        const std::string workload = graph_b ? "graphB" : "graphA";

        TablePrinter table({"cache size", "DM", "2-way", "4-way", "8-way",
                            "Mol(Random)", "Mol(Randy)"});
        for (const Bytes size : sizes) {
            const size_t row = table.addRow();
            table.cell(row, 0, formatSize(size));
            for (size_t k = 0; k < std::size(kKinds); ++k) {
                const auto &point =
                    report.point(modelLabel(kKinds[k], size), workload);
                table.cell(row, k + 1,
                           point.result.qos.averageDeviation, 4);
            }
        }
        if (cli.flag("csv"))
            table.printCsv(std::cout);
        else
            table.print(std::cout);
    }
    return 0;
}
