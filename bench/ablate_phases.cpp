/**
 * @file
 * Ablation G: phase tracking.
 *
 * Dynamic repartitioning only earns its complexity if it follows program
 * *phases* (the paper cites Yeh & Reinman's phase-based resizing as the
 * closest related approach).  This bench builds a two-phase application —
 * a small hot working set alternating with a large one every
 * `phase-length` accesses — runs it against a phase-oblivious co-runner,
 * and reports the deviation under three regimes:
 *
 *   - static-half:  resizing disabled, each app keeps its initial half
 *                   tile (what a static partitioner would do);
 *   - adaptive:     Algorithm 1 at the paper's period;
 *   - adaptive-10x: Algorithm 1 at a 10x shorter period (faster
 *                   tracking, more resize work).
 *
 * Also prints the phased app's region-size swing, the direct evidence
 * that the partitions breathe with the phases.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/molecular_cache.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

/** Two-phase source: hot 32 KiB set <-> hot 512 KiB set. */
class PhasedApp final : public AccessSource
{
  public:
    PhasedApp(Asid asid, u64 phaseLength, u64 limit, u64 seed)
        : asid_(asid), limit_(limit), rng_(seed)
    {
        std::vector<std::unique_ptr<AddressStream>> phases;
        const Addr base = applicationBase(asid);
        phases.push_back(
            std::make_unique<WorkingSetStream>(base, (32_KiB).value(), 0.9));
        phases.push_back(std::make_unique<WorkingSetStream>(
            base + (16_MiB).value(), (512_KiB).value(), 0.6));
        stream_ = std::make_unique<PhaseStream>(std::move(phases),
                                                phaseLength);
    }

    std::optional<MemAccess>
    next() override
    {
        if (limit_ != 0 && produced_ >= limit_)
            return std::nullopt; // 0 = unbounded (the mix sets the limit)
        ++produced_;
        return MemAccess{stream_->next(rng_), asid_, AccessType::Read};
    }

  private:
    Asid asid_;
    u64 limit_;
    u64 produced_ = 0;
    Pcg32 rng_;
    std::unique_ptr<AddressStream> stream_;
};

struct Outcome
{
    double deviation;
    u32 minRegion = ~0u;
    u32 maxRegion = 0;
    u64 resizeCycles = 0;
};

Outcome
run(u64 refs, u64 phaseLength, u64 resizePeriod, bool staticHalf, u64 seed)
{
    MolecularCacheParams p =
        fig5MolecularParams(2_MiB, PlacementPolicy::Randy, seed);
    if (staticHalf) {
        p.resizePeriod = 1ull << 40;
        p.maxResizePeriod = 1ull << 40;
    } else {
        p.resizePeriod = resizePeriod;
        p.minResizePeriod = std::max<u64>(resizePeriod / 10, 500);
        p.maxResizePeriod = resizePeriod * 8;
    }
    MolecularCache cache(p);
    cache.registerApplication(Asid{0}, 0.10, ClusterId{0}, 0, 1); // the phased app
    cache.registerApplication(Asid{1}, 0.10, ClusterId{0}, 1, 1); // steady co-runner

    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.push_back(
        std::make_unique<PhasedApp>(Asid{0}, phaseLength, 0, seed));
    sources.push_back(std::make_unique<TraceGenerator>(
        profileByName("gcc"), Asid{1}, 0, seed));
    Interleaver mix(std::move(sources), MixPolicy::RoundRobin, {}, seed,
                    refs);

    Outcome out;
    u64 n = 0;
    GoalSet goals = GoalSet::uniform(0.1, 2);
    while (auto a = mix.next()) {
        cache.access(*a);
        if (++n % 10000 == 0) {
            const u32 size = cache.region(Asid{0}).size();
            out.minRegion = std::min(out.minRegion, size);
            out.maxRegion = std::max(out.maxRegion, size);
        }
    }
    out.deviation =
        averageDeviation(cache.stats().missRates(), goals);
    out.resizeCycles = cache.resizeCycles();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_phases",
                  "Ablation: does dynamic repartitioning track program "
                  "phases?");
    bench::addCommonOptions(cli, 2'000'000);
    cli.addOption("phase-length", "400000",
                  "accesses per phase of the phased application");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 phase = static_cast<u64>(cli.integer("phase-length"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Phase tracking: 32KiB<->512KiB phased app + gcc on a "
                  "2MiB molecular cache, goal 10%");

    TablePrinter table({"regime", "avg deviation", "region min..max",
                        "resize cycles"});
    const struct
    {
        const char *label;
        u64 period;
        bool staticHalf;
    } rows[] = {
        {"static-half (no resizing)", 0, true},
        {"adaptive (paper period)", 25000, false},
        {"adaptive-10x", 2500, false},
    };
    for (const auto &r : rows) {
        const Outcome o = run(refs, phase, r.period, r.staticHalf, seed);
        table.row({r.label, formatDouble(o.deviation, 4),
                   std::to_string(o.minRegion) + ".." +
                       std::to_string(o.maxRegion),
                   std::to_string(o.resizeCycles)});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nthe region swing (min..max) is the phased working set "
                "being tracked;\nstatic partitions cannot follow it.\n");
    return 0;
}
