/**
 * @file
 * molcached chaos drill — the acceptance harness for the resilience
 * plane (docs/fault_model.md, "Service-level faults & the degradation
 * ladder").
 *
 * Where service_churn proves the service correct under tenant churn,
 * this drill proves it DEGRADES GRACEFULLY: worker threads hammer a
 * live service through accessChecked() (with bounded retry/backoff on
 * Overloaded) while the control plane fires a seeded chaos storm —
 * transient flips, hard-fault decommissions, at least one whole-shard
 * outage, and shard stalls — and then climbs the degradation ladder:
 * quarantine, tenant remap, proportional goal degradation.  The driver
 * keeps traffic flowing until the resilience plane reports quiet
 * (chaos schedule drained, no remaps pending, every remapped tenant
 * re-converged) or a hard epoch bound trips.
 *
 * Exit status is the drill's gate (CI runs `chaos_drill --smoke` under
 * TSan and a full storm in the adversarial job): it fails on any
 * invariant violation, any contract violation, an unquiet resilience
 * plane at the bound, an undrained quarantine, or any departed tenant
 * left undrained.  --json writes the schema-versioned service_summary
 * document with the resilience block — the artifact the adversarial
 * job's sanity gate parses.
 */

#include <array>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "exec/seed_stream.hpp"
#include "exec/thread_pool.hpp"
#include "service/service.hpp"
#include "service/service_json.hpp"
#include "stats/table.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"
#include "workload/churn.hpp"

using namespace molcache;

namespace {

struct StormConfig
{
    u32 workers = 8;
    u64 totalRefs = 1'500'000;
    u64 seed = 1;
    u32 shards = 3;
    u64 epochMillis = 5;
    u32 initialTenants = 12;
    /** Hard bound on control-plane epochs before the drill declares the
     * resilience plane stuck (the "bounded re-convergence" gate). */
    u64 maxEpochs = 500;
    ChurnParams churn;
};

struct LiveTenant
{
    mc::TenantHandle handle;
    ChurnTenantProfile profile;
    u64 deathAt = 0;
};

/** Shared tenant board; same discipline as service_churn (driver is the
 * only writer, workers copy handles out under the lock). */
struct Board
{
    mc::Mutex mutex;
    std::vector<LiveTenant> live MOLCACHE_GUARDED_BY(mutex);
    std::atomic<bool> stop{false};
    std::atomic<u64> accesses{0};
    std::atomic<u64> shedBursts{0};
    std::atomic<u64> contractViolations{0};
};

/** One reference through accessChecked() with bounded retry/backoff:
 * an Overloaded verdict backs off (scaled by the suggested retry-after,
 * capped) and retries at most three times before dropping the ref. */
bool
accessWithBackoff(mc::Service &service, const mc::TenantHandle &handle,
                  Addr addr, bool isWrite, u64 epochMillis)
{
    for (u32 attempt = 0;; ++attempt) {
        const mc::AccessOutcome outcome =
            service.accessChecked(handle, addr, isWrite);
        if (outcome.status == mc::AccessStatus::Ok)
            return true;
        if (attempt >= 3)
            return false; // shed for good; the caller drops the burst
        const u64 micros =
            std::min<u64>(outcome.retryAfterEpochs * epochMillis * 1000u,
                          2000u << attempt);
        std::this_thread::sleep_for(
            std::chrono::microseconds(micros != 0 ? micros : 100u));
    }
}

void
runWorker(mc::Service &service, Board &board, u64 seed, u64 epochMillis)
{
    const auto rng = makeRandomSource(RngKind::Pcg32, seed);
    const u64 before = contract::counters().total();
    mc::TenantHandle handle;
    ChurnTenantProfile profile;
    u64 sinceRefresh = ~u64{0}; // force an initial pick
    while (!board.stop.load(std::memory_order_acquire)) {
        if (sinceRefresh > 8) {
            sinceRefresh = 0;
            mc::MutexLock lock(board.mutex);
            if (board.live.empty()) {
                handle.reset();
            } else {
                const LiveTenant &pick =
                    board.live[rng->next64() % board.live.size()];
                handle = pick.handle;
                profile = pick.profile;
            }
        }
        ++sinceRefresh;
        if (!handle) {
            std::this_thread::yield();
            continue;
        }
        u64 served = 0;
        for (u64 burst = 0; burst < 64; ++burst) {
            if (!accessWithBackoff(service, handle,
                                   churnAddress(profile, *rng),
                                   churnIsWrite(profile, *rng),
                                   epochMillis)) {
                // The shard is stalled and stayed stalled through the
                // backoff budget: drop the rest of the burst and
                // re-pick (the tenant may be remapped next epoch).
                board.shedBursts.fetch_add(1, std::memory_order_relaxed);
                sinceRefresh = ~u64{0};
                break;
            }
            ++served;
        }
        board.accesses.fetch_add(served, std::memory_order_relaxed);
    }
    board.contractViolations.fetch_add(contract::counters().total() - before,
                                       std::memory_order_relaxed);
}

void
attachOne(mc::Service &service, Board &board, ChurnProcess &churn,
          u64 ordinal, u64 now)
{
    LiveTenant tenant;
    tenant.profile =
        churn.makeProfile(ordinal, service.options().cache.lineSize);
    mc::TenantSpec spec;
    spec.name = "t" + std::to_string(ordinal);
    spec.missRateGoal = tenant.profile.missRateGoal;
    mc::AttachError error = mc::AttachError::None;
    tenant.handle = service.attach(spec, &error);
    if (!tenant.handle)
        // Turned away (admission cap, overload protection, or a
        // quarantined target) — valid behaviour under a storm; the
        // rejection is counted per reason in the telemetry.
        return;
    tenant.deathAt = now + churn.nextLifetime();
    mc::MutexLock lock(board.mutex);
    board.live.push_back(std::move(tenant));
}

/** The storm's quiet criterion: schedule drained, nobody waiting for a
 * healthy destination, every remapped tenant re-converged. */
bool
resilienceQuiet(const mc::ServiceResilienceSummary &res)
{
    return res.chaosPending == 0 && res.remapsPending == 0 &&
           res.tenantsRecovering == 0;
}

void
runDriver(mc::Service &service, Board &board, const StormConfig &cfg,
          bool *quiet)
{
    const u64 before = contract::counters().total();
    ChurnProcess churn(cfg.churn, deriveJobSeed(cfg.seed, 0));
    u64 ordinal = 0;
    for (; ordinal < cfg.initialTenants; ++ordinal)
        attachOne(service, board, churn, ordinal, 0);
    u64 nextArrival = churn.nextArrivalGap();

    // Keep churning until the access target is met AND the resilience
    // plane is quiet — re-convergence needs live traffic, so the
    // workers must still be running while we wait for it.
    u64 now = 0;
    for (;;) {
        now = board.accesses.load(std::memory_order_relaxed);
        const bool done = now >= cfg.totalRefs &&
                          resilienceQuiet(service.summary().resilience);
        if (done) {
            *quiet = true;
            break;
        }
        if (service.epochsCompleted() > cfg.maxEpochs) {
            *quiet = resilienceQuiet(service.summary().resilience);
            break; // bound tripped; the gate below decides pass/fail
        }
        if (now >= nextArrival) {
            attachOne(service, board, churn, ordinal++, now);
            nextArrival = now + churn.nextArrivalGap();
        }
        std::vector<mc::TenantHandle> dying;
        {
            mc::MutexLock lock(board.mutex);
            for (auto it = board.live.begin(); it != board.live.end();) {
                if (it->deathAt <= now) {
                    dying.push_back(std::move(it->handle));
                    it = board.live.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (const mc::TenantHandle &handle : dying)
            service.detach(handle);
        dying.clear();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    std::vector<mc::TenantHandle> rest;
    {
        mc::MutexLock lock(board.mutex);
        for (LiveTenant &tenant : board.live)
            rest.push_back(std::move(tenant.handle));
        board.live.clear();
    }
    for (const mc::TenantHandle &handle : rest)
        service.detach(handle);
    rest.clear();
    board.stop.store(true, std::memory_order_release);
    board.contractViolations.fetch_add(contract::counters().total() - before,
                                       std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("chaos_drill",
                  "molcached chaos storm + degradation-ladder drill");
    cli.addOption("workers", "8", "access worker threads");
    cli.addOption("refs", "1500000", "accesses to serve before quiescing");
    cli.addOption("seed", "1", "base RNG seed (storm and workload)");
    cli.addOption("shards", "3", "cache shards (>= 2 so remap has a "
                                 "destination)");
    cli.addOption("epoch-ms", "5", "control-plane epoch period");
    cli.addOption("max-epochs", "500",
                  "epoch bound for the re-convergence gate");
    cli.addOption("json", "",
                  "write the service_summary telemetry document here");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.addFlag("smoke", "CI-sized run: same storm, shorter traffic");
    cli.parse(argc, argv);

    StormConfig cfg;
    cfg.workers = static_cast<u32>(cli.integer("workers"));
    cfg.totalRefs = static_cast<u64>(cli.integer("refs"));
    cfg.seed = static_cast<u64>(cli.integer("seed"));
    cfg.shards = static_cast<u32>(cli.integer("shards"));
    cfg.epochMillis = static_cast<u64>(cli.integer("epoch-ms"));
    cfg.maxEpochs = static_cast<u64>(cli.integer("max-epochs"));
    cfg.churn.meanInterarrival = 30'000;
    cfg.churn.meanLifetime = 400'000;
    if (cli.flag("smoke"))
        cfg.totalRefs = std::min<u64>(cfg.totalRefs, 250'000);
    if (cfg.workers == 0)
        fatal("--workers must be >= 1");
    if (cfg.shards < 2)
        fatal("--shards must be >= 2 (a remap needs a healthy "
              "destination)");

    // The storm: every chaos kind, with at least one whole-shard
    // outage so the quarantine -> remap -> degrade ladder must climb.
    mc::ChaosSpec chaos;
    chaos.seed = cfg.seed;
    chaos.windowStart = 4;
    chaos.windowEnd = 48;
    chaos.transientFlips = 8;
    chaos.hardFaults = 10;
    chaos.shardOutages = 1;
    chaos.shardStalls = 2;
    chaos.stallEpochs = 3;

    mc::ServiceOptions options;
    options.withShards(cfg.shards)
        .withEpochMillis(cfg.epochMillis)
        .withGuardian(true)
        .withChaos(chaos)
        .withAdmitWatermarks(0.95, 0.85)
        // Generous slack: the drill gates on BOUNDED re-convergence
        // under a storm, not on QoS precision (the tests pin the exact
        // criterion deterministically).
        .withRecoverySlack(0.25);
    options.cache.seed = cfg.seed;
    mc::Service service(options);

    bench::banner("molcached chaos storm drill");
    std::printf("workers %u, shards %u, target %llu accesses, epoch %llu "
                "ms, storm: %u flips + %u hard faults + %u outage(s) + %u "
                "stall(s), epoch bound %llu\n",
                cfg.workers, cfg.shards,
                static_cast<unsigned long long>(cfg.totalRefs),
                static_cast<unsigned long long>(cfg.epochMillis),
                chaos.transientFlips, chaos.hardFaults, chaos.shardOutages,
                chaos.shardStalls,
                static_cast<unsigned long long>(cfg.maxEpochs));

    Board board;
    bool quiet = false;
    {
        WorkStealingPool pool(cfg.workers + 1);
        pool.forEach(cfg.workers + 1, [&](u64 job) {
            if (job == 0)
                runDriver(service, board, cfg, &quiet);
            else
                runWorker(service, board,
                          deriveJobSeed(cfg.seed, 1000 + job),
                          cfg.epochMillis);
        });
    }

    // Run epochs until every departed tenant has drained (and the
    // quarantined shard's drain is observed).
    mc::ServiceSummary summary = service.summary();
    for (u32 i = 0; i < 8; ++i) {
        service.runEpochNow();
        summary = service.summary();
        if (summary.tenantsDrained == summary.tenantsDetached)
            break;
    }
    summary.contractViolations +=
        board.contractViolations.load(std::memory_order_acquire) +
        contract::counters().total();
    const mc::ServiceResilienceSummary &res = summary.resilience;

    TablePrinter table({"metric", "value"});
    table.row({"accesses", std::to_string(summary.accesses)});
    table.row({"miss rate", std::to_string(summary.missRate())});
    table.row({"epochs", std::to_string(summary.epoch)});
    table.row({"tenants attached", std::to_string(summary.tenantsAttached)});
    table.row({"tenants detached", std::to_string(summary.tenantsDetached)});
    table.row({"tenants drained", std::to_string(summary.tenantsDrained)});
    table.row({"chaos flips", std::to_string(res.chaosTransientFlips)});
    table.row({"chaos hard faults", std::to_string(res.chaosHardFaults)});
    table.row({"chaos outages", std::to_string(res.chaosShardOutages)});
    table.row({"chaos stalls", std::to_string(res.chaosShardStalls)});
    table.row({"shards quarantined", std::to_string(res.shardsQuarantined)});
    table.row({"shards drained", std::to_string(res.shardsDrained)});
    table.row({"tenants remapped", std::to_string(res.tenantsRemapped)});
    table.row({"remap invalidations",
               std::to_string(res.remapInvalidations)});
    table.row({"remap forced misses",
               std::to_string(res.remapForcedMisses)});
    table.row({"accesses shed", std::to_string(res.accessesShed)});
    table.row({"shed bursts",
               std::to_string(board.shedBursts.load(
                   std::memory_order_acquire))});
    table.row({"max epochs to drain", std::to_string(res.maxEpochsToDrain)});
    table.row({"max epochs to remap", std::to_string(res.maxEpochsToRemap)});
    table.row({"max epochs back to goal",
               std::to_string(res.maxEpochsBackToGoal)});
    table.row({"invariant violations",
               std::to_string(summary.invariantViolations)});
    table.row({"contract violations",
               std::to_string(summary.contractViolations)});
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const std::string json_out = cli.str("json");
    if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out)
            fatal("cannot open '", json_out, "' for writing");
        JsonWriter json(out);
        mc::writeServiceSummaryDocument(json, summary);
        out << "\n";
        std::printf("wrote %s\n", json_out.c_str());
    }

    bool ok = true;
    const auto gate = [&ok](bool pass, const char *what) {
        if (!pass) {
            std::printf("FAIL: %s\n", what);
            ok = false;
        }
    };
    gate(quiet, "resilience plane not quiet within the epoch bound");
    gate(summary.invariantViolations == 0, "invariant violations");
    gate(summary.contractViolations == 0, "contract violations");
    gate(summary.tenantsDrained == summary.tenantsDetached,
         "departed tenants left undrained");
    gate(res.chaosPending == 0, "chaos events left unfired");
    gate(res.chaosShardOutages >= 1, "the storm fired no shard outage");
    gate(res.shardsQuarantined >= 1, "the outage quarantined no shard");
    gate(res.shardsDrained == res.shardsQuarantined,
         "a quarantined shard never drained");
    gate(res.remapsPending == 0, "tenants still waiting for a remap");
    gate(summary.tenantsLive == 0, "tenants left live after shutdown");
    std::printf("%s\n", ok ? "PASS: chaos drill clean" : "FAIL");
    return ok ? 0 : 1;
}
