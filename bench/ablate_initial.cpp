/**
 * @file
 * Ablation B: initial partition size ("Ground Zero", paper section 3.4).
 *
 * The paper observes that starting partitions very small forces frequent
 * early repartitioning, and settles on half a tile per partition.  This
 * bench compares Small (2 molecules), HalfTile and FullTile starts on the
 * SPEC workload, reporting both the final deviation and how much resize
 * work was performed (from the sweep's inspect hook).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("ablate_initial",
                  "Ablation: initial partition allocation policy");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.addOption("size", "4M", "total molecular cache size");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const Bytes size{cli.size("size")};

    bench::banner("Initial-allocation ablation (" + formatSize(size) +
                  " molecular cache, SPEC 4-app workload, goal 10%)");

    const struct
    {
        InitialAllocation kind;
        const char *label;
    } rows[] = {
        {InitialAllocation::Small, "small (2 molecules)"},
        {InitialAllocation::HalfTile, "half tile (paper default)"},
        {InitialAllocation::FullTile, "full tile"},
    };

    SweepSpec spec("ablate_initial");
    for (const auto &r : rows) {
        MolecularCacheParams p =
            fig5MolecularParams(size, PlacementPolicy::Randy);
        p.initialAllocation = r.kind;
        spec.molecular(r.label, p);
    }
    spec.workload("spec4", spec4Names())
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs)
        .inspect([](const SimJob &, CacheModel &model, MetricMap &extra) {
            auto &cache = dynamic_cast<MolecularCache &>(model);
            extra["molecules_granted"] =
                static_cast<double>(cache.resizer().granted());
            extra["molecules_withdrawn"] =
                static_cast<double>(cache.resizer().withdrawn());
        });

    const SweepReport report = bench::runSweep(cli, spec);

    TablePrinter table({"initial allocation", "avg deviation",
                        "molecules granted", "molecules withdrawn"});
    for (const auto &r : rows) {
        const auto &p = report.point(r.label, "spec4");
        table.row({r.label,
                   formatDouble(p.result.qos.averageDeviation, 4),
                   std::to_string(static_cast<u64>(
                       p.extra.at("molecules_granted"))),
                   std::to_string(static_cast<u64>(
                       p.extra.at("molecules_withdrawn")))});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
