/**
 * @file
 * Ablation B: initial partition size ("Ground Zero", paper section 3.4).
 *
 * The paper observes that starting partitions very small forces frequent
 * early repartitioning, and settles on half a tile per partition.  This
 * bench compares Small (2 molecules), HalfTile and FullTile starts on the
 * SPEC workload, reporting both the final deviation and how much resize
 * work was performed.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

struct Outcome
{
    double deviation;
    u64 granted;
    u64 withdrawn;
};

Outcome
runInitial(Bytes size, InitialAllocation initial, u64 refs, u64 seed)
{
    MolecularCacheParams p =
        fig5MolecularParams(size, PlacementPolicy::Randy, seed);
    p.initialAllocation = initial;
    MolecularCache cache(p);
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1, ClusterId{0}, i, 1);
    const GoalSet goals = GoalSet::uniform(0.1, 4);
    const double dev = runWorkload(spec4Names(), cache, goals, refs, seed)
                           .qos.averageDeviation;
    return {dev, cache.resizer().granted(), cache.resizer().withdrawn()};
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_initial",
                  "Ablation: initial partition allocation policy");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.addOption("size", "4M", "total molecular cache size");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const Bytes size{cli.size("size")};

    bench::banner("Initial-allocation ablation (" + formatSize(size) +
                  " molecular cache, SPEC 4-app workload, goal 10%)");

    TablePrinter table({"initial allocation", "avg deviation",
                        "molecules granted", "molecules withdrawn"});
    const struct
    {
        InitialAllocation kind;
        const char *label;
    } rows[] = {
        {InitialAllocation::Small, "small (2 molecules)"},
        {InitialAllocation::HalfTile, "half tile (paper default)"},
        {InitialAllocation::FullTile, "full tile"},
    };
    for (const auto &r : rows) {
        const Outcome o = runInitial(size, r.kind, refs, seed);
        table.row({r.label, formatDouble(o.deviation, 4),
                   std::to_string(o.granted), std::to_string(o.withdrawn)});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
