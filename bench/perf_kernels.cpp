/**
 * @file
 * google-benchmark micro-kernels for the simulator itself: access-path
 * throughput of the traditional and molecular models, trace generation,
 * and the power-model organization search.  These guard against
 * performance regressions in the hot loops the reproduction experiments
 * depend on.
 *
 * The BM_Hotpath* family is the access-path gate described in
 * docs/perf.md: it measures steady-state accesses/sec for every
 * placement policy and is compared against the committed baseline in
 * BENCH_hotpath.json (refresh with
 * `perf_kernels --benchmark_filter=BM_Hotpath --benchmark_format=json`).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <span>
#include <vector>

#include "cache/set_assoc.hpp"
#include "core/molecular_cache.hpp"
#include "power/cacti.hpp"
#include "sim/experiment.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

/**
 * A view of the first @p n accesses of a lazily-grown shared trace.
 * Returning a span keeps the (one-time) generation cost out of every
 * kernel's measured loop and avoids re-copying 100k MemAccess records
 * per benchmark registration.
 */
std::span<const MemAccess>
sampleTrace(u64 n)
{
    static std::vector<MemAccess> trace;
    if (trace.size() < n) {
        auto src = makeMultiProgramSource(spec4Names(), n,
                                          MixPolicy::RoundRobin, 7);
        trace.clear();
        trace.reserve(n);
        while (auto a = src->next())
            trace.push_back(*a);
    }
    return {trace.data(), n};
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &profile = profileByName("parser");
    for (auto _ : state) {
        TraceGenerator gen(profile, Asid{0}, static_cast<u64>(state.range(0)), 3);
        u64 sum = 0;
        while (auto a = gen.next())
            sum += a->addr;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000);

void
BM_SetAssocAccess(benchmark::State &state)
{
    SetAssocCache cache(
        traditionalParams(1_MiB, static_cast<u32>(state.range(0))));
    const auto trace = sampleTrace(100000);
    size_t i = 0;
    for (auto _ : state) {
        cache.access(trace[i]);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocAccess)->Arg(1)->Arg(4)->Arg(8);

void
BM_MolecularAccess(benchmark::State &state)
{
    MolecularCacheParams p = fig5MolecularParams(
        2_MiB, state.range(0) ? PlacementPolicy::Randy
                              : PlacementPolicy::Random);
    MolecularCache cache(p);
    for (u32 a = 0; a < 4; ++a)
        cache.registerApplication(Asid{static_cast<u16>(a)}, 0.1, ClusterId{0}, a, 1);
    const auto trace = sampleTrace(100000);
    size_t i = 0;
    for (auto _ : state) {
        cache.access(trace[i]);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MolecularAccess)->Arg(0)->Arg(1);

/* ------------------------------------------------------------------ */
/* Access-path hot-path gate (docs/perf.md)                            */

/** Hot-path kernel variants, one per lookup flavour. */
enum HotpathVariant : int
{
    kHotRandom = 0,
    kHotRandy = 1,
    kHotRandyRowRestricted = 2,
    kHotLruDirect = 3,
};

MolecularCacheParams
hotpathParams(int variant)
{
    PlacementPolicy policy = PlacementPolicy::Random;
    switch (variant) {
      case kHotRandom:
        policy = PlacementPolicy::Random;
        break;
      case kHotRandy:
      case kHotRandyRowRestricted:
        policy = PlacementPolicy::Randy;
        break;
      case kHotLruDirect:
        policy = PlacementPolicy::LruDirect;
        break;
    }
    MolecularCacheParams p = fig5MolecularParams(2_MiB, policy);
    p.rowRestrictedLookup = variant == kHotRandyRowRestricted;
    return p;
}

/**
 * Steady-state molecular access throughput.  The cache is warmed with
 * one full pass over the trace before timing starts so the measured
 * loop reflects the steady-state lookup path (the regime every sweep
 * and figure reproduction spends its time in), not cold fills.
 */
void
BM_HotpathMolecular(benchmark::State &state)
{
    MolecularCache cache(hotpathParams(static_cast<int>(state.range(0))));
    for (u32 a = 0; a < 4; ++a)
        cache.registerApplication(Asid{static_cast<u16>(a)}, 0.1,
                                  ClusterId{0}, a, 1);
    const auto trace = sampleTrace(100000);
    for (const MemAccess &a : trace)
        cache.access(a); // warmup pass: populate regions + fills
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(trace[i]).hit);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotpathMolecular)
    ->Arg(kHotRandom)
    ->Arg(kHotRandy)
    ->Arg(kHotRandyRowRestricted)
    ->Arg(kHotLruDirect);

/**
 * Batched access-path throughput: the same steady-state trace as
 * BM_HotpathMolecular, fed through MolecularCache::accessBatch in
 * 4096-record blocks.  Results are byte-identical to the scalar path
 * (tests/core/batch_differential_test.cpp pins this); the kernel
 * measures how much of the per-access fixed cost the batch plane
 * amortizes away.  Gated against BENCH_hotpath.json like the scalar
 * kernels.
 */
void
BM_HotpathBatch(benchmark::State &state)
{
    MolecularCache cache(hotpathParams(static_cast<int>(state.range(0))));
    for (u32 a = 0; a < 4; ++a)
        cache.registerApplication(Asid{static_cast<u16>(a)}, 0.1,
                                  ClusterId{0}, a, 1);
    const auto trace = sampleTrace(100000);
    std::vector<AccessResult> results(trace.size());
    for (const MemAccess &a : trace)
        cache.access(a); // warmup pass: populate regions + fills
    constexpr size_t kBlock = 4096;
    size_t off = 0;
    i64 items = 0;
    for (auto _ : state) {
        const size_t n = std::min(kBlock, trace.size() - off);
        cache.accessBatch(trace.subspan(off, n),
                          std::span<AccessResult>{results.data() + off, n});
        benchmark::DoNotOptimize(results[off].hit);
        items += static_cast<i64>(n);
        off = off + n == trace.size() ? 0 : off + n;
    }
    // One iteration = one block; items_per_second is what makes this
    // kernel comparable with the scalar (one-access-per-iteration) ones,
    // and it is what the perf-baseline gate reads.
    state.SetItemsProcessed(items);
}
BENCHMARK(BM_HotpathBatch)
    ->Arg(kHotRandom)
    ->Arg(kHotRandy)
    ->Arg(kHotRandyRowRestricted)
    ->Arg(kHotLruDirect);

/** Traditional set-associative reference point for the same trace. */
void
BM_HotpathTraditional(benchmark::State &state)
{
    SetAssocCache cache(
        traditionalParams(2_MiB, static_cast<u32>(state.range(0))));
    const auto trace = sampleTrace(100000);
    for (const MemAccess &a : trace)
        cache.access(a);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(trace[i]).hit);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotpathTraditional)->Arg(8);

void
BM_CactiEvaluate(benchmark::State &state)
{
    const CactiModel model(TechNode::Nm70);
    CacheGeometry g;
    g.sizeBytes = Bytes{static_cast<u64>(state.range(0)) << 20};
    g.associativity = 4;
    g.ports = 4;
    for (auto _ : state) {
        auto pt = model.evaluate(g);
        benchmark::DoNotOptimize(pt.readEnergyNj);
    }
}
BENCHMARK(BM_CactiEvaluate)->Arg(1)->Arg(8);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler zipf(static_cast<u32>(state.range(0)), 0.8);
    Pcg32 rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(65536);

} // namespace

/**
 * Hand-rolled main (instead of benchmark::benchmark_main) so every JSON
 * capture carries the build type of *this* binary in its context block.
 * The stock "library_build_type" key describes how the google-benchmark
 * library was compiled — on distro packages that can say "debug" even
 * for a -O3 molcache build — so the perf-baseline gate keys off
 * "molcache_build_type" and refuses captures that were not Release.
 */
int
main(int argc, char **argv)
{
#ifdef NDEBUG
    benchmark::AddCustomContext("molcache_build_type", "release");
#else
    benchmark::AddCustomContext("molcache_build_type", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
