/**
 * @file
 * google-benchmark micro-kernels for the simulator itself: access-path
 * throughput of the traditional and molecular models, trace generation,
 * and the power-model organization search.  These guard against
 * performance regressions in the hot loops the reproduction experiments
 * depend on.
 */

#include <benchmark/benchmark.h>

#include "cache/set_assoc.hpp"
#include "core/molecular_cache.hpp"
#include "power/cacti.hpp"
#include "sim/experiment.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

std::vector<MemAccess>
sampleTrace(u64 n)
{
    static std::vector<MemAccess> trace;
    if (trace.size() < n) {
        auto src = makeMultiProgramSource(spec4Names(), n,
                                          MixPolicy::RoundRobin, 7);
        trace.clear();
        trace.reserve(n);
        while (auto a = src->next())
            trace.push_back(*a);
    }
    return {trace.begin(), trace.begin() + n};
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &profile = profileByName("parser");
    for (auto _ : state) {
        TraceGenerator gen(profile, Asid{0}, static_cast<u64>(state.range(0)), 3);
        u64 sum = 0;
        while (auto a = gen.next())
            sum += a->addr;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000);

void
BM_SetAssocAccess(benchmark::State &state)
{
    SetAssocCache cache(
        traditionalParams(1_MiB, static_cast<u32>(state.range(0))));
    const auto trace = sampleTrace(100000);
    size_t i = 0;
    for (auto _ : state) {
        cache.access(trace[i]);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocAccess)->Arg(1)->Arg(4)->Arg(8);

void
BM_MolecularAccess(benchmark::State &state)
{
    MolecularCacheParams p = fig5MolecularParams(
        2_MiB, state.range(0) ? PlacementPolicy::Randy
                              : PlacementPolicy::Random);
    MolecularCache cache(p);
    for (u32 a = 0; a < 4; ++a)
        cache.registerApplication(Asid{static_cast<u16>(a)}, 0.1, ClusterId{0}, a, 1);
    const auto trace = sampleTrace(100000);
    size_t i = 0;
    for (auto _ : state) {
        cache.access(trace[i]);
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MolecularAccess)->Arg(0)->Arg(1);

void
BM_CactiEvaluate(benchmark::State &state)
{
    const CactiModel model(TechNode::Nm70);
    CacheGeometry g;
    g.sizeBytes = Bytes{static_cast<u64>(state.range(0)) << 20};
    g.associativity = 4;
    g.ports = 4;
    for (auto _ : state) {
        auto pt = model.evaluate(g);
        benchmark::DoNotOptimize(pt.readEnergyNj);
    }
}
BENCHMARK(BM_CactiEvaluate)->Arg(1)->Arg(8);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler zipf(static_cast<u32>(state.range(0)), 0.8);
    Pcg32 rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(65536);

} // namespace

// main() comes from benchmark::benchmark_main.
