/**
 * @file
 * Ablation A: resize scheduling schemes (paper section 3.4, "When to
 * add?").
 *
 * The paper claims: constant address-count resizing "does not aid in
 * bringing down the miss rate"; adaptive schemes do better; the global
 * adaptive scheme suits small tiles while the per-application scheme
 * works better with larger tiles (>= 2MB).  This bench sweeps the three
 * schemes over cache sizes on the 4-app SPEC workload.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

double
runScheme(Bytes size, ResizeScheme scheme, u64 refs, u64 seed)
{
    MolecularCacheParams p =
        fig5MolecularParams(size, PlacementPolicy::Randy, seed);
    p.resizeScheme = scheme;
    MolecularCache cache(p);
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1, ClusterId{0}, i, 1);
    const GoalSet goals = GoalSet::uniform(0.1, 4);
    return runWorkload(spec4Names(), cache, goals, refs, seed)
        .qos.averageDeviation;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_resize",
                  "Ablation: constant vs global-adaptive vs per-app "
                  "adaptive resize scheduling");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Resize-scheme ablation: average deviation, SPEC 4-app "
                  "workload, goal 10% (tile size = cache/4)");

    TablePrinter table(
        {"cache size", "tile size", "constant", "global", "perapp"});
    for (const Bytes size : {1_MiB, 2_MiB, 4_MiB, 8_MiB}) {
        const size_t row = table.addRow();
        table.cell(row, 0, formatSize(size));
        table.cell(row, 1, formatSize(size / 4));
        table.cell(row, 2,
                   runScheme(size, ResizeScheme::Constant, refs, seed), 4);
        table.cell(row, 3,
                   runScheme(size, ResizeScheme::GlobalAdaptive, refs, seed),
                   4);
        table.cell(row, 4,
                   runScheme(size, ResizeScheme::PerAppAdaptive, refs, seed),
                   4);
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
