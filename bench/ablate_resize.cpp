/**
 * @file
 * Ablation A: resize scheduling schemes (paper section 3.4, "When to
 * add?").
 *
 * The paper claims: constant address-count resizing "does not aid in
 * bringing down the miss rate"; adaptive schemes do better; the global
 * adaptive scheme suits small tiles while the per-application scheme
 * works better with larger tiles (>= 2MB).  This bench sweeps the three
 * schemes over cache sizes on the 4-app SPEC workload — twelve points
 * through one parallel sweep.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

const struct
{
    ResizeScheme scheme;
    const char *label;
} kSchemes[] = {
    {ResizeScheme::Constant, "constant"},
    {ResizeScheme::GlobalAdaptive, "global"},
    {ResizeScheme::PerAppAdaptive, "perapp"},
};

std::string
modelLabel(Bytes size, const char *scheme)
{
    return formatSize(size) + "/" + scheme;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_resize",
                  "Ablation: constant vs global-adaptive vs per-app "
                  "adaptive resize scheduling");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Resize-scheme ablation: average deviation, SPEC 4-app "
                  "workload, goal 10% (tile size = cache/4)");

    const Bytes sizes[] = {1_MiB, 2_MiB, 4_MiB, 8_MiB};

    SweepSpec spec("ablate_resize");
    for (const Bytes size : sizes) {
        for (const auto &s : kSchemes) {
            MolecularCacheParams p =
                fig5MolecularParams(size, PlacementPolicy::Randy);
            p.resizeScheme = s.scheme;
            spec.molecular(modelLabel(size, s.label), p);
        }
    }
    spec.workload("spec4", spec4Names())
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs);

    const SweepReport report = bench::runSweep(cli, spec);

    TablePrinter table(
        {"cache size", "tile size", "constant", "global", "perapp"});
    for (const Bytes size : sizes) {
        const size_t row = table.addRow();
        table.cell(row, 0, formatSize(size));
        table.cell(row, 1, formatSize(size / 4));
        for (size_t i = 0; i < std::size(kSchemes); ++i) {
            const auto &p =
                report.point(modelLabel(size, kSchemes[i].label), "spec4");
            table.cell(row, i + 2, p.result.qos.averageDeviation, 4);
        }
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
