/**
 * @file
 * Table 2 reproduction: average deviation from a 25% miss-rate goal for
 * the 12-application mixed workload (SPEC + NetBench + MediaBench).
 *
 * Configurations compared, as in the paper:
 *   4MB 4-way, 4MB 8-way, 8MB 4-way, 8MB 8-way traditional caches versus
 *   a 6MB molecular cache (3 clusters x 4 tiles x 512KB; 8KB molecules)
 *   with the Randy and Random replacement algorithms.  Applications are
 *   split into three groups of four, one group per tile cluster.
 *
 * Paper reference values (Table 2): 0.313, 0.310, 0.247, 0.243 for the
 * traditional caches; 0.222 (Randy) and 0.357 (Random) for the molecular
 * cache — i.e. 6MB molecular/Randy beats even the 8MB 8-way.
 *
 * All six configurations run as one parallel sweep.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {
constexpr double kGoal = 0.25;
} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("table2_mixed",
                  "Table 2: average deviation, 12-app mixed workload, "
                  "goal 25%");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Table 2: average deviation from the 25% miss-rate goal "
                  "(12-app mix)");

    SweepSpec spec("table2_mixed");
    spec.setAssoc("4MB 4way", traditionalParams(4_MiB, 4))
        .setAssoc("4MB 8way", traditionalParams(4_MiB, 8))
        .setAssoc("8MB 4way", traditionalParams(8_MiB, 4))
        .setAssoc("8MB 8way", traditionalParams(8_MiB, 8))
        .molecular("6MB Molecular Randy",
                   table2MolecularParams(PlacementPolicy::Randy))
        .molecular("6MB Molecular Random",
                   table2MolecularParams(PlacementPolicy::Random))
        .workload("mixed12", mixed12Names())
        .goals(GoalSet::uniform(kGoal, 12))
        .registrationGoal(kGoal)
        .seeds({seed})
        .references(refs);

    const SweepReport report = bench::runSweep(cli, spec);

    const auto deviation = [&](const char *model) {
        return formatDouble(
            report.point(model, "mixed12").result.qos.averageDeviation, 6);
    };

    TablePrinter table({"cache type", "avg deviation", "paper"});
    table.row({"4MB 4way", deviation("4MB 4way"), "0.313261"});
    table.row({"4MB 8way", deviation("4MB 8way"), "0.309515"});
    table.row({"8MB 4way", deviation("8MB 4way"), "0.246843"});
    table.row({"8MB 8way", deviation("8MB 8way"), "0.243161"});
    table.row({"6MB Molecular Randy", deviation("6MB Molecular Randy"),
               "0.222075"});
    table.row({"6MB Molecular Random", deviation("6MB Molecular Random"),
               "0.356923"});

    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
