/**
 * @file
 * Table 1 reproduction: inter-application interference on a shared
 * 1 MB 4-way L2.
 *
 * The paper's motivating experiment: art, ammp, parser and mcf run alone,
 * in pairs, and all four together; per-application miss rates shift with
 * the co-runner mix.  Paper reference values are printed beside the
 * measured ones.  Absolute agreement is approximate (our traces are
 * synthetic); the interference *shape* — who suffers and with whom — is
 * the reproduction target.
 *
 * The eleven combos are the workload axis of one sweep against a single
 * shared-cache model point.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"

using namespace molcache;

namespace {

struct Combo
{
    std::vector<std::string> apps;
    /** Paper's Table 1 miss rates, in apps[] order (NaN = not listed). */
    std::vector<double> paper;
};

const std::vector<Combo> kCombos = {
    {{"art"}, {0.064}},
    {{"mcf"}, {0.668}},
    {{"ammp"}, {0.008}},
    {{"parser"}, {0.086}},
    {{"art", "mcf"}, {0.069, 0.691}},
    {{"art", "ammp"}, {0.065, 0.009}},
    {{"art", "parser"}, {0.065, 0.134}},
    {{"mcf", "ammp"}, {0.702, 0.012}},
    {{"mcf", "parser"}, {0.684, 0.247}},
    {{"ammp", "parser"}, {0.009, 0.091}},
    {{"art", "mcf", "ammp", "parser"}, {0.734, 0.688, 0.013, 0.253}},
};

std::string
comboLabel(const Combo &combo)
{
    std::string label;
    for (const auto &a : combo.apps)
        label += (label.empty() ? "" : "+") + a;
    return label;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("table1_interference",
                  "Table 1: miss-rate interference on a shared 1MB 4-way L2");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Table 1: miss rate depends on concurrently running apps "
                  "(1MB 4-way shared L2)");

    SweepSpec spec("table1_interference");
    spec.setAssoc("1MB-4way", traditionalParams(1_MiB, 4));
    for (const Combo &combo : kCombos)
        spec.workload(comboLabel(combo), combo.apps);
    spec.seeds({seed}).references(refs); // Table 1 has no goals.

    const SweepReport report = bench::runSweep(cli, spec);

    TablePrinter table({"workload", "app", "miss rate", "paper"});
    for (const Combo &combo : kCombos) {
        const std::string label = comboLabel(combo);
        const SimResult &res = report.point("1MB-4way", label).result;
        for (size_t i = 0; i < combo.apps.size(); ++i) {
            // find(): a zero-traffic app has no summary; print "-"
            // rather than abort the whole table.
            const AppSummary *app = res.qos.find(static_cast<Asid>(i));
            const size_t row = table.addRow();
            table.cell(row, 0, i == 0 ? label : std::string());
            table.cell(row, 1, combo.apps[i]);
            if (app != nullptr)
                table.cell(row, 2, app->missRate, 3);
            else
                table.cell(row, 2, std::string("-"));
            table.cell(row, 3, formatDouble(combo.paper[i], 3));
        }
    }

    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
