/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 *
 * Every sweep-based bench accepts the same execution options
 * (--threads, --json, --json-timing) and funnels through
 * bench::runSweep, so `<bench> --threads 8 --json BENCH_sweep.json`
 * works uniformly and every emitted report carries the same schema.
 */

#ifndef MOLCACHE_BENCH_COMMON_HPP
#define MOLCACHE_BENCH_COMMON_HPP

#include <cstdio>
#include <iostream>
#include <string>

#include "exec/sweep.hpp"
#include "util/cli.hpp"

namespace molcache::bench {

/** Standard options every reproduction binary accepts. */
inline void
addCommonOptions(CliParser &cli, u64 defaultRefs)
{
    cli.addOption("refs", std::to_string(defaultRefs),
                  "merged references per run");
    cli.addOption("seed", "1", "base RNG seed");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
}

/** Execution options for benches that run through the sweep engine. */
inline void
addSweepOptions(CliParser &cli)
{
    cli.addOption("threads", "0",
                  "sweep worker threads (0 = hardware concurrency)");
    cli.addOption("json", "",
                  "write the machine-readable sweep report here "
                  "(convention: BENCH_sweep.json)");
    cli.addFlag("json-timing",
                "include the run-to-run-varying timing section in the "
                "JSON report (breaks byte-for-byte determinism)");
}

/**
 * Execute @p spec on the CLI-selected thread count and, when --json was
 * given, write the report.  Benches that run several sweeps pass
 * @p appendSweepName so each report lands in its own file
 * (`out.json` -> `out.<sweep>.json`).
 */
inline SweepReport
runSweep(const CliParser &cli, const SweepSpec &spec,
         bool appendSweepName = false)
{
    SweepOptions options;
    options.threads = static_cast<u32>(cli.integer("threads"));
    const SweepReport report = SweepRunner(options).run(spec);

    std::string path = cli.str("json");
    if (!path.empty()) {
        if (appendSweepName) {
            const size_t dot = path.rfind('.');
            const std::string tag = "." + spec.name();
            if (dot == std::string::npos)
                path += tag;
            else
                path.insert(dot, tag);
        }
        report.writeFile(path, cli.flag("json-timing"));
        std::fprintf(stderr, "wrote %s (%zu points, %u threads)\n",
                     path.c_str(), report.points.size(), report.threads);
    }
    return report;
}

inline void
banner(const std::string &title)
{
    std::printf("== %s ==\n", title.c_str());
}

} // namespace molcache::bench

#endif // MOLCACHE_BENCH_COMMON_HPP
