/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 */

#ifndef MOLCACHE_BENCH_COMMON_HPP
#define MOLCACHE_BENCH_COMMON_HPP

#include <cstdio>
#include <iostream>
#include <string>

#include "util/cli.hpp"

namespace molcache::bench {

/** Standard options every reproduction binary accepts. */
inline void
addCommonOptions(CliParser &cli, u64 defaultRefs)
{
    cli.addOption("refs", std::to_string(defaultRefs),
                  "merged references per run");
    cli.addOption("seed", "1", "base RNG seed");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
}

inline void
banner(const std::string &title)
{
    std::printf("== %s ==\n", title.c_str());
}

} // namespace molcache::bench

#endif // MOLCACHE_BENCH_COMMON_HPP
