/**
 * @file
 * Ablation F: molecule placement policies — Random vs Randy vs the
 * paper's future-work LRU-Direct scheme (section 5: "A different scheme
 * for replacements such as an LRU-Direct scheme needs to be evaluated").
 *
 * LRU-Direct picks the region's least-recently-touched slot at the
 * address's index: the quality ceiling for molecule selection, at the
 * hardware cost of global recency state.  This bench quantifies how much
 * of that ceiling the implementable Random/Randy schemes reach, on both
 * the SPEC 4-app workload (goal 10%) and the 12-app mix (goal 25%).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

struct Outcome
{
    double deviation;
    double globalMissRate;
    u32 molecules;
};

Outcome
runSpec4(PlacementPolicy placement, u64 refs, u64 seed)
{
    MolecularCache cache(fig5MolecularParams(4_MiB, placement, seed));
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1, ClusterId{0}, i, 1);
    const GoalSet goals = GoalSet::uniform(0.1, 4);
    const double dev = runWorkload(spec4Names(), cache, goals, refs, seed)
                           .qos.averageDeviation;
    u32 mols = 0;
    for (u32 i = 0; i < 4; ++i)
        mols += cache.region(Asid{static_cast<u16>(i)}).size();
    return {dev, cache.stats().global().missRate(), mols};
}

Outcome
runMixed(PlacementPolicy placement, u64 refs, u64 seed)
{
    MolecularCache cache(table2MolecularParams(placement, seed));
    registerApplications(cache, 12, 0.25);
    const GoalSet goals = GoalSet::uniform(0.25, 12);
    const double dev = runWorkload(mixed12Names(), cache, goals, refs, seed)
                           .qos.averageDeviation;
    u32 mols = 0;
    for (u32 i = 0; i < 12; ++i)
        mols += cache.region(Asid{static_cast<u16>(i)}).size();
    return {dev, cache.stats().global().missRate(), mols};
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_placement",
                  "Ablation: Random vs Randy vs LRU-Direct placement");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    const PlacementPolicy policies[] = {PlacementPolicy::Random,
                                        PlacementPolicy::Randy,
                                        PlacementPolicy::LruDirect};

    bench::banner("Placement ablation A: SPEC 4-app, 4MiB molecular, "
                  "goal 10%");
    TablePrinter spec({"placement", "avg deviation", "global miss rate",
                       "molecules held"});
    for (const auto p : policies) {
        const Outcome o = runSpec4(p, refs, seed);
        spec.row({placementPolicyName(p), formatDouble(o.deviation, 4),
                  formatDouble(o.globalMissRate, 4),
                  std::to_string(o.molecules)});
    }
    if (cli.flag("csv"))
        spec.printCsv(std::cout);
    else
        spec.print(std::cout);

    bench::banner("Placement ablation B: 12-app mix, 6MiB molecular, "
                  "goal 25%");
    TablePrinter mixed({"placement", "avg deviation", "global miss rate",
                        "molecules held"});
    for (const auto p : policies) {
        const Outcome o = runMixed(p, refs, seed);
        mixed.row({placementPolicyName(p), formatDouble(o.deviation, 4),
                   formatDouble(o.globalMissRate, 4),
                   std::to_string(o.molecules)});
    }
    if (cli.flag("csv"))
        mixed.printCsv(std::cout);
    else
        mixed.print(std::cout);
    return 0;
}
