/**
 * @file
 * Ablation F: molecule placement policies — Random vs Randy vs the
 * paper's future-work LRU-Direct scheme (section 5: "A different scheme
 * for replacements such as an LRU-Direct scheme needs to be evaluated").
 *
 * LRU-Direct picks the region's least-recently-touched slot at the
 * address's index: the quality ceiling for molecule selection, at the
 * hardware cost of global recency state.  This bench quantifies how much
 * of that ceiling the implementable Random/Randy schemes reach, on both
 * the SPEC 4-app workload (goal 10%) and the 12-app mix (goal 25%).
 *
 * The two scenarios run as separate sweeps (their registration goals
 * differ), each fanning the three placement policies across the pool;
 * molecules held per point comes from the sweep's inspect hook.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

constexpr PlacementPolicy kPolicies[] = {PlacementPolicy::Random,
                                         PlacementPolicy::Randy,
                                         PlacementPolicy::LruDirect};

/** Record the molecules every region holds at end of run. */
void
recordMoleculesHeld(const SimJob &job, CacheModel &model, MetricMap &extra)
{
    auto *cache = dynamic_cast<MolecularCache *>(&model);
    if (cache == nullptr)
        return;
    u32 mols = 0;
    for (u32 i = 0; i < job.profiles.size(); ++i)
        mols += cache->region(Asid{static_cast<u16>(i)}).size();
    extra["molecules_held"] = static_cast<double>(mols);
}

void
printSweep(const CliParser &cli, const SweepReport &report,
           const std::string &workload)
{
    TablePrinter table({"placement", "avg deviation", "global miss rate",
                        "molecules held"});
    for (const auto policy : kPolicies) {
        const auto &p = report.point(placementPolicyName(policy), workload);
        table.row({placementPolicyName(policy),
                   formatDouble(p.result.qos.averageDeviation, 4),
                   formatDouble(p.result.qos.globalMissRate, 4),
                   std::to_string(static_cast<u64>(
                       p.extra.at("molecules_held")))});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_placement",
                  "Ablation: Random vs Randy vs LRU-Direct placement");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    SweepSpec spec4("placement_spec4");
    for (const auto policy : kPolicies)
        spec4.molecular(placementPolicyName(policy),
                        fig5MolecularParams(4_MiB, policy));
    spec4.workload("spec4", spec4Names())
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs)
        .inspect(recordMoleculesHeld);

    SweepSpec mixed("placement_mixed12");
    for (const auto policy : kPolicies)
        mixed.molecular(placementPolicyName(policy),
                        table2MolecularParams(policy));
    mixed.workload("mixed12", mixed12Names())
        .goals(GoalSet::uniform(0.25, 12))
        .registrationGoal(0.25)
        .seeds({seed})
        .references(refs)
        .inspect(recordMoleculesHeld);

    const SweepReport spec4_report = bench::runSweep(cli, spec4, true);
    const SweepReport mixed_report = bench::runSweep(cli, mixed, true);

    bench::banner("Placement ablation A: SPEC 4-app, 4MiB molecular, "
                  "goal 10%");
    printSweep(cli, spec4_report, "spec4");

    bench::banner("Placement ablation B: 12-app mix, 6MiB molecular, "
                  "goal 25%");
    printSweep(cli, mixed_report, "mixed12");
    return 0;
}
