/**
 * @file
 * Predictive-apportioning drill: the adversarial mix run three times on
 * the same geometry and the same merged reference stream —
 *
 *  - reactive:    guardian on, predictive mode off (the PR-5 baseline);
 *  - predictive:  predictive mode on with *honest* hints from the two
 *                 phase-structured tenants (phaseflip, bursty); hog and
 *                 steady stay silent (mixed hinted/unhinted population);
 *  - wrong-hints: same, but every hinting tenant lies (inverted sign:
 *                 each promises the phase it is leaving), the
 *                 fault-injection drill for the hint-trust machinery.
 *
 * What the table should show (docs/algorithm1.md, "Predictive mode &
 * hint trust"):
 *  - honest hints cut time-spent-outside-QoS-goal versus reactive
 *    (capacity moves before the shift, not a detect cycle after it);
 *  - with wrong hints, trust collapses and the liar is quarantined back
 *    to reactive control, so time-outside-goal and grant/withdraw churn
 *    stay within a few percent of the reactive baseline (graceful
 *    degradation, not amplification);
 *  - the unhinted tenants are unaffected either way.
 *
 * --json writes a schema-versioned document bundling all three runs'
 * SimResults plus a precomputed comparison block (the CI gate's input).
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/molecular_cache.hpp"
#include "sim/experiment.hpp"
#include "sim/result_json.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "workload/adversarial.hpp"

using namespace molcache;

namespace {

const std::vector<AdversaryKind> kMix = {
    AdversaryKind::PhaseFlip,
    AdversaryKind::Hog,
    AdversaryKind::Bursty,
    AdversaryKind::Steady,
};

constexpr size_t kPhaseFlipSlot = 0;

enum class DrillMode { Reactive, Predictive, WrongHints };

const char *
drillModeName(DrillMode mode)
{
    switch (mode) {
      case DrillMode::Reactive:
        return "reactive";
      case DrillMode::Predictive:
        return "predictive";
      case DrillMode::WrongHints:
        return "wrong_hints";
    }
    return "unknown";
}

struct DrillConfig
{
    u64 refs = 0;
    u64 seed = 1;
    double goal = 0.10;
    double hogGoal = 0.02;
    u32 floor = 2;
    u64 lead = 12'000;
};

struct DrillOutcome
{
    SimResult sim;
    /** Grant + withdraw molecule churn over the whole run. */
    u64 churn = 0;
};

GoalSet
drillGoals(const DrillConfig &cfg)
{
    GoalSet goals;
    for (size_t i = 0; i < kMix.size(); ++i) {
        const double goal =
            kMix[i] == AdversaryKind::Hog ? cfg.hogGoal : cfg.goal;
        goals.set(Asid{static_cast<u16>(i)}, goal);
    }
    return goals;
}

/** One hint policy per tenant: phase-structured tenants announce their
 * boundaries, hog/steady stay silent, and WrongHints inverts every
 * hinting tenant's sign (whole-population adversarial failure — the
 * churn bound below is against the entire cache, so partial honesty
 * would hide an amplifying liar behind a well-behaved neighbour). */
std::vector<HintPolicy>
drillHints(const DrillConfig &cfg, DrillMode mode)
{
    std::vector<HintPolicy> hints(kMix.size());
    if (mode == DrillMode::Reactive)
        return hints;
    for (size_t i = 0; i < kMix.size(); ++i) {
        if (kMix[i] != AdversaryKind::PhaseFlip &&
            kMix[i] != AdversaryKind::Bursty)
            continue;
        hints[i].enabled = true;
        hints[i].leadAccesses = cfg.lead;
        hints[i].confidence = 0.9;
        hints[i].invertPhase = mode == DrillMode::WrongHints;
    }
    return hints;
}

DrillOutcome
runDrill(const DrillConfig &cfg, DrillMode mode)
{
    MolecularCacheParams p;
    // The 2 MiB default cluster the adversary footprints are tuned
    // against, per-app adaptive periods, guardian always on — the modes
    // differ only in predictive enablement and hint honesty, so every
    // delta below is attributable to the hint path.
    p.resizeScheme = ResizeScheme::PerAppAdaptive;
    p.seed = cfg.seed;
    p.guardian.enabled = true;
    p.guardian.floorMolecules = cfg.floor;
    p.guardian.predictive.enabled = mode != DrillMode::Reactive;

    const GoalSet goals = drillGoals(cfg);
    MolecularCache cache(p);
    std::vector<std::string> names;
    for (size_t i = 0; i < kMix.size(); ++i) {
        const Asid asid{static_cast<u16>(i)};
        cache.registerApplication(asid, *goals.goal(asid));
        names.push_back(adversaryKindName(kMix[i]));
    }

    auto source = makeAdversarialSource(kMix, drillHints(cfg, mode),
                                        cfg.refs, cfg.seed);
    DrillOutcome out;
    out.sim = Simulator::run(*source, cache,
                             RunOptions{}
                                 .withGoals(goals)
                                 .withLabels(labelMap(names)));
    out.churn = cache.resizer().granted() + cache.resizer().withdrawn();
    return out;
}

const GuardianAppTelemetry *
telemetryOf(const SimResult &r, size_t slot)
{
    const AppSummary *app = r.qos.find(Asid{static_cast<u16>(slot)});
    if (app == nullptr || !app->guardian)
        return nullptr;
    return &*app->guardian;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("guardian_predictive",
                  "Reactive vs predictive vs predictive-with-wrong-hints");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.addOption("goal", "0.1", "miss-rate goal for the non-hog apps");
    cli.addOption("hog-goal", "0.02",
                  "hog's goal (unreachable by construction)");
    cli.addOption("floor", "2", "per-region capacity floor, molecules");
    cli.addOption("lead", "12000",
                  "hint lead, references ahead of the phase boundary");
    cli.addOption("json", "",
                  "write the three-run comparison document here");
    cli.parse(argc, argv);

    DrillConfig cfg;
    cfg.refs = static_cast<u64>(cli.integer("refs"));
    cfg.seed = static_cast<u64>(cli.integer("seed"));
    cfg.goal = cli.real("goal");
    cfg.hogGoal = cli.real("hog-goal");
    cfg.floor = static_cast<u32>(cli.integer("floor"));
    cfg.lead = static_cast<u64>(cli.integer("lead"));

    const DrillMode modes[] = {DrillMode::Reactive, DrillMode::Predictive,
                               DrillMode::WrongHints};
    DrillOutcome runs[3];
    for (size_t m = 0; m < 3; ++m)
        runs[m] = runDrill(cfg, modes[m]);

    bench::banner(
        "Predictive apportioning: time outside goal / churn / trust");
    TablePrinter table({"mode", "global miss", "refs outside goal",
                        "epochs outside", "churn", "hints seen",
                        "honored", "rejected", "quarantined",
                        "min trust"});
    for (size_t m = 0; m < 3; ++m) {
        const GuardianSummary &g = runs[m].sim.guardian;
        table.row({drillModeName(modes[m]),
                   formatDouble(runs[m].sim.qos.globalMissRate, 4),
                   std::to_string(g.accessesOutsideGoal),
                   std::to_string(g.epochsOutsideGoal),
                   std::to_string(runs[m].churn),
                   std::to_string(g.hintsSeen),
                   std::to_string(g.hintsHonored),
                   std::to_string(g.hintsRejected),
                   std::to_string(g.quarantinedRegions),
                   g.predictiveEnabled ? formatDouble(g.minTrust, 3)
                                       : "-"});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // Per-tenant trust in the wrong-hint drill: the liar must end
    // quarantined, the honest and silent tenants must not.
    TablePrinter trust({"app", "hints", "honored", "rejected", "trust",
                        "quarantined", "refs outside goal"});
    for (size_t i = 0; i < kMix.size(); ++i) {
        const GuardianAppTelemetry *g = telemetryOf(runs[2].sim, i);
        trust.row({adversaryKindName(kMix[i]),
                   g != nullptr ? std::to_string(g->hintsSeen) : "-",
                   g != nullptr ? std::to_string(g->hintsHonored) : "-",
                   g != nullptr ? std::to_string(g->hintsRejected) : "-",
                   g != nullptr ? formatDouble(g->trust, 3) : "-",
                   g != nullptr ? (g->quarantined ? "yes" : "no") : "-",
                   g != nullptr ? std::to_string(g->accessesOutsideGoal)
                                : "-"});
    }
    std::printf("wrong-hint drill, per tenant:\n");
    if (cli.flag("csv"))
        trust.printCsv(std::cout);
    else
        trust.print(std::cout);

    const u64 reactive_out = runs[0].sim.guardian.accessesOutsideGoal;
    const u64 honest_out = runs[1].sim.guardian.accessesOutsideGoal;
    const u64 wrong_out = runs[2].sim.guardian.accessesOutsideGoal;
    const GuardianAppTelemetry *liar =
        telemetryOf(runs[2].sim, kPhaseFlipSlot);
    std::printf("time outside goal: reactive %llu | honest %llu | "
                "wrong %llu refs\n",
                static_cast<unsigned long long>(reactive_out),
                static_cast<unsigned long long>(honest_out),
                static_cast<unsigned long long>(wrong_out));
    std::printf("churn: reactive %llu | honest %llu | wrong %llu "
                "molecules\n",
                static_cast<unsigned long long>(runs[0].churn),
                static_cast<unsigned long long>(runs[1].churn),
                static_cast<unsigned long long>(runs[2].churn));
    std::printf("liar (%s): trust %.3f, quarantined=%s\n",
                adversaryKindName(kMix[kPhaseFlipSlot]).c_str(),
                liar != nullptr ? liar->trust : 0.0,
                liar != nullptr && liar->quarantined ? "yes" : "no");

    const std::string json_out = cli.str("json");
    if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out)
            fatal("cannot open '", json_out, "' for writing");
        JsonWriter json(out);
        json.beginObject();
        writeSchemaVersion(json);
        json.key("kind");
        json.value("guardian_predictive");
        json.key("drills");
        json.beginObject();
        for (size_t m = 0; m < 3; ++m) {
            json.key(drillModeName(modes[m]));
            json.beginObject();
            json.key("churn_molecules");
            json.value(runs[m].churn);
            json.key("result");
            writeSimResultJson(json, runs[m].sim);
            json.endObject();
        }
        json.endObject();
        json.key("comparison");
        json.beginObject();
        json.key("outside_goal_reactive");
        json.value(reactive_out);
        json.key("outside_goal_predictive");
        json.value(honest_out);
        json.key("outside_goal_wrong_hints");
        json.value(wrong_out);
        json.key("churn_reactive");
        json.value(runs[0].churn);
        json.key("churn_predictive");
        json.value(runs[1].churn);
        json.key("churn_wrong_hints");
        json.value(runs[2].churn);
        json.key("liar_quarantined");
        json.value(liar != nullptr && liar->quarantined);
        json.key("liar_trust");
        json.value(liar != nullptr ? liar->trust : 0.0);
        json.key("contract_violations");
        json.value(runs[0].sim.contractViolations +
                   runs[1].sim.contractViolations +
                   runs[2].sim.contractViolations);
        json.endObject();
        json.endObject();
        out << "\n";
        std::printf("wrote %s\n", json_out.c_str());
    }
    return 0;
}
