/**
 * @file
 * Latency report: average memory access time (AMAT) for the traditional,
 * way-partitioned and molecular caches on the SPEC workload.
 *
 * The paper flags two latency costs of the molecular design without
 * quantifying them: the extra ASID-comparison pipeline stage on every
 * access (section 3.1) and the hierarchical multi-tile search on a tile
 * miss (section 3.3).  This report measures what those cost against what
 * the partitioning buys back in hit rate, per application.
 *
 * Latency model (cache cycles): traditional hit 1, miss +200; molecular
 * local hit = ASID stage (1) + molecule access (1), each remote tile
 * visited +4 (Ulmo hop) +2, miss +200.
 */

#include <iostream>

#include "bench_common.hpp"
#include "cache/way_partitioned.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

struct Run
{
    std::string label;
    QosSummary qos;
    double localShare = 0.0; // hits serviced on the entry tile
};

Run
runTraditional(Bytes size, u32 assoc, const GoalSet &goals, u64 refs,
               u64 seed)
{
    SetAssocCache cache(traditionalParams(size, assoc, seed));
    const SimResult r = runWorkload(spec4Names(), cache, goals, refs, seed);
    return {cache.name() + " (shared)", r.qos, 1.0};
}

Run
runWayPart(Bytes size, u32 assoc, const GoalSet &goals, u64 refs, u64 seed)
{
    WayPartitionedParams p;
    p.sizeBytes = size;
    p.associativity = assoc;
    WayPartitionedCache cache(p);
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1);
    const SimResult r = runWorkload(spec4Names(), cache, goals, refs, seed);
    return {cache.name(), r.qos, 1.0};
}

Run
runMolecular(Bytes size, const GoalSet &goals, u64 refs, u64 seed)
{
    MolecularCache cache(
        fig5MolecularParams(size, PlacementPolicy::Randy, seed));
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1, ClusterId{0}, i, 1);
    const SimResult r = runWorkload(spec4Names(), cache, goals, refs, seed);
    const double hits =
        static_cast<double>(r.localHits + r.remoteHits);
    return {cache.name(), r.qos,
            hits > 0 ? static_cast<double>(r.localHits) / hits : 0.0};
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("latency_report",
                  "AMAT: the cost of the ASID stage and hierarchical "
                  "lookup vs what partitioning buys back");
    bench::addCommonOptions(cli, 2'000'000);
    cli.addOption("size", "4M", "cache size for all schemes");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const Bytes size{cli.size("size")};

    const GoalSet goals = GoalSet::uniform(0.1, 4);

    bench::banner("AMAT (cache cycles), SPEC 4-app workload, " +
                  formatSize(size) + " caches");

    const Run runs[] = {
        runTraditional(size, 8, goals, refs, seed),
        runWayPart(size, 8, goals, refs, seed),
        runMolecular(size, goals, refs, seed),
    };

    std::vector<std::string> header = {"scheme"};
    for (const auto &app : spec4Names())
        header.push_back(app);
    header.push_back("overall note");
    TablePrinter table(header);
    for (const Run &run : runs) {
        std::vector<std::string> row = {run.label};
        for (u32 i = 0; i < 4; ++i)
            row.push_back(
                formatDouble(run.qos.byAsid(static_cast<Asid>(i)).amat, 1));
        row.push_back(run.localShare < 1.0
                          ? formatDouble(100.0 * run.localShare, 1) +
                                "% hits on entry tile"
                          : "single-structure lookup");
        table.row(row);
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nmolecular hits pay the ASID stage (+1 cycle) and remote "
                "hits pay Ulmo hops;\nthe miss-rate changes from "
                "partitioning dominate AMAT when they exceed ~0.5%%.\n"
                "note: overachievers (ammp) show HIGHER molecular AMAT by "
                "design — Algorithm 1\nsteers their miss rate UP to the "
                "goal to free molecules; the molecular cache\noptimizes "
                "goal deviation and power, not raw latency.\n");
    return 0;
}
