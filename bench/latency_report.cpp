/**
 * @file
 * Latency report: average memory access time (AMAT) for the traditional,
 * way-partitioned and molecular caches on the SPEC workload.
 *
 * The paper flags two latency costs of the molecular design without
 * quantifying them: the extra ASID-comparison pipeline stage on every
 * access (section 3.1) and the hierarchical multi-tile search on a tile
 * miss (section 3.3).  This report measures what those cost against what
 * the partitioning buys back in hit rate, per application.
 *
 * Latency model (cache cycles): traditional hit 1, miss +200; molecular
 * local hit = ASID stage (1) + molecule access (1), each remote tile
 * visited +4 (Ulmo hop) +2, miss +200.
 *
 * The three schemes run as one sweep against the same workload.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "cache/way_partitioned.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("latency_report",
                  "AMAT: the cost of the ASID stage and hierarchical "
                  "lookup vs what partitioning buys back");
    bench::addCommonOptions(cli, 2'000'000);
    bench::addSweepOptions(cli);
    cli.addOption("size", "4M", "cache size for all schemes");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const Bytes size{cli.size("size")};

    bench::banner("AMAT (cache cycles), SPEC 4-app workload, " +
                  formatSize(size) + " caches");

    WayPartitionedParams wp;
    wp.sizeBytes = size;
    wp.associativity = 8;

    SweepSpec spec("latency_report");
    spec.setAssoc("traditional", traditionalParams(size, 8))
        .wayPartitioned("way-partitioned", wp)
        .molecular("molecular",
                   fig5MolecularParams(size, PlacementPolicy::Randy))
        .workload("spec4", spec4Names())
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs);

    const SweepReport report = bench::runSweep(cli, spec);

    std::vector<std::string> header = {"scheme"};
    for (const auto &app : spec4Names())
        header.push_back(app);
    header.push_back("overall note");
    TablePrinter table(header);

    for (const char *model : {"traditional", "way-partitioned",
                              "molecular"}) {
        const auto &point = report.point(model, "spec4");
        const SimResult &r = point.result;
        const double hits = static_cast<double>(r.localHits + r.remoteHits);
        // Only the molecular model services hits on remote tiles.
        const bool multi_tile = r.remoteHits > 0;
        const double local_share =
            hits > 0 ? static_cast<double>(r.localHits) / hits : 0.0;

        std::vector<std::string> row = {
            multi_tile ? r.cacheName
                       : r.cacheName + (std::string(model) == "traditional"
                                            ? " (shared)"
                                            : "")};
        for (u32 i = 0; i < 4; ++i) {
            const AppSummary *app = r.qos.find(static_cast<Asid>(i));
            row.push_back(app != nullptr ? formatDouble(app->amat, 1)
                                         : "-");
        }
        row.push_back(multi_tile
                          ? formatDouble(100.0 * local_share, 1) +
                                "% hits on entry tile"
                          : "single-structure lookup");
        table.row(row);
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nmolecular hits pay the ASID stage (+1 cycle) and remote "
                "hits pay Ulmo hops;\nthe miss-rate changes from "
                "partitioning dominate AMAT when they exceed ~0.5%%.\n"
                "note: overachievers (ammp) show HIGHER molecular AMAT by "
                "design — Algorithm 1\nsteers their miss rate UP to the "
                "goal to free molecules; the molecular cache\noptimizes "
                "goal deviation and power, not raw latency.\n");
    return 0;
}
