/**
 * @file
 * QoS-guardian adversarial drill: the four-application mix from
 * src/workload/adversarial.hpp (phaseflip, hog, bursty, steady) run
 * twice on the same molecular cache geometry — once with the bare
 * Algorithm 1 control plane and once with the guardian enabled — and
 * compared side by side.
 *
 * What the table should show (docs/algorithm1.md, "Guardrails"):
 *  - the hog's unreachable goal is flagged Infeasible with a reported
 *    shortfall instead of silently inflating forever;
 *  - the phase-flipper's delta sign flips stay within the configured
 *    bound (oscillation events fire, the dead-band widens);
 *  - the steady victim never drops below its capacity floor;
 *  - epochs-to-goal / stuck expose anything past the watchdog budget.
 *
 * The adversaries are hand-built AccessSources, not benchmark profiles,
 * so this binary drives Simulator::run directly rather than going
 * through the profile-keyed sweep engine; --json writes the canonical
 * schema-versioned SimResult document of the guardian-on run (the CI
 * telemetry artifact).
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/molecular_cache.hpp"
#include "sim/experiment.hpp"
#include "sim/result_json.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "workload/adversarial.hpp"

using namespace molcache;

namespace {

const std::vector<AdversaryKind> kMix = {
    AdversaryKind::PhaseFlip,
    AdversaryKind::Hog,
    AdversaryKind::Bursty,
    AdversaryKind::Steady,
};

struct DrillConfig
{
    u64 refs = 0;
    u64 seed = 1;
    double goal = 0.10;
    double hogGoal = 0.02;
    u32 floor = 2;
};

GoalSet
drillGoals(const DrillConfig &cfg)
{
    GoalSet goals;
    for (size_t i = 0; i < kMix.size(); ++i) {
        const double goal =
            kMix[i] == AdversaryKind::Hog ? cfg.hogGoal : cfg.goal;
        goals.set(Asid{static_cast<u16>(i)}, goal);
    }
    return goals;
}

SimResult
runDrill(const DrillConfig &cfg, bool guardianOn)
{
    MolecularCacheParams p;
    // Defaults are already the 2 MiB cluster (4 tiles x 64 x 8 KiB) the
    // adversary footprints are tuned against; per-app periods so the
    // guardian's period backoff is exercised too.
    p.resizeScheme = ResizeScheme::PerAppAdaptive;
    p.seed = cfg.seed;
    p.guardian.enabled = guardianOn;
    p.guardian.floorMolecules = cfg.floor;

    const GoalSet goals = drillGoals(cfg);
    MolecularCache cache(p);
    std::vector<std::string> names;
    for (size_t i = 0; i < kMix.size(); ++i) {
        const Asid asid{static_cast<u16>(i)};
        cache.registerApplication(asid, *goals.goal(asid));
        names.push_back(adversaryKindName(kMix[i]));
    }

    auto source = makeAdversarialSource(kMix, cfg.refs, cfg.seed);
    return Simulator::run(*source, cache,
                          RunOptions{}
                              .withGoals(goals)
                              .withLabels(labelMap(names)));
}

std::string
guardianCell(const AppSummary *app)
{
    if (app == nullptr || !app->guardian)
        return "-";
    const GuardianAppTelemetry &g = *app->guardian;
    std::string out = feasibilityVerdictName(g.verdict);
    if (g.shortfall > 0.0)
        out += " (-" + formatDouble(g.shortfall, 3) + ")";
    if (g.stuck)
        out += " STUCK";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("guardian_adversarial",
                  "Adversarial mix, bare Algorithm 1 vs the QoS guardian");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.addOption("goal", "0.1", "miss-rate goal for the non-hog apps");
    cli.addOption("hog-goal", "0.02",
                  "hog's goal (unreachable by construction)");
    cli.addOption("floor", "2", "per-region capacity floor, molecules");
    cli.addOption("json", "",
                  "write the guardian-on run's SimResult document here");
    cli.parse(argc, argv);

    DrillConfig cfg;
    cfg.refs = static_cast<u64>(cli.integer("refs"));
    cfg.seed = static_cast<u64>(cli.integer("seed"));
    cfg.goal = cli.real("goal");
    cfg.hogGoal = cli.real("hog-goal");
    cfg.floor = static_cast<u32>(cli.integer("floor"));

    const SimResult off = runDrill(cfg, /*guardianOn=*/false);
    const SimResult on = runDrill(cfg, /*guardianOn=*/true);

    bench::banner("Adversarial mix: miss rate / control-plane telemetry");
    TablePrinter table({"app", "goal", "miss (bare)", "miss (guard)",
                        "verdict", "osc", "flips", "floor hits",
                        "epochs-to-goal"});
    for (size_t i = 0; i < kMix.size(); ++i) {
        const Asid asid{static_cast<u16>(i)};
        const AppSummary *bare = off.qos.find(asid);
        const AppSummary *guarded = on.qos.find(asid);
        const GuardianAppTelemetry *g =
            (guarded != nullptr && guarded->guardian)
                ? &*guarded->guardian
                : nullptr;
        table.row({adversaryKindName(kMix[i]),
                   formatDouble(kMix[i] == AdversaryKind::Hog ? cfg.hogGoal
                                                              : cfg.goal,
                                3),
                   bare != nullptr ? formatDouble(bare->missRate, 4) : "-",
                   guarded != nullptr ? formatDouble(guarded->missRate, 4)
                                      : "-",
                   guardianCell(guarded),
                   g != nullptr ? std::to_string(g->oscillationEvents) : "-",
                   g != nullptr ? std::to_string(g->maxSignFlips) : "-",
                   g != nullptr ? std::to_string(g->floorHits) : "-",
                   g != nullptr ? std::to_string(g->maxEpochsToGoal) : "-"});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("bare:    avg deviation %.4f | global miss %.4f\n",
                off.qos.averageDeviation, off.qos.globalMissRate);
    std::printf("guarded: avg deviation %.4f | global miss %.4f | "
                "%llu holds | %llu oscillation events | %llu floor hits | "
                "%u infeasible | %u stuck | pressure %.2f\n",
                on.qos.averageDeviation, on.qos.globalMissRate,
                static_cast<unsigned long long>(on.guardian.holdEpochs),
                static_cast<unsigned long long>(
                    on.guardian.oscillationEvents),
                static_cast<unsigned long long>(on.guardian.floorHits),
                on.guardian.infeasibleRegions, on.guardian.stuckRegions,
                on.guardian.poolPressure);

    const std::string json_out = cli.str("json");
    if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out)
            fatal("cannot open '", json_out, "' for writing");
        JsonWriter json(out);
        writeSimResultDocument(json, on);
        out << "\n";
        std::printf("wrote %s\n", json_out.c_str());
    }
    return 0;
}
