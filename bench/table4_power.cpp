/**
 * @file
 * Table 4 reproduction: CACTI-style power at 70 nm.
 *
 * For each traditional 8MB cache (DM/2/4/8-way, 4 ports) the model gives
 * energy/access and cycle time; power = E x f at the cache's own
 * frequency.  The 8MB molecular cache (Table 3 configuration: 4 clusters
 * x 4 tiles x 512KB, 8KB molecules) is evaluated two ways, as in the
 * paper:
 *   - worst case: every molecule of a tile enabled on each access;
 *   - average:    measured molecules probed per access in a mixed
 *                 workload run (12 apps over 4 clusters).
 * Both are converted to power at the frequency of the traditional cache
 * in the same row.
 *
 * Paper reference rows (Table 4):
 *   DM   199MHz 4.93W | mol worst 5.29W | mol avg 4.85W
 *   2way 205MHz 5.95W | mol worst 5.45W | mol avg 4.99W
 *   4way 206MHz 7.66W | mol worst 5.46W | mol avg 5.00W
 *   8way  96MHz 3.58W | mol worst 2.55W | mol avg 2.34W
 * and the headline: ~29% power advantage versus the equally-performing
 * 4-way traditional cache.
 *
 * The measured molecular run goes through the sweep engine (a one-point
 * sweep, so --threads/--json behave like every other bench); the CACTI
 * table is computed from its report.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "power/report.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("table4_power",
                  "Table 4: power of 8MB traditional caches vs the 8MB "
                  "molecular cache at 70nm");
    bench::addCommonOptions(cli, 1'000'000);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Table 3 configuration: molecular 8MB = 4 clusters x 4 "
                  "tiles x 512KB (64 x 8KB molecules, 1 port per tile "
                  "cluster); traditional 8MB with 4 ports");

    // Mixed-workload run on the 8MB molecular cache for the measured
    // average energy per access.
    MolecularCacheParams mp;
    mp.moleculeSize = 8_KiB;
    mp.moleculesPerTile = 64;
    mp.tilesPerCluster = 4;
    mp.clusters = 4;
    mp.placement = PlacementPolicy::Randy;

    SweepSpec spec("table4_power");
    spec.molecular("8MB Molecular Randy", mp)
        .workload("mixed12", mixed12Names())
        .goals(GoalSet::uniform(0.25, 12))
        .registrationGoal(0.25)
        .seeds({seed})
        .references(refs)
        .inspect([](const SimJob &, CacheModel &model, MetricMap &extra) {
            auto &cache = dynamic_cast<MolecularCache &>(model);
            extra["worst_case_energy_nj"] = cache.worstCaseAccessEnergyNj();
            extra["avg_probes_per_access"] = cache.averageProbesPerAccess();
            extra["avg_enabled_molecules"] =
                cache.averageEnabledMolecules();
        });

    const SweepReport report = bench::runSweep(cli, spec);
    const auto &mol = report.point("8MB Molecular Randy", "mixed12");

    const double worst_nj = mol.extra.at("worst_case_energy_nj");
    const double avg_nj = mol.result.avgEnergyPerAccessNj;

    const CactiModel model(TechNode::Nm70);

    bench::banner("Table 4: power at 70nm (mol avg from measured " +
                  std::to_string(refs) + "-ref mixed run)");
    TablePrinter table({"cache type", "freq (MHz)", "power (W)",
                        "mol worst (W)", "mol avg (W)", "paper P/worst/avg"});

    const struct
    {
        u32 assoc;
        const char *label;
        const char *paper;
    } rows[] = {
        {1, "8MB DM", "4.93 / 5.29 / 4.85"},
        {2, "8MB 2way", "5.95 / 5.45 / 4.99"},
        {4, "8MB 4way", "7.66 / 5.46 / 5.00"},
        {8, "8MB 8way", "3.58 / 2.55 / 2.34"},
    };

    double four_way_power = 0.0;
    double four_way_mol_avg = 0.0;
    double four_way_mol_worst = 0.0;
    for (const auto &row : rows) {
        CacheGeometry g;
        g.sizeBytes = 8_MiB;
        g.associativity = row.assoc;
        g.ports = 4;
        const PowerTiming pt = model.evaluate(g);
        const double f = pt.frequencyMhz();
        const double p = dynamicPowerWatts(pt.readEnergyNj, f);
        const double mol_worst = dynamicPowerWatts(worst_nj, f);
        const double mol_avg = dynamicPowerWatts(avg_nj, f);
        if (row.assoc == 4) {
            four_way_power = p;
            four_way_mol_avg = mol_avg;
            four_way_mol_worst = mol_worst;
        }
        table.row({row.label, formatDouble(f, 0), formatDouble(p, 2),
                   formatDouble(mol_worst, 2), formatDouble(mol_avg, 2),
                   row.paper});
    }

    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nmeasured molecular energy/access: worst %.2f nJ, "
                "avg %.2f nJ (avg %.1f molecules probed, %.1f enabled)\n",
                worst_nj, avg_nj, mol.extra.at("avg_probes_per_access"),
                mol.extra.at("avg_enabled_molecules"));
    std::printf("power advantage vs the 8MB 4-way, worst case "
                "(the paper's ~29%% headline): %.1f%%\n",
                100.0 * (1.0 - four_way_mol_worst / four_way_power));
    std::printf("power advantage vs the 8MB 4-way, measured average: "
                "%.1f%%\n",
                100.0 * (1.0 - four_way_mol_avg / four_way_power));
    return 0;
}
