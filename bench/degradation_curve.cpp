/**
 * @file
 * Graceful-degradation curve: QoS vs. molecule fault rate.
 *
 * The molecular structure's reliability story (docs/fault_model.md):
 * hard faults fence off individual molecules, the resizer re-acquires
 * capacity for the wounded regions, and the miss-rate-goal machinery
 * re-converges.  This bench sweeps the fraction of hard-faulted
 * molecules from 0% to 25% (faults land in the middle half of the run)
 * on the 4-app SPEC workload and reports the achieved average deviation
 * from the miss-rate goals, molecules lost, recovery grants and the
 * worst re-convergence time — the degradation should be graceful
 * (deviation creeping up with the fault rate), not a cliff.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/molecular_cache.hpp"
#include "fault/fault_injector.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

SimResult
runAtFaultRate(double hardFraction, Bytes size, u64 refs, u64 seed)
{
    const MolecularCacheParams p =
        fig5MolecularParams(size, PlacementPolicy::Randy, seed);
    MolecularCache cache(p);
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1, ClusterId{0}, i, 1);

    if (hardFraction > 0.0) {
        FaultScheduleSpec spec;
        spec.seed = seed;
        spec.hardFraction = hardFraction;
        // Faults land in the middle half: the cache warms first and has
        // the back half of the run to re-converge.
        spec.windowStart = refs / 4;
        spec.windowEnd = refs / 4 * 3;
        cache.setFaultInjector(FaultInjector::fromSpec(
            spec, p.totalMolecules(), p.moleculesPerTile,
            p.linesPerMolecule()));
    }

    const GoalSet goals = GoalSet::uniform(0.1, 4);
    return runWorkload(spec4Names(), cache, goals, refs, seed);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("degradation_curve",
                  "Graceful degradation: average goal deviation vs. "
                  "fraction of hard-faulted molecules");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.addOption("size", "2M", "total cache size");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const Bytes size{cli.size("size")};

    bench::banner("Degradation curve: SPEC 4-app workload, goal 10%, "
                  "hard faults in the middle half of the run");

    TablePrinter table({"fault rate", "avg deviation", "global miss",
                        "lost", "regrants", "reconv epochs",
                        "recovering"});
    for (const double rate : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25}) {
        const SimResult r = runAtFaultRate(rate, size, refs, seed);
        const size_t row = table.addRow();
        table.cell(row, 0, formatDouble(rate, 2));
        table.cell(row, 1, r.qos.averageDeviation, 4);
        table.cell(row, 2, r.qos.globalMissRate, 4);
        table.cell(row, 3, r.moleculesDecommissioned);
        table.cell(row, 4, r.recoveryGrants);
        table.cell(row, 5, static_cast<u64>(r.maxReconvergenceEpochs));
        table.cell(row, 6, static_cast<u64>(r.regionsStillRecovering));
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
