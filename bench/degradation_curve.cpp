/**
 * @file
 * Graceful-degradation curve: QoS vs. molecule fault rate.
 *
 * The molecular structure's reliability story (docs/fault_model.md):
 * hard faults fence off individual molecules, the resizer re-acquires
 * capacity for the wounded regions, and the miss-rate-goal machinery
 * re-converges.  This bench sweeps the fraction of hard-faulted
 * molecules from 0% to 25% (faults land in the middle half of the run —
 * the sweep engine's default fault window) on the 4-app SPEC workload
 * and reports the achieved average deviation from the miss-rate goals,
 * molecules lost, recovery grants and the worst re-convergence time —
 * the degradation should be graceful (deviation creeping up with the
 * fault rate), not a cliff.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/molecular_cache.hpp"
#include "fault/fault_injector.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

std::string
rateLabel(double rate)
{
    return formatDouble(rate, 2);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("degradation_curve",
                  "Graceful degradation: average goal deviation vs. "
                  "fraction of hard-faulted molecules");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.addOption("size", "2M", "total cache size");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const Bytes size{cli.size("size")};

    bench::banner("Degradation curve: SPEC 4-app workload, goal 10%, "
                  "hard faults in the middle half of the run");

    const double rates[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25};

    SweepSpec spec("degradation_curve");
    const MolecularCacheParams params =
        fig5MolecularParams(size, PlacementPolicy::Randy);
    for (const double rate : rates) {
        if (rate == 0.0) {
            spec.molecular(rateLabel(rate), params);
        } else {
            FaultScheduleSpec faults;
            faults.hardFraction = rate;
            spec.molecular(rateLabel(rate), params, faults);
        }
    }
    spec.workload("spec4", spec4Names())
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs);

    const SweepReport report = bench::runSweep(cli, spec);

    TablePrinter table({"fault rate", "avg deviation", "global miss",
                        "lost", "regrants", "reconv epochs",
                        "recovering"});
    for (const double rate : rates) {
        const SimResult &r = report.point(rateLabel(rate), "spec4").result;
        const size_t row = table.addRow();
        table.cell(row, 0, formatDouble(rate, 2));
        table.cell(row, 1, r.qos.averageDeviation, 4);
        table.cell(row, 2, r.qos.globalMissRate, 4);
        table.cell(row, 3, r.moleculesDecommissioned);
        table.cell(row, 4, r.recoveryGrants);
        table.cell(row, 5, static_cast<u64>(r.maxReconvergenceEpochs));
        table.cell(row, 6, static_cast<u64>(r.regionsStillRecovering));
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
