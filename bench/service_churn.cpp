/**
 * @file
 * molcached churn drill — ROADMAP item 1's acceptance scenario and the
 * concurrency gate for src/service/ (docs/molcached.md).
 *
 * N worker threads hammer a mc::Service while a churn driver thread
 * plays a seeded arrival/departure process (workload/churn.hpp):
 * tenants attach with heterogeneous footprints/goals, live out an
 * exponential lifetime under guardian admission/resize/eviction, then
 * detach; the service's epoch thread drains departures and runs the
 * InvariantChecker audit the whole time.  Workers pick a random live
 * tenant per burst, so handle refcounts are genuinely contended and
 * drains genuinely have to wait for in-flight references.
 *
 * Exit status is the drill's own sanity gate (the CI tsan and
 * adversarial jobs run `service_churn --smoke`): it fails on any
 * invariant violation, any contract violation observed by any thread,
 * or any departed tenant left undrained after the final epoch.  --json
 * writes the schema-versioned service_summary document — the telemetry
 * artifact the adversarial job uploads and gates on.
 */

#include <array>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "exec/seed_stream.hpp"
#include "exec/thread_pool.hpp"
#include "service/service.hpp"
#include "service/service_json.hpp"
#include "stats/table.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"
#include "workload/churn.hpp"

using namespace molcache;

namespace {

struct DrillConfig
{
    u32 workers = 8;
    u64 totalRefs = 2'000'000;
    u64 seed = 1;
    u32 shards = 2;
    u64 epochMillis = 5;
    u32 maxTenants = 48;
    u32 initialTenants = 8;
    /** Drive bursts through Service::accessBatch instead of per-ref
     * access(); same addresses, same burst sizes. */
    bool batch = false;
    /** Chaos storm seed (0 = chaos off; the default keeps the drill's
     * output byte-stable). */
    u64 faults = 0;
    /** Serve through accessChecked() with bounded retry/backoff
     * instead of plain access(). */
    bool retryBackoff = false;
    ChurnParams churn;
};

/** One live tenant as the drill tracks it (driver-owned). */
struct LiveTenant
{
    mc::TenantHandle handle;
    ChurnTenantProfile profile;
    u64 deathAt = 0;
};

/**
 * Shared tenant board.  The driver is the only writer; workers copy a
 * (handle, profile) pair out under the lock and access outside it, so
 * a drain can never catch a worker without a handle reference.
 */
struct Board
{
    mc::Mutex mutex;
    std::vector<LiveTenant> live MOLCACHE_GUARDED_BY(mutex);
    std::atomic<bool> stop{false};
    std::atomic<u64> accesses{0};
    std::atomic<u64> contractViolations{0};
};

/** One reference through accessChecked() with bounded retry/backoff
 * (--retry-backoff): an Overloaded verdict backs off (scaled by the
 * suggested retry-after, capped) and retries at most three times
 * before dropping the reference. */
void
accessWithBackoff(mc::Service &service, const mc::TenantHandle &handle,
                  Addr addr, bool isWrite, u64 epochMillis)
{
    for (u32 attempt = 0;; ++attempt) {
        const mc::AccessOutcome outcome =
            service.accessChecked(handle, addr, isWrite);
        if (outcome.status == mc::AccessStatus::Ok || attempt >= 3)
            return;
        const u64 micros =
            std::min<u64>(outcome.retryAfterEpochs * epochMillis * 1000u,
                          2000u << attempt);
        std::this_thread::sleep_for(
            std::chrono::microseconds(micros != 0 ? micros : 100u));
    }
}

void
runWorker(mc::Service &service, Board &board, u64 seed,
          const DrillConfig &cfg)
{
    const auto rng = makeRandomSource(RngKind::Pcg32, seed);
    std::array<mc::Service::TenantAccess, 64> refs;
    std::array<AccessResult, 64> results;
    const u64 before = contract::counters().total();
    mc::TenantHandle handle;
    ChurnTenantProfile profile;
    u64 sinceRefresh = ~u64{0}; // force an initial pick
    while (!board.stop.load(std::memory_order_acquire)) {
        // Re-pick a tenant every few bursts; between picks the held
        // handle keeps the tenant drain-safe even after it departs.
        if (sinceRefresh > 8) {
            sinceRefresh = 0;
            mc::MutexLock lock(board.mutex);
            if (board.live.empty()) {
                handle.reset();
            } else {
                const LiveTenant &pick =
                    board.live[rng->next64() % board.live.size()];
                handle = pick.handle;
                profile = pick.profile;
            }
        }
        ++sinceRefresh;
        if (!handle) {
            std::this_thread::yield();
            continue;
        }
        u64 burst = 0;
        if (cfg.batch) {
            for (; burst < refs.size(); ++burst) {
                refs[burst] = {churnAddress(profile, *rng),
                               churnIsWrite(profile, *rng)};
            }
            service.accessBatch(handle, {refs.data(), refs.size()},
                                {results.data(), results.size()});
        } else if (cfg.retryBackoff) {
            for (; burst < 64; ++burst)
                accessWithBackoff(service, handle,
                                  churnAddress(profile, *rng),
                                  churnIsWrite(profile, *rng),
                                  cfg.epochMillis);
        } else {
            for (; burst < 64; ++burst)
                service.access(handle, churnAddress(profile, *rng),
                               churnIsWrite(profile, *rng));
        }
        board.accesses.fetch_add(burst, std::memory_order_relaxed);
    }
    board.contractViolations.fetch_add(contract::counters().total() - before,
                                       std::memory_order_relaxed);
}

void
attachOne(mc::Service &service, Board &board, ChurnProcess &churn,
          u64 ordinal, u64 now)
{
    LiveTenant tenant;
    tenant.profile =
        churn.makeProfile(ordinal, service.options().cache.lineSize);
    mc::TenantSpec spec;
    spec.name = "t" + std::to_string(ordinal);
    spec.missRateGoal = tenant.profile.missRateGoal;
    mc::AttachError error = mc::AttachError::None;
    tenant.handle = service.attach(spec, &error);
    if (!tenant.handle)
        // Admission said no (cap reached / ASIDs exhausted): the tenant
        // is simply turned away, which is valid churn behaviour too.
        return;
    tenant.deathAt = now + churn.nextLifetime();
    mc::MutexLock lock(board.mutex);
    board.live.push_back(std::move(tenant));
}

void
runDriver(mc::Service &service, Board &board, const DrillConfig &cfg)
{
    const u64 before = contract::counters().total();
    ChurnProcess churn(cfg.churn, deriveJobSeed(cfg.seed, 0));
    u64 ordinal = 0;
    for (; ordinal < cfg.initialTenants; ++ordinal)
        attachOne(service, board, churn, ordinal, 0);
    u64 nextArrival = churn.nextArrivalGap();

    u64 now = 0;
    while (now < cfg.totalRefs) {
        now = board.accesses.load(std::memory_order_relaxed);
        if (now >= nextArrival) {
            attachOne(service, board, churn, ordinal++, now);
            nextArrival = now + churn.nextArrivalGap();
        }
        // Collect deaths due by `now`; detach outside the board lock.
        std::vector<mc::TenantHandle> dying;
        {
            mc::MutexLock lock(board.mutex);
            for (auto it = board.live.begin(); it != board.live.end();) {
                if (it->deathAt <= now) {
                    dying.push_back(std::move(it->handle));
                    it = board.live.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (const mc::TenantHandle &handle : dying)
            service.detach(handle);
        dying.clear(); // last driver-side references drop here
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Shut the population down: detach everyone, then stop the workers
    // (their held handle copies die with their stack frames).
    std::vector<mc::TenantHandle> rest;
    {
        mc::MutexLock lock(board.mutex);
        for (LiveTenant &tenant : board.live)
            rest.push_back(std::move(tenant.handle));
        board.live.clear();
    }
    for (const mc::TenantHandle &handle : rest)
        service.detach(handle);
    rest.clear();
    board.stop.store(true, std::memory_order_release);
    board.contractViolations.fetch_add(contract::counters().total() - before,
                                       std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("service_churn",
                  "molcached multi-tenant churn drill (ROADMAP item 1)");
    cli.addOption("workers", "8", "access worker threads");
    cli.addOption("refs", "2000000", "total accesses to serve");
    cli.addOption("seed", "1", "base RNG seed");
    cli.addOption("shards", "2", "cache shards (tile clusters)");
    cli.addOption("epoch-ms", "5", "control-plane epoch period");
    cli.addOption("max-tenants", "48", "admission cap on live tenants");
    cli.addOption("json", "",
                  "write the service_summary telemetry document here");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.addFlag("batch",
                "drive worker bursts through Service::accessBatch "
                "(one shard lock per burst)");
    cli.addOption("faults", "0",
                  "chaos storm seed; 0 (default) keeps chaos off and "
                  "the output byte-stable");
    cli.addFlag("retry-backoff",
                "serve through accessChecked() with bounded "
                "retry/backoff instead of plain access()");
    cli.addFlag("smoke",
                "CI-sized run: same dynamics, ~10x shorter, exit "
                "status is the sanity gate");
    cli.parse(argc, argv);

    DrillConfig cfg;
    cfg.workers = static_cast<u32>(cli.integer("workers"));
    cfg.totalRefs = static_cast<u64>(cli.integer("refs"));
    cfg.seed = static_cast<u64>(cli.integer("seed"));
    cfg.shards = static_cast<u32>(cli.integer("shards"));
    cfg.epochMillis = static_cast<u64>(cli.integer("epoch-ms"));
    cfg.maxTenants = static_cast<u32>(cli.integer("max-tenants"));
    cfg.batch = cli.flag("batch");
    cfg.faults = static_cast<u64>(cli.integer("faults"));
    cfg.retryBackoff = cli.flag("retry-backoff");
    if (cli.flag("smoke")) {
        cfg.totalRefs = std::min<u64>(cfg.totalRefs, 200'000);
        cfg.churn.meanInterarrival = 4'000;
        cfg.churn.meanLifetime = 40'000;
    }
    if (cfg.workers == 0)
        fatal("--workers must be >= 1");

    mc::ServiceOptions options;
    options.withShards(cfg.shards)
        .withEpochMillis(cfg.epochMillis)
        .withMaxTenants(cfg.maxTenants)
        .withGuardian(true);
    options.cache.seed = cfg.seed;
    if (cfg.faults != 0) {
        // A modest storm (chaos_drill runs the full one): enough to
        // exercise quarantine/remap and the overload watermarks.
        mc::ChaosSpec chaos;
        chaos.seed = cfg.faults;
        chaos.windowStart = 4;
        chaos.windowEnd = 40;
        chaos.transientFlips = 4;
        chaos.hardFaults = 6;
        chaos.shardOutages = 1;
        chaos.shardStalls = 1;
        options.withChaos(chaos)
            .withAdmitWatermarks(0.95, 0.85)
            .withRecoverySlack(0.25);
    }
    mc::Service service(options);

    bench::banner("molcached service churn drill");
    std::printf("workers %u, shards %u, target %llu accesses, epoch %llu "
                "ms, admission cap %u%s%s\n",
                cfg.workers, cfg.shards,
                static_cast<unsigned long long>(cfg.totalRefs),
                static_cast<unsigned long long>(cfg.epochMillis),
                cfg.maxTenants, cfg.batch ? ", batched bursts" : "",
                cfg.retryBackoff ? ", retry/backoff" : "");
    if (cfg.faults != 0)
        std::printf("chaos storm on (seed %llu)\n",
                    static_cast<unsigned long long>(cfg.faults));

    Board board;
    {
        // Job 0 is the churn driver, jobs 1..N the access workers; the
        // pool gives every long-running job its own thread.
        WorkStealingPool pool(cfg.workers + 1);
        pool.forEach(cfg.workers + 1, [&](u64 job) {
            if (job == 0)
                runDriver(service, board, cfg);
            else
                runWorker(service, board,
                          deriveJobSeed(cfg.seed, 1000 + job), cfg);
        });
    }

    // Workers are gone; run epochs until every departed tenant has
    // drained (all handles are dead now, so this converges in one or
    // two epochs regardless of the control thread's own pacing).
    mc::ServiceSummary summary = service.summary();
    for (u32 i = 0; i < 8; ++i) {
        service.runEpochNow();
        summary = service.summary();
        if (summary.tenantsDrained == summary.tenantsDetached)
            break;
    }
    summary.contractViolations +=
        board.contractViolations.load(std::memory_order_acquire) +
        contract::counters().total();

    TablePrinter table({"metric", "value"});
    table.row({"accesses", std::to_string(summary.accesses)});
    table.row({"miss rate", std::to_string(summary.missRate())});
    table.row({"epochs", std::to_string(summary.epoch)});
    table.row({"tenants attached", std::to_string(summary.tenantsAttached)});
    table.row({"tenants detached", std::to_string(summary.tenantsDetached)});
    table.row({"tenants drained", std::to_string(summary.tenantsDrained)});
    table.row({"tenants live", std::to_string(summary.tenantsLive)});
    table.row({"invariant checks", std::to_string(summary.invariantChecksRun)});
    table.row({"invariant violations",
               std::to_string(summary.invariantViolations)});
    table.row({"contract violations",
               std::to_string(summary.contractViolations)});
    if (cfg.faults != 0) {
        // Resilience rows only when the storm ran, so a fault-free
        // drill's output stays byte-identical.
        const mc::ServiceResilienceSummary &res = summary.resilience;
        table.row({"chaos events fired",
                   std::to_string(res.chaosTransientFlips +
                                  res.chaosHardFaults +
                                  res.chaosShardOutages +
                                  res.chaosShardStalls)});
        table.row({"shards quarantined",
                   std::to_string(res.shardsQuarantined)});
        table.row({"tenants remapped", std::to_string(res.tenantsRemapped)});
        table.row({"remap invalidations",
                   std::to_string(res.remapInvalidations)});
        table.row({"accesses shed", std::to_string(res.accessesShed)});
        table.row({"max epochs to drain",
                   std::to_string(res.maxEpochsToDrain)});
        table.row({"max epochs back to goal",
                   std::to_string(res.maxEpochsBackToGoal)});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const std::string json_out = cli.str("json");
    if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out)
            fatal("cannot open '", json_out, "' for writing");
        JsonWriter json(out);
        mc::writeServiceSummaryDocument(json, summary);
        out << "\n";
        std::printf("wrote %s\n", json_out.c_str());
    }

    bool ok = true;
    if (summary.invariantViolations != 0) {
        std::printf("FAIL: %llu invariant violations\n",
                    static_cast<unsigned long long>(
                        summary.invariantViolations));
        ok = false;
    }
    if (summary.contractViolations != 0) {
        std::printf("FAIL: %llu contract violations\n",
                    static_cast<unsigned long long>(
                        summary.contractViolations));
        ok = false;
    }
    if (summary.tenantsDrained != summary.tenantsDetached) {
        std::printf("FAIL: %llu detached tenants but only %llu drained\n",
                    static_cast<unsigned long long>(summary.tenantsDetached),
                    static_cast<unsigned long long>(summary.tenantsDrained));
        ok = false;
    }
    std::printf("%s\n", ok ? "PASS: churn drill clean" : "FAIL");
    return ok ? 0 : 1;
}
