/**
 * @file
 * Ablation C: region line size (paper section 3.2, "Varying the Line
 * Size").
 *
 * A region may fetch 2 or 4 consecutive 64B lines per miss (stored as a
 * replacement unit in one molecule).  Larger units help spatially-local
 * applications (CJPEG, epic: strided macroblock walks) and hurt
 * pointer-chasing ones (mcf) by polluting the region with never-used
 * neighbours.  Each application here runs ALONE on a molecular cache so
 * the line-size effect is isolated — 15 solo runs (3 line sizes x 5
 * apps) fanned out as one sweep.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

std::string
modelLabel(u32 lineMultiple)
{
    return std::to_string(64 * lineMultiple) + "B";
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_linesize",
                  "Ablation: region line-size multiple (64/128/256B units)");
    bench::addCommonOptions(cli, 1'000'000);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Region line-size ablation: per-application miss rate, "
                  "each app alone on a 2MiB molecular cache");

    const struct
    {
        const char *app;
        const char *expect;
    } rows[] = {
        {"CJPEG", "64B-strided macroblocks: 128B units prefetch usefully"},
        {"epic", "128B-strided planes: wider units fetch skipped lines"},
        {"decode", "sequential streaming: bigger lines help strongly"},
        {"mcf", "pointer chase: bigger lines pollute"},
        {"NAT", "hot table + random probes: mild unit effects"},
    };

    SweepSpec spec("ablate_linesize");
    for (const u32 multiple : {1u, 2u, 4u}) {
        MolecularCacheParams p =
            fig5MolecularParams(2_MiB, PlacementPolicy::Randy);
        p.defaultLineMultiple = multiple;
        spec.molecular(modelLabel(multiple), p);
    }
    for (const auto &r : rows)
        spec.workload(r.app, {r.app});
    spec.goals(GoalSet::uniform(0.1, 1))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs);

    const SweepReport report = bench::runSweep(cli, spec);

    TablePrinter table({"benchmark", "64B", "128B", "256B", "behaviour"});
    for (const auto &r : rows) {
        const size_t row = table.addRow();
        table.cell(row, 0, std::string(r.app));
        u32 col = 1;
        for (const u32 multiple : {1u, 2u, 4u}) {
            const auto &p = report.point(modelLabel(multiple), r.app);
            const AppSummary *app = p.result.qos.find(Asid{0});
            if (app != nullptr)
                table.cell(row, col++, app->missRate, 4);
            else
                table.cell(row, col++, std::string("-"));
        }
        table.cell(row, 4, std::string(r.expect));
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
