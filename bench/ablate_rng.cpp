/**
 * @file
 * Ablation E: random-number-generator entropy (paper section 3.3: "The
 * ability of the random replacement algorithm to distribute the load
 * equally across all molecules is highly dependent on the entropy of the
 * random number generator implemented in hardware").
 *
 * Compares PCG32 (ideal software RNG), xorshift64* (cheap), and a 16-bit
 * Galois LFSR (a realistic minimal hardware RNG with a short period and
 * correlated bits) as the molecule selector, for both Random and Randy.
 * The six (placement, RNG) configurations run as one parallel sweep.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

std::string
modelLabel(PlacementPolicy placement, const char *rng)
{
    return std::string(placementPolicyName(placement)) + "/" + rng;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_rng",
                  "Ablation: RNG entropy for molecule selection");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("RNG-entropy ablation: 4MiB molecular cache, SPEC 4-app "
                  "workload, goal 10%");

    const struct
    {
        RngKind kind;
        const char *label;
    } rngs[] = {
        {RngKind::Pcg32, "pcg32"},
        {RngKind::XorShift, "xorshift64*"},
        {RngKind::Lfsr16, "lfsr16"},
    };

    SweepSpec spec("ablate_rng");
    for (const auto placement :
         {PlacementPolicy::Random, PlacementPolicy::Randy}) {
        for (const auto &rng : rngs) {
            MolecularCacheParams p = fig5MolecularParams(4_MiB, placement);
            p.rngKind = rng.kind;
            spec.molecular(modelLabel(placement, rng.label), p);
        }
    }
    spec.workload("spec4", spec4Names())
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs);

    const SweepReport report = bench::runSweep(cli, spec);

    TablePrinter table({"placement", "pcg32", "xorshift64*", "lfsr16"});
    for (const auto placement :
         {PlacementPolicy::Random, PlacementPolicy::Randy}) {
        const size_t row = table.addRow();
        table.cell(row, 0, placementPolicyName(placement));
        for (size_t i = 0; i < std::size(rngs); ++i) {
            const auto &point =
                report.point(modelLabel(placement, rngs[i].label), "spec4");
            table.cell(row, i + 1, point.result.qos.averageDeviation, 4);
        }
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
