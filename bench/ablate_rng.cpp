/**
 * @file
 * Ablation E: random-number-generator entropy (paper section 3.3: "The
 * ability of the random replacement algorithm to distribute the load
 * equally across all molecules is highly dependent on the entropy of the
 * random number generator implemented in hardware").
 *
 * Compares PCG32 (ideal software RNG), xorshift64* (cheap), and a 16-bit
 * Galois LFSR (a realistic minimal hardware RNG with a short period and
 * correlated bits) as the molecule selector, for both Random and Randy.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

double
runRng(PlacementPolicy placement, RngKind rng, u64 refs, u64 seed)
{
    MolecularCacheParams p = fig5MolecularParams(4_MiB, placement, seed);
    p.rngKind = rng;
    MolecularCache cache(p);
    for (u32 i = 0; i < 4; ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1, ClusterId{0}, i, 1);
    const GoalSet goals = GoalSet::uniform(0.1, 4);
    return runWorkload(spec4Names(), cache, goals, refs, seed)
        .qos.averageDeviation;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_rng",
                  "Ablation: RNG entropy for molecule selection");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("RNG-entropy ablation: 4MiB molecular cache, SPEC 4-app "
                  "workload, goal 10%");

    TablePrinter table({"placement", "pcg32", "xorshift64*", "lfsr16"});
    for (const auto placement :
         {PlacementPolicy::Random, PlacementPolicy::Randy}) {
        const size_t row = table.addRow();
        table.cell(row, 0, placementPolicyName(placement));
        table.cell(row, 1,
                   runRng(placement, RngKind::Pcg32, refs, seed), 4);
        table.cell(row, 2,
                   runRng(placement, RngKind::XorShift, refs, seed), 4);
        table.cell(row, 3,
                   runRng(placement, RngKind::Lfsr16, refs, seed), 4);
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
