/**
 * @file
 * Ablation D: molecule size (the paper motivates 8-32KB molecules from
 * Mamidipaka & Dutt's small-cache energy data).
 *
 * Sweeping the molecule size at a fixed 4MiB total capacity trades
 * allocation granularity (small molecules resize precisely) against
 * per-probe energy and lookup fan-out.  Reports deviation, measured
 * energy per access, and the worst-case access energy.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("ablate_molsize", "Ablation: molecule size sweep");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Molecule-size ablation: 4MiB molecular cache, SPEC "
                  "4-app workload, goal 10%");

    TablePrinter table({"molecule", "mols/tile", "avg deviation",
                        "avg energy/access (nJ)", "worst case (nJ)"});
    for (const Bytes mol_size : {8_KiB, 16_KiB, 32_KiB}) {
        MolecularCacheParams p;
        p.moleculeSize = mol_size;
        p.tilesPerCluster = 4;
        p.clusters = 1;
        p.moleculesPerTile = static_cast<u32>(1_MiB / mol_size);
        p.placement = PlacementPolicy::Randy;
        p.seed = seed;
        MolecularCache cache(p);
        for (u32 i = 0; i < 4; ++i)
            cache.registerApplication(Asid{static_cast<u16>(i)}, 0.1, ClusterId{0}, i, 1);
        const GoalSet goals = GoalSet::uniform(0.1, 4);
        const double dev = runWorkload(spec4Names(), cache, goals, refs,
                                       seed)
                               .qos.averageDeviation;

        table.row({formatSize(mol_size),
                   std::to_string(p.moleculesPerTile),
                   formatDouble(dev, 4),
                   formatDouble(cache.averageAccessEnergyNj(), 3),
                   formatDouble(cache.worstCaseAccessEnergyNj(), 3)});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
