/**
 * @file
 * Ablation D: molecule size (the paper motivates 8-32KB molecules from
 * Mamidipaka & Dutt's small-cache energy data).
 *
 * Sweeping the molecule size at a fixed 4MiB total capacity trades
 * allocation granularity (small molecules resize precisely) against
 * per-probe energy and lookup fan-out.  Reports deviation, measured
 * energy per access, and the worst-case access energy (from the sweep's
 * inspect hook).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("ablate_molsize", "Ablation: molecule size sweep");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Molecule-size ablation: 4MiB molecular cache, SPEC "
                  "4-app workload, goal 10%");

    const Bytes mol_sizes[] = {8_KiB, 16_KiB, 32_KiB};

    SweepSpec spec("ablate_molsize");
    for (const Bytes mol_size : mol_sizes) {
        MolecularCacheParams p;
        p.moleculeSize = mol_size;
        p.tilesPerCluster = 4;
        p.clusters = 1;
        p.moleculesPerTile = static_cast<u32>(1_MiB / mol_size);
        p.placement = PlacementPolicy::Randy;
        spec.molecular(formatSize(mol_size), p);
    }
    spec.workload("spec4", spec4Names())
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs)
        .inspect([](const SimJob &, CacheModel &model, MetricMap &extra) {
            auto &cache = dynamic_cast<MolecularCache &>(model);
            extra["worst_case_energy_nj"] = cache.worstCaseAccessEnergyNj();
        });

    const SweepReport report = bench::runSweep(cli, spec);

    TablePrinter table({"molecule", "mols/tile", "avg deviation",
                        "avg energy/access (nJ)", "worst case (nJ)"});
    for (const Bytes mol_size : mol_sizes) {
        const auto &p = report.point(formatSize(mol_size), "spec4");
        table.row({formatSize(mol_size),
                   std::to_string(static_cast<u32>(1_MiB / mol_size)),
                   formatDouble(p.result.qos.averageDeviation, 4),
                   formatDouble(p.result.avgEnergyPerAccessNj, 3),
                   formatDouble(p.extra.at("worst_case_energy_nj"), 3)});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
