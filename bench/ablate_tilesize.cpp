/**
 * @file
 * Ablation H: tile size and cluster shape at fixed total capacity.
 *
 * The paper prescribes 32-256 molecules per tile and 4-8 tiles per
 * cluster, and claims the resize-scheme choice depends on tile size
 * (section 3.4).  This bench fixes a 4 MiB molecular cache and sweeps
 * the tile/cluster shape, reporting deviation, worst-case access energy
 * (which grows with molecules per tile: every molecule performs the ASID
 * compare) and remote-hit share (which grows as tiles shrink: regions
 * overflow their home tile sooner).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("ablate_tilesize",
                  "Ablation: tile/cluster shape at fixed 4MiB capacity");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Tile-size ablation: 4MiB molecular cache, SPEC 4-app "
                  "workload, goal 10%, Randy");

    // clusters x tiles x molecules-per-tile, all 4 MiB of 8 KiB molecules.
    const struct
    {
        u32 clusters, tiles, perTile;
    } shapes[] = {
        {1, 4, 128}, // 1MiB tiles (the fig-5 shape at 4MiB)
        {1, 8, 64},  // 512KiB tiles
        {2, 4, 64},  // 512KiB tiles, two clusters
        {2, 8, 32},  // 256KiB tiles, two clusters
        {4, 4, 32},  // 256KiB tiles, four clusters
    };

    TablePrinter table({"shape (cl x tiles x mols)", "tile size",
                        "avg deviation", "worst E/access (nJ)",
                        "avg E/access (nJ)", "remote hit share"});
    for (const auto &s : shapes) {
        MolecularCacheParams p;
        p.moleculeSize = 8_KiB;
        p.clusters = s.clusters;
        p.tilesPerCluster = s.tiles;
        p.moleculesPerTile = s.perTile;
        p.placement = PlacementPolicy::Randy;
        p.seed = seed;
        MolecularCache cache(p);
        const u32 per_cluster = (4 + s.clusters - 1) / s.clusters;
        for (u32 i = 0; i < 4; ++i)
            cache.registerApplication(Asid{static_cast<u16>(i)},
                                      0.1, ClusterId{i / per_cluster},
                                      (i % per_cluster) % s.tiles, 1);
        const GoalSet goals = GoalSet::uniform(0.1, 4);
        const SimResult r =
            runWorkload(spec4Names(), cache, goals, refs, seed);
        const double hits =
            static_cast<double>(r.localHits + r.remoteHits);

        table.row({std::to_string(s.clusters) + " x " +
                       std::to_string(s.tiles) + " x " +
                       std::to_string(s.perTile),
                   formatSize(p.tileSizeBytes()),
                   formatDouble(r.qos.averageDeviation, 4),
                   formatDouble(cache.worstCaseAccessEnergyNj(), 2),
                   formatDouble(cache.averageAccessEnergyNj(), 2),
                   hits > 0 ? formatDouble(r.remoteHits / hits, 3)
                            : "0"});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
