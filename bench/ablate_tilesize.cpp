/**
 * @file
 * Ablation H: tile size and cluster shape at fixed total capacity.
 *
 * The paper prescribes 32-256 molecules per tile and 4-8 tiles per
 * cluster, and claims the resize-scheme choice depends on tile size
 * (section 3.4).  This bench fixes a 4 MiB molecular cache and sweeps
 * the tile/cluster shape, reporting deviation, worst-case access energy
 * (which grows with molecules per tile: every molecule performs the ASID
 * compare) and remote-hit share (which grows as tiles shrink: regions
 * overflow their home tile sooner).  All five shapes run as one sweep.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

// clusters x tiles x molecules-per-tile, all 4 MiB of 8 KiB molecules.
const struct
{
    u32 clusters, tiles, perTile;
} kShapes[] = {
    {1, 4, 128}, // 1MiB tiles (the fig-5 shape at 4MiB)
    {1, 8, 64},  // 512KiB tiles
    {2, 4, 64},  // 512KiB tiles, two clusters
    {2, 8, 32},  // 256KiB tiles, two clusters
    {4, 4, 32},  // 256KiB tiles, four clusters
};

std::string
shapeLabel(u32 clusters, u32 tiles, u32 perTile)
{
    return std::to_string(clusters) + " x " + std::to_string(tiles) +
           " x " + std::to_string(perTile);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ablate_tilesize",
                  "Ablation: tile/cluster shape at fixed 4MiB capacity");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Tile-size ablation: 4MiB molecular cache, SPEC 4-app "
                  "workload, goal 10%, Randy");

    SweepSpec spec("ablate_tilesize");
    for (const auto &s : kShapes) {
        MolecularCacheParams p;
        p.moleculeSize = 8_KiB;
        p.clusters = s.clusters;
        p.tilesPerCluster = s.tiles;
        p.moleculesPerTile = s.perTile;
        p.placement = PlacementPolicy::Randy;
        spec.molecular(shapeLabel(s.clusters, s.tiles, s.perTile), p);
    }
    spec.workload("spec4", spec4Names())
        .goals(GoalSet::uniform(0.1, 4))
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs)
        .inspect([](const SimJob &, CacheModel &model, MetricMap &extra) {
            auto &cache = dynamic_cast<MolecularCache &>(model);
            extra["worst_case_energy_nj"] = cache.worstCaseAccessEnergyNj();
        });

    const SweepReport report = bench::runSweep(cli, spec);

    TablePrinter table({"shape (cl x tiles x mols)", "tile size",
                        "avg deviation", "worst E/access (nJ)",
                        "avg E/access (nJ)", "remote hit share"});
    for (const auto &s : kShapes) {
        const auto &point =
            report.point(shapeLabel(s.clusters, s.tiles, s.perTile),
                         "spec4");
        const SimResult &r = point.result;
        const double hits =
            static_cast<double>(r.localHits + r.remoteHits);
        const Bytes tile_size = 8_KiB * s.perTile;

        table.row({shapeLabel(s.clusters, s.tiles, s.perTile),
                   formatSize(tile_size),
                   formatDouble(r.qos.averageDeviation, 4),
                   formatDouble(point.extra.at("worst_case_energy_nj"), 2),
                   formatDouble(r.avgEnergyPerAccessNj, 2),
                   hits > 0 ? formatDouble(r.remoteHits / hits, 3)
                            : "0"});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
