/**
 * @file
 * Partitioning-scheme comparison: molecular regions vs way-partitioned
 * (column caching, Suh et al.) vs an unpartitioned shared cache.
 *
 * Quantifies the paper's section-2 argument against way partitioning:
 * column granularity is coarse (size/associativity per step) and the
 * partition count is bounded by the associativity, so with many
 * co-runners each application gets one column — a direct-mapped sliver —
 * while the molecular cache hands out 8KB molecules.  The 12-app mix on
 * an 8-way cache is exactly that regime (12 > 8 apps is impossible; at
 * 8 apps each holds one way).
 *
 * Power context is printed alongside: the way-partitioned scheme needs
 * the full parallel-associative lookup every access.
 *
 * The three schemes run as one sweep; the molecular probe statistics
 * come from the inspect hook and the power math runs on the report.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "cache/way_partitioned.hpp"
#include "power/report.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("compare_partitioning",
                  "molecular vs way-partitioned (column caching) vs "
                  "unpartitioned shared cache");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.addOption("size", "4M", "cache size for all three schemes");
    cli.addOption("assoc", "8", "associativity of the traditional schemes");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const Bytes size{cli.size("size")};
    const u32 assoc = static_cast<u32>(cli.integer("assoc"));

    const auto apps = spec4Names();
    const GoalSet goals = GoalSet::uniform(0.1, 4);

    // 512KiB tiles (the paper's power configuration, Table 3) rather
    // than fig5's size/4 tiles: probe energy scales with tile occupancy.
    MolecularCacheParams mp;
    mp.moleculeSize = 8_KiB;
    mp.moleculesPerTile = 64;
    mp.tilesPerCluster = 4;
    if (size % mp.tileSizeBytes() != Bytes{0} ||
        (size / mp.tileSizeBytes()) % mp.tilesPerCluster != 0)
        fatal("size must be a multiple of 2MiB clusters");
    mp.clusters = static_cast<u32>(size / mp.clusterSizeBytes());
    mp.placement = PlacementPolicy::Randy;

    WayPartitionedParams wp;
    wp.sizeBytes = size;
    wp.associativity = assoc;

    SweepSpec spec("compare_partitioning");
    spec.setAssoc("shared", traditionalParams(size, assoc))
        .wayPartitioned("way-partitioned", wp)
        .molecular("molecular", mp)
        .workload("spec4", apps)
        .goals(goals)
        .registrationGoal(0.1)
        .seeds({seed})
        .references(refs)
        .inspect([](const SimJob &, CacheModel &model, MetricMap &extra) {
            if (auto *cache = dynamic_cast<MolecularCache *>(&model)) {
                extra["avg_probes_per_access"] =
                    cache->averageProbesPerAccess();
                extra["avg_enabled_molecules"] =
                    cache->averageEnabledMolecules();
            }
        });

    const SweepReport report = bench::runSweep(cli, spec);

    const CactiModel model(TechNode::Nm70);
    CacheGeometry traditional_geometry;
    traditional_geometry.sizeBytes = size;
    traditional_geometry.associativity = assoc;
    traditional_geometry.ports = 4;
    const PowerTiming pt = model.evaluate(traditional_geometry);
    const double traditional_power =
        dynamicPowerWatts(pt.readEnergyNj, pt.frequencyMhz());

    // Measured average molecular power at the shared cache's frequency
    // class (~200 MHz at 8MB; the model's own DM frequency for this size).
    CacheGeometry dm_geometry;
    dm_geometry.sizeBytes = size;
    dm_geometry.ports = 4;
    const double dm_freq = model.evaluate(dm_geometry).frequencyMhz();

    const auto &mol = report.point("molecular", "spec4");
    std::printf("molecular context: %.1f molecules probed per access on "
                "average, %.1f enabled\n(the molecular power advantage "
                "appears when partitions stay lean — many co-runners per "
                "cluster, as in Table 4; with few greedy apps the regions "
                "balloon and probe energy with them)\n",
                mol.extra.at("avg_probes_per_access"),
                mol.extra.at("avg_enabled_molecules"));

    bench::banner("Partitioning comparison: SPEC 4-app workload, goal 10%, "
                  + formatSize(size) + " caches");
    TablePrinter table({"scheme", "avg deviation", "global miss rate",
                        "dynamic power (W)"});
    const struct
    {
        const char *model;
        const char *suffix;
    } rows[] = {
        {"shared", " (shared)"},
        {"way-partitioned", ""},
        {"molecular", ""},
    };
    for (const auto &row : rows) {
        const auto &point = report.point(row.model, "spec4");
        const double power =
            std::string(row.model) == "molecular"
                ? dynamicPowerWatts(point.result.avgEnergyPerAccessNj,
                                    dm_freq)
                : traditional_power;
        table.row({point.result.cacheName + row.suffix,
                   formatDouble(point.result.qos.averageDeviation, 4),
                   formatDouble(point.result.qos.globalMissRate, 4),
                   formatDouble(power, 2)});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nnote: with more co-runners than ways, column caching "
                "cannot even be configured;\nthe molecular cache hands out "
                "%s molecules instead of %s columns.\n",
                formatSize(8_KiB).c_str(),
                formatSize(size / assoc).c_str());
    return 0;
}
