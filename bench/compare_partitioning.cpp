/**
 * @file
 * Partitioning-scheme comparison: molecular regions vs way-partitioned
 * (column caching, Suh et al.) vs an unpartitioned shared cache.
 *
 * Quantifies the paper's section-2 argument against way partitioning:
 * column granularity is coarse (size/associativity per step) and the
 * partition count is bounded by the associativity, so with many
 * co-runners each application gets one column — a direct-mapped sliver —
 * while the molecular cache hands out 8KB molecules.  The 12-app mix on
 * an 8-way cache is exactly that regime (12 > 8 apps is impossible; at
 * 8 apps each holds one way).
 *
 * Power context is printed alongside: the way-partitioned scheme needs
 * the full parallel-associative lookup every access.
 */

#include <iostream>

#include "bench_common.hpp"
#include "cache/way_partitioned.hpp"
#include "power/report.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

struct Row
{
    std::string label;
    double deviation;
    double missRate;
    double powerW;
};

Row
runShared(const std::vector<std::string> &apps, const GoalSet &goals,
          Bytes size, u32 assoc, u64 refs, u64 seed)
{
    SetAssocCache cache(traditionalParams(size, assoc, seed));
    const SimResult r = runWorkload(apps, cache, goals, refs, seed);

    const CactiModel model(TechNode::Nm70);
    CacheGeometry g;
    g.sizeBytes = size;
    g.associativity = assoc;
    g.ports = 4;
    const PowerTiming pt = model.evaluate(g);
    return {cache.name() + " (shared)", r.qos.averageDeviation,
            r.qos.globalMissRate,
            dynamicPowerWatts(pt.readEnergyNj, pt.frequencyMhz())};
}

Row
runWayPartitioned(const std::vector<std::string> &apps,
                  const GoalSet &goals, Bytes size, u32 assoc, u64 refs,
                  u64 seed)
{
    WayPartitionedParams p;
    p.sizeBytes = size;
    p.associativity = assoc;
    WayPartitionedCache cache(p);
    for (u32 i = 0; i < apps.size(); ++i)
        cache.registerApplication(Asid{static_cast<u16>(i)},
                                  *goals.goal(Asid{static_cast<u16>(i)}));
    const SimResult r = runWorkload(apps, cache, goals, refs, seed);

    const CactiModel model(TechNode::Nm70);
    CacheGeometry g;
    g.sizeBytes = size;
    g.associativity = assoc;
    g.ports = 4;
    const PowerTiming pt = model.evaluate(g);
    return {cache.name(), r.qos.averageDeviation, r.qos.globalMissRate,
            dynamicPowerWatts(pt.readEnergyNj, pt.frequencyMhz())};
}

Row
runMolecular(const std::vector<std::string> &apps, const GoalSet &goals,
             Bytes size, u64 refs, u64 seed)
{
    // 512KiB tiles (the paper's power configuration, Table 3) rather
    // than fig5's size/4 tiles: probe energy scales with tile occupancy.
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.moleculesPerTile = 64;
    p.tilesPerCluster = 4;
    if (size % p.tileSizeBytes() != Bytes{0} ||
        (size / p.tileSizeBytes()) % p.tilesPerCluster != 0)
        fatal("size must be a multiple of 2MiB clusters");
    p.clusters = static_cast<u32>(size / p.clusterSizeBytes());
    p.placement = PlacementPolicy::Randy;
    p.seed = seed;
    MolecularCache cache(p);
    const u32 per_cluster =
        (static_cast<u32>(apps.size()) + p.clusters - 1) / p.clusters;
    for (u32 i = 0; i < apps.size(); ++i) {
        cache.registerApplication(Asid{static_cast<u16>(i)},
                                  *goals.goal(Asid{static_cast<u16>(i)}),
                                  ClusterId{i / per_cluster},
                                  (i % per_cluster) % p.tilesPerCluster, 1);
    }
    const SimResult r = runWorkload(apps, cache, goals, refs, seed);

    // Measured average power at the shared cache's frequency class
    // (~200 MHz at 8MB; use the model's own DM frequency for this size).
    const CactiModel model(TechNode::Nm70);
    CacheGeometry g;
    g.sizeBytes = size;
    g.ports = 4;
    const double f = model.evaluate(g).frequencyMhz();
    std::printf("molecular context: %.1f molecules probed per access on "
                "average, %.1f enabled\n(the molecular power advantage "
                "appears when partitions stay lean — many co-runners per "
                "cluster, as in Table 4; with few greedy apps the regions "
                "balloon and probe energy with them)\n",
                cache.averageProbesPerAccess(),
                cache.averageEnabledMolecules());
    return {cache.name(), r.qos.averageDeviation, r.qos.globalMissRate,
            dynamicPowerWatts(cache.averageAccessEnergyNj(), f)};
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("compare_partitioning",
                  "molecular vs way-partitioned (column caching) vs "
                  "unpartitioned shared cache");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.addOption("size", "4M", "cache size for all three schemes");
    cli.addOption("assoc", "8", "associativity of the traditional schemes");
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));
    const Bytes size{cli.size("size")};
    const u32 assoc = static_cast<u32>(cli.integer("assoc"));

    const auto apps = spec4Names();
    const GoalSet goals = GoalSet::uniform(0.1, 4);

    bench::banner("Partitioning comparison: SPEC 4-app workload, goal 10%, "
                  + formatSize(size) + " caches");
    TablePrinter table({"scheme", "avg deviation", "global miss rate",
                        "dynamic power (W)"});
    for (const Row &row :
         {runShared(apps, goals, size, assoc, refs, seed),
          runWayPartitioned(apps, goals, size, assoc, refs, seed),
          runMolecular(apps, goals, size, refs, seed)}) {
        table.row({row.label, formatDouble(row.deviation, 4),
                   formatDouble(row.missRate, 4),
                   formatDouble(row.powerW, 2)});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nnote: with more co-runners than ways, column caching "
                "cannot even be configured;\nthe molecular cache hands out "
                "%s molecules instead of %s columns.\n",
                formatSize(8_KiB).c_str(),
                formatSize(size / assoc).c_str());
    return 0;
}
