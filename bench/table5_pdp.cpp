/**
 * @file
 * Table 5 reproduction: the power-deviation product (PDP), the paper's
 * combined QoS+power metric.  PDP = dynamic power (W) x average
 * deviation from the miss-rate goal, on the 12-app mixed workload.
 *
 * Rows follow the paper: the 8MB 4-way and 8MB 8-way traditional caches
 * against the 6MB molecular cache (Randy), with the molecular power
 * computed at the same frequency as the traditional cache in the row.
 *
 * Paper reference: 8MB 4way PDP 1.890 vs molecular 0.909;
 *                  8MB 8way PDP 0.870 vs molecular 0.425.
 *
 * The three simulations fan out as one sweep; the CACTI power math runs
 * afterwards on the aggregated report.
 */

#include <iostream>

#include "bench_common.hpp"
#include "power/report.hpp"
#include "sim/experiment.hpp"
#include "stats/metrics.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

int
main(int argc, char **argv)
{
    CliParser cli("table5_pdp",
                  "Table 5: power-deviation product, mixed workload");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    SweepSpec spec("table5_pdp");
    spec.setAssoc("8MB 4way", traditionalParams(8_MiB, 4))
        .setAssoc("8MB 8way", traditionalParams(8_MiB, 8))
        .molecular("6MB Molecular Randy",
                   table2MolecularParams(PlacementPolicy::Randy))
        .workload("mixed12", mixed12Names())
        .goals(GoalSet::uniform(0.25, 12))
        .registrationGoal(0.25)
        .seeds({seed})
        .references(refs);

    const SweepReport report = bench::runSweep(cli, spec);

    const auto &mol = report.point("6MB Molecular Randy", "mixed12");
    const double mol_dev = mol.result.qos.averageDeviation;
    const double mol_avg_nj = mol.result.avgEnergyPerAccessNj;

    const CactiModel model(TechNode::Nm70);

    bench::banner("Table 5: power-deviation product (goal 25%, 12-app mix; "
                  "molecular = 6MB Randy at the row's frequency)");
    TablePrinter table({"cache type", "deviation", "power (W)", "PDP",
                        "mol PDP", "paper PDP/mol"});

    for (const u32 assoc : {4u, 8u}) {
        const std::string label =
            std::string("8MB ") + std::to_string(assoc) + "way";
        const double dev =
            report.point(label, "mixed12").result.qos.averageDeviation;

        CacheGeometry g;
        g.sizeBytes = 8_MiB;
        g.associativity = assoc;
        g.ports = 4;
        const PowerTiming pt = model.evaluate(g);
        const double f = pt.frequencyMhz();
        const double p = dynamicPowerWatts(pt.readEnergyNj, f);
        const double pdp = powerDeviationProduct(p, dev);
        const double mol_pdp = powerDeviationProduct(
            dynamicPowerWatts(mol_avg_nj, f), mol_dev);

        table.row({label, formatDouble(dev, 4), formatDouble(p, 2),
                   formatDouble(pdp, 3), formatDouble(mol_pdp, 3),
                   assoc == 4 ? "1.890 / 0.909" : "0.870 / 0.425"});
    }

    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
