/**
 * @file
 * Figure 6 reproduction: hit rate contribution per molecule (HPM) for
 * the Random and Randy replacement algorithms on the 12-app mixed
 * workload (6MB molecular cache, Table 2 configuration).
 *
 * HPM = (application hit rate) / (molecules its region holds).  The
 * paper's figure is log-scale per application; Randy's HPM exceeds
 * Random's for 8 of the 12 applications, and overall Randy reaches a
 * ~9% lower miss rate while using ~5% more molecules.
 *
 * Both placements run as one sweep; per-application HPM and molecule
 * counts land in each point's extra metrics via the inspect hook.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", v);
    return buf;
}

u32
totalMolecules(const SweepPointResult &point)
{
    u32 total = 0;
    for (u32 i = 0; i < 12; ++i)
        total += static_cast<u32>(
            point.extra.at("mols." + std::to_string(i)));
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("fig6_hpm",
                  "Figure 6: hit-per-molecule, Random vs Randy, 12-app mix");
    bench::addCommonOptions(cli, kPaperTraceLength);
    bench::addSweepOptions(cli);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Figure 6: hit rate contribution per molecule "
                  "(log-scale quantity; higher = better use of molecules)");

    SweepSpec spec("fig6_hpm");
    spec.molecular("Randy", table2MolecularParams(PlacementPolicy::Randy))
        .molecular("Random", table2MolecularParams(PlacementPolicy::Random))
        .workload("mixed12", mixed12Names())
        .goals(GoalSet::uniform(0.25, 12))
        .registrationGoal(0.25)
        .seeds({seed})
        .references(refs)
        .inspect([](const SimJob &, CacheModel &model, MetricMap &extra) {
            auto &cache = dynamic_cast<MolecularCache &>(model);
            for (u32 i = 0; i < 12; ++i) {
                const auto asid = static_cast<Asid>(i);
                extra["hpm." + std::to_string(i)] =
                    cache.hitPerMoleculeOf(asid);
                extra["mols." + std::to_string(i)] =
                    static_cast<double>(cache.region(asid).size());
            }
        });

    const SweepReport report = bench::runSweep(cli, spec);

    const auto &randy = report.point("Randy", "mixed12");
    const auto &random = report.point("Random", "mixed12");

    TablePrinter table({"benchmark", "HPM Randy", "HPM Random",
                        "mols Randy", "mols Random", "Randy higher?"});
    const auto names = mixed12Names();
    u32 randyWins = 0;
    for (u32 i = 0; i < names.size(); ++i) {
        const std::string idx = std::to_string(i);
        const double hpm_randy = randy.extra.at("hpm." + idx);
        const double hpm_random = random.extra.at("hpm." + idx);
        const bool win = hpm_randy > hpm_random;
        randyWins += win ? 1 : 0;
        table.row({names[i], sci(hpm_randy), sci(hpm_random),
                   std::to_string(static_cast<u32>(
                       randy.extra.at("mols." + idx))),
                   std::to_string(static_cast<u32>(
                       random.extra.at("mols." + idx))),
                   win ? "yes" : "no"});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const double miss_randy = randy.result.qos.globalMissRate;
    const double miss_random = random.result.qos.globalMissRate;
    const u32 mols_randy = totalMolecules(randy);
    const u32 mols_random = totalMolecules(random);

    std::printf("\nRandy HPM higher for %u/12 benchmarks (paper: 8/12)\n",
                randyWins);
    std::printf("overall miss rate: Randy %.4f vs Random %.4f "
                "(Randy %+.1f%%; paper: Randy ~9%% lower)\n",
                miss_randy, miss_random,
                100.0 * (miss_randy / miss_random - 1.0));
    std::printf("molecules used:    Randy %u vs Random %u "
                "(Randy %+.1f%%; paper: Randy ~5%% more)\n",
                mols_randy, mols_random,
                100.0 * (static_cast<double>(mols_randy) / mols_random -
                         1.0));
    return 0;
}
