/**
 * @file
 * Figure 6 reproduction: hit rate contribution per molecule (HPM) for
 * the Random and Randy replacement algorithms on the 12-app mixed
 * workload (6MB molecular cache, Table 2 configuration).
 *
 * HPM = (application hit rate) / (molecules its region holds).  The
 * paper's figure is log-scale per application; Randy's HPM exceeds
 * Random's for 8 of the 12 applications, and overall Randy reaches a
 * ~9% lower miss rate while using ~5% more molecules.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "util/string_utils.hpp"
#include "workload/profiles.hpp"

using namespace molcache;

namespace {

struct MixRun
{
    std::vector<double> hpm;
    std::vector<u32> molecules;
    double globalMissRate = 0.0;
    u32 totalMolecules = 0;
};

MixRun
runMix(PlacementPolicy placement, u64 refs, u64 seed)
{
    MolecularCache cache(table2MolecularParams(placement, seed));
    registerApplications(cache, 12, 0.25);
    const GoalSet goals = GoalSet::uniform(0.25, 12);
    runWorkload(mixed12Names(), cache, goals, refs, seed);

    MixRun out;
    for (u32 i = 0; i < 12; ++i) {
        out.hpm.push_back(cache.hitPerMoleculeOf(static_cast<Asid>(i)));
        const u32 mols = cache.region(static_cast<Asid>(i)).size();
        out.molecules.push_back(mols);
        out.totalMolecules += mols;
    }
    out.globalMissRate = cache.stats().global().missRate();
    return out;
}

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("fig6_hpm",
                  "Figure 6: hit-per-molecule, Random vs Randy, 12-app mix");
    bench::addCommonOptions(cli, kPaperTraceLength);
    cli.parse(argc, argv);
    const u64 refs = static_cast<u64>(cli.integer("refs"));
    const u64 seed = static_cast<u64>(cli.integer("seed"));

    bench::banner("Figure 6: hit rate contribution per molecule "
                  "(log-scale quantity; higher = better use of molecules)");

    const MixRun randy = runMix(PlacementPolicy::Randy, refs, seed);
    const MixRun random = runMix(PlacementPolicy::Random, refs, seed);

    TablePrinter table({"benchmark", "HPM Randy", "HPM Random",
                        "mols Randy", "mols Random", "Randy higher?"});
    const auto names = mixed12Names();
    u32 randyWins = 0;
    for (u32 i = 0; i < names.size(); ++i) {
        const bool win = randy.hpm[i] > random.hpm[i];
        randyWins += win ? 1 : 0;
        table.row({names[i], sci(randy.hpm[i]), sci(random.hpm[i]),
                   std::to_string(randy.molecules[i]),
                   std::to_string(random.molecules[i]), win ? "yes" : "no"});
    }
    if (cli.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nRandy HPM higher for %u/12 benchmarks (paper: 8/12)\n",
                randyWins);
    std::printf("overall miss rate: Randy %.4f vs Random %.4f "
                "(Randy %+.1f%%; paper: Randy ~9%% lower)\n",
                randy.globalMissRate, random.globalMissRate,
                100.0 * (randy.globalMissRate / random.globalMissRate - 1.0));
    std::printf("molecules used:    Randy %u vs Random %u "
                "(Randy %+.1f%%; paper: Randy ~5%% more)\n",
                randy.totalMolecules, random.totalMolecules,
                100.0 * (static_cast<double>(randy.totalMolecules) /
                             random.totalMolecules -
                         1.0));
    return 0;
}
