#include "mem/trace.hpp"

#include <array>
#include <cstring>

#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace molcache {

namespace {

constexpr std::array<char, 4> kMagic = {'M', 'C', 'T', '1'};
constexpr size_t kHeaderBytes = 4 + 8; // magic + record count

void
encodeU64(char *dst, u64 v)
{
    for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

u64
decodeU64(const char *src)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(static_cast<unsigned char>(src[i])) << (8 * i);
    return v;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path, TraceFormat format)
    : out_(path, format == TraceFormat::Binary
               ? std::ios::binary | std::ios::out
               : std::ios::out),
      format_(format)
{
    if (!out_)
        fatal("cannot open trace file '", path, "' for writing");
    if (format_ == TraceFormat::Binary) {
        // Reserve the header; the count is patched in close().
        char header[kHeaderBytes] = {};
        std::memcpy(header, kMagic.data(), kMagic.size());
        out_.write(header, kHeaderBytes);
    }
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const MemAccess &access)
{
    MOLCACHE_ASSERT(!closed_, "append to closed TraceWriter");
    if (format_ == TraceFormat::Binary) {
        char rec[11];
        encodeU64(rec, access.addr);
        rec[8] = static_cast<char>(access.asid.value() & 0xff);
        rec[9] = static_cast<char>((access.asid.value() >> 8) & 0xff);
        rec[10] = static_cast<char>(access.type);
        out_.write(rec, sizeof(rec));
    } else {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%c %llx %u\n",
                      access.isWrite() ? 'W' : 'R',
                      static_cast<unsigned long long>(access.addr),
                      static_cast<unsigned>(access.asid.value()));
        out_ << buf;
    }
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    if (format_ == TraceFormat::Binary) {
        out_.seekp(4);
        char buf[8];
        encodeU64(buf, count_);
        out_.write(buf, 8);
    }
    out_.flush();
    out_.close();
}

TraceReader::TraceReader(const std::string &path, bool strict)
    : in_(path, std::ios::binary), path_(path), strict_(strict)
{
    if (!in_)
        fatal("cannot open trace file '", path, "'");
    char magic[4] = {};
    in_.read(magic, 4);
    if (in_.gcount() == 4 &&
        std::memcmp(magic, kMagic.data(), kMagic.size()) == 0) {
        format_ = TraceFormat::Binary;
        char buf[8];
        in_.read(buf, 8);
        if (in_.gcount() != 8)
            fatal("truncated trace header in '", path, "'");
        declared_ = decodeU64(buf);
    } else {
        format_ = TraceFormat::Text;
        in_.clear();
        in_.seekg(0);
    }
}

std::optional<MemAccess>
TraceReader::next()
{
    if (format_ == TraceFormat::Binary) {
        char rec[11];
        in_.read(rec, sizeof(rec));
        if (in_.gcount() == 0) {
            // Clean end of stream — but the header may promise more.
            if (read_ < declared_ && !truncated_) {
                truncated_ = true;
                if (strict_)
                    fatal("truncated binary trace '", path_, "': header "
                          "declares ", declared_, " records but only ",
                          read_, " present");
                warn("truncated binary trace '", path_, "': header "
                     "declares ", declared_, " records but only ", read_,
                     " present; stopping early");
            }
            return std::nullopt;
        }
        if (in_.gcount() != sizeof(rec)) {
            // A partial record: the trailing bytes are unusable.
            truncated_ = true;
            if (strict_)
                fatal("truncated trace record #", read_, " in '", path_,
                      "' (", in_.gcount(), " of ", sizeof(rec), " bytes)");
            warn("truncated trace record #", read_, " in '", path_,
                 "'; stopping early");
            return std::nullopt;
        }
        MemAccess a;
        a.addr = decodeU64(rec);
        a.asid = Asid{static_cast<u16>(
            static_cast<unsigned char>(rec[8]) |
            (static_cast<unsigned char>(rec[9]) << 8))};
        a.type = rec[10] ? AccessType::Write : AccessType::Read;
        ++read_;
        return a;
    }

    std::string line;
    while (std::getline(in_, line)) {
        ++line_;
        const std::string stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#')
            continue;
        char kind = 0;
        unsigned long long addr = 0;
        unsigned asid = 0;
        if (std::sscanf(stripped.c_str(), "%c %llx %u", &kind, &addr,
                        &asid) == 3) {
            if (kind == 'R' || kind == 'r' || kind == 'W' || kind == 'w') {
                MemAccess a;
                a.addr = addr;
                a.asid = Asid{static_cast<u16>(asid)};
                a.type = (kind == 'W' || kind == 'w') ? AccessType::Write
                                                      : AccessType::Read;
                ++read_;
                return a;
            }
        }
        // Classic Dinero "din" format: "<label> <hexaddr>" where label
        // 0 = read, 1 = write, 2 = instruction fetch.  The paper drove a
        // modified Dinero with such traces; accepting them makes
        // external trace sets replayable directly (ASID 0).
        unsigned label = ~0u;
        if (std::sscanf(stripped.c_str(), "%u %llx", &label, &addr) == 2 &&
            label <= 2) {
            MemAccess a;
            a.addr = addr;
            a.asid = Asid{0};
            a.type = label == 1 ? AccessType::Write : AccessType::Read;
            ++read_;
            return a;
        }
        if (strict_)
            fatal("malformed trace line '", stripped, "' at ", path_, ":",
                  line_);
        ++skipped_;
        warn("malformed trace line '", stripped, "' at ", path_, ":", line_,
             "; skipped");
    }
    return std::nullopt;
}

std::vector<MemAccess>
readTrace(const std::string &path)
{
    TraceReader reader(path);
    std::vector<MemAccess> out;
    if (reader.declaredRecords() > 0)
        out.reserve(reader.declaredRecords());
    while (auto a = reader.next())
        out.push_back(*a);
    return out;
}

void
writeTrace(const std::string &path, const std::vector<MemAccess> &trace,
           TraceFormat format)
{
    TraceWriter writer(path, format);
    for (const auto &a : trace)
        writer.append(a);
    writer.close();
}

} // namespace molcache
