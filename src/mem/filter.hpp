/**
 * @file
 * L1 filter: turn a raw reference stream into an L1-miss stream.
 *
 * The paper's methodology: "The L1-Data misses were recorded and the
 * traces were used as input to a modified version of Dinero" (section
 * 4).  molcache's profiles synthesize L1-miss-like streams directly, but
 * when replaying raw traces (or for studies of L1 filtering effects)
 * this adaptor interposes a small private L1 per ASID and forwards only
 * the misses — plus the dirty writebacks, which reach the L2 as writes.
 */

#ifndef MOLCACHE_MEM_FILTER_HPP
#define MOLCACHE_MEM_FILTER_HPP

#include <map>
#include <memory>

#include "mem/interleave.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

/** Geometry of the private L1 data caches used for filtering. */
struct L1Params
{
    Bytes sizeBytes = 16_KiB; // 2006-era L1-D
    u32 associativity = 4;
    u32 lineSize = 64;
};

/**
 * AccessSource adaptor: pulls raw references from @p upstream, simulates
 * a private L1 per ASID, and emits the L1 miss (and writeback) stream.
 */
class L1FilterSource final : public AccessSource
{
  public:
    L1FilterSource(std::unique_ptr<AccessSource> upstream,
                   const L1Params &params);
    ~L1FilterSource() override;

    std::optional<MemAccess> next() override;

    /** Raw references consumed from upstream so far. */
    u64 consumed() const { return consumed_; }
    /** L1 misses forwarded so far (excludes writebacks). */
    u64 forwardedMisses() const { return forwarded_; }
    /** Dirty writebacks forwarded so far. */
    u64 forwardedWritebacks() const { return writebacks_; }
    /** Observed L1 miss rate. */
    double l1MissRate() const;

  private:
    struct L1Cache;

    L1Cache &cacheFor(Asid asid);

    std::unique_ptr<AccessSource> upstream_;
    L1Params params_;
    std::map<Asid, std::unique_ptr<L1Cache>> caches_;
    /** A writeback waiting to be emitted after its triggering miss. */
    std::optional<MemAccess> pending_;
    u64 consumed_ = 0;
    u64 forwarded_ = 0;
    u64 writebacks_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_MEM_FILTER_HPP
