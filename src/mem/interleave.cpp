#include "mem/interleave.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace molcache {

VectorSource::VectorSource(std::vector<MemAccess> accesses)
    : accesses_(std::move(accesses))
{
}

std::optional<MemAccess>
VectorSource::next()
{
    if (pos_ >= accesses_.size())
        return std::nullopt;
    return accesses_[pos_++];
}

size_t
AccessSource::nextBatch(MemAccess *out, size_t max)
{
    size_t n = 0;
    while (n < max) {
        auto a = next();
        if (!a)
            break;
        out[n++] = *a;
    }
    return n;
}

size_t
AccessSource::drainHints(PhaseHint *out, size_t max)
{
    (void)out;
    (void)max;
    return 0;
}

size_t
VectorSource::nextBatch(MemAccess *out, size_t max)
{
    const size_t n = std::min(max, accesses_.size() - pos_);
    std::copy_n(accesses_.begin() + static_cast<std::ptrdiff_t>(pos_), n,
                out);
    pos_ += n;
    return n;
}

Interleaver::Interleaver(std::vector<std::unique_ptr<AccessSource>> sources,
                         MixPolicy policy, std::vector<double> weights,
                         u64 seed, u64 limit)
    : policy_(policy), rng_(seed), limit_(limit)
{
    MOLCACHE_ASSERT(!sources.empty(), "interleaver needs >= 1 source");
    if (policy_ == MixPolicy::Weighted) {
        if (weights.size() != sources.size())
            fatal("weighted interleave needs one weight per source");
        for (const double w : weights)
            if (w <= 0.0)
                fatal("interleave weights must be positive");
    }
    slots_.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
        Slot slot;
        slot.source = std::move(sources[i]);
        slot.weight = policy_ == MixPolicy::Weighted ? weights[i] : 1.0;
        slots_.push_back(std::move(slot));
    }
}

int
Interleaver::pickSource()
{
    const auto live_count = static_cast<u32>(
        std::count_if(slots_.begin(), slots_.end(),
                      [](const Slot &s) { return s.live; }));
    if (live_count == 0)
        return -1;

    switch (policy_) {
      case MixPolicy::RoundRobin: {
        for (size_t step = 0; step < slots_.size(); ++step) {
            const size_t idx = (rrNext_ + step) % slots_.size();
            if (slots_[idx].live) {
                rrNext_ = (idx + 1) % slots_.size();
                return static_cast<int>(idx);
            }
        }
        return -1;
      }
      case MixPolicy::Weighted: {
        // Credit scheduler: every live slot earns its weight per step; the
        // richest slot is served and pays the total weight issued this
        // step, so long-run service is proportional to weight.
        int best = -1;
        double total = 0.0;
        for (size_t i = 0; i < slots_.size(); ++i) {
            if (!slots_[i].live)
                continue;
            slots_[i].credit += slots_[i].weight;
            total += slots_[i].weight;
            if (best < 0 ||
                slots_[i].credit > slots_[static_cast<size_t>(best)].credit) {
                best = static_cast<int>(i);
            }
        }
        if (best >= 0)
            slots_[static_cast<size_t>(best)].credit -= total;
        return best;
      }
      case MixPolicy::Random: {
        u32 pick = rng_.below(live_count);
        for (size_t i = 0; i < slots_.size(); ++i) {
            if (!slots_[i].live)
                continue;
            if (pick == 0)
                return static_cast<int>(i);
            --pick;
        }
        return -1;
      }
    }
    return -1;
}

std::optional<MemAccess>
Interleaver::next()
{
    if (limit_ != 0 && produced_ >= limit_)
        return std::nullopt;

    while (true) {
        const int idx = pickSource();
        if (idx < 0)
            return std::nullopt;
        Slot &slot = slots_[static_cast<size_t>(idx)];
        if (auto a = slot.source->next()) {
            ++produced_;
            return a;
        }
        slot.live = false;
    }
}

size_t
Interleaver::nextBatch(MemAccess *out, size_t max)
{
    size_t n = 0;
    while (n < max) {
        if (limit_ != 0 && produced_ >= limit_)
            break;
        const int idx = pickSource();
        if (idx < 0)
            break;
        Slot &slot = slots_[static_cast<size_t>(idx)];
        if (auto a = slot.source->next()) {
            ++produced_;
            out[n++] = *a;
        } else {
            slot.live = false;
        }
    }
    return n;
}

size_t
Interleaver::drainHints(PhaseHint *out, size_t max)
{
    size_t n = 0;
    for (Slot &slot : slots_) {
        if (n >= max)
            break;
        n += slot.source->drainHints(out + n, max - n);
    }
    return n;
}

} // namespace molcache
