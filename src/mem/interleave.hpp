/**
 * @file
 * Access sources and multi-application interleaving.
 *
 * A CMP with N cores presents the shared cache with an interleaving of N
 * per-application reference streams.  The paper's concurrency experiments
 * (Table 1, Figure 5, Table 2) replay such merged traces; molcache models
 * the merge explicitly so the mix policy is controllable:
 *
 *  - RoundRobin: one reference per application per turn (symmetric cores);
 *  - Weighted:   applications issue in proportion to weights (models
 *                different memory intensities);
 *  - Random:     each slot picks a uniformly random application.
 */

#ifndef MOLCACHE_MEM_INTERLEAVE_HPP
#define MOLCACHE_MEM_INTERLEAVE_HPP

#include <memory>
#include <optional>
#include <vector>

#include "mem/access.hpp"
#include "mem/phase_hint.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace molcache {

/** Pull-based stream of memory references. */
class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /** Next reference, or nullopt when the stream is exhausted. */
    virtual std::optional<MemAccess> next() = 0;

    /**
     * Fill @p out with up to @p max references; returns the count
     * produced (0 = exhausted).  The default implementation loops over
     * next(); sources with cheap bulk access override it so the
     * simulate loop pays one virtual dispatch per batch instead of per
     * reference.  Semantics are identical to repeated next() calls.
     */
    virtual size_t nextBatch(MemAccess *out, size_t max);

    /**
     * Drain phase hints queued since the last drain into @p out (up to
     * @p max); returns the count copied.  Hints are side-band claims
     * about the stream's future (mem/phase_hint.hpp) — draining or
     * ignoring them never changes what next()/nextBatch() produce.
     * Default: no hints.
     */
    virtual size_t drainHints(PhaseHint *out, size_t max);
};

/** AccessSource over an in-memory vector. */
class VectorSource final : public AccessSource
{
  public:
    explicit VectorSource(std::vector<MemAccess> accesses);

    std::optional<MemAccess> next() override;
    size_t nextBatch(MemAccess *out, size_t max) override;

  private:
    std::vector<MemAccess> accesses_;
    size_t pos_ = 0;
};

/** Interleaving discipline. */
enum class MixPolicy { RoundRobin, Weighted, Random };

/**
 * Merge several per-application sources into one stream.  Exhausted
 * sources drop out of the rotation; the merged stream ends when all
 * sources are dry or when @p limit references have been produced.
 */
class Interleaver final : public AccessSource
{
  public:
    /**
     * @param sources  one source per application
     * @param policy   mixing discipline
     * @param weights  per-source weights (Weighted policy only; must match
     *                 sources.size(); values need not be normalized)
     * @param seed     RNG seed (Random policy)
     * @param limit    stop after this many merged references (0 = no limit)
     */
    Interleaver(std::vector<std::unique_ptr<AccessSource>> sources,
                MixPolicy policy, std::vector<double> weights = {},
                u64 seed = 1, u64 limit = 0);

    std::optional<MemAccess> next() override;

    /** Bulk merge: identical sequence to repeated next() calls, but the
     * per-reference virtual dispatch and optional boxing stay inside
     * one call so the simulate loop's pull side is batched end to end
     * (docs/perf.md). */
    size_t nextBatch(MemAccess *out, size_t max) override;

    /** Collects whatever the per-application sources queued, in slot
     * order (exhausted sources included — a hint emitted with a source's
     * final references is still delivered). */
    size_t drainHints(PhaseHint *out, size_t max) override;

    u64 produced() const { return produced_; }

  private:
    /** Pick the index of the next live source, or -1 if all are dry. */
    int pickSource();

    struct Slot
    {
        std::unique_ptr<AccessSource> source;
        double weight = 1.0;
        /** Deficit counter for weighted round robin. */
        double credit = 0.0;
        bool live = true;
    };

    std::vector<Slot> slots_;
    MixPolicy policy_;
    Pcg32 rng_;
    u64 limit_;
    u64 produced_ = 0;
    size_t rrNext_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_MEM_INTERLEAVE_HPP
