/**
 * @file
 * Trace file I/O.
 *
 * Two on-disk formats:
 *  - binary: fixed 11-byte little-endian records under a small header
 *    (magic, version, record count) — compact for multi-million reference
 *    traces;
 *  - text: "R|W <hex-addr> <asid>" per line — greppable, diff-friendly.
 *
 * Readers validate headers and call fatal() on corruption (user error)
 * with `path:line` / record-index context.  A reader opened with
 * strict=false instead warn()s and skips malformed text lines (and
 * stops cleanly at a binary truncation), so one bad record does not
 * kill a multi-hour replay.
 */

#ifndef MOLCACHE_MEM_TRACE_HPP
#define MOLCACHE_MEM_TRACE_HPP

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "mem/access.hpp"
#include "util/types.hpp"

namespace molcache {

/** On-disk encoding selector. */
enum class TraceFormat { Binary, Text };

/** Streaming trace writer. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    TraceWriter(const std::string &path, TraceFormat format);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const MemAccess &access);

    /** Flush and finalize the header; called by the destructor too. */
    void close();

    u64 recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    TraceFormat format_;
    u64 count_ = 0;
    bool closed_ = false;
};

/** Streaming trace reader. */
class TraceReader
{
  public:
    /**
     * Open @p path; auto-detects format from the magic; fatal() on error.
     * @param strict  true: malformed input is fatal();
     *                false: malformed text lines are warn()ed and
     *                skipped, binary truncation warn()s and ends the
     *                trace early (recover what is recoverable).
     */
    explicit TraceReader(const std::string &path, bool strict = true);

    /** Next record, or nullopt at end of trace. */
    std::optional<MemAccess> next();

    /** Records the header claims (binary only; 0 for text). */
    u64 declaredRecords() const { return declared_; }

    /** Records actually delivered by next() so far. */
    u64 recordsRead() const { return read_; }

    /** Malformed text lines skipped (non-strict mode only). */
    u64 skippedLines() const { return skipped_; }

    /** True once the trace ended short of the header's declared record
     * count (truncated binary trace; checked at end of stream). */
    bool truncated() const { return truncated_; }

    TraceFormat format() const { return format_; }

  private:
    std::ifstream in_;
    TraceFormat format_ = TraceFormat::Binary;
    u64 declared_ = 0;
    std::string path_;
    bool strict_ = true;
    u64 read_ = 0;
    u64 line_ = 0;
    u64 skipped_ = 0;
    bool truncated_ = false;
};

/** Convenience: read a whole trace into memory. */
std::vector<MemAccess> readTrace(const std::string &path);

/** Convenience: write a whole trace. */
void writeTrace(const std::string &path, const std::vector<MemAccess> &trace,
                TraceFormat format);

} // namespace molcache

#endif // MOLCACHE_MEM_TRACE_HPP
