/**
 * @file
 * Trace file I/O.
 *
 * Two on-disk formats:
 *  - binary: fixed 11-byte little-endian records under a small header
 *    (magic, version, record count) — compact for multi-million reference
 *    traces;
 *  - text: "R|W <hex-addr> <asid>" per line — greppable, diff-friendly.
 *
 * Readers validate headers and call fatal() on corruption (user error).
 */

#ifndef MOLCACHE_MEM_TRACE_HPP
#define MOLCACHE_MEM_TRACE_HPP

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "mem/access.hpp"
#include "util/types.hpp"

namespace molcache {

/** On-disk encoding selector. */
enum class TraceFormat { Binary, Text };

/** Streaming trace writer. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    TraceWriter(const std::string &path, TraceFormat format);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const MemAccess &access);

    /** Flush and finalize the header; called by the destructor too. */
    void close();

    u64 recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    TraceFormat format_;
    u64 count_ = 0;
    bool closed_ = false;
};

/** Streaming trace reader. */
class TraceReader
{
  public:
    /** Open @p path; auto-detects format from the magic; fatal() on error. */
    explicit TraceReader(const std::string &path);

    /** Next record, or nullopt at end of trace. */
    std::optional<MemAccess> next();

    /** Records the header claims (binary only; 0 for text). */
    u64 declaredRecords() const { return declared_; }

    TraceFormat format() const { return format_; }

  private:
    std::ifstream in_;
    TraceFormat format_ = TraceFormat::Binary;
    u64 declared_ = 0;
    std::string path_;
};

/** Convenience: read a whole trace into memory. */
std::vector<MemAccess> readTrace(const std::string &path);

/** Convenience: write a whole trace. */
void writeTrace(const std::string &path, const std::vector<MemAccess> &trace,
                TraceFormat format);

} // namespace molcache

#endif // MOLCACHE_MEM_TRACE_HPP
