#include "mem/filter.hpp"

#include <vector>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace molcache {

/**
 * Minimal private LRU set-associative L1.  (cache/SetAssocCache is not
 * reused here to keep mem/ free of a dependency on cache/ — the layering
 * is mem -> cache, not the reverse.)
 */
struct L1FilterSource::L1Cache
{
    struct Line
    {
        Addr tag = 0;
        u64 lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    L1Cache(const L1Params &p)
        : params(p),
          sets(static_cast<u32>(p.sizeBytes.value() /
                                (static_cast<u64>(p.associativity) *
                                 p.lineSize))),
          lines(static_cast<size_t>(sets) * p.associativity)
    {
        MOLCACHE_ASSERT(sets > 0 && isPowerOfTwo(sets),
                        "L1 sets must be a power of two");
    }

    Line &
    at(u32 set, u32 way)
    {
        return lines[static_cast<size_t>(set) * params.associativity + way];
    }

    u32
    setOf(Addr addr) const
    {
        return static_cast<u32>((addr / params.lineSize) & (sets - 1));
    }

    Addr
    tagOf(Addr addr) const
    {
        return addr / params.lineSize / sets;
    }

    /**
     * One reference.  @return {hit, writebackAddr}: writebackAddr is set
     * when a dirty line was displaced.
     */
    std::pair<bool, std::optional<Addr>>
    access(Addr addr, bool write)
    {
        const u32 set = setOf(addr);
        const Addr tag = tagOf(addr);
        ++clock;

        for (u32 w = 0; w < params.associativity; ++w) {
            Line &l = at(set, w);
            if (l.valid && l.tag == tag) {
                l.lru = clock;
                l.dirty = l.dirty || write;
                ++hits;
                ++accesses;
                return {true, std::nullopt};
            }
        }

        ++accesses;
        u32 victim = 0;
        u64 oldest = ~0ull;
        for (u32 w = 0; w < params.associativity; ++w) {
            Line &l = at(set, w);
            if (!l.valid) {
                victim = w;
                oldest = 0;
                break;
            }
            if (l.lru < oldest) {
                oldest = l.lru;
                victim = w;
            }
        }

        Line &l = at(set, victim);
        std::optional<Addr> writeback;
        if (l.valid && l.dirty)
            writeback = (l.tag * sets + set) * params.lineSize;
        l.valid = true;
        l.tag = tag;
        l.dirty = write;
        l.lru = clock;
        return {false, writeback};
    }

    L1Params params;
    u32 sets;
    std::vector<Line> lines;
    u64 clock = 0;
    u64 hits = 0;
    u64 accesses = 0;
};

L1FilterSource::L1FilterSource(std::unique_ptr<AccessSource> upstream,
                               const L1Params &params)
    : upstream_(std::move(upstream)), params_(params)
{
    MOLCACHE_ASSERT(upstream_ != nullptr, "filter needs an upstream");
    if (!isPowerOfTwo(params_.lineSize))
        fatal("L1 line size must be a power of two");
}

L1FilterSource::~L1FilterSource() = default;

L1FilterSource::L1Cache &
L1FilterSource::cacheFor(Asid asid)
{
    auto it = caches_.find(asid);
    if (it == caches_.end()) {
        it = caches_.emplace(asid, std::make_unique<L1Cache>(params_))
                 .first;
    }
    return *it->second;
}

std::optional<MemAccess>
L1FilterSource::next()
{
    if (pending_) {
        const MemAccess out = *pending_;
        pending_.reset();
        return out;
    }

    while (auto raw = upstream_->next()) {
        ++consumed_;
        L1Cache &l1 = cacheFor(raw->asid);
        const auto [hit, writeback] = l1.access(raw->addr, raw->isWrite());
        if (hit)
            continue;
        ++forwarded_;
        if (writeback) {
            // The displaced dirty line reaches L2 as a write after the
            // demand miss.
            ++writebacks_;
            pending_ = MemAccess{*writeback, raw->asid, AccessType::Write};
        }
        // The demand miss itself arrives as a read (allocate) — write
        // misses are write-allocate, so the L2 sees the fill request.
        return MemAccess{raw->addr, raw->asid, AccessType::Read};
    }
    return std::nullopt;
}

double
L1FilterSource::l1MissRate() const
{
    u64 acc = 0, hits = 0;
    for (const auto &[asid, l1] : caches_) {
        acc += l1->accesses;
        hits += l1->hits;
    }
    return acc == 0 ? 0.0
                    : static_cast<double>(acc - hits) /
                          static_cast<double>(acc);
}

} // namespace molcache
