/**
 * @file
 * Phase hints: a side-band channel from workload generators to the
 * control plane (docs/algorithm1.md, "Predictive mode & hint trust").
 *
 * A hint is a *claim* by an application about its own near future —
 * "in leadAccesses more of my references, my working set becomes
 * predictedFootprintBytes".  The channel is advisory and untrusted:
 * tenants may stay silent, hint late, exaggerate, or lie outright, so
 * consumers (the QoS guardian's predictive mode) must score every hint
 * against observed behaviour after the fact and fall back to reactive
 * control when a tenant's hints stop paying off.
 *
 * Hints travel out-of-band: emitting or suppressing them never changes
 * the generator's address stream, so hinted and unhinted runs of the
 * same workload remain reference-for-reference identical.
 */

#ifndef MOLCACHE_MEM_PHASE_HINT_HPP
#define MOLCACHE_MEM_PHASE_HINT_HPP

#include "util/types.hpp"

namespace molcache {

struct PhaseHint
{
    /** The application making the claim. */
    Asid asid{};
    /** Predicted distance to the phase shift, in the application's own
     * references (0 = the shift is already underway). */
    u64 leadAccesses = 0;
    /** The same distance in nominal resize epochs — how many control
     * decisions fit before the shift lands. */
    double epochsAhead = 0.0;
    /** Claimed working-set footprint of the upcoming phase. */
    u64 predictedFootprintBytes = 0;
    /** Self-assessed forecast quality in [0,1]; consumers may discount
     * or discard low-confidence hints. */
    double confidence = 1.0;
};

} // namespace molcache

#endif // MOLCACHE_MEM_PHASE_HINT_HPP
