/**
 * @file
 * The unit of work for every cache model: one memory reference.
 *
 * Molecular-cache simulation in the paper is trace driven: SESC produced
 * L1-D miss traces that were replayed into a modified Dinero.  molcache's
 * equivalent is a stream of MemAccess records, each tagged with the ASID
 * of the application that issued it.
 */

#ifndef MOLCACHE_MEM_ACCESS_HPP
#define MOLCACHE_MEM_ACCESS_HPP

#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

/** Reference kind; trace-driven models mostly care about read vs write. */
enum class AccessType : u8 { Read = 0, Write = 1 };

/** One memory reference presented to a cache model. */
struct MemAccess
{
    Addr addr = 0;
    Asid asid{};
    AccessType type = AccessType::Read;

    bool isWrite() const { return type == AccessType::Write; }
};

inline bool
operator==(const MemAccess &a, const MemAccess &b)
{
    return a.addr == b.addr && a.asid == b.asid && a.type == b.type;
}

/** Outcome of presenting a MemAccess to a cache model. */
struct AccessResult
{
    bool hit = false;
    /** Dynamic energy consumed by this access, in nanojoules. */
    double energyNj = 0.0;
    /** Access latency in cache cycles (model-specific costs). */
    Cycles latencyCycles{};
    /**
     * Lookup level that serviced the access: 0 = local structure
     * (set/tile), 1 = remote tiles via Ulmo, 2 = memory (miss).
     */
    u8 level = 0;
};

} // namespace molcache

#endif // MOLCACHE_MEM_ACCESS_HPP
