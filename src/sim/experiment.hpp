/**
 * @file
 * Canned experiment configurations — one helper per paper table/figure,
 * shared by the bench harness, the examples and the integration tests.
 * See DESIGN.md's per-experiment index for the mapping.
 */

#ifndef MOLCACHE_SIM_EXPERIMENT_HPP
#define MOLCACHE_SIM_EXPERIMENT_HPP

#include <memory>
#include <string>
#include <vector>

#include "cache/set_assoc.hpp"
#include "core/molecular_cache.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace molcache {

/** References per experiment; the paper's traces held ~3.9 M. */
inline constexpr u64 kPaperTraceLength = 3'900'000;

/** Traditional baseline geometry used throughout the evaluation. */
SetAssocParams traditionalParams(Bytes sizeBytes, u32 associativity,
                                 u64 seed = 1);

/**
 * Molecular geometry for Figure 5: 4 tiles in one cluster, 8 KiB
 * molecules, tile size = totalSize/4 (256 KiB at 1 MB ... 2 MiB at 8 MB).
 */
MolecularCacheParams fig5MolecularParams(Bytes totalSizeBytes,
                                         PlacementPolicy placement,
                                         u64 seed = 1);

/**
 * Molecular geometry for Table 2: 3 clusters x 4 tiles x 512 KiB tiles
 * (64 x 8 KiB molecules), 6 MiB total.
 */
MolecularCacheParams table2MolecularParams(PlacementPolicy placement,
                                           u64 seed = 1);

/**
 * Register the named applications (ASIDs 0..n-1) on @p cache with
 * @p resizeGoal, grouping them over clusters contiguously as the paper
 * does for the mixed workload (apps i*perCluster .. go to cluster i).
 */
void registerApplications(MolecularCache &cache, u32 count,
                          double resizeGoal);

/**
 * Run one multiprogrammed workload against one model.  Seeds, reference
 * counts, goals, labels, warmup and the mix policy all come from
 * @p options (one path instead of three positional tails):
 *  - options.totalReferences: merged references (0 = kPaperTraceLength)
 *  - options.labels: defaulted to the profile names when empty
 */
SimResult runWorkload(const std::vector<std::string> &profiles,
                      CacheModel &model, const RunOptions &options);

// The positional runWorkload(profiles, model, goals, totalReferences,
// seed) overload was removed one release after the RunOptions API
// landed; molcache_lint's deprecated-run rule rejects reintroduction.

/**
 * Derive per-application miss-rate goals by profiling: each profile runs
 * alone on a reference cache and its goal is set to
 * clamp(soloMissRate * slackFactor, minGoal, 1).  The paper assumes
 * goals are given ("the derivation of the miss rate goal is outside the
 * scope of this paper"); this helper is the obvious derivation an
 * operator would use.
 *
 * Seeding and the per-solo-run reference count come from @p options
 * (options.totalReferences; 0 = 500'000 references per app) so they
 * thread through the same RunOptions path as every other entry point.
 *
 * @param profiles     profile names; ASIDs are assigned 0..n-1 in order
 * @param reference    geometry of the solo profiling cache
 * @param slackFactor  goal = solo miss rate x this (>= 1 leaves headroom)
 * @param minGoal      floor so near-zero solo rates get a usable goal
 */
GoalSet deriveGoalsFromSolo(const std::vector<std::string> &profiles,
                            const SetAssocParams &reference,
                            const RunOptions &options,
                            double slackFactor = 1.5,
                            double minGoal = 0.02);

// The positional deriveGoalsFromSolo(profiles, reference, slackFactor,
// minGoal, refsPerApp, seed) overload was removed one release after the
// RunOptions API landed; the lint rule rejects reintroduction.

} // namespace molcache

#endif // MOLCACHE_SIM_EXPERIMENT_HPP
