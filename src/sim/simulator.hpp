/**
 * @file
 * The trace-driven simulation loop: pull references from an AccessSource,
 * feed them to a CacheModel, summarize.
 */

#ifndef MOLCACHE_SIM_SIMULATOR_HPP
#define MOLCACHE_SIM_SIMULATOR_HPP

#include <functional>
#include <map>
#include <string>

#include "cache/cache_model.hpp"
#include "mem/interleave.hpp"
#include "sim/qos.hpp"

namespace molcache {

/** Aggregate outcome of one run. */
struct SimResult
{
    std::string cacheName;
    QosSummary qos;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    double totalEnergyNj = 0.0;
    double avgEnergyPerAccessNj = 0.0;
    /** Hits broken down by lookup level (0 local, 1 remote tile). */
    u64 localHits = 0;
    u64 remoteHits = 0;

    /** @{ Fault/degradation counters; populated only when the model is a
     * MolecularCache (zero otherwise).  See docs/fault_model.md. */
    u64 faultEventsApplied = 0;
    u64 transientFlipsDetected = 0;
    u64 dirtyLinesLost = 0;
    u64 moleculesDecommissioned = 0;
    u64 tileOutages = 0;
    /** Molecules re-granted by the resizer to faulted regions. */
    u64 recoveryGrants = 0;
    /** Longest completed fault re-convergence, in resize epochs. */
    u32 maxReconvergenceEpochs = 0;
    /** Regions still above their miss-rate goal after a fault. */
    u32 regionsStillRecovering = 0;
    /** @} */

    /** Contract violations observed during the run (delta of the global
     * contract::counters() across the run; nonzero only when a counting
     * handler keeps violations non-fatal).  Always zero in a pure
     * Release build, where contracts compile out. */
    u64 contractViolations = 0;
};

class Simulator
{
  public:
    /** Optional progress callback: (accessesDone). */
    using Progress = std::function<void(u64)>;

    /**
     * Drain @p source through @p model.
     * @param goals       per-ASID miss-rate goals for the QoS summary
     * @param labels      per-ASID display names
     * @param warmup      references run before statistics are reset
     *                    (0 = no warmup phase)
     */
    static SimResult run(AccessSource &source, CacheModel &model,
                         const GoalSet &goals,
                         const std::map<Asid, std::string> &labels = {},
                         u64 warmup = 0, const Progress &progress = {});
};

/** Display-label map (ASID i -> names[i]). */
std::map<Asid, std::string>
labelMap(const std::vector<std::string> &names);

} // namespace molcache

#endif // MOLCACHE_SIM_SIMULATOR_HPP
