/**
 * @file
 * The trace-driven simulation loop: pull references from an AccessSource,
 * feed them to a CacheModel, summarize.
 */

#ifndef MOLCACHE_SIM_SIMULATOR_HPP
#define MOLCACHE_SIM_SIMULATOR_HPP

#include <map>
#include <string>

#include "cache/cache_model.hpp"
#include "mem/interleave.hpp"
#include "sim/qos.hpp"
#include "sim/run_options.hpp"

namespace molcache {

/** Aggregate outcome of one run. */
struct SimResult
{
    std::string cacheName;
    QosSummary qos;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    double totalEnergyNj = 0.0;
    double avgEnergyPerAccessNj = 0.0;
    /** Hits broken down by lookup level (0 local, 1 remote tile). */
    u64 localHits = 0;
    u64 remoteHits = 0;

    /** @{ Fault/degradation counters; populated only when the model is a
     * MolecularCache (zero otherwise).  See docs/fault_model.md. */
    u64 faultEventsApplied = 0;
    u64 transientFlipsDetected = 0;
    u64 dirtyLinesLost = 0;
    u64 moleculesDecommissioned = 0;
    u64 tileOutages = 0;
    /** Molecules re-granted by the resizer to faulted regions. */
    u64 recoveryGrants = 0;
    /** Longest completed fault re-convergence, in resize epochs. */
    u32 maxReconvergenceEpochs = 0;
    /** Regions still above their miss-rate goal after a fault. */
    u32 regionsStillRecovering = 0;
    /** @} */

    /** @{ Way-memoization telemetry (docs/perf.md).  Populated only when
     * the model is a MolecularCache; all-zero when memoization is
     * disabled or fused off, in which case the JSON block is omitted so
     * reports stay byte-identical to memo-free builds. */
    u64 wayMemoHits = 0;
    u64 wayMemoMispredicts = 0;
    u64 wayMemoInvalidations = 0;
    /** @} */

    /** QoS-guardian aggregate (guardian.enabled false unless the model
     * is a MolecularCache with params().guardian.enabled).  Per-region
     * telemetry rides on qos.apps[i].guardian. */
    GuardianSummary guardian;

    /** Contract violations observed during the run (delta of the
     * calling thread's contract::counters() across the run; nonzero only
     * when a counting handler keeps violations non-fatal).  Always zero
     * in a pure Release build, where contracts compile out. */
    u64 contractViolations = 0;
};

class Simulator
{
  public:
    /** Optional progress callback: (accessesDone). */
    using Progress = ProgressFn;

    /**
     * Drain @p source through @p model.  Reads goals, labels, warmup,
     * batchSize and progress from @p options (totalReferences and mix
     * belong to the workload-building helpers and are ignored here: the
     * source is already bounded).
     */
    static SimResult run(AccessSource &source, CacheModel &model,
                         const RunOptions &options = {});

    // The positional run(source, model, goals, labels, warmup, progress)
    // overload was removed one release after the RunOptions API landed
    // (as promised by its deprecation note); molcache_lint's
    // deprecated-run rule rejects any reintroduction.
};

/** Display-label map (ASID i -> names[i]). */
std::map<Asid, std::string>
labelMap(const std::vector<std::string> &names);

} // namespace molcache

#endif // MOLCACHE_SIM_SIMULATOR_HPP
