#include "sim/qos.hpp"

#include "util/logging.hpp"

namespace molcache {

const AppSummary *
QosSummary::find(Asid asid) const
{
    for (const auto &a : apps)
        if (a.asid == asid)
            return &a;
    return nullptr;
}

const AppSummary &
QosSummary::byAsid(Asid asid) const
{
    if (const AppSummary *a = find(asid))
        return *a;
    panic("no summary for ASID ", asid);
}

QosSummary
summarize(const CacheModel &model, const GoalSet &goals,
          const std::map<Asid, std::string> &labels)
{
    QosSummary out;
    const CacheStats &stats = model.stats();
    out.globalMissRate = stats.global().missRate();
    out.totalAccesses = stats.global().accesses;

    for (const auto &[asid, counters] : stats.perAsid()) {
        AppSummary app;
        app.asid = asid;
        const auto label_it = labels.find(asid);
        app.label = label_it != labels.end()
                        ? label_it->second
                        : "asid" + std::to_string(asid.value());
        app.accesses = counters.accesses;
        app.hits = counters.hits;
        app.missRate = counters.missRate();
        app.amat = counters.amat();
        if (const auto g = goals.goal(asid)) {
            app.goal = *g;
            app.deviation = deviationFromGoal(app.missRate, *g);
        }
        out.apps.push_back(std::move(app));
    }

    out.averageDeviation = averageDeviation(stats.missRates(), goals);
    return out;
}

} // namespace molcache
