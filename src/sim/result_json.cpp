#include "sim/result_json.hpp"

namespace molcache {

void
writeSimResultJson(JsonWriter &json, const SimResult &result)
{
    json.beginObject();
    json.key("cache");
    json.value(result.cacheName);
    json.key("accesses");
    json.value(result.accesses);
    json.key("hits");
    json.value(result.hits);
    json.key("misses");
    json.value(result.misses);
    json.key("local_hits");
    json.value(result.localHits);
    json.key("remote_hits");
    json.value(result.remoteHits);
    json.key("global_miss_rate");
    json.value(result.qos.globalMissRate);
    json.key("average_deviation");
    json.value(result.qos.averageDeviation);
    json.key("total_energy_nj");
    json.value(result.totalEnergyNj);
    json.key("avg_energy_per_access_nj");
    json.value(result.avgEnergyPerAccessNj);
    json.key("contract_violations");
    json.value(result.contractViolations);
    if (result.faultEventsApplied > 0) {
        json.key("faults");
        json.beginObject();
        json.key("events_applied");
        json.value(result.faultEventsApplied);
        json.key("transient_flips_detected");
        json.value(result.transientFlipsDetected);
        json.key("dirty_lines_lost");
        json.value(result.dirtyLinesLost);
        json.key("molecules_decommissioned");
        json.value(result.moleculesDecommissioned);
        json.key("tile_outages");
        json.value(result.tileOutages);
        json.key("recovery_grants");
        json.value(result.recoveryGrants);
        json.key("max_reconvergence_epochs");
        json.value(static_cast<u64>(result.maxReconvergenceEpochs));
        json.key("regions_still_recovering");
        json.value(static_cast<u64>(result.regionsStillRecovering));
        json.endObject();
    }
    json.key("apps");
    json.beginArray();
    for (const AppSummary &app : result.qos.apps) {
        json.beginObject();
        json.key("asid");
        json.value(static_cast<u64>(app.asid.value()));
        json.key("label");
        json.value(app.label);
        json.key("accesses");
        json.value(app.accesses);
        json.key("miss_rate");
        json.value(app.missRate);
        json.key("amat_cycles");
        json.value(app.amat);
        if (app.goal) {
            json.key("goal");
            json.value(*app.goal);
            json.key("deviation");
            json.value(*app.deviation);
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
writeSimResultDocument(JsonWriter &json, const SimResult &result)
{
    json.beginObject();
    writeSchemaVersion(json);
    json.key("kind");
    json.value("sim_result");
    json.key("result");
    writeSimResultJson(json, result);
    json.endObject();
}

} // namespace molcache
