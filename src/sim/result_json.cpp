#include "sim/result_json.hpp"

namespace molcache {

void
writeSimResultJson(JsonWriter &json, const SimResult &result)
{
    json.beginObject();
    json.key("cache");
    json.value(result.cacheName);
    json.key("accesses");
    json.value(result.accesses);
    json.key("hits");
    json.value(result.hits);
    json.key("misses");
    json.value(result.misses);
    json.key("local_hits");
    json.value(result.localHits);
    json.key("remote_hits");
    json.value(result.remoteHits);
    json.key("global_miss_rate");
    json.value(result.qos.globalMissRate);
    json.key("average_deviation");
    json.value(result.qos.averageDeviation);
    json.key("total_energy_nj");
    json.value(result.totalEnergyNj);
    json.key("avg_energy_per_access_nj");
    json.value(result.avgEnergyPerAccessNj);
    json.key("contract_violations");
    json.value(result.contractViolations);
    if (result.faultEventsApplied > 0) {
        json.key("faults");
        json.beginObject();
        json.key("events_applied");
        json.value(result.faultEventsApplied);
        json.key("transient_flips_detected");
        json.value(result.transientFlipsDetected);
        json.key("dirty_lines_lost");
        json.value(result.dirtyLinesLost);
        json.key("molecules_decommissioned");
        json.value(result.moleculesDecommissioned);
        json.key("tile_outages");
        json.value(result.tileOutages);
        json.key("recovery_grants");
        json.value(result.recoveryGrants);
        json.key("max_reconvergence_epochs");
        json.value(static_cast<u64>(result.maxReconvergenceEpochs));
        json.key("regions_still_recovering");
        json.value(static_cast<u64>(result.regionsStillRecovering));
        json.endObject();
    }
    // Way-memoization telemetry: emitted only when the memo table saw
    // traffic, so memo-free configurations (and non-molecular models)
    // keep emitting byte-identical documents.
    if (result.wayMemoHits + result.wayMemoMispredicts +
            result.wayMemoInvalidations >
        0) {
        json.key("way_memo");
        json.beginObject();
        json.key("hits");
        json.value(result.wayMemoHits);
        json.key("mispredicts");
        json.value(result.wayMemoMispredicts);
        json.key("invalidations");
        json.value(result.wayMemoInvalidations);
        json.endObject();
    }
    // Emitted only when the guardian ran: a disabled guardian leaves
    // the report byte-identical to pre-guardian builds (same contract
    // as the faults block above).
    if (result.guardian.enabled) {
        json.key("guardian");
        json.beginObject();
        json.key("oscillation_events");
        json.value(result.guardian.oscillationEvents);
        json.key("floor_hits");
        json.value(result.guardian.floorHits);
        json.key("floor_restore_grants");
        json.value(result.guardian.floorRestoreGrants);
        json.key("hold_epochs");
        json.value(result.guardian.holdEpochs);
        json.key("infeasible_regions");
        json.value(static_cast<u64>(result.guardian.infeasibleRegions));
        json.key("stuck_regions");
        json.value(static_cast<u64>(result.guardian.stuckRegions));
        json.key("max_epochs_to_goal");
        json.value(static_cast<u64>(result.guardian.maxEpochsToGoal));
        json.key("max_shortfall");
        json.value(result.guardian.maxShortfall);
        json.key("pool_pressure");
        json.value(result.guardian.poolPressure);
        json.key("epochs_outside_goal");
        json.value(result.guardian.epochsOutsideGoal);
        json.key("accesses_outside_goal");
        json.value(result.guardian.accessesOutsideGoal);
        // Predictive sub-block mirrors the guardian's own enable gate:
        // absent while predictive mode is off.
        if (result.guardian.predictiveEnabled) {
            json.key("predictive");
            json.beginObject();
            json.key("hints_seen");
            json.value(result.guardian.hintsSeen);
            json.key("hints_honored");
            json.value(result.guardian.hintsHonored);
            json.key("hints_rejected");
            json.value(result.guardian.hintsRejected);
            json.key("pre_grant_molecules");
            json.value(result.guardian.preGrantMolecules);
            json.key("pre_withdraw_molecules");
            json.value(result.guardian.preWithdrawMolecules);
            json.key("quarantined_regions");
            json.value(static_cast<u64>(
                result.guardian.quarantinedRegions));
            json.key("min_trust");
            json.value(result.guardian.minTrust);
            json.endObject();
        }
        json.endObject();
    }
    json.key("apps");
    json.beginArray();
    for (const AppSummary &app : result.qos.apps) {
        json.beginObject();
        json.key("asid");
        json.value(static_cast<u64>(app.asid.value()));
        json.key("label");
        json.value(app.label);
        json.key("accesses");
        json.value(app.accesses);
        json.key("miss_rate");
        json.value(app.missRate);
        json.key("amat_cycles");
        json.value(app.amat);
        if (app.goal) {
            json.key("goal");
            json.value(*app.goal);
            json.key("deviation");
            json.value(*app.deviation);
        }
        if (app.guardian) {
            const GuardianAppTelemetry &g = *app.guardian;
            json.key("guardian");
            json.beginObject();
            json.key("verdict");
            json.value(feasibilityVerdictName(g.verdict));
            json.key("shortfall");
            json.value(g.shortfall);
            json.key("oscillation_events");
            json.value(static_cast<u64>(g.oscillationEvents));
            json.key("max_sign_flips");
            json.value(static_cast<u64>(g.maxSignFlips));
            json.key("floor_hits");
            json.value(g.floorHits);
            json.key("floor_restore_grants");
            json.value(g.floorRestoreGrants);
            json.key("hold_epochs");
            json.value(g.holdEpochs);
            json.key("last_epochs_to_goal");
            json.value(static_cast<u64>(g.lastEpochsToGoal));
            json.key("max_epochs_to_goal");
            json.value(static_cast<u64>(g.maxEpochsToGoal));
            json.key("stuck");
            json.value(g.stuck);
            json.key("epochs_outside_goal");
            json.value(g.epochsOutsideGoal);
            json.key("accesses_outside_goal");
            json.value(g.accessesOutsideGoal);
            if (result.guardian.predictiveEnabled) {
                json.key("predictive");
                json.beginObject();
                json.key("hints_seen");
                json.value(g.hintsSeen);
                json.key("hints_honored");
                json.value(g.hintsHonored);
                json.key("hints_rejected");
                json.value(g.hintsRejected);
                json.key("pre_grant_molecules");
                json.value(g.preGrantMolecules);
                json.key("pre_withdraw_molecules");
                json.value(g.preWithdrawMolecules);
                json.key("trust");
                json.value(g.trust);
                json.key("quarantined");
                json.value(g.quarantined);
                json.key("quarantine_events");
                json.value(static_cast<u64>(g.quarantineEvents));
                json.endObject();
            }
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
writeSimResultDocument(JsonWriter &json, const SimResult &result)
{
    json.beginObject();
    writeSchemaVersion(json);
    json.key("kind");
    json.value("sim_result");
    json.key("result");
    writeSimResultJson(json, result);
    json.endObject();
}

} // namespace molcache
