/**
 * @file
 * RunOptions: the value-type knob bundle for every simulation entry
 * point (Simulator::run, runWorkload, deriveGoalsFromSolo, SimJob).
 *
 * The old positional tails — (goals, labels, warmup, progress) on
 * Simulator::run and (totalReferences, seed) on the experiment helpers —
 * grew independently and could not be carried across threads as one
 * unit.  RunOptions replaces all of them: it is a plain copyable value,
 * so the parallel sweep engine (src/exec/) can hand each worker its own
 * private copy with no shared mutable state.
 *
 * Fields unused by a given entry point are ignored (e.g. Simulator::run
 * drains the source it is given and never reads totalReferences or mix;
 * those drive the workload-building helpers).
 */

#ifndef MOLCACHE_SIM_RUN_OPTIONS_HPP
#define MOLCACHE_SIM_RUN_OPTIONS_HPP

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "mem/interleave.hpp"
#include "stats/metrics.hpp"

namespace molcache {

/** Progress callback: invoked with the number of accesses completed. */
using ProgressFn = std::function<void(u64)>;

struct RunOptions
{
    /** Per-ASID miss-rate goals for the QoS summary. */
    GoalSet goals;

    /** Per-ASID display names; helpers default these to the profile
     * names when left empty. */
    std::map<Asid, std::string> labels;

    /** References run before statistics are reset (0 = no warmup). */
    u64 warmup = 0;

    /** Base RNG seed for workload generation and model construction. */
    u64 seed = 1;

    /**
     * Merged references to generate (workload-building helpers only;
     * 0 = the helper's documented default, e.g. kPaperTraceLength for
     * runWorkload).
     */
    u64 totalReferences = 0;

    /** Interleaving discipline for multi-application workloads. */
    MixPolicy mix = MixPolicy::RoundRobin;

    /**
     * Accesses pulled from the source per AccessSource::nextBatch call.
     * Batching amortizes the per-reference virtual dispatch; results are
     * identical for any value >= 1.
     */
    u32 batchSize = 1024;

    /** Optional progress callback (every 2^20 accesses). */
    ProgressFn progress;

    /** @{ Fluent setters so call sites read like keyword arguments. */
    RunOptions &withGoals(GoalSet g)
    {
        goals = std::move(g);
        return *this;
    }
    RunOptions &withLabels(std::map<Asid, std::string> l)
    {
        labels = std::move(l);
        return *this;
    }
    RunOptions &withWarmup(u64 refs)
    {
        warmup = refs;
        return *this;
    }
    RunOptions &withSeed(u64 s)
    {
        seed = s;
        return *this;
    }
    RunOptions &withReferences(u64 refs)
    {
        totalReferences = refs;
        return *this;
    }
    RunOptions &withMix(MixPolicy policy)
    {
        mix = policy;
        return *this;
    }
    RunOptions &withBatchSize(u32 n)
    {
        batchSize = n;
        return *this;
    }
    RunOptions &withProgress(ProgressFn fn)
    {
        progress = std::move(fn);
        return *this;
    }
    /** @} */
};

} // namespace molcache

#endif // MOLCACHE_SIM_RUN_OPTIONS_HPP
