/**
 * @file
 * Canonical JSON serialization of SimResult, shared by the sweep engine
 * (src/exec/sweep.cpp) and the example tools so every emitter produces
 * the same schema (stats/json.hpp's kResultSchemaVersion governs the
 * document-level stamp).
 */

#ifndef MOLCACHE_SIM_RESULT_JSON_HPP
#define MOLCACHE_SIM_RESULT_JSON_HPP

#include "sim/simulator.hpp"
#include "stats/json.hpp"

namespace molcache {

/**
 * Write @p result as one JSON object (beginObject..endObject included).
 * Deterministic: identical results serialize to identical bytes.
 */
void writeSimResultJson(JsonWriter &json, const SimResult &result);

/**
 * Write a full stand-alone SimResult document: an object carrying the
 * schemaVersion stamp, a "kind": "sim_result" marker and the result
 * under "result".
 */
void writeSimResultDocument(JsonWriter &json, const SimResult &result);

} // namespace molcache

#endif // MOLCACHE_SIM_RESULT_JSON_HPP
