/**
 * @file
 * QoS summaries of a simulation run: per-application miss rates versus
 * goals, deviations, and the paper's derived metrics.
 */

#ifndef MOLCACHE_SIM_QOS_HPP
#define MOLCACHE_SIM_QOS_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "core/guardian_stats.hpp"
#include "stats/metrics.hpp"

namespace molcache {

/** Per-application slice of a run summary. */
struct AppSummary
{
    Asid asid{};
    std::string label;
    u64 accesses = 0;
    u64 hits = 0;
    double missRate = 0.0;
    /** Average memory access time in cache cycles. */
    double amat = 0.0;
    std::optional<double> goal;
    /** |missRate - goal| when a goal exists. */
    std::optional<double> deviation;
    /** QoS-guardian telemetry; present only when the model is a
     * MolecularCache with the guardian enabled. */
    std::optional<GuardianAppTelemetry> guardian;
};

/** Whole-run QoS summary. */
struct QosSummary
{
    std::vector<AppSummary> apps;
    double averageDeviation = 0.0;
    double globalMissRate = 0.0;
    u64 totalAccesses = 0;

    /** @return the app's summary, or nullptr when @p asid produced no
     * traffic (summaries exist only for ASIDs the stats saw). */
    const AppSummary *find(Asid asid) const;
    /** Like find(), but panics on an unknown ASID.  Prefer find() in
     * reporting paths: a zero-traffic app must not crash the report. */
    const AppSummary &byAsid(Asid asid) const;
};

/**
 * Build the summary from a model's statistics.
 * @param labels optional per-ASID display names (benchmark names)
 */
QosSummary summarize(const CacheModel &model, const GoalSet &goals,
                     const std::map<Asid, std::string> &labels = {});

} // namespace molcache

#endif // MOLCACHE_SIM_QOS_HPP
