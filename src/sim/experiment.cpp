#include "sim/experiment.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/units.hpp"
#include "workload/profiles.hpp"

namespace molcache {

SetAssocParams
traditionalParams(Bytes sizeBytes, u32 associativity, u64 seed)
{
    SetAssocParams p;
    p.sizeBytes = sizeBytes;
    p.associativity = associativity;
    p.lineSize = 64;
    p.replacement = ReplPolicy::Lru;
    p.ports = 4; // the paper's traditional comparison point (Table 3)
    p.seed = seed;
    return p;
}

MolecularCacheParams
fig5MolecularParams(Bytes totalSizeBytes, PlacementPolicy placement,
                    u64 seed)
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.lineSize = 64;
    p.tilesPerCluster = 4;
    p.clusters = 1;
    const Bytes tile_bytes = totalSizeBytes / 4;
    if ((tile_bytes % p.moleculeSize).value() != 0)
        fatal("figure-5 size ", totalSizeBytes,
              " not divisible into 4 tiles of 8KiB molecules");
    p.moleculesPerTile = static_cast<u32>(tile_bytes / p.moleculeSize);
    p.placement = placement;
    p.seed = seed;
    return p;
}

MolecularCacheParams
table2MolecularParams(PlacementPolicy placement, u64 seed)
{
    MolecularCacheParams p;
    p.moleculeSize = 8_KiB;
    p.lineSize = 64;
    p.tilesPerCluster = 4;
    p.clusters = 3;
    p.moleculesPerTile = 64; // 512 KiB tiles -> 2 MiB clusters, 6 MiB total
    p.placement = placement;
    p.seed = seed;
    return p;
}

void
registerApplications(MolecularCache &cache, u32 count, double resizeGoal)
{
    const u32 clusters = cache.params().clusters;
    const u32 per_cluster = (count + clusters - 1) / clusters;
    for (u32 i = 0; i < count; ++i) {
        const ClusterId cluster{i / per_cluster};
        const u32 tile = (i % per_cluster) % cache.params().tilesPerCluster;
        cache.registerApplication(Asid{static_cast<u16>(i)}, resizeGoal,
                                  cluster, tile,
                                  cache.params().defaultLineMultiple);
    }
}

SimResult
runWorkload(const std::vector<std::string> &profiles, CacheModel &model,
            const RunOptions &options)
{
    const u64 refs = options.totalReferences != 0 ? options.totalReferences
                                                  : kPaperTraceLength;
    auto source =
        makeMultiProgramSource(profiles, refs, options.mix, options.seed);
    RunOptions run = options;
    if (run.labels.empty())
        run.labels = labelMap(profiles);
    return Simulator::run(*source, model, run);
}

GoalSet
deriveGoalsFromSolo(const std::vector<std::string> &profiles,
                    const SetAssocParams &reference,
                    const RunOptions &options, double slackFactor,
                    double minGoal)
{
    if (slackFactor < 1.0)
        fatal("goal slack factor must be >= 1");
    const u64 refs_per_app =
        options.totalReferences != 0 ? options.totalReferences : 500'000;
    GoalSet goals;
    for (size_t i = 0; i < profiles.size(); ++i) {
        SetAssocCache solo(reference);
        TraceGenerator gen(profileByName(profiles[i]), Asid{0},
                           refs_per_app, options.seed);
        while (auto a = gen.next())
            solo.access(*a);
        const double mr = solo.stats().global().missRate();
        const double goal =
            std::clamp(mr * slackFactor, minGoal, 1.0);
        goals.set(Asid{static_cast<u16>(i)}, goal);
    }
    return goals;
}

} // namespace molcache
