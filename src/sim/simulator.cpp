#include "sim/simulator.hpp"

#include <algorithm>
#include <vector>

#include "contract/contract.hpp"
#include "core/molecular_cache.hpp"
#include "stats/counter.hpp"

namespace molcache {

namespace {

/** Accesses between progress callbacks (the historical 2^20 stride). */
constexpr u64 kProgressStride = u64{1} << 20;

constexpr u64 kNever = ~u64{0};

} // namespace

SimResult
Simulator::run(AccessSource &source, CacheModel &model,
               const RunOptions &options)
{
    u64 done = 0;
    u64 local_hits = 0;
    u64 remote_hits = 0;
    const u64 violations_before = contract::counters().total();

    // Hot loop: references are pulled in batches so the per-reference
    // virtual dispatch on the source is amortized, and the progress /
    // warmup checks compare against precomputed ticks instead of testing
    // the std::function and warmup count on every access.
    const u32 batch = std::max<u32>(1, options.batchSize);
    std::vector<MemAccess> buffer(batch);
    std::vector<AccessResult> results(batch);
    const u64 warmup_tick = options.warmup == 0 ? kNever : options.warmup;
    u64 progress_tick = options.progress ? kProgressStride : kNever;

    // Phase-hint side band: drained only when the model has a consumer
    // (guardian predictive mode), so every other configuration skips
    // the virtual call entirely and stays byte-identical.
    MolecularCache *hint_sink = dynamic_cast<MolecularCache *>(&model);
    if (hint_sink != nullptr && !hint_sink->acceptsPhaseHints())
        hint_sink = nullptr;
    std::vector<PhaseHint> hints(hint_sink != nullptr ? 64 : 0);

    for (;;) {
        const size_t n = source.nextBatch(buffer.data(), batch);
        if (n == 0)
            break;
        // Deliver hints ahead of the references they were emitted with,
        // preserving (slightly pessimistically) the announced lead.
        if (hint_sink != nullptr) {
            for (;;) {
                const size_t h =
                    source.drainHints(hints.data(), hints.size());
                for (size_t i = 0; i < h; ++i)
                    hint_sink->postPhaseHint(hints[i]);
                if (h < hints.size())
                    break;
            }
        }
        // Feed the block through the model's batched entry point,
        // splitting exactly at the warmup boundary so resetStats() lands
        // between the same two accesses as the scalar loop would put it.
        // Progress callbacks fire after the segment with the same done
        // counts they would see scalar — they observe, never mutate, so
        // results stay byte-identical.
        size_t off = 0;
        while (off < n) {
            u64 seg = n - off;
            if (done < warmup_tick)
                seg = std::min<u64>(seg, warmup_tick - done);
            model.accessBatch({buffer.data() + off, seg},
                              {results.data() + off, seg});
            done += seg;
            u64 count_from = 0;
            if (done == warmup_tick) {
                // The scalar loop resets counters before tallying the
                // warmup-boundary access itself, so only the segment's
                // last outcome survives into the measured window.
                model.resetStats();
                local_hits = 0;
                remote_hits = 0;
                count_from = seg - 1;
            }
            for (u64 i = count_from; i < seg; ++i) {
                const AccessResult &r = results[off + i];
                if (r.hit) {
                    if (r.level == 0)
                        ++local_hits;
                    else
                        ++remote_hits;
                }
            }
            while (progress_tick <= done) {
                options.progress(progress_tick);
                progress_tick += kProgressStride;
            }
            off += seg;
        }
    }

    SimResult out;
    out.cacheName = model.name();
    out.qos = summarize(model, options.goals, options.labels);
    out.accesses = model.stats().global().accesses;
    out.hits = model.stats().global().hits;
    out.misses = model.stats().global().misses;
    out.totalEnergyNj = model.totalEnergyNj();
    out.avgEnergyPerAccessNj =
        out.accesses ? out.totalEnergyNj / static_cast<double>(out.accesses)
                     : 0.0;
    out.localHits = local_hits;
    out.remoteHits = remote_hits;
    out.contractViolations =
        contract::counters().total() - violations_before;

    if (const auto *mc = dynamic_cast<const MolecularCache *>(&model)) {
        const FaultStats &fs = mc->faultStats();
        out.faultEventsApplied = fs.eventsApplied();
        out.transientFlipsDetected = fs.transientFlipsDetected;
        out.dirtyLinesLost = fs.dirtyLinesLost;
        out.moleculesDecommissioned = fs.moleculesDecommissioned;
        out.tileOutages = fs.tileOutages;
        out.recoveryGrants = mc->resizer().recoveryGrants();
        out.wayMemoHits = mc->wayMemoHits();
        out.wayMemoMispredicts = mc->wayMemoMispredicts();
        out.wayMemoInvalidations = mc->wayMemoInvalidations();
        for (const Asid asid : mc->registeredAsids()) {
            const Region &region = mc->region(asid);
            out.maxReconvergenceEpochs = std::max(
                out.maxReconvergenceEpochs, region.lastRecoveryEpochs);
            if (region.recovering)
                ++out.regionsStillRecovering;
        }
        if (const QosGuardian *guardian = mc->guardian()) {
            out.guardian = guardian->summary();
            for (AppSummary &app : out.qos.apps)
                app.guardian = guardian->telemetry(app.asid);
        }
    }
    return out;
}

std::map<Asid, std::string>
labelMap(const std::vector<std::string> &names)
{
    std::map<Asid, std::string> out;
    for (size_t i = 0; i < names.size(); ++i)
        out[Asid{static_cast<u16>(i)}] = names[i];
    return out;
}

} // namespace molcache
