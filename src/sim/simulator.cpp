#include "sim/simulator.hpp"

#include <algorithm>

#include "contract/contract.hpp"
#include "core/molecular_cache.hpp"
#include "stats/counter.hpp"

namespace molcache {

SimResult
Simulator::run(AccessSource &source, CacheModel &model, const GoalSet &goals,
               const std::map<Asid, std::string> &labels, u64 warmup,
               const Progress &progress)
{
    u64 done = 0;
    u64 local_hits = 0;
    u64 remote_hits = 0;
    const u64 violations_before = contract::counters().total();

    while (auto access = source.next()) {
        const AccessResult r = model.access(*access);
        ++done;
        if (warmup != 0 && done == warmup) {
            model.resetStats();
            local_hits = 0;
            remote_hits = 0;
        }
        if (r.hit) {
            if (r.level == 0)
                ++local_hits;
            else
                ++remote_hits;
        }
        if (progress && (done & 0xfffff) == 0)
            progress(done);
    }

    SimResult out;
    out.cacheName = model.name();
    out.qos = summarize(model, goals, labels);
    out.accesses = model.stats().global().accesses;
    out.hits = model.stats().global().hits;
    out.misses = model.stats().global().misses;
    out.totalEnergyNj = model.totalEnergyNj();
    out.avgEnergyPerAccessNj =
        out.accesses ? out.totalEnergyNj / static_cast<double>(out.accesses)
                     : 0.0;
    out.localHits = local_hits;
    out.remoteHits = remote_hits;
    out.contractViolations =
        contract::counters().total() - violations_before;

    if (const auto *mc = dynamic_cast<const MolecularCache *>(&model)) {
        const FaultStats &fs = mc->faultStats();
        out.faultEventsApplied = fs.eventsApplied();
        out.transientFlipsDetected = fs.transientFlipsDetected;
        out.dirtyLinesLost = fs.dirtyLinesLost;
        out.moleculesDecommissioned = fs.moleculesDecommissioned;
        out.tileOutages = fs.tileOutages;
        out.recoveryGrants = mc->resizer().recoveryGrants();
        for (const Asid asid : mc->registeredAsids()) {
            const Region &region = mc->region(asid);
            out.maxReconvergenceEpochs = std::max(
                out.maxReconvergenceEpochs, region.lastRecoveryEpochs);
            if (region.recovering)
                ++out.regionsStillRecovering;
        }
    }
    return out;
}

std::map<Asid, std::string>
labelMap(const std::vector<std::string> &names)
{
    std::map<Asid, std::string> out;
    for (size_t i = 0; i < names.size(); ++i)
        out[Asid{static_cast<u16>(i)}] = names[i];
    return out;
}

} // namespace molcache
