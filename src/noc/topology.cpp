#include "noc/topology.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace molcache {

NocTopology
parseNocTopology(const std::string &text)
{
    if (text == "crossbar")
        return NocTopology::Crossbar;
    if (text == "ring")
        return NocTopology::Ring;
    if (text == "mesh")
        return NocTopology::Mesh;
    fatal("unknown NoC topology '", text,
          "' (expected crossbar|ring|mesh)");
}

std::string
nocTopologyName(NocTopology t)
{
    switch (t) {
      case NocTopology::Crossbar:
        return "crossbar";
      case NocTopology::Ring:
        return "ring";
      case NocTopology::Mesh:
        return "mesh";
    }
    panic("unknown NocTopology");
}

NocModel::NocModel(u32 clusters, const NocParams &params)
    : clusters_(clusters), params_(params)
{
    MOLCACHE_ASSERT(clusters >= 1, "NoC needs at least one cluster");
    // Near-square mesh layout: width = ceil(sqrt(n)).
    meshWidth_ = static_cast<u32>(
        std::ceil(std::sqrt(static_cast<double>(clusters))));
}

u32
NocModel::hopCount(u32 from, u32 to) const
{
    MOLCACHE_ASSERT(from < clusters_ && to < clusters_,
                    "NoC endpoint out of range");
    if (from == to)
        return 0;
    switch (params_.topology) {
      case NocTopology::Crossbar:
        return 1;
      case NocTopology::Ring: {
        const u32 d = from > to ? from - to : to - from;
        return std::min(d, clusters_ - d);
      }
      case NocTopology::Mesh: {
        const u32 fx = from % meshWidth_, fy = from / meshWidth_;
        const u32 tx = to % meshWidth_, ty = to / meshWidth_;
        return (fx > tx ? fx - tx : tx - fx) +
               (fy > ty ? fy - ty : ty - fy);
      }
    }
    panic("unknown NocTopology");
}

u32
NocModel::diameter() const
{
    u32 best = 0;
    for (u32 a = 0; a < clusters_; ++a)
        for (u32 b = 0; b < clusters_; ++b)
            best = std::max(best, hopCount(a, b));
    return best;
}

u32
NocModel::latencyCycles(u32 from, u32 to) const
{
    return hopCount(from, to) * params_.cyclesPerHop;
}

double
NocModel::messageEnergyNj(u32 from, u32 to) const
{
    return hopCount(from, to) * params_.energyPerHopNj;
}

u32
NocModel::sendMessage(u32 from, u32 to)
{
    const u32 hops = hopCount(from, to);
    ++stats_.messages;
    stats_.hops += hops;
    stats_.cycles += hops * params_.cyclesPerHop;
    stats_.energyNj += hops * params_.energyPerHopNj;
    return hops * params_.cyclesPerHop;
}

} // namespace molcache
