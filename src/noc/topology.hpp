/**
 * @file
 * Inter-cluster interconnection network model.
 *
 * The paper connects tile clusters "through an interconnection network
 * to enable coherence transactions", deliberately drawn as a cloud ("no
 * assumption made on the topology").  molcache makes the cloud concrete
 * enough to cost coherence traffic: a topology gives hop counts between
 * clusters, and per-hop latency/energy constants turn a message into
 * cycles and nanojoules.  The model is used by the coherence path
 * (invalidations, downgrades) — the paper's workloads share nothing, so
 * it contributes no cost there, but shared-address-space workloads (one
 * application's threads pinned to different clusters) exercise it.
 */

#ifndef MOLCACHE_NOC_TOPOLOGY_HPP
#define MOLCACHE_NOC_TOPOLOGY_HPP

#include <string>

#include "util/types.hpp"

namespace molcache {

/** Interconnect shape between tile clusters. */
enum class NocTopology
{
    /** Single shared switch: every pair is one hop. */
    Crossbar,
    /** Bidirectional ring: shortest way around. */
    Ring,
    /** 2D mesh (near-square layout), XY routing. */
    Mesh,
};

NocTopology parseNocTopology(const std::string &text);
std::string nocTopologyName(NocTopology t);

/** Cost constants for one router-to-router hop. */
struct NocParams
{
    NocTopology topology = NocTopology::Ring;
    u32 cyclesPerHop = 2;
    /** Energy per hop per message, nJ (link + router). */
    double energyPerHopNj = 0.15;
};

/** Message statistics accumulated by a NocModel. */
struct NocStats
{
    u64 messages = 0;
    u64 hops = 0;
    u64 cycles = 0;
    double energyNj = 0.0;
};

class NocModel
{
  public:
    /**
     * @param clusters number of endpoints (>= 1)
     * @param params   topology and hop costs
     */
    NocModel(u32 clusters, const NocParams &params);

    u32 clusters() const { return clusters_; }
    const NocParams &params() const { return params_; }

    /** Hops between two clusters under the configured topology
     * (0 for self-messages). */
    u32 hopCount(u32 from, u32 to) const;

    /** Worst-case hops between any pair (the network diameter). */
    u32 diameter() const;

    /** Cycles a message from @p from to @p to takes. */
    u32 latencyCycles(u32 from, u32 to) const;

    /** Energy of one message (nJ). */
    double messageEnergyNj(u32 from, u32 to) const;

    /** Account one message and return its latency in cycles. */
    u32 sendMessage(u32 from, u32 to);

    const NocStats &stats() const { return stats_; }
    void resetStats() { stats_ = NocStats{}; }

  private:
    u32 meshWidth() const { return meshWidth_; }

    u32 clusters_;
    NocParams params_;
    u32 meshWidth_;
    NocStats stats_;
};

} // namespace molcache

#endif // MOLCACHE_NOC_TOPOLOGY_HPP
