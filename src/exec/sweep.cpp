#include "exec/sweep.hpp"

#include <chrono>
#include <fstream>

#include "core/sim_access.hpp"
#include "exec/seed_stream.hpp"
#include "exec/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/result_json.hpp"
#include "stats/json.hpp"
#include "util/logging.hpp"
#include "util/sync.hpp"

namespace molcache {

namespace {

template <class... Ts> struct Overloaded : Ts...
{
    using Ts::operator()...;
};
template <class... Ts> Overloaded(Ts...) -> Overloaded<Ts...>;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

SweepSpec::SweepSpec(std::string name)
    : name_(std::move(name))
{
}

SweepSpec &
SweepSpec::setAssoc(const std::string &label, const SetAssocParams &p)
{
    models_.push_back({label, p, std::nullopt});
    return *this;
}

SweepSpec &
SweepSpec::wayPartitioned(const std::string &label,
                          const WayPartitionedParams &p)
{
    models_.push_back({label, p, std::nullopt});
    return *this;
}

SweepSpec &
SweepSpec::molecular(const std::string &label, const MolecularCacheParams &p,
                     const std::optional<FaultScheduleSpec> &faults)
{
    models_.push_back({label, p, faults});
    return *this;
}

SweepSpec &
SweepSpec::workload(const std::string &label,
                    const std::vector<std::string> &profiles, MixPolicy mix)
{
    workloads_.push_back({label, profiles, mix, std::nullopt});
    return *this;
}

SweepSpec &
SweepSpec::workload(const std::string &label,
                    const std::vector<std::string> &profiles,
                    const GoalSet &goals, MixPolicy mix)
{
    workloads_.push_back({label, profiles, mix, goals});
    return *this;
}

SweepSpec &
SweepSpec::seeds(const std::vector<u64> &s)
{
    seeds_ = s;
    return *this;
}

SweepSpec &
SweepSpec::replicates(u32 n, u64 baseSeed)
{
    seeds_.clear();
    seeds_.reserve(n);
    for (u32 i = 0; i < n; ++i)
        seeds_.push_back(deriveJobSeed(baseSeed, i));
    return *this;
}

SweepSpec &
SweepSpec::goals(const GoalSet &g)
{
    goals_ = g;
    return *this;
}

SweepSpec &
SweepSpec::registrationGoal(double goal)
{
    registrationGoal_ = goal;
    return *this;
}

SweepSpec &
SweepSpec::references(u64 refs)
{
    totalReferences_ = refs;
    return *this;
}

SweepSpec &
SweepSpec::warmup(u64 refs)
{
    warmup_ = refs;
    return *this;
}

SweepSpec &
SweepSpec::inspect(InspectFn fn)
{
    inspect_ = std::move(fn);
    return *this;
}

std::vector<SimJob>
SweepSpec::expand() const
{
    if (models_.empty())
        fatal("sweep '", name_, "' has no model axis");
    if (workloads_.empty())
        fatal("sweep '", name_, "' has no workload axis");
    const std::vector<u64> seeds = seeds_.empty() ? std::vector<u64>{1}
                                                  : seeds_;

    std::vector<SimJob> jobs;
    jobs.reserve(models_.size() * workloads_.size() * seeds.size());
    u64 index = 0;
    for (const ModelPoint &m : models_) {
        for (const WorkloadPoint &w : workloads_) {
            for (const u64 seed : seeds) {
                SimJob job;
                job.index = index++;
                job.modelLabel = m.label;
                job.workloadLabel = w.label;
                job.profiles = w.profiles;
                job.model = m.params;
                job.faults = m.faults;
                job.registrationGoal = registrationGoal_;
                job.options.goals = w.goals ? *w.goals : goals_;
                job.options.warmup = warmup_;
                job.options.totalReferences = totalReferences_;
                job.options.mix = w.mix;
                job.options.seed = seed;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

std::unique_ptr<CacheModel>
buildJobModel(const SimJob &job)
{
    const u64 seed = job.options.seed;
    const u32 apps = static_cast<u32>(job.profiles.size());

    return std::visit(
        Overloaded{
            [&](const SetAssocParams &base) -> std::unique_ptr<CacheModel> {
                SetAssocParams p = base;
                p.seed = seed;
                return std::make_unique<SetAssocCache>(p);
            },
            [&](const WayPartitionedParams &base)
                -> std::unique_ptr<CacheModel> {
                auto cache = std::make_unique<WayPartitionedCache>(base);
                for (u32 i = 0; i < apps; ++i) {
                    const Asid asid{static_cast<u16>(i)};
                    cache->registerApplication(
                        asid, job.options.goals.goal(asid).value_or(
                                  job.registrationGoal));
                }
                return cache;
            },
            [&](const MolecularCacheParams &base)
                -> std::unique_ptr<CacheModel> {
                MolecularCacheParams p = base;
                p.seed = seed;
                auto cache = std::make_unique<MolecularCache>(p);
                registerApplications(*cache, apps, job.registrationGoal);
                if (job.faults) {
                    FaultScheduleSpec spec = *job.faults;
                    spec.seed = seed;
                    if (spec.windowStart == 0 && spec.windowEnd <= 1) {
                        // Default window: the middle half of the run, so
                        // the cache warms first and can re-converge.
                        const u64 refs = job.options.totalReferences != 0
                                             ? job.options.totalReferences
                                             : kPaperTraceLength;
                        spec.windowStart = refs / 4;
                        spec.windowEnd = refs / 4 * 3;
                    }
                    SimAccess{*cache}.setFaultInjector(FaultInjector::fromSpec(
                        spec, p.totalMolecules(), p.moleculesPerTile,
                        p.linesPerMolecule()));
                }
                return cache;
            },
        },
        job.model);
}

SweepPointResult
runSimJob(const SimJob &job, const InspectFn &inspect)
{
    SweepPointResult out;
    out.index = job.index;
    out.modelLabel = job.modelLabel;
    out.workloadLabel = job.workloadLabel;
    out.seed = job.options.seed;

    const auto start = std::chrono::steady_clock::now();
    auto model = buildJobModel(job);
    out.result = runWorkload(job.profiles, *model, job.options);
    out.wallSeconds = secondsSince(start);
    if (inspect)
        inspect(job, *model, out.extra);
    return out;
}

u64
SweepReport::totalAccesses() const
{
    u64 total = 0;
    for (const SweepPointResult &p : points)
        total += p.result.accesses;
    return total;
}

u64
SweepReport::totalContractViolations() const
{
    u64 total = 0;
    for (const SweepPointResult &p : points)
        total += p.result.contractViolations;
    return total;
}

const SweepPointResult &
SweepReport::point(const std::string &modelLabel,
                   const std::string &workloadLabel) const
{
    for (const SweepPointResult &p : points)
        if (p.modelLabel == modelLabel && p.workloadLabel == workloadLabel)
            return p;
    fatal("sweep '", sweep, "' has no point (", modelLabel, ", ",
          workloadLabel, ")");
}

void
SweepReport::writeJson(std::ostream &os, bool includeTiming) const
{
    JsonWriter json(os);
    json.beginObject();
    writeSchemaVersion(json);
    json.key("kind");
    json.value("sweep");
    json.key("sweep");
    json.value(sweep);
    json.key("points");
    json.beginArray();
    for (const SweepPointResult &p : points) {
        json.beginObject();
        json.key("index");
        json.value(p.index);
        json.key("model");
        json.value(p.modelLabel);
        json.key("workload");
        json.value(p.workloadLabel);
        json.key("seed");
        json.value(p.seed);
        if (!p.extra.empty()) {
            json.key("extra");
            json.beginObject();
            for (const auto &[key, value] : p.extra) {
                json.key(key);
                json.value(value);
            }
            json.endObject();
        }
        json.key("result");
        writeSimResultJson(json, p.result);
        json.endObject();
    }
    json.endArray();
    if (includeTiming) {
        json.key("timing");
        json.beginObject();
        json.key("threads");
        json.value(static_cast<u64>(threads));
        json.key("wall_seconds");
        json.value(wallSeconds);
        json.key("point_wall_seconds");
        json.beginArray();
        for (const SweepPointResult &p : points)
            json.value(p.wallSeconds);
        json.endArray();
        json.endObject();
    }
    json.endObject();
    os << "\n";
}

void
SweepReport::writeFile(const std::string &path, bool includeTiming) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    writeJson(out, includeTiming);
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options))
{
}

SweepReport
SweepRunner::run(const SweepSpec &spec) const
{
    const std::vector<SimJob> jobs = spec.expand();

    WorkStealingPool pool(options_.threads);
    SweepReport report;
    report.sweep = spec.name();
    report.threads = pool.threadCount();
    report.points.resize(jobs.size());

    // Each worker writes only its own pre-sized slot; the progress
    // callback is the single shared touch point and is serialized.
    struct Progress
    {
        mc::Mutex mutex;
        u64 done MOLCACHE_GUARDED_BY(mutex) = 0;
    } progress;

    const auto start = std::chrono::steady_clock::now();
    pool.forEach(jobs.size(), [&](u64 i) {
        report.points[i] = runSimJob(jobs[i], spec.inspector());
        if (options_.progress) {
            mc::MutexLock lock(progress.mutex);
            // lint: allow(lock-across-call): serialization IS the
            // documented SweepOptions::progress contract ("serialized by
            // the runner; safe to print from"); the callback must not
            // re-enter the runner.
            options_.progress(++progress.done, jobs.size());
        }
    });
    report.wallSeconds = secondsSince(start);
    return report;
}

} // namespace molcache
