/**
 * @file
 * A work-stealing thread pool for embarrassingly parallel job batches.
 *
 * Shape (after the request-pipeline pools in replicated-state systems
 * and SESC-style batch simulators): each worker owns a deque of job
 * indices; it pops its own work from the front and, when dry, steals
 * from the back of a victim's deque.  Stealing matters because sweep
 * jobs are wildly uneven — an 8 MiB molecular simulation runs ~8x
 * longer than a 1 MiB direct-mapped one — so static chunking would idle
 * most workers at the tail.
 *
 * Determinism contract: forEach(n, body) invokes body(i) exactly once
 * for every i in [0, n), in unspecified order and thread placement.
 * Callers that write only to per-index slots (the sweep engine's
 * pattern) therefore observe identical results for any thread count.
 */

#ifndef MOLCACHE_EXEC_THREAD_POOL_HPP
#define MOLCACHE_EXEC_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace molcache {

class WorkStealingPool
{
  public:
    /**
     * @param threads worker count; 0 = hardware concurrency.  With one
     * thread no workers are spawned and forEach runs inline on the
     * caller — the serial baseline goes through the exact same per-job
     * code path.
     */
    explicit WorkStealingPool(u32 threads = 0);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Effective parallelism (>= 1). */
    u32 threadCount() const { return threadCount_; }

    /**
     * Run body(i) once for every i in [0, jobCount); blocks until all
     * jobs completed.  If any job throws, the first exception is
     * rethrown here after the batch drains.  Not reentrant: one batch
     * at a time per pool.
     */
    void forEach(u64 jobCount, const std::function<void(u64)> &body);

    /** hardware_concurrency with a floor of 1. */
    static u32 defaultThreadCount();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<u64> jobs;
    };

    void workerLoop(size_t self);
    bool popOwn(size_t self, u64 &job);
    bool stealFromVictim(size_t self, u64 &job);
    void drainEpoch(size_t self);

    u32 threadCount_ = 1;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable batchDone_;
    const std::function<void(u64)> *body_ = nullptr; // valid while pending_ > 0
    std::atomic<u64> pending_{0};
    u64 epoch_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_; // guarded by mutex_
};

} // namespace molcache

#endif // MOLCACHE_EXEC_THREAD_POOL_HPP
