/**
 * @file
 * A work-stealing thread pool for embarrassingly parallel job batches.
 *
 * Shape (after the request-pipeline pools in replicated-state systems
 * and SESC-style batch simulators): each worker owns a deque of job
 * indices; it pops its own work from the front and, when dry, steals
 * from the back of a victim's deque.  Stealing matters because sweep
 * jobs are wildly uneven — an 8 MiB molecular simulation runs ~8x
 * longer than a 1 MiB direct-mapped one — so static chunking would idle
 * most workers at the tail.
 *
 * Determinism contract: forEach(n, body) invokes body(i) exactly once
 * for every i in [0, n), in unspecified order and thread placement.
 * Callers that write only to per-index slots (the sweep engine's
 * pattern) therefore observe identical results for any thread count.
 */

#ifndef MOLCACHE_EXEC_THREAD_POOL_HPP
#define MOLCACHE_EXEC_THREAD_POOL_HPP

#include <atomic>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/types.hpp"

namespace molcache {

class WorkStealingPool
{
  public:
    /**
     * @param threads worker count; 0 = hardware concurrency.  With one
     * thread no workers are spawned and forEach runs inline on the
     * caller — the serial baseline goes through the exact same per-job
     * code path.
     */
    explicit WorkStealingPool(u32 threads = 0);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Effective parallelism (>= 1). */
    u32 threadCount() const { return threadCount_; }

    /**
     * Run body(i) once for every i in [0, jobCount); blocks until all
     * jobs completed.  If any job throws, the first exception is
     * rethrown here after the batch drains.  Not reentrant: one batch
     * at a time per pool.
     */
    void forEach(u64 jobCount, const std::function<void(u64)> &body);

    /** hardware_concurrency with a floor of 1. */
    static u32 defaultThreadCount();

  private:
    struct WorkerQueue
    {
        mc::Mutex mutex;
        std::deque<u64> jobs MOLCACHE_GUARDED_BY(mutex);
    };

    void workerLoop(size_t self);
    bool popOwn(size_t self, u64 &job);
    bool stealFromVictim(size_t self, u64 &job);
    void drainEpoch(size_t self);
    /** Record a job's exception (first one wins). */
    void recordError() MOLCACHE_EXCLUDES(mutex_);

    // Set once in the constructor, immutable while workers run.
    u32 threadCount_ = 1;                            // lint: unguarded(set in the constructor, read-only afterwards)
    std::vector<std::unique_ptr<WorkerQueue>> queues_;  // lint: unguarded(vector shape fixed in the constructor; element access goes through each WorkerQueue's own mutex)
    std::vector<std::thread> workers_;               // lint: unguarded(joined only in the destructor, after stopping_)

    mc::Mutex mutex_;
    mc::CondVar workReady_;
    mc::CondVar batchDone_;
    /** Valid while pending_ > 0 (the batch body outlives its jobs). */
    const std::function<void(u64)> *body_ MOLCACHE_GUARDED_BY(mutex_) =
        nullptr;
    std::atomic<u64> pending_{0};
    u64 epoch_ MOLCACHE_GUARDED_BY(mutex_) = 0;
    bool stopping_ MOLCACHE_GUARDED_BY(mutex_) = false;
    std::exception_ptr firstError_ MOLCACHE_GUARDED_BY(mutex_);
};

} // namespace molcache

#endif // MOLCACHE_EXEC_THREAD_POOL_HPP
