/**
 * @file
 * Deterministic seed derivation for parallel sweeps.
 *
 * Every sweep job owns a private RNG stream derived from (base seed,
 * job/replicate index) so N-thread and 1-thread executions of the same
 * SweepSpec are bit-identical: no job ever shares generator state with
 * another, and the derivation is pure arithmetic — independent of
 * scheduling order.
 *
 * The mixer is SplitMix64 (Steele, Lea & Flood 2014), the standard
 * stream-splitting finalizer: invertible, full 64-bit avalanche, so
 * adjacent bases/indices yield uncorrelated seeds.
 */

#ifndef MOLCACHE_EXEC_SEED_STREAM_HPP
#define MOLCACHE_EXEC_SEED_STREAM_HPP

#include "util/types.hpp"

namespace molcache {

/** One SplitMix64 finalization round. */
constexpr u64
splitmix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Seed for replicate @p index of a sweep rooted at @p baseSeed.
 * Counter-based: the mixed base selects a stream and the index steps
 * along it by the golden gamma, exactly how SplitMix64 itself advances.
 * The combination is asymmetric in (base, index) — an XOR of two mixed
 * halves would alias (a, b) with (b+1, a-1) structurally — so distinct
 * (base, index) pairs collide only by 64-bit accident.
 */
constexpr u64
deriveJobSeed(u64 baseSeed, u64 index)
{
    return splitmix64(splitmix64(baseSeed) +
                      (index + 1) * 0x9e3779b97f4a7c15ull);
}

} // namespace molcache

#endif // MOLCACHE_EXEC_SEED_STREAM_HPP
