#include "exec/thread_pool.hpp"

#include <algorithm>

#include "contract/contract.hpp"

namespace molcache {

u32
WorkStealingPool::defaultThreadCount()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

WorkStealingPool::WorkStealingPool(u32 threads)
    : threadCount_(threads == 0 ? defaultThreadCount() : threads)
{
    if (threadCount_ == 1)
        return; // inline mode: no workers, forEach runs on the caller
    queues_.reserve(threadCount_);
    for (u32 i = 0; i < threadCount_; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threadCount_);
    for (u32 i = 0; i < threadCount_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    {
        mc::MutexLock lock(mutex_);
        stopping_ = true;
    }
    workReady_.notifyAll();
    for (std::thread &t : workers_)
        t.join();
}

bool
WorkStealingPool::popOwn(size_t self, u64 &job)
{
    WorkerQueue &q = *queues_[self];
    mc::MutexLock lock(q.mutex);
    if (q.jobs.empty())
        return false;
    job = q.jobs.front();
    q.jobs.pop_front();
    return true;
}

bool
WorkStealingPool::stealFromVictim(size_t self, u64 &job)
{
    // Scan victims starting after ourselves so thieves spread out.
    for (size_t step = 1; step < queues_.size(); ++step) {
        WorkerQueue &q = *queues_[(self + step) % queues_.size()];
        mc::MutexLock lock(q.mutex);
        if (q.jobs.empty())
            continue;
        job = q.jobs.back();
        q.jobs.pop_back();
        return true;
    }
    return false;
}

void
WorkStealingPool::recordError()
{
    mc::MutexLock lock(mutex_);
    if (!firstError_)
        firstError_ = std::current_exception();
}

void
WorkStealingPool::drainEpoch(size_t self)
{
    for (;;) {
        u64 job = 0;
        if (popOwn(self, job) || stealFromVictim(self, job)) {
            // Re-read the batch body per job: a worker can straggle from
            // one batch into the next, and the previous std::function is
            // gone once its forEach returned.  Holding an unexecuted job
            // keeps pending_ > 0, which keeps body_ valid.  The copied
            // pointer is invoked OUTSIDE the lock: job bodies are user
            // callbacks and may run for seconds (lock-across-call).
            const std::function<void(u64)> *body = nullptr;
            {
                mc::MutexLock lock(mutex_);
                body = body_;
            }
            try {
                (*body)(job);
            } catch (...) {
                recordError();
            }
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                mc::MutexLock lock(mutex_);
                batchDone_.notifyAll();
            }
        } else if (pending_.load(std::memory_order_acquire) == 0) {
            return; // batch fully executed
        } else {
            // Another worker holds the last jobs; jobs are coarse, so a
            // brief yield-spin at the tail is cheaper than re-sleeping.
            std::this_thread::yield();
        }
    }
}

void
WorkStealingPool::workerLoop(size_t self)
{
    u64 seen_epoch = 0;
    for (;;) {
        {
            mc::MutexLock lock(mutex_);
            while (!stopping_ && epoch_ == seen_epoch)
                workReady_.wait(mutex_);
            if (stopping_)
                return;
            seen_epoch = epoch_;
        }
        drainEpoch(self);
    }
}

void
WorkStealingPool::forEach(u64 jobCount, const std::function<void(u64)> &body)
{
    if (jobCount == 0)
        return;
    if (threadCount_ == 1 || workers_.empty()) {
        for (u64 i = 0; i < jobCount; ++i)
            body(i);
        return;
    }

    {
        mc::MutexLock lock(mutex_);
        MOLCACHE_EXPECT(pending_.load(std::memory_order_acquire) == 0,
                        "WorkStealingPool::forEach is not reentrant");
        body_ = &body;
        pending_.store(jobCount, std::memory_order_release);
        // Deal contiguous blocks; uneven tails rebalance by stealing.
        const u64 per = jobCount / threadCount_;
        const u64 extra = jobCount % threadCount_;
        u64 next = 0;
        for (u32 w = 0; w < threadCount_; ++w) {
            const u64 take = per + (w < extra ? 1 : 0);
            mc::MutexLock qlock(queues_[w]->mutex);
            for (u64 i = 0; i < take; ++i)
                queues_[w]->jobs.push_back(next++);
        }
        ++epoch_;
    }
    workReady_.notifyAll();

    std::exception_ptr error;
    {
        mc::MutexLock lock(mutex_);
        while (pending_.load(std::memory_order_acquire) != 0)
            batchDone_.wait(mutex_);
        body_ = nullptr;
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace molcache
