/**
 * @file
 * The declarative parallel sweep engine.
 *
 * A SweepSpec names three axes — cache configurations, workload
 * profiles, seeds — and the SweepRunner executes their cartesian
 * product on a work-stealing thread pool (exec/thread_pool.hpp).  Every
 * point is one SimJob: a plain value copied into the worker, carrying
 * the model parameters, the profile list and a private RunOptions whose
 * seed selects deterministic per-job RNG streams.  No state is shared
 * between jobs, so the report is bit-identical for any thread count;
 * seed replication uses the job-indexed derivation in
 * exec/seed_stream.hpp.
 *
 * Results aggregate into a SweepReport ordered by job index and can be
 * serialized as a schema-versioned JSON document (conventionally
 * `BENCH_sweep.json`) — the repo's machine-readable perf baseline
 * artifact.  See docs/sweeps.md.
 */

#ifndef MOLCACHE_EXEC_SWEEP_HPP
#define MOLCACHE_EXEC_SWEEP_HPP

#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "cache/set_assoc.hpp"
#include "cache/way_partitioned.hpp"
#include "core/molecular_cache.hpp"
#include "fault/fault_injector.hpp"
#include "sim/run_options.hpp"
#include "sim/simulator.hpp"

namespace molcache {

/** Any buildable cache configuration. */
using ModelParams =
    std::variant<SetAssocParams, WayPartitionedParams, MolecularCacheParams>;

/** One cache-configuration axis point. */
struct ModelPoint
{
    std::string label;
    ModelParams params;
    /**
     * Optional fault schedule (molecular models only).  The job seed
     * overrides the spec's seed, and a default [refs/4, 3*refs/4)
     * window is applied when the spec's window was left at its default.
     */
    std::optional<FaultScheduleSpec> faults;
};

/** One workload axis point. */
struct WorkloadPoint
{
    std::string label;
    std::vector<std::string> profiles;
    MixPolicy mix = MixPolicy::RoundRobin;
    /** Per-workload goal override; absent = the spec-level GoalSet. */
    std::optional<GoalSet> goals;
};

/**
 * One executable sweep point: a copyable value the pool hands to a
 * worker.  options.seed is the job's seed; it also overrides the seed
 * inside the model params at build time.
 */
struct SimJob
{
    u64 index = 0;
    std::string modelLabel;
    std::string workloadLabel;
    std::vector<std::string> profiles;
    ModelParams model;
    std::optional<FaultScheduleSpec> faults;
    /** Resize goal used when registering ASIDs on partitioned models. */
    double registrationGoal = 0.25;
    RunOptions options;
};

/** Extra per-point metrics (ordered, so JSON stays deterministic). */
using MetricMap = std::map<std::string, double>;

/**
 * Post-run hook, invoked in the worker right after a job's simulation
 * with the still-live model: record model introspection (molecules
 * held, per-app HPM, ...) into the point's extra metrics.  Must touch
 * only its own arguments — it runs concurrently across jobs.
 */
using InspectFn = std::function<void(const SimJob &, CacheModel &,
                                     MetricMap &)>;

class SweepSpec
{
  public:
    explicit SweepSpec(std::string name);

    /** @{ Axis builders (chainable). */
    SweepSpec &setAssoc(const std::string &label, const SetAssocParams &p);
    SweepSpec &wayPartitioned(const std::string &label,
                              const WayPartitionedParams &p);
    SweepSpec &molecular(
        const std::string &label, const MolecularCacheParams &p,
        const std::optional<FaultScheduleSpec> &faults = std::nullopt);
    SweepSpec &workload(const std::string &label,
                        const std::vector<std::string> &profiles,
                        MixPolicy mix = MixPolicy::RoundRobin);
    /** Workload with its own GoalSet (e.g. fig5's goal-less-mcf graph). */
    SweepSpec &workload(const std::string &label,
                        const std::vector<std::string> &profiles,
                        const GoalSet &goals,
                        MixPolicy mix = MixPolicy::RoundRobin);
    /** Explicit seeds: points reproduce single runs at the same seed. */
    SweepSpec &seeds(const std::vector<u64> &s);
    /** @p n derived replicate seeds via deriveJobSeed(baseSeed, i). */
    SweepSpec &replicates(u32 n, u64 baseSeed = 1);
    /** @} */

    /** @{ Per-job RunOptions fields shared by every point. */
    SweepSpec &goals(const GoalSet &g);
    SweepSpec &registrationGoal(double goal);
    SweepSpec &references(u64 refs);
    SweepSpec &warmup(u64 refs);
    /** @} */

    SweepSpec &inspect(InspectFn fn);

    const std::string &name() const { return name_; }
    const InspectFn &inspector() const { return inspect_; }

    /**
     * The ordered cartesian product: models x workloads x seeds, job
     * indices 0..n-1 in that nesting order.  fatal()s on an empty axis.
     */
    std::vector<SimJob> expand() const;

  private:
    std::string name_;
    std::vector<ModelPoint> models_;
    std::vector<WorkloadPoint> workloads_;
    std::vector<u64> seeds_;
    GoalSet goals_;
    double registrationGoal_ = 0.25;
    u64 totalReferences_ = 0;
    u64 warmup_ = 0;
    InspectFn inspect_;
};

/** Outcome of one sweep point, in job-index order inside SweepReport. */
struct SweepPointResult
{
    u64 index = 0;
    std::string modelLabel;
    std::string workloadLabel;
    u64 seed = 0;
    SimResult result;
    MetricMap extra;
    /** Wall time of this point (excluded from deterministic JSON). */
    double wallSeconds = 0.0;
};

struct SweepReport
{
    std::string sweep;
    u32 threads = 1;
    double wallSeconds = 0.0;
    std::vector<SweepPointResult> points;

    u64 totalAccesses() const;
    u64 totalContractViolations() const;

    /** First point matching both labels (any seed); fatal() if absent. */
    const SweepPointResult &point(const std::string &modelLabel,
                                  const std::string &workloadLabel) const;

    /**
     * Serialize as a schema-versioned JSON document.  Deterministic by
     * default; @p includeTiming appends a "timing" section (threads,
     * wall seconds) that naturally varies run to run.
     */
    void writeJson(std::ostream &os, bool includeTiming = false) const;
    void writeFile(const std::string &path, bool includeTiming = false) const;
};

struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    u32 threads = 0;
    /** Called after each point completes: (pointsDone, pointsTotal).
     * Serialized by the runner; safe to print from. */
    std::function<void(u64, u64)> progress;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    SweepReport run(const SweepSpec &spec) const;

  private:
    SweepOptions options_;
};

/** Build the (seed-overridden, registered, fault-armed) model for one
 * job — exposed for tests and single-point tools. */
std::unique_ptr<CacheModel> buildJobModel(const SimJob &job);

/** Execute one job start to finish on the calling thread. */
SweepPointResult runSimJob(const SimJob &job,
                           const InspectFn &inspect = {});

} // namespace molcache

#endif // MOLCACHE_EXEC_SWEEP_HPP
