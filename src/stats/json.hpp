/**
 * @file
 * Minimal streaming JSON writer so benches can emit machine-readable
 * results alongside the human-readable tables.  Only what the harness
 * needs: objects, arrays, strings, numbers, booleans.
 */

#ifndef MOLCACHE_STATS_JSON_HPP
#define MOLCACHE_STATS_JSON_HPP

#include <ostream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace molcache {

/**
 * Version stamped as "schemaVersion" into every result JSON document the
 * repo emits (sweep reports, SimResult dumps) so downstream tooling can
 * detect format drift.  Bump on any breaking change to the emitted
 * shape and note the change in docs/sweeps.md.
 */
inline constexpr u64 kResultSchemaVersion = 1;

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Key inside an object; must be followed by a value or container. */
    void key(const std::string &name);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(u64 v);
    void value(i64 v);
    void value(bool v);

  private:
    enum class Ctx { Top, Object, Array };

    void preValue();
    void indent();
    static std::string escape(const std::string &s);

    std::ostream &os_;
    std::vector<Ctx> stack_;
    std::vector<bool> first_;
    bool pendingKey_ = false;
};

/** Emit the standard "schemaVersion" member into the current object. */
void writeSchemaVersion(JsonWriter &json);

} // namespace molcache

#endif // MOLCACHE_STATS_JSON_HPP
