#include "stats/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace molcache {

JsonWriter::JsonWriter(std::ostream &os)
    : os_(os)
{
    stack_.push_back(Ctx::Top);
    first_.push_back(true);
}

JsonWriter::~JsonWriter()
{
    // Don't throw from a destructor; unbalanced writers are a bug but we
    // only warn here to keep stack unwinding safe.
    if (stack_.size() != 1)
        warn("JsonWriter destroyed with unclosed containers");
}

void
JsonWriter::preValue()
{
    if (stack_.back() == Ctx::Object && !pendingKey_)
        panic("JSON value in object without a key");
    if (stack_.back() == Ctx::Array || stack_.back() == Ctx::Top) {
        if (!first_.back())
            os_ << ",";
        if (stack_.back() == Ctx::Array) {
            os_ << "\n";
            indent();
        }
    }
    first_.back() = false;
    pendingKey_ = false;
}

void
JsonWriter::indent()
{
    for (size_t i = 1; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << "{";
    stack_.push_back(Ctx::Object);
    first_.push_back(true);
}

void
JsonWriter::endObject()
{
    MOLCACHE_ASSERT(stack_.back() == Ctx::Object, "endObject outside object");
    MOLCACHE_ASSERT(!pendingKey_, "dangling JSON key");
    stack_.pop_back();
    const bool empty = first_.back();
    first_.pop_back();
    if (!empty) {
        os_ << "\n";
        indent();
    }
    os_ << "}";
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << "[";
    stack_.push_back(Ctx::Array);
    first_.push_back(true);
}

void
JsonWriter::endArray()
{
    MOLCACHE_ASSERT(stack_.back() == Ctx::Array, "endArray outside array");
    stack_.pop_back();
    const bool empty = first_.back();
    first_.pop_back();
    if (!empty) {
        os_ << "\n";
        indent();
    }
    os_ << "]";
}

void
JsonWriter::key(const std::string &name)
{
    MOLCACHE_ASSERT(stack_.back() == Ctx::Object, "JSON key outside object");
    MOLCACHE_ASSERT(!pendingKey_, "two JSON keys in a row");
    if (!first_.back())
        os_ << ",";
    os_ << "\n";
    indent();
    os_ << "\"" << escape(name) << "\": ";
    first_.back() = false;
    pendingKey_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    preValue();
    os_ << "\"" << escape(v) << "\"";
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    preValue();
    if (std::isnan(v) || std::isinf(v)) {
        os_ << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os_ << buf;
}

void
JsonWriter::value(u64 v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(i64 v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
}

void
writeSchemaVersion(JsonWriter &json)
{
    json.key("schemaVersion");
    json.value(kResultSchemaVersion);
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace molcache
