#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>

#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace molcache {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    MOLCACHE_ASSERT(!header_.empty(), "table needs at least one column");
}

size_t
TablePrinter::addRow()
{
    rows_.emplace_back(header_.size());
    return rows_.size() - 1;
}

void
TablePrinter::cell(size_t row, size_t col, const std::string &text)
{
    MOLCACHE_ASSERT(row < rows_.size() && col < header_.size(),
                    "table cell out of range");
    rows_[row][col] = text;
}

void
TablePrinter::cell(size_t row, size_t col, double value, int precision)
{
    cell(row, col, formatDouble(value, precision));
}

void
TablePrinter::cell(size_t row, size_t col, u64 value)
{
    cell(row, col, std::to_string(value));
}

void
TablePrinter::row(const std::vector<std::string> &cells)
{
    MOLCACHE_ASSERT(cells.size() == header_.size(),
                    "row width does not match header");
    rows_.push_back(cells);
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &r : rows_)
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &r) {
        os << "|";
        for (size_t c = 0; c < r.size(); ++c)
            os << " " << std::setw(static_cast<int>(width[c])) << std::left
               << r[c] << " |";
        os << "\n";
    };
    auto print_rule = [&]() {
        os << "+";
        for (size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << "+";
        os << "\n";
    };

    print_rule();
    print_row(header_);
    print_rule();
    for (const auto &r : rows_)
        print_row(r);
    print_rule();
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t c = 0; c < r.size(); ++c)
            os << (c ? "," : "") << r[c];
        os << "\n";
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace molcache
