/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harness to print
 * paper-style tables.
 */

#ifndef MOLCACHE_STATS_TABLE_HPP
#define MOLCACHE_STATS_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace molcache {

/**
 * Column-aligned text table.  Collect rows of strings, then print().
 * Numeric convenience setters format with fixed precision.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    /** Begin a new row; returns the row index. */
    size_t addRow();

    /** Set cell (row, col) to text / formatted number. */
    void cell(size_t row, size_t col, const std::string &text);
    void cell(size_t row, size_t col, double value, int precision = 4);
    void cell(size_t row, size_t col, u64 value);

    /** Shortcut: append a full row at once. */
    void row(const std::vector<std::string> &cells);

    /** Render with column alignment to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }
    size_t columns() const { return header_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace molcache

#endif // MOLCACHE_STATS_TABLE_HPP
