/**
 * @file
 * Sampled time series of named quantities — the workhorse behind the
 * resize-trajectory outputs (region sizes and miss rates over simulated
 * time, CSV for plotting).
 */

#ifndef MOLCACHE_STATS_TIMESERIES_HPP
#define MOLCACHE_STATS_TIMESERIES_HPP

#include <ostream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace molcache {

class TimeSeries
{
  public:
    /** @param columns value names (the tick column is implicit). */
    explicit TimeSeries(std::vector<std::string> columns);

    /** Append one sample; @p values must match the column count. */
    void sample(Tick tick, const std::vector<double> &values);

    size_t samples() const { return ticks_.size(); }
    size_t columns() const { return columns_.size(); }
    const std::vector<std::string> &columnNames() const { return columns_; }

    Tick tickAt(size_t row) const { return ticks_.at(row); }
    double valueAt(size_t row, size_t column) const;

    /** Last sampled value of @p column. */
    double latest(size_t column) const;

    /** Emit as CSV: header `tick,<columns...>` then one row per sample. */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<std::string> columns_;
    std::vector<Tick> ticks_;
    std::vector<double> values_; // row-major, samples x columns
};

} // namespace molcache

#endif // MOLCACHE_STATS_TIMESERIES_HPP
