#include "stats/metrics.hpp"

#include <cmath>

#include "stats/counter.hpp"
#include "util/logging.hpp"

namespace molcache {

GoalSet
GoalSet::uniform(double goal, u32 count)
{
    GoalSet out;
    for (u32 i = 0; i < count; ++i)
        out.set(static_cast<Asid>(i), goal);
    return out;
}

void
GoalSet::set(Asid asid, double goal)
{
    MOLCACHE_ASSERT(goal >= 0.0 && goal <= 1.0, "goal out of [0,1]");
    goals_[asid] = goal;
}

std::optional<double>
GoalSet::goal(Asid asid) const
{
    const auto it = goals_.find(asid);
    if (it == goals_.end())
        return std::nullopt;
    return it->second;
}

double
deviationFromGoal(double missRate, double goal)
{
    return std::fabs(missRate - goal);
}

double
averageDeviation(const std::map<Asid, double> &missRates, const GoalSet &goals)
{
    double sum = 0.0;
    u32 n = 0;
    for (const auto &[asid, goal] : goals.all()) {
        const auto it = missRates.find(asid);
        if (it == missRates.end())
            continue;
        sum += deviationFromGoal(it->second, goal);
        ++n;
    }
    return n == 0 ? 0.0 : sum / n;
}

double
hitPerMolecule(u64 hits, u64 accesses, u32 molecules)
{
    if (molecules == 0)
        return 0.0;
    return ratio(hits, accesses) / molecules;
}

double
powerDeviationProduct(double powerWatts, double avgDeviation)
{
    return powerWatts * avgDeviation;
}

} // namespace molcache
