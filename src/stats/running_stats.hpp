/**
 * @file
 * Streaming mean / variance / extrema (Welford's algorithm).
 */

#ifndef MOLCACHE_STATS_RUNNING_STATS_HPP
#define MOLCACHE_STATS_RUNNING_STATS_HPP

#include <cmath>
#include <limits>

#include "util/types.hpp"

namespace molcache {

class RunningStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
        sum_ += x;
    }

    u64 count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        *this = RunningStats();
    }

  private:
    u64 n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace molcache

#endif // MOLCACHE_STATS_RUNNING_STATS_HPP
