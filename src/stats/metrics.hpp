/**
 * @file
 * QoS metrics from the paper's evaluation (section 4).
 *
 *  - average deviation from the miss-rate goal (Figure 5, Table 2);
 *  - hit-per-molecule, HPM (Figure 6);
 *  - power-deviation product (Table 5).
 *
 * Deviation is |missRate - goal|, averaged over the applications that have
 * a goal (see DESIGN.md "Interpretation notes").
 */

#ifndef MOLCACHE_STATS_METRICS_HPP
#define MOLCACHE_STATS_METRICS_HPP

#include <map>
#include <optional>

#include "util/types.hpp"

namespace molcache {

/** Per-application miss-rate goals; apps absent from the map have none. */
class GoalSet
{
  public:
    GoalSet() = default;

    /** Assign the same goal to every ASID in [0, count). */
    static GoalSet uniform(double goal, u32 count);

    void set(Asid asid, double goal);
    std::optional<double> goal(Asid asid) const;
    bool hasGoal(Asid asid) const { return goals_.count(asid) != 0; }
    size_t size() const { return goals_.size(); }

    const std::map<Asid, double> &all() const { return goals_; }

  private:
    std::map<Asid, double> goals_;
};

/** |missRate - goal| for one application. */
double deviationFromGoal(double missRate, double goal);

/**
 * Mean deviation over applications that have goals.
 * @param missRates  per-ASID observed miss rates
 * @param goals      per-ASID goals; ASIDs without goals are skipped
 */
double averageDeviation(const std::map<Asid, double> &missRates,
                        const GoalSet &goals);

/**
 * Hit rate contribution per molecule: the application's hit rate divided
 * by the number of molecules its region occupies (Figure 6 metric).
 * Returns 0 when no molecules are assigned.
 */
double hitPerMolecule(u64 hits, u64 accesses, u32 molecules);

/** Power-deviation product (Table 5 metric). */
double powerDeviationProduct(double powerWatts, double avgDeviation);

} // namespace molcache

#endif // MOLCACHE_STATS_METRICS_HPP
