#include "stats/timeseries.hpp"

#include "util/logging.hpp"

namespace molcache {

TimeSeries::TimeSeries(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
    MOLCACHE_ASSERT(!columns_.empty(), "time series needs columns");
}

void
TimeSeries::sample(Tick tick, const std::vector<double> &values)
{
    MOLCACHE_ASSERT(values.size() == columns_.size(),
                    "sample width does not match columns");
    MOLCACHE_ASSERT(ticks_.empty() || tick >= ticks_.back(),
                    "samples must be in non-decreasing tick order");
    ticks_.push_back(tick);
    values_.insert(values_.end(), values.begin(), values.end());
}

double
TimeSeries::valueAt(size_t row, size_t column) const
{
    MOLCACHE_ASSERT(row < ticks_.size() && column < columns_.size(),
                    "time-series index out of range");
    return values_[row * columns_.size() + column];
}

double
TimeSeries::latest(size_t column) const
{
    MOLCACHE_ASSERT(!ticks_.empty(), "latest() on empty series");
    return valueAt(ticks_.size() - 1, column);
}

void
TimeSeries::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (const auto &c : columns_)
        os << "," << c;
    os << "\n";
    for (size_t r = 0; r < ticks_.size(); ++r) {
        os << ticks_[r];
        for (size_t c = 0; c < columns_.size(); ++c)
            os << "," << valueAt(r, c);
        os << "\n";
    }
}

} // namespace molcache
