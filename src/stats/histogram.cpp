#include "stats/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace molcache {

LinearHistogram::LinearHistogram(double lo, double hi, u32 buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    MOLCACHE_ASSERT(hi > lo && buckets > 0, "degenerate histogram");
}

void
LinearHistogram::add(double x, u64 weight)
{
    const double span = hi_ - lo_;
    double rel = (x - lo_) / span;
    rel = std::clamp(rel, 0.0, 1.0);
    u32 idx = static_cast<u32>(rel * counts_.size());
    if (idx >= counts_.size())
        idx = static_cast<u32>(counts_.size()) - 1;
    counts_[idx] += weight;
    total_ += weight;
}

double
LinearHistogram::bucketLow(u32 i) const
{
    return lo_ + (hi_ - lo_) * i / counts_.size();
}

double
LinearHistogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double seen = 0;
    for (u32 i = 0; i < counts_.size(); ++i) {
        seen += static_cast<double>(counts_[i]);
        if (seen >= target) {
            const double width = (hi_ - lo_) / counts_.size();
            return bucketLow(i) + width / 2;
        }
    }
    return hi_;
}

std::string
LinearHistogram::toString() const
{
    std::ostringstream os;
    for (u32 i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os << "[" << bucketLow(i) << "," << bucketLow(i + 1 == counts_.size()
                                                          ? i
                                                          : i + 1)
           << ") " << counts_[i] << "\n";
    }
    return os.str();
}

Log2Histogram::Log2Histogram(u32 maxLog2)
    : counts_(maxLog2 + 1, 0)
{
}

void
Log2Histogram::add(u64 x, u64 weight)
{
    u32 bucket = x == 0 ? 0 : floorLog2(x) + 1;
    if (bucket >= counts_.size())
        bucket = static_cast<u32>(counts_.size()) - 1;
    counts_[bucket] += weight;
    total_ += weight;
}

std::string
Log2Histogram::toString() const
{
    std::ostringstream os;
    for (u32 i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        if (i == 0)
            os << "[0] ";
        else
            os << "[2^" << (i - 1) << "..2^" << i << ") ";
        os << counts_[i] << "\n";
    }
    return os.str();
}

} // namespace molcache
