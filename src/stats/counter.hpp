/**
 * @file
 * Simple event counters and derived ratios.
 */

#ifndef MOLCACHE_STATS_COUNTER_HPP
#define MOLCACHE_STATS_COUNTER_HPP

#include "util/types.hpp"

namespace molcache {

/** Monotonic event counter with interval snapshots. */
class Counter
{
  public:
    void increment(u64 by = 1) { value_ += by; }
    u64 value() const { return value_; }

    /** Value accumulated since the last takeInterval(). */
    u64 intervalValue() const { return value_ - lastSnapshot_; }

    /** Close the current interval and return its count. */
    u64
    takeInterval()
    {
        const u64 delta = value_ - lastSnapshot_;
        lastSnapshot_ = value_;
        return delta;
    }

    void
    reset()
    {
        value_ = 0;
        lastSnapshot_ = 0;
    }

  private:
    u64 value_ = 0;
    u64 lastSnapshot_ = 0;
};

/** numerator/denominator with divide-by-zero yielding 0. */
inline double
ratio(u64 num, u64 den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace molcache

#endif // MOLCACHE_STATS_COUNTER_HPP
