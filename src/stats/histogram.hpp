/**
 * @file
 * Linear and log2-bucketed histograms for distribution reporting.
 */

#ifndef MOLCACHE_STATS_HISTOGRAM_HPP
#define MOLCACHE_STATS_HISTOGRAM_HPP

#include <string>
#include <vector>

#include "util/types.hpp"

namespace molcache {

/** Fixed-width linear histogram over [lo, hi); out-of-range clamps. */
class LinearHistogram
{
  public:
    LinearHistogram(double lo, double hi, u32 buckets);

    void add(double x, u64 weight = 1);

    u32 buckets() const { return static_cast<u32>(counts_.size()); }
    u64 bucketCount(u32 i) const { return counts_.at(i); }
    double bucketLow(u32 i) const;
    u64 total() const { return total_; }

    /** Approximate p-quantile (0..1) from bucket midpoints. */
    double quantile(double q) const;

    std::string toString() const;

  private:
    double lo_;
    double hi_;
    std::vector<u64> counts_;
    u64 total_ = 0;
};

/** Power-of-two bucketed histogram for values like reuse distances. */
class Log2Histogram
{
  public:
    explicit Log2Histogram(u32 maxLog2 = 40);

    void add(u64 x, u64 weight = 1);

    u64 bucketCount(u32 log2bucket) const { return counts_.at(log2bucket); }
    u32 buckets() const { return static_cast<u32>(counts_.size()); }
    u64 total() const { return total_; }

    std::string toString() const;

  private:
    std::vector<u64> counts_;
    u64 total_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_STATS_HISTOGRAM_HPP
