#include "workload/adversarial.hpp"

#include <algorithm>

#include "util/config.hpp"
#include "util/logging.hpp"
#include "workload/profile.hpp"

namespace molcache {

namespace {

// Footprints are sized against the default guardian test geometry (a
// 2 MiB cluster of 8 KiB molecules):
//  - the PhaseFlip hot set fits in a handful of molecules while its
//    cold chase wants the whole cluster;
//  - the Hog's chase is 8x the cluster, so no allocation helps it;
//  - the Steady victim needs ~12 molecules to sit at its goal.
constexpr u64 kPhaseHotFootprint = 48 * 1024;
constexpr u64 kPhaseColdFootprint = 1024 * 1024;
constexpr u64 kPhaseLength = 40'000;
constexpr u64 kHogFootprint = 16ull * 1024 * 1024;
constexpr u64 kBurstFootprint = 256 * 1024;
constexpr u64 kBurstIdleFootprint = 64;
constexpr u64 kBurstOnLength = 25'000;
constexpr u64 kBurstOffLength = 25'000;
constexpr u64 kSteadyFootprint = 96 * 1024;

/** Nominal resize period (MolecularCacheParams default) used to express
 * a hint's lead in control epochs. */
constexpr double kNominalResizePeriod = 25'000.0;

} // namespace

bool
isAdversaryKind(const std::string &text)
{
    return text == "phaseflip" || text == "hog" || text == "bursty" ||
           text == "steady";
}

HintPolicy
hintPolicyFromConfig(const Config &cfg)
{
    HintPolicy hints;
    hints.enabled = cfg.getBool("workload.hint.enabled", hints.enabled);
    hints.leadAccesses = static_cast<u64>(
        cfg.getInt("workload.hint.lead",
                   static_cast<i64>(hints.leadAccesses)));
    hints.jitterAccesses = static_cast<u64>(
        cfg.getInt("workload.hint.jitter",
                   static_cast<i64>(hints.jitterAccesses)));
    hints.magnitudeScale =
        cfg.getDouble("workload.hint.magnitude", hints.magnitudeScale);
    hints.invertPhase =
        cfg.getBool("workload.hint.invert", hints.invertPhase);
    hints.dropProbability =
        cfg.getDouble("workload.hint.drop", hints.dropProbability);
    hints.confidence =
        cfg.getDouble("workload.hint.confidence", hints.confidence);
    return hints;
}

AdversaryKind
parseAdversaryKind(const std::string &text)
{
    if (text == "phaseflip")
        return AdversaryKind::PhaseFlip;
    if (text == "hog")
        return AdversaryKind::Hog;
    if (text == "bursty")
        return AdversaryKind::Bursty;
    if (text == "steady")
        return AdversaryKind::Steady;
    fatal("unknown adversary kind '", text,
          "' (expected phaseflip|hog|bursty|steady)");
}

std::string
adversaryKindName(AdversaryKind kind)
{
    switch (kind) {
      case AdversaryKind::PhaseFlip:
        return "phaseflip";
      case AdversaryKind::Hog:
        return "hog";
      case AdversaryKind::Bursty:
        return "bursty";
      case AdversaryKind::Steady:
        return "steady";
    }
    return "unknown";
}

BurstyStream::BurstyStream(std::unique_ptr<AddressStream> on,
                           std::unique_ptr<AddressStream> off, u64 onLength,
                           u64 offLength)
    : on_(std::move(on)), off_(std::move(off)),
      onLength_(std::max<u64>(1, onLength)),
      offLength_(std::max<u64>(1, offLength))
{
}

Addr
BurstyStream::next(RandomSource &rng)
{
    const u64 span = inBurst_ ? onLength_ : offLength_;
    if (count_ >= span) {
        count_ = 0;
        inBurst_ = !inBurst_;
    }
    ++count_;
    return inBurst_ ? on_->next(rng) : off_->next(rng);
}

std::unique_ptr<AddressStream>
makeAdversaryStream(AdversaryKind kind, Addr base)
{
    switch (kind) {
      case AdversaryKind::PhaseFlip: {
        std::vector<std::unique_ptr<AddressStream>> phases;
        phases.push_back(std::make_unique<WorkingSetStream>(
            base, kPhaseHotFootprint, /*alpha=*/0.9));
        phases.push_back(std::make_unique<PointerChaseStream>(
            base + kPhaseHotFootprint, kPhaseColdFootprint));
        return std::make_unique<PhaseStream>(std::move(phases),
                                             kPhaseLength);
      }
      case AdversaryKind::Hog:
        return std::make_unique<PointerChaseStream>(base, kHogFootprint);
      case AdversaryKind::Bursty:
        // Idle spans hammer one line: every access hits, the measured
        // miss rate collapses to ~0 and the controller is invited to
        // withdraw everything it granted during the burst.
        return std::make_unique<BurstyStream>(
            std::make_unique<PointerChaseStream>(base, kBurstFootprint),
            std::make_unique<SequentialStream>(base + kBurstFootprint,
                                               /*footprint=*/64),
            kBurstOnLength, kBurstOffLength);
      case AdversaryKind::Steady:
        return std::make_unique<WorkingSetStream>(base, kSteadyFootprint,
                                                  /*alpha=*/1.1);
    }
    fatal("unhandled adversary kind");
}

AdversaryGenerator::AdversaryGenerator(AdversaryKind kind, Asid asid,
                                       u64 limit, u64 seed,
                                       HintPolicy hints)
    : stream_(makeAdversaryStream(kind, applicationBase(asid))),
      rng_(seed * 0x9E3779B97F4A7C15ull + asid.value() + 1, asid.value()),
      asid_(asid), limit_(limit), writeFraction_(0.25), hints_(hints),
      kind_(kind),
      // Distinct multiplier: the hint stream must never collide with
      // (or leak draws into) the address stream's RNG.
      hintRng_(seed * 0xC2B2AE3D27D4EB4Full + asid.value() + 1,
               0x5851u + asid.value())
{
    if (hints_.enabled)
        scheduleBoundary(0);
}

void
AdversaryGenerator::scheduleBoundary(u64 after)
{
    boundaryAt_ = 0;
    u64 at = 0;
    u64 next_foot = 0;
    u64 prev_foot = 0;
    switch (kind_) {
      case AdversaryKind::PhaseFlip: {
        // Phase of access n (1-based) is ((n-1)/len) % 2; boundary k
        // sits after access k*len, opening phase k%2 (0 hot, 1 cold).
        const u64 k = after / kPhaseLength + 1;
        at = k * kPhaseLength;
        next_foot = k % 2 == 1 ? kPhaseColdFootprint : kPhaseHotFootprint;
        prev_foot = k % 2 == 1 ? kPhaseHotFootprint : kPhaseColdFootprint;
        break;
      }
      case AdversaryKind::Bursty: {
        const u64 cycle = kBurstOnLength + kBurstOffLength;
        const u64 pos = after % cycle;
        if (pos < kBurstOnLength) {
            at = after - pos + kBurstOnLength; // idle span starts
            next_foot = kBurstIdleFootprint;
            prev_foot = kBurstFootprint;
        } else {
            at = after - pos + cycle; // next burst starts
            next_foot = kBurstFootprint;
            prev_foot = kBurstIdleFootprint;
        }
        break;
      }
      case AdversaryKind::Hog:
      case AdversaryKind::Steady:
        // No phase structure: these model the unhinted tenants of a
        // mixed population and never emit.
        return;
    }
    boundaryAt_ = at;
    boundaryFootprint_ = next_foot;
    boundaryPrevFootprint_ = prev_foot;
    i64 jitter = 0;
    if (hints_.jitterAccesses > 0) {
        const u64 j = hints_.jitterAccesses;
        jitter = static_cast<i64>(hintRng_.below(
                     static_cast<u32>(2 * j + 1))) -
                 static_cast<i64>(j);
    }
    const i64 emit =
        static_cast<i64>(at) - static_cast<i64>(hints_.leadAccesses) +
        jitter;
    emitAt_ = emit <= static_cast<i64>(after) ? after + 1
                                              : static_cast<u64>(emit);
}

void
AdversaryGenerator::maybeEmitHints()
{
    while (boundaryAt_ != 0 && produced_ >= emitAt_) {
        // The dropout draw happens for every boundary (dropped or not),
        // so two policies differing only in dropProbability still walk
        // the same jitter sequence.
        const bool dropped = hintRng_.chance(hints_.dropProbability);
        if (!dropped) {
            const u64 truth = hints_.invertPhase ? boundaryPrevFootprint_
                                                 : boundaryFootprint_;
            const double scaled =
                static_cast<double>(truth) * hints_.magnitudeScale;
            PhaseHint h;
            h.asid = asid_;
            h.leadAccesses =
                boundaryAt_ > produced_ ? boundaryAt_ - produced_ : 0;
            h.epochsAhead = static_cast<double>(h.leadAccesses) /
                            kNominalResizePeriod;
            h.predictedFootprintBytes =
                scaled < 1.0 ? 1 : static_cast<u64>(scaled);
            h.confidence = hints_.confidence;
            pending_.push_back(h);
        }
        scheduleBoundary(boundaryAt_);
    }
}

size_t
AdversaryGenerator::drainHints(PhaseHint *out, size_t max)
{
    const size_t n = std::min(max, pending_.size());
    std::copy_n(pending_.begin(), n, out);
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(n));
    return n;
}

std::optional<MemAccess>
AdversaryGenerator::next()
{
    if (limit_ != 0 && produced_ >= limit_)
        return std::nullopt;
    ++produced_;
    MemAccess a;
    a.addr = stream_->next(rng_);
    a.asid = asid_;
    a.type = rng_.chance(writeFraction_) ? AccessType::Write
                                         : AccessType::Read;
    if (hints_.enabled)
        maybeEmitHints();
    return a;
}

std::unique_ptr<AccessSource>
makeAdversarialSource(const std::vector<AdversaryKind> &apps,
                      u64 totalReferences, u64 seed)
{
    return makeAdversarialSource(apps,
                                 std::vector<HintPolicy>(apps.size()),
                                 totalReferences, seed);
}

std::unique_ptr<AccessSource>
makeAdversarialSource(const std::vector<AdversaryKind> &apps,
                      const std::vector<HintPolicy> &hints,
                      u64 totalReferences, u64 seed)
{
    MOLCACHE_ASSERT(!apps.empty(), "no adversaries given");
    MOLCACHE_ASSERT(hints.size() == apps.size(),
                    "one hint policy per adversary");
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.reserve(apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
        sources.push_back(std::make_unique<AdversaryGenerator>(
            apps[i], Asid{static_cast<u16>(i)}, /*limit=*/0, seed,
            hints[i]));
    }
    return std::make_unique<Interleaver>(std::move(sources),
                                         MixPolicy::RoundRobin,
                                         std::vector<double>{}, seed,
                                         totalReferences);
}

} // namespace molcache
