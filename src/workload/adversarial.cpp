#include "workload/adversarial.hpp"

#include "util/logging.hpp"
#include "workload/profile.hpp"

namespace molcache {

namespace {

// Footprints are sized against the default guardian test geometry (a
// 2 MiB cluster of 8 KiB molecules):
//  - the PhaseFlip hot set fits in a handful of molecules while its
//    cold chase wants the whole cluster;
//  - the Hog's chase is 8x the cluster, so no allocation helps it;
//  - the Steady victim needs ~12 molecules to sit at its goal.
constexpr u64 kPhaseHotFootprint = 48 * 1024;
constexpr u64 kPhaseColdFootprint = 1024 * 1024;
constexpr u64 kPhaseLength = 40'000;
constexpr u64 kHogFootprint = 16ull * 1024 * 1024;
constexpr u64 kBurstFootprint = 256 * 1024;
constexpr u64 kBurstOnLength = 25'000;
constexpr u64 kBurstOffLength = 25'000;
constexpr u64 kSteadyFootprint = 96 * 1024;

} // namespace

AdversaryKind
parseAdversaryKind(const std::string &text)
{
    if (text == "phaseflip")
        return AdversaryKind::PhaseFlip;
    if (text == "hog")
        return AdversaryKind::Hog;
    if (text == "bursty")
        return AdversaryKind::Bursty;
    if (text == "steady")
        return AdversaryKind::Steady;
    fatal("unknown adversary kind '", text,
          "' (expected phaseflip|hog|bursty|steady)");
}

std::string
adversaryKindName(AdversaryKind kind)
{
    switch (kind) {
      case AdversaryKind::PhaseFlip:
        return "phaseflip";
      case AdversaryKind::Hog:
        return "hog";
      case AdversaryKind::Bursty:
        return "bursty";
      case AdversaryKind::Steady:
        return "steady";
    }
    return "unknown";
}

BurstyStream::BurstyStream(std::unique_ptr<AddressStream> on,
                           std::unique_ptr<AddressStream> off, u64 onLength,
                           u64 offLength)
    : on_(std::move(on)), off_(std::move(off)),
      onLength_(std::max<u64>(1, onLength)),
      offLength_(std::max<u64>(1, offLength))
{
}

Addr
BurstyStream::next(RandomSource &rng)
{
    const u64 span = inBurst_ ? onLength_ : offLength_;
    if (count_ >= span) {
        count_ = 0;
        inBurst_ = !inBurst_;
    }
    ++count_;
    return inBurst_ ? on_->next(rng) : off_->next(rng);
}

std::unique_ptr<AddressStream>
makeAdversaryStream(AdversaryKind kind, Addr base)
{
    switch (kind) {
      case AdversaryKind::PhaseFlip: {
        std::vector<std::unique_ptr<AddressStream>> phases;
        phases.push_back(std::make_unique<WorkingSetStream>(
            base, kPhaseHotFootprint, /*alpha=*/0.9));
        phases.push_back(std::make_unique<PointerChaseStream>(
            base + kPhaseHotFootprint, kPhaseColdFootprint));
        return std::make_unique<PhaseStream>(std::move(phases),
                                             kPhaseLength);
      }
      case AdversaryKind::Hog:
        return std::make_unique<PointerChaseStream>(base, kHogFootprint);
      case AdversaryKind::Bursty:
        // Idle spans hammer one line: every access hits, the measured
        // miss rate collapses to ~0 and the controller is invited to
        // withdraw everything it granted during the burst.
        return std::make_unique<BurstyStream>(
            std::make_unique<PointerChaseStream>(base, kBurstFootprint),
            std::make_unique<SequentialStream>(base + kBurstFootprint,
                                               /*footprint=*/64),
            kBurstOnLength, kBurstOffLength);
      case AdversaryKind::Steady:
        return std::make_unique<WorkingSetStream>(base, kSteadyFootprint,
                                                  /*alpha=*/1.1);
    }
    fatal("unhandled adversary kind");
}

AdversaryGenerator::AdversaryGenerator(AdversaryKind kind, Asid asid,
                                       u64 limit, u64 seed)
    : stream_(makeAdversaryStream(kind, applicationBase(asid))),
      rng_(seed * 0x9E3779B97F4A7C15ull + asid.value() + 1, asid.value()),
      asid_(asid), limit_(limit), writeFraction_(0.25)
{
}

std::optional<MemAccess>
AdversaryGenerator::next()
{
    if (limit_ != 0 && produced_ >= limit_)
        return std::nullopt;
    ++produced_;
    MemAccess a;
    a.addr = stream_->next(rng_);
    a.asid = asid_;
    a.type = rng_.chance(writeFraction_) ? AccessType::Write
                                         : AccessType::Read;
    return a;
}

std::unique_ptr<AccessSource>
makeAdversarialSource(const std::vector<AdversaryKind> &apps,
                      u64 totalReferences, u64 seed)
{
    MOLCACHE_ASSERT(!apps.empty(), "no adversaries given");
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.reserve(apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
        sources.push_back(std::make_unique<AdversaryGenerator>(
            apps[i], Asid{static_cast<u16>(i)}, /*limit=*/0, seed));
    }
    return std::make_unique<Interleaver>(std::move(sources),
                                         MixPolicy::RoundRobin,
                                         std::vector<double>{}, seed,
                                         totalReferences);
}

} // namespace molcache
