#include "workload/generator.hpp"

#include "util/logging.hpp"
#include "workload/profiles.hpp"

namespace molcache {

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile, Asid asid,
                               u64 limit, u64 seed)
    : stream_(buildStream(profile, applicationBase(asid))),
      rng_(seed * 0x9E3779B97F4A7C15ull + asid.value() + 1, asid.value()),
      asid_(asid), limit_(limit),
      writeFraction_(profile.writeFraction)
{
    MOLCACHE_ASSERT(writeFraction_ >= 0.0 && writeFraction_ <= 1.0,
                    "write fraction out of [0,1]");
}

std::optional<MemAccess>
TraceGenerator::next()
{
    if (limit_ != 0 && produced_ >= limit_)
        return std::nullopt;
    ++produced_;
    MemAccess a;
    a.addr = stream_->next(rng_);
    a.asid = asid_;
    a.type = rng_.chance(writeFraction_) ? AccessType::Write
                                         : AccessType::Read;
    return a;
}

std::vector<MemAccess>
generateTrace(const BenchmarkProfile &profile, Asid asid, u64 n, u64 seed)
{
    TraceGenerator gen(profile, asid, n, seed);
    std::vector<MemAccess> out;
    out.reserve(n);
    while (auto a = gen.next())
        out.push_back(*a);
    return out;
}

std::unique_ptr<AccessSource>
makeMultiProgramSource(const std::vector<std::string> &profileNames,
                       u64 totalReferences, MixPolicy policy, u64 seed)
{
    MOLCACHE_ASSERT(!profileNames.empty(), "no profiles given");
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.reserve(profileNames.size());
    for (size_t i = 0; i < profileNames.size(); ++i) {
        sources.push_back(std::make_unique<TraceGenerator>(
            profileByName(profileNames[i]), static_cast<Asid>(i),
            /*limit=*/0, seed));
    }
    return std::make_unique<Interleaver>(std::move(sources), policy,
                                         std::vector<double>{}, seed,
                                         totalReferences);
}

} // namespace molcache
