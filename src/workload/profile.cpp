#include "workload/profile.hpp"

#include "util/bits.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace molcache {

namespace {

std::unique_ptr<AddressStream>
buildComponent(const StreamSpec &spec, Addr base)
{
    switch (spec.kind) {
      case StreamSpec::Kind::Sequential:
        return std::make_unique<SequentialStream>(base, spec.footprint,
                                                  spec.stride);
      case StreamSpec::Kind::Strided: {
        // Walkers are packed back to back; the component's total extent is
        // walkers * footprint.
        return std::make_unique<StridedStream>(base, spec.walkers,
                                               spec.footprint, spec.stride,
                                               spec.footprint);
      }
      case StreamSpec::Kind::PointerChase:
        return std::make_unique<PointerChaseStream>(base, spec.footprint);
      case StreamSpec::Kind::WorkingSet:
        return std::make_unique<WorkingSetStream>(base, spec.footprint,
                                                  spec.alpha);
    }
    panic("unknown StreamSpec kind");
}

u64
componentExtent(const StreamSpec &spec)
{
    if (spec.kind == StreamSpec::Kind::Strided)
        return static_cast<u64>(spec.walkers) * spec.footprint;
    return spec.footprint;
}

} // namespace

std::unique_ptr<AddressStream>
buildStream(const BenchmarkProfile &profile, Addr base)
{
    MOLCACHE_ASSERT(!profile.components.empty(),
                    "profile '", profile.name, "' has no components");
    std::vector<MixtureStream::Component> parts;
    Addr cursor = base;
    for (const auto &spec : profile.components) {
        parts.push_back({buildComponent(spec, cursor), spec.weight});
        // 1 MiB guard gap between components, aligned for tidy indexing.
        constexpr u64 gap = (1_MiB).value();
        cursor = alignUp(cursor + componentExtent(spec) + gap, gap);
    }
    if (parts.size() == 1)
        return std::move(parts.front().stream);
    return std::make_unique<MixtureStream>(std::move(parts));
}

Addr
applicationBase(Asid asid)
{
    // Disjoint 16 GiB windows per application.
    return (static_cast<Addr>(asid.value()) + 1) << 34;
}

} // namespace molcache
