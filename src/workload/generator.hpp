/**
 * @file
 * Deterministic trace generation from benchmark profiles.
 */

#ifndef MOLCACHE_WORKLOAD_GENERATOR_HPP
#define MOLCACHE_WORKLOAD_GENERATOR_HPP

#include <memory>
#include <string>
#include <vector>

#include "mem/interleave.hpp"
#include "workload/profile.hpp"

namespace molcache {

/**
 * AccessSource producing a profile's reference stream tagged with one
 * ASID.  Fully deterministic: the RNG is seeded from (seed, asid).
 */
class TraceGenerator final : public AccessSource
{
  public:
    /**
     * @param profile  the benchmark recipe
     * @param asid     ASID stamped on every reference (also selects the
     *                 application's address window)
     * @param limit    number of references to produce (0 = unbounded)
     * @param seed     base RNG seed
     */
    TraceGenerator(const BenchmarkProfile &profile, Asid asid, u64 limit,
                   u64 seed = 1);

    std::optional<MemAccess> next() override;

    u64 produced() const { return produced_; }

  private:
    std::unique_ptr<AddressStream> stream_;
    Pcg32 rng_;
    Asid asid_;
    u64 limit_;
    u64 produced_ = 0;
    double writeFraction_;
};

/** Generate @p n references of @p profile into a vector. */
std::vector<MemAccess> generateTrace(const BenchmarkProfile &profile,
                                     Asid asid, u64 n, u64 seed = 1);

/**
 * Build the merged multi-application stream the shared cache sees:
 * one TraceGenerator per named profile (ASIDs 0..n-1 in list order),
 * mixed with the given policy, ending after @p totalReferences.
 */
std::unique_ptr<AccessSource>
makeMultiProgramSource(const std::vector<std::string> &profileNames,
                       u64 totalReferences, MixPolicy policy = MixPolicy::RoundRobin,
                       u64 seed = 1);

} // namespace molcache

#endif // MOLCACHE_WORKLOAD_GENERATOR_HPP
