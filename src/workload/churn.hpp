/**
 * @file
 * Tenant arrival/departure processes for the molcached churn drills.
 *
 * The adversarial generators (workload/adversarial.hpp) stress the
 * control plane with a *fixed* population; the service's acceptance
 * scenario (ROADMAP item 1, bench/service_churn) needs the opposite —
 * a population that never stops changing.  ChurnProcess is a seeded
 * memoryless (Poisson-flavoured) arrival process over "access time":
 * gaps between arrivals and tenant lifetimes are exponential draws
 * measured in total accesses served, so the schedule is independent of
 * wall clock and thread count, and a --smoke run exercises the same
 * dynamics as a soak run, just shorter.
 *
 * Tenant traffic is deliberately stateless: a ChurnTenantProfile is a
 * value (address base, footprint, hot set, goal) and churnAddress()
 * draws one skewed reference from it with the caller's RNG.  Worker
 * threads can therefore share a profile without sharing generator
 * state, and the access loop allocates nothing.
 */

#ifndef MOLCACHE_WORKLOAD_CHURN_HPP
#define MOLCACHE_WORKLOAD_CHURN_HPP

#include <memory>

#include "util/random.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

struct ChurnParams
{
    /** Mean accesses between tenant arrivals. */
    u64 meanInterarrival = 20000;
    /** Mean accesses a tenant stays attached. */
    u64 meanLifetime = 250000;
    /** Footprint drawn log-uniform from this range. */
    u64 minFootprintBytes = 64u * 1024u;
    u64 maxFootprintBytes = 1024u * 1024u;
    /** Miss-rate goal drawn log-uniform from this range. */
    double minGoal = 0.05;
    double maxGoal = 0.5;
    /** Fraction of the footprint that is hot ... */
    double hotFraction = 0.1;
    /** ... and the probability a reference lands in it. */
    double hotProbability = 0.8;
    /** Probability a reference is a write. */
    double writeFraction = 0.2;
};

/** Immutable traffic description of one tenant (see file comment). */
struct ChurnTenantProfile
{
    /** Disjoint per-tenant address-space base. */
    Addr base = 0;
    u64 footprintLines = 1;
    u64 hotLines = 1;
    u32 lineSize = 64;
    double hotProbability = 0.8;
    double writeFraction = 0.2;
    double missRateGoal = 0.1;
};

/** One skewed reference from @p profile using the caller's RNG. */
inline Addr
churnAddress(const ChurnTenantProfile &profile, RandomSource &rng)
{
    const u64 lines = rng.chance(profile.hotProbability)
                          ? profile.hotLines
                          : profile.footprintLines;
    return profile.base + rng.next64() % lines * profile.lineSize;
}

/** Read-or-write draw matching the profile's write fraction. */
inline bool
churnIsWrite(const ChurnTenantProfile &profile, RandomSource &rng)
{
    return rng.chance(profile.writeFraction);
}

/**
 * The seeded arrival/departure schedule.  Single-owner (the churn
 * driver thread); draws advance the internal RNG, so two processes
 * with the same seed and call sequence are identical.
 */
class ChurnProcess
{
  public:
    ChurnProcess(const ChurnParams &params, u64 seed);

    /** Accesses until the next arrival (exponential, >= 1). */
    u64 nextArrivalGap();

    /** Lifetime in accesses for a newly arrived tenant. */
    u64 nextLifetime();

    /** Traffic profile for the @p ordinal-th tenant ever spawned
     * (ordinals give disjoint address bases). */
    ChurnTenantProfile makeProfile(u64 ordinal, u32 lineSize);

  private:
    /** Exponential draw with the given mean, floored at 1. */
    u64 exponential(u64 mean);

    ChurnParams params_;
    std::unique_ptr<RandomSource> rng_;
};

} // namespace molcache

#endif // MOLCACHE_WORKLOAD_CHURN_HPP
