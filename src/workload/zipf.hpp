/**
 * @file
 * Zipf-distributed rank sampler.
 *
 * Temporal locality in real reference streams is well approximated by a
 * Zipf popularity law over cache lines; the workload generator uses this
 * to model working-set reuse.  The sampler precomputes the CDF once and
 * draws ranks by binary search, so sampling is O(log N).
 */

#ifndef MOLCACHE_WORKLOAD_ZIPF_HPP
#define MOLCACHE_WORKLOAD_ZIPF_HPP

#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"

namespace molcache {

class ZipfSampler
{
  public:
    /**
     * @param n      number of ranks (> 0)
     * @param alpha  skew; 0 = uniform, ~1 = classic zipf, larger = hotter
     */
    ZipfSampler(u32 n, double alpha);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    u32 sample(RandomSource &rng) const;

    u32 ranks() const { return n_; }
    double alpha() const { return alpha_; }

    /** Probability mass of rank @p r. */
    double probability(u32 r) const;

  private:
    u32 n_;
    double alpha_;
    std::vector<double> cdf_;
};

} // namespace molcache

#endif // MOLCACHE_WORKLOAD_ZIPF_HPP
