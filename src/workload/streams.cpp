#include "workload/streams.hpp"

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace molcache {

namespace {
/** Odd multiplier scatters rank order across the footprint. */
constexpr u64 kScatterPrime = 0x9E3779B97F4A7C15ull | 1ull;
} // namespace

SequentialStream::SequentialStream(Addr base, u64 footprint, u64 stride)
    : base_(base), footprint_(footprint), stride_(stride)
{
    MOLCACHE_ASSERT(footprint >= stride && stride > 0,
                    "sequential stream footprint smaller than stride");
}

Addr
SequentialStream::next(RandomSource &)
{
    const Addr a = base_ + offset_;
    offset_ += stride_;
    if (offset_ >= footprint_)
        offset_ = 0;
    return a;
}

StridedStream::StridedStream(Addr base, u32 streams, u64 streamFootprint,
                             u64 stride, u64 streamGap)
    : base_(base), streams_(streams), footprint_(streamFootprint),
      stride_(stride), gap_(streamGap), offsets_(streams, 0)
{
    MOLCACHE_ASSERT(streams > 0, "strided stream with zero walkers");
    MOLCACHE_ASSERT(stride > 0 && streamFootprint >= stride,
                    "bad strided stream geometry");
    MOLCACHE_ASSERT(streamGap >= streamFootprint,
                    "walkers overlap: gap < footprint");
}

Addr
StridedStream::next(RandomSource &)
{
    const u32 w = turn_;
    turn_ = (turn_ + 1) % streams_;
    const Addr a = base_ + static_cast<u64>(w) * gap_ + offsets_[w];
    offsets_[w] += stride_;
    if (offsets_[w] >= footprint_)
        offsets_[w] = 0;
    return a;
}

PointerChaseStream::PointerChaseStream(Addr base, u64 footprint, u64 lineSize)
    : base_(base), lines_(footprint / lineSize), lineSize_(lineSize)
{
    MOLCACHE_ASSERT(lines_ > 0, "pointer chase footprint below one line");
}

Addr
PointerChaseStream::next(RandomSource &rng)
{
    const u64 line = rng.next64() % lines_;
    return base_ + line * lineSize_;
}

WorkingSetStream::WorkingSetStream(Addr base, u64 footprint, double alpha,
                                   u64 lineSize)
    : base_(base), lines_(footprint / lineSize), lineSize_(lineSize),
      zipf_(static_cast<u32>(footprint / lineSize), alpha)
{
    MOLCACHE_ASSERT(lines_ > 0, "working set below one line");
}

Addr
WorkingSetStream::next(RandomSource &rng)
{
    const u64 rank = zipf_.sample(rng);
    // Scatter rank -> line so the popular head is spread over cache sets.
    const u64 line = (rank * kScatterPrime) % lines_;
    return base_ + line * lineSize_;
}

MixtureStream::MixtureStream(std::vector<Component> components)
    : components_(std::move(components))
{
    MOLCACHE_ASSERT(!components_.empty(), "empty mixture");
    double total = 0.0;
    for (const auto &c : components_) {
        MOLCACHE_ASSERT(c.weight > 0.0, "non-positive mixture weight");
        total += c.weight;
    }
    double acc = 0.0;
    cdf_.reserve(components_.size());
    for (const auto &c : components_) {
        acc += c.weight / total;
        cdf_.push_back(acc);
    }
    cdf_.back() = 1.0;
}

Addr
MixtureStream::next(RandomSource &rng)
{
    const double u = rng.unitReal();
    for (size_t i = 0; i < cdf_.size(); ++i)
        if (u < cdf_[i])
            return components_[i].stream->next(rng);
    return components_.back().stream->next(rng);
}

PhaseStream::PhaseStream(std::vector<std::unique_ptr<AddressStream>> phases,
                         u64 phaseLength)
    : phases_(std::move(phases)), phaseLength_(phaseLength)
{
    MOLCACHE_ASSERT(!phases_.empty() && phaseLength > 0, "degenerate phases");
}

Addr
PhaseStream::next(RandomSource &rng)
{
    if (count_ == phaseLength_) {
        count_ = 0;
        current_ = (current_ + 1) % phases_.size();
    }
    ++count_;
    return phases_[current_]->next(rng);
}

} // namespace molcache
