#include "workload/churn.hpp"

#include <algorithm>
#include <cmath>

#include "contract/contract.hpp"

namespace molcache {

ChurnProcess::ChurnProcess(const ChurnParams &params, u64 seed)
    : params_(params), rng_(makeRandomSource(RngKind::Pcg32, seed))
{
    MOLCACHE_EXPECT(params.meanInterarrival > 0 && params.meanLifetime > 0,
                    "churn means must be positive");
    MOLCACHE_EXPECT(params.minFootprintBytes > 0 &&
                        params.minFootprintBytes <= params.maxFootprintBytes,
                    "churn footprint range is empty");
    MOLCACHE_EXPECT(params.minGoal > 0.0 &&
                        params.minGoal <= params.maxGoal &&
                        params.maxGoal <= 1.0,
                    "churn goal range outside (0, 1]");
}

u64
ChurnProcess::exponential(u64 mean)
{
    // Inverse-CDF with the unit draw clamped away from 1.0 so log()
    // stays finite; the floor keeps "simultaneous" events ordered.
    const double u = std::min(rng_->unitReal(), 0.999999);
    const double gap = -static_cast<double>(mean) * std::log(1.0 - u);
    return std::max<u64>(1, static_cast<u64>(gap));
}

u64
ChurnProcess::nextArrivalGap()
{
    return exponential(params_.meanInterarrival);
}

u64
ChurnProcess::nextLifetime()
{
    return exponential(params_.meanLifetime);
}

ChurnTenantProfile
ChurnProcess::makeProfile(u64 ordinal, u32 lineSize)
{
    MOLCACHE_EXPECT(lineSize > 0, "line size must be positive");
    ChurnTenantProfile profile;
    // Footprint and goal are log-uniform: tenant populations span
    // orders of magnitude (Memshare's heterogeneous-tenant model), and
    // a linear draw would make every tenant effectively large.
    const double fspan =
        static_cast<double>(params_.maxFootprintBytes) /
        static_cast<double>(params_.minFootprintBytes);
    const double footprint = static_cast<double>(params_.minFootprintBytes) *
                             std::pow(fspan, rng_->unitReal());
    const double gspan = params_.maxGoal / params_.minGoal;
    profile.missRateGoal =
        params_.minGoal * std::pow(gspan, rng_->unitReal());
    profile.lineSize = lineSize;
    profile.footprintLines = std::max<u64>(
        1, static_cast<u64>(footprint) / lineSize);
    profile.hotLines = std::max<u64>(
        1, static_cast<u64>(static_cast<double>(profile.footprintLines) *
                            params_.hotFraction));
    profile.hotProbability = params_.hotProbability;
    profile.writeFraction = params_.writeFraction;
    // Disjoint 4 GiB windows per tenant ordinal: tenants never alias
    // each other's lines, so the coherence directory sees real sharing
    // only when a test sets it up on purpose.
    profile.base = (ordinal + 1) << 32;
    return profile;
}

} // namespace molcache
