#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace molcache {

ZipfSampler::ZipfSampler(u32 n, double alpha)
    : n_(n), alpha_(alpha)
{
    MOLCACHE_ASSERT(n > 0, "zipf over zero ranks");
    MOLCACHE_ASSERT(alpha >= 0.0, "negative zipf alpha");
    cdf_.resize(n);
    double acc = 0.0;
    for (u32 r = 0; r < n; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
        cdf_[r] = acc;
    }
    const double total = acc;
    for (double &v : cdf_)
        v /= total;
    cdf_.back() = 1.0; // guard against rounding
}

u32
ZipfSampler::sample(RandomSource &rng) const
{
    const double u = rng.unitReal();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<u32>(it - cdf_.begin());
}

double
ZipfSampler::probability(u32 r) const
{
    MOLCACHE_ASSERT(r < n_, "rank out of range");
    return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

} // namespace molcache
