/**
 * @file
 * Registry of calibrated benchmark profiles.
 *
 * Fifteen profiles named after the benchmarks used in the paper:
 *
 *  SPEC CPU2000:  art, ammp, mcf, parser, crafty, gap, gcc, gzip, twolf
 *  NetBench:      CRC, DRR, NAT
 *  MediaBench:    CJPEG, decode, epic
 *
 * Each profile's mixture parameters were calibrated so its standalone
 * miss rate on a 1 MB 4-way 64 B-line LRU L2 approximates the paper's
 * Table 1 (for the four SPEC programs) or a plausible value for the
 * mixed-workload programs.  See src/workload/profiles.cpp for the
 * per-profile commentary and bench/table1_interference for validation.
 */

#ifndef MOLCACHE_WORKLOAD_PROFILES_HPP
#define MOLCACHE_WORKLOAD_PROFILES_HPP

#include <string>
#include <vector>

#include "workload/profile.hpp"

namespace molcache {

/** Look up a profile by name; fatal() on unknown names. */
const BenchmarkProfile &profileByName(const std::string &name);

/** True if a profile with this name exists. */
bool hasProfile(const std::string &name);

/** All registered profile names (sorted). */
std::vector<std::string> profileNames();

/** The four SPEC benchmarks of Table 1 / Figure 5, in paper order. */
std::vector<std::string> spec4Names();

/** The twelve mixed-workload benchmarks of Table 2 / Figure 6. */
std::vector<std::string> mixed12Names();

} // namespace molcache

#endif // MOLCACHE_WORKLOAD_PROFILES_HPP
