/**
 * @file
 * Address-stream primitives for the synthetic workload generator.
 *
 * The paper drove its molecular-cache model with SESC-captured L1-D miss
 * traces of SPEC / NetBench / MediaBench applications.  molcache
 * synthesizes statistically similar streams from four primitives:
 *
 *  - SequentialStream:   linear sweep over a footprint (streaming kernels,
 *                        compulsory/capacity miss generators);
 *  - StridedStream:      several concurrent array walkers with a fixed
 *                        stride (regular loop nests, media macroblocks);
 *  - PointerChaseStream: uniform random line touches over a footprint
 *                        (mcf-style graph/pointer codes);
 *  - WorkingSetStream:   zipf-weighted reuse over a fixed set of lines
 *                        (hot data structures, temporal locality).
 *
 * A MixtureStream composes primitives with given probabilities and a
 * PhaseStream switches compositions over time.  All streams are
 * deterministic given the RandomSource passed to next().
 */

#ifndef MOLCACHE_WORKLOAD_STREAMS_HPP
#define MOLCACHE_WORKLOAD_STREAMS_HPP

#include <memory>
#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"
#include "workload/zipf.hpp"

namespace molcache {

/** Generator of an infinite address sequence. */
class AddressStream
{
  public:
    virtual ~AddressStream() = default;

    /** Produce the next byte address. */
    virtual Addr next(RandomSource &rng) = 0;
};

/** Linear sweep: base, base+stride, ... wrapping at base+footprint. */
class SequentialStream final : public AddressStream
{
  public:
    SequentialStream(Addr base, u64 footprint, u64 stride = 64);

    Addr next(RandomSource &rng) override;

  private:
    Addr base_;
    u64 footprint_;
    u64 stride_;
    u64 offset_ = 0;
};

/** N concurrent walkers advancing round-robin with a fixed stride. */
class StridedStream final : public AddressStream
{
  public:
    /**
     * @param base            first walker's base address
     * @param streams         number of concurrent walkers
     * @param streamFootprint bytes each walker covers before wrapping
     * @param stride          walker advance per touch
     * @param streamGap       address distance between walker bases
     */
    StridedStream(Addr base, u32 streams, u64 streamFootprint, u64 stride,
                  u64 streamGap);

    Addr next(RandomSource &rng) override;

  private:
    Addr base_;
    u32 streams_;
    u64 footprint_;
    u64 stride_;
    u64 gap_;
    std::vector<u64> offsets_;
    u32 turn_ = 0;
};

/** Uniform random line touches over a footprint. */
class PointerChaseStream final : public AddressStream
{
  public:
    PointerChaseStream(Addr base, u64 footprint, u64 lineSize = 64);

    Addr next(RandomSource &rng) override;

  private:
    Addr base_;
    u64 lines_;
    u64 lineSize_;
};

/**
 * Zipf-weighted reuse over a fixed working set of lines.  Ranks are
 * scattered over the footprint with a multiplicative hash so popularity
 * does not correlate with address order (which would privilege a few
 * cache sets).
 */
class WorkingSetStream final : public AddressStream
{
  public:
    /**
     * @param base      region base address
     * @param footprint working-set size in bytes
     * @param alpha     zipf skew (larger = hotter head)
     * @param lineSize  reuse granularity
     */
    WorkingSetStream(Addr base, u64 footprint, double alpha,
                     u64 lineSize = 64);

    Addr next(RandomSource &rng) override;

  private:
    Addr base_;
    u64 lines_;
    u64 lineSize_;
    ZipfSampler zipf_;
};

/** Weighted random composition of child streams. */
class MixtureStream final : public AddressStream
{
  public:
    struct Component
    {
        std::unique_ptr<AddressStream> stream;
        double weight;
    };

    explicit MixtureStream(std::vector<Component> components);

    Addr next(RandomSource &rng) override;

  private:
    std::vector<Component> components_;
    std::vector<double> cdf_;
};

/** Cycle through child streams, each active for a fixed phase length. */
class PhaseStream final : public AddressStream
{
  public:
    /**
     * @param phases      child streams, visited in order, cyclically
     * @param phaseLength accesses per phase
     */
    PhaseStream(std::vector<std::unique_ptr<AddressStream>> phases,
                u64 phaseLength);

    Addr next(RandomSource &rng) override;

  private:
    std::vector<std::unique_ptr<AddressStream>> phases_;
    u64 phaseLength_;
    u64 count_ = 0;
    size_t current_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_WORKLOAD_STREAMS_HPP
