/**
 * @file
 * Adversarial workload generators for the QoS guardian
 * (docs/algorithm1.md, "Guardrails").
 *
 * The benchmark profiles in profiles.cpp model well-behaved SPEC-like
 * applications.  These streams are built to *fight* the resizer control
 * plane instead:
 *
 *  - PhaseFlip: alternates a small hot working set with a huge pointer
 *    chase, so the observed miss-vs-size response inverts every phase —
 *    the grow/withdraw decisions of an unguarded Algorithm 1 chase the
 *    previous phase and oscillate;
 *  - Hog: a pointer chase far beyond cluster capacity with an
 *    unreachable miss-rate goal; it converts every granted molecule
 *    into nearly zero extra hits and inflates until the pool starves
 *    its neighbours;
 *  - Bursty: on/off behaviour — miss-heavy bursts followed by idle
 *    spans touching a single hot line (miss rate ~0), flipping the
 *    controller between "grow hard" and "give everything back";
 *  - Steady: a plain zipf working set, the victim whose floor and goal
 *    the guardian must protect while the others misbehave.
 */

#ifndef MOLCACHE_WORKLOAD_ADVERSARIAL_HPP
#define MOLCACHE_WORKLOAD_ADVERSARIAL_HPP

#include <memory>
#include <string>
#include <vector>

#include "mem/interleave.hpp"
#include "workload/streams.hpp"

namespace molcache {

enum class AdversaryKind
{
    PhaseFlip,
    Hog,
    Bursty,
    Steady,
};

AdversaryKind parseAdversaryKind(const std::string &text);
std::string adversaryKindName(AdversaryKind kind);

/**
 * Alternates an "on" stream and an "off" stream with independent span
 * lengths (PhaseStream has one fixed length for every phase, which
 * cannot model short bursts against long idle spans).
 */
class BurstyStream final : public AddressStream
{
  public:
    /**
     * @param on        stream active during bursts
     * @param off       stream active between bursts
     * @param onLength  accesses per burst
     * @param offLength accesses per idle span
     */
    BurstyStream(std::unique_ptr<AddressStream> on,
                 std::unique_ptr<AddressStream> off, u64 onLength,
                 u64 offLength);

    Addr next(RandomSource &rng) override;

  private:
    std::unique_ptr<AddressStream> on_;
    std::unique_ptr<AddressStream> off_;
    u64 onLength_;
    u64 offLength_;
    u64 count_ = 0;
    bool inBurst_ = true;
};

/** Build one adversary's address stream rooted at @p base. */
std::unique_ptr<AddressStream> makeAdversaryStream(AdversaryKind kind,
                                                   Addr base);

/**
 * AccessSource producing one adversary's reference stream tagged with
 * @p asid; deterministic under (seed, asid), mirroring TraceGenerator.
 */
class AdversaryGenerator final : public AccessSource
{
  public:
    AdversaryGenerator(AdversaryKind kind, Asid asid, u64 limit,
                       u64 seed = 1);

    std::optional<MemAccess> next() override;

  private:
    std::unique_ptr<AddressStream> stream_;
    Pcg32 rng_;
    Asid asid_;
    u64 limit_;
    u64 produced_ = 0;
    double writeFraction_;
};

/**
 * Merged multi-application adversarial mix (ASIDs 0..n-1 in list
 * order), round-robin interleaved, ending after @p totalReferences.
 */
std::unique_ptr<AccessSource>
makeAdversarialSource(const std::vector<AdversaryKind> &apps,
                      u64 totalReferences, u64 seed = 1);

} // namespace molcache

#endif // MOLCACHE_WORKLOAD_ADVERSARIAL_HPP
