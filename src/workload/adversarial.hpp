/**
 * @file
 * Adversarial workload generators for the QoS guardian
 * (docs/algorithm1.md, "Guardrails").
 *
 * The benchmark profiles in profiles.cpp model well-behaved SPEC-like
 * applications.  These streams are built to *fight* the resizer control
 * plane instead:
 *
 *  - PhaseFlip: alternates a small hot working set with a huge pointer
 *    chase, so the observed miss-vs-size response inverts every phase —
 *    the grow/withdraw decisions of an unguarded Algorithm 1 chase the
 *    previous phase and oscillate;
 *  - Hog: a pointer chase far beyond cluster capacity with an
 *    unreachable miss-rate goal; it converts every granted molecule
 *    into nearly zero extra hits and inflates until the pool starves
 *    its neighbours;
 *  - Bursty: on/off behaviour — miss-heavy bursts followed by idle
 *    spans touching a single hot line (miss rate ~0), flipping the
 *    controller between "grow hard" and "give everything back";
 *  - Steady: a plain zipf working set, the victim whose floor and goal
 *    the guardian must protect while the others misbehave.
 */

#ifndef MOLCACHE_WORKLOAD_ADVERSARIAL_HPP
#define MOLCACHE_WORKLOAD_ADVERSARIAL_HPP

#include <memory>
#include <string>
#include <vector>

#include "mem/interleave.hpp"
#include "workload/streams.hpp"

namespace molcache {

enum class AdversaryKind
{
    PhaseFlip,
    Hog,
    Bursty,
    Steady,
};

AdversaryKind parseAdversaryKind(const std::string &text);
std::string adversaryKindName(AdversaryKind kind);
/** True when @p text names an adversary kind (parseAdversaryKind would
 * accept it instead of fataling). */
bool isAdversaryKind(const std::string &text);

/**
 * Phase-hint emission knobs for one adversary (docs/fault_model.md,
 * "Wrong hints").  The generators own their ground-truth phase
 * schedules, so an enabled policy announces each upcoming phase
 * boundary through the PhaseHint side band — and the degradation knobs
 * turn the same machinery into a fault injector: jittered timing, wrong
 * magnitude, inverted sign (promise the phase being *left*), and silent
 * dropout.  Hint emission draws from a dedicated RNG stream, so the
 * address stream is reference-for-reference identical whether hints are
 * on, degraded or off.  Kinds without phase structure (Hog, Steady)
 * never emit — they model the unhinted part of a mixed population.
 */
struct HintPolicy
{
    bool enabled = false;
    /** References ahead of the boundary the hint is emitted. */
    u64 leadAccesses = 12'000;
    /** Uniform +/- jitter on the emission point (timing faults). */
    u64 jitterAccesses = 0;
    /** Promised footprint = truth * this (magnitude faults). */
    double magnitudeScale = 1.0;
    /** Promise the current phase's footprint instead of the next
     * (inverted sign: pre-grants become pre-withdraws and vice versa). */
    bool invertPhase = false;
    /** Probability a due hint is silently never emitted. */
    double dropProbability = 0.0;
    /** Confidence stamped on every emitted hint. */
    double confidence = 1.0;
};

class Config;

/** Build a HintPolicy from the `workload.hint.*` config keys
 * (docs/fault_model.md, "Wrong hints"); absent keys keep the
 * defaults above.  One policy serves a whole adversarial mix — kinds
 * without phase structure ignore it. */
HintPolicy hintPolicyFromConfig(const Config &cfg);

/**
 * Alternates an "on" stream and an "off" stream with independent span
 * lengths (PhaseStream has one fixed length for every phase, which
 * cannot model short bursts against long idle spans).
 */
class BurstyStream final : public AddressStream
{
  public:
    /**
     * @param on        stream active during bursts
     * @param off       stream active between bursts
     * @param onLength  accesses per burst
     * @param offLength accesses per idle span
     */
    BurstyStream(std::unique_ptr<AddressStream> on,
                 std::unique_ptr<AddressStream> off, u64 onLength,
                 u64 offLength);

    Addr next(RandomSource &rng) override;

  private:
    std::unique_ptr<AddressStream> on_;
    std::unique_ptr<AddressStream> off_;
    u64 onLength_;
    u64 offLength_;
    u64 count_ = 0;
    bool inBurst_ = true;
};

/** Build one adversary's address stream rooted at @p base. */
std::unique_ptr<AddressStream> makeAdversaryStream(AdversaryKind kind,
                                                   Addr base);

/**
 * AccessSource producing one adversary's reference stream tagged with
 * @p asid; deterministic under (seed, asid), mirroring TraceGenerator.
 */
class AdversaryGenerator final : public AccessSource
{
  public:
    AdversaryGenerator(AdversaryKind kind, Asid asid, u64 limit,
                       u64 seed = 1, HintPolicy hints = {});

    std::optional<MemAccess> next() override;
    size_t drainHints(PhaseHint *out, size_t max) override;

  private:
    /** Schedule the next phase boundary (and its jittered emission
     * point) after @p after; boundary-free kinds schedule nothing. */
    void scheduleBoundary(u64 after);
    /** Emit (or deliberately degrade/drop) hints whose emission point
     * has been reached. */
    void maybeEmitHints();

    std::unique_ptr<AddressStream> stream_;
    Pcg32 rng_;
    Asid asid_;
    u64 limit_;
    u64 produced_ = 0;
    double writeFraction_;

    HintPolicy hints_;
    AdversaryKind kind_;
    /** Dedicated stream for drop/jitter draws: consuming it never
     * perturbs the address stream above. */
    Pcg32 hintRng_;
    u64 boundaryAt_ = 0;      // next phase boundary (0 = none)
    u64 boundaryFootprint_ = 0;     // footprint of the phase starting there
    u64 boundaryPrevFootprint_ = 0; // footprint of the phase ending there
    u64 emitAt_ = 0;          // jittered emission point for that boundary
    std::vector<PhaseHint> pending_;
};

/**
 * Merged multi-application adversarial mix (ASIDs 0..n-1 in list
 * order), round-robin interleaved, ending after @p totalReferences.
 */
std::unique_ptr<AccessSource>
makeAdversarialSource(const std::vector<AdversaryKind> &apps,
                      u64 totalReferences, u64 seed = 1);

/** Mixed hinted/unhinted population: one HintPolicy per app (must match
 * @p apps in length).  The merged stream is reference-for-reference
 * identical to the hint-free overload under the same seed. */
std::unique_ptr<AccessSource>
makeAdversarialSource(const std::vector<AdversaryKind> &apps,
                      const std::vector<HintPolicy> &hints,
                      u64 totalReferences, u64 seed = 1);

} // namespace molcache

#endif // MOLCACHE_WORKLOAD_ADVERSARIAL_HPP
