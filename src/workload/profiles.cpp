#include "workload/profiles.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"
#include "util/units.hpp"

namespace molcache {

namespace {

using Kind = StreamSpec::Kind;

StreamSpec
ws(double weight, Bytes footprint, double alpha)
{
    StreamSpec s;
    s.kind = Kind::WorkingSet;
    s.weight = weight;
    s.footprint = footprint.value();
    s.alpha = alpha;
    return s;
}

StreamSpec
seq(double weight, Bytes footprint, u64 stride = 64)
{
    StreamSpec s;
    s.kind = Kind::Sequential;
    s.weight = weight;
    s.footprint = footprint.value();
    s.stride = stride;
    return s;
}

StreamSpec
chase(double weight, Bytes footprint)
{
    StreamSpec s;
    s.kind = Kind::PointerChase;
    s.weight = weight;
    s.footprint = footprint.value();
    return s;
}

StreamSpec
strided(double weight, u32 walkers, Bytes footprint, u64 stride = 64)
{
    StreamSpec s;
    s.kind = Kind::Strided;
    s.weight = weight;
    s.walkers = walkers;
    s.footprint = footprint.value();
    s.stride = stride;
    return s;
}

/*
 * Calibration notes
 * -----------------
 * Standalone targets on a 1 MB 4-way 64 B LRU L2 (paper Table 1):
 *   art 0.064 | ammp 0.008 | mcf 0.668 | parser 0.086
 * The interference behaviour then has to *emerge*: ammp stays low under
 * any mix, parser collapses when sharing (WS slightly below cache size),
 * mcf stays high, art collapses only under the 4-way mix.
 *
 * The mixed-workload twelve have no standalone numbers in the paper;
 * their profiles span streaming (CRC, decode), spatial/strided (CJPEG,
 * epic, DRR) and temporal (crafty, twolf, NAT) behaviour so the 25 %
 * goal of Table 2 is hard for some and trivial for others, as in the
 * paper's setup.
 */
std::map<std::string, BenchmarkProfile>
buildRegistry()
{
    std::map<std::string, BenchmarkProfile> reg;

    auto add = [&reg](BenchmarkProfile p) {
        const std::string key = p.name;
        reg.emplace(key, std::move(p));
    };

    // ---- SPEC CPU2000 (Table 1 / Figure 5 set) --------------------------
    add({"art",
         "neural-net simulator: cyclic sweep over the weight arrays (an "
         "LRU cliff: all hits while the sweep fits, none once co-runners "
         "stretch its reuse distance past capacity) plus a hot core and a "
         "cold streaming component",
         {seq(0.62, 256_KiB), ws(0.33, 192_KiB, 1.30), seq(0.05, 8_MiB)},
         0.30});

    add({"ammp",
         "molecular dynamics: very hot small working set, almost no "
         "streaming; insensitive to co-runners",
         {ws(0.995, 24_KiB, 1.30), seq(0.005, 1_MiB)},
         0.20});

    add({"mcf",
         "single-depot vehicle scheduling: pointer chasing over a multi-MB "
         "graph; misses dominated by capacity regardless of partner",
         {chase(0.70, 32_MiB), ws(0.30, 64_KiB, 1.20)},
         0.25});

    add({"parser",
         "dictionary parser: working set just under the shared cache; "
         "fits alone, degrades gradually under sharing",
         {ws(0.91, 576_KiB, 0.80), chase(0.09, 2_MiB)},
         0.20});

    // ---- additional SPEC for the mixed workload -------------------------
    add({"crafty",
         "chess: small hot hash/board state, light streaming",
         {ws(0.97, 256_KiB, 0.80), seq(0.03, 1_MiB)},
         0.15});

    add({"gap",
         "group theory interpreter: medium working set with GC sweeps",
         {ws(0.88, 384_KiB, 0.70), seq(0.12, 4_MiB)},
         0.30});

    add({"gcc",
         "compiler: medium working set plus pointer-heavy IR walks",
         {ws(0.84, 512_KiB, 0.60), chase(0.16, 1536_KiB)},
         0.25});

    add({"gzip",
         "compression: cyclic pass over the input window plus a hot "
         "dictionary",
         {ws(0.62, 256_KiB, 0.90), seq(0.38, 448_KiB)},
         0.30});

    add({"twolf",
         "place & route: compact netlist structures, high temporal reuse",
         {ws(0.96, 192_KiB, 0.75), chase(0.04, 512_KiB)},
         0.20});

    // ---- NetBench --------------------------------------------------------
    add({"CRC",
         "checksum over packet payloads: nearly pure streaming, tiny state",
         {seq(0.95, 16_MiB), ws(0.05, 16_KiB, 1.00)},
         0.05});

    add({"DRR",
         "deficit round robin scheduler: several active packet queues "
         "walked in turn plus scheduler state",
         {strided(0.72, 8, 16_KiB, 64), ws(0.28, 96_KiB, 0.90)},
         0.35});

    add({"NAT",
         "address translation: hot flow table with random probes into a "
         "large connection table",
         {ws(0.78, 64_KiB, 1.10), chase(0.22, 4_MiB)},
         0.30});

    // ---- MediaBench ------------------------------------------------------
    add({"CJPEG",
         "JPEG encode: macroblock walkers over one image plus quant "
         "tables",
         {strided(0.74, 4, 32_KiB, 64), ws(0.26, 96_KiB, 0.90)},
         0.30});

    add({"decode",
         "video decode: cyclic reference-frame traffic too large to "
         "capture, with hot decode state",
         {seq(0.56, 3_MiB), ws(0.44, 128_KiB, 0.90)},
         0.35});

    add({"epic",
         "image pyramid codec: two strided planes with a small transform "
         "working set",
         {strided(0.60, 2, 160_KiB, 128), ws(0.40, 64_KiB, 0.85)},
         0.25});

    return reg;
}

const std::map<std::string, BenchmarkProfile> &
registry()
{
    static const std::map<std::string, BenchmarkProfile> reg = buildRegistry();
    return reg;
}

} // namespace

const BenchmarkProfile &
profileByName(const std::string &name)
{
    const auto &reg = registry();
    const auto it = reg.find(name);
    if (it == reg.end())
        fatal("unknown benchmark profile '", name, "'");
    return it->second;
}

bool
hasProfile(const std::string &name)
{
    return registry().count(name) != 0;
}

std::vector<std::string>
profileNames()
{
    std::vector<std::string> out;
    for (const auto &[name, p] : registry())
        out.push_back(name);
    return out;
}

std::vector<std::string>
spec4Names()
{
    return {"art", "ammp", "parser", "mcf"};
}

std::vector<std::string>
mixed12Names()
{
    return {"crafty", "gap", "gcc",   "gzip",   "parser", "twolf",
            "CRC",    "DRR", "NAT",   "CJPEG",  "decode", "epic"};
}

} // namespace molcache
