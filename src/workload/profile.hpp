/**
 * @file
 * Declarative benchmark profiles.
 *
 * A BenchmarkProfile is a recipe for a synthetic address stream that
 * mimics the cache-visible behaviour of one benchmark: a weighted mixture
 * of stream primitives plus a write fraction.  Profiles are pure data so
 * the full set (src/workload/profiles.cpp) reads like a calibration
 * table.
 */

#ifndef MOLCACHE_WORKLOAD_PROFILE_HPP
#define MOLCACHE_WORKLOAD_PROFILE_HPP

#include <memory>
#include <string>
#include <vector>

#include "workload/streams.hpp"

namespace molcache {

/** One mixture component of a profile. */
struct StreamSpec
{
    enum class Kind { Sequential, Strided, PointerChase, WorkingSet };

    Kind kind = Kind::WorkingSet;
    /** Mixture weight (relative; normalized at build time). */
    double weight = 1.0;
    /** Footprint in bytes (per walker for Strided). */
    u64 footprint = 64 * 1024;
    /** Zipf skew (WorkingSet only). */
    double alpha = 0.8;
    /** Advance per touch (Sequential / Strided). */
    u64 stride = 64;
    /** Number of concurrent walkers (Strided only). */
    u32 walkers = 1;
};

/** Full recipe for one application's reference stream. */
struct BenchmarkProfile
{
    std::string name;
    /** What real behaviour this models (for reports / docs). */
    std::string description;
    std::vector<StreamSpec> components;
    /** Fraction of references that are writes. */
    double writeFraction = 0.25;
};

/**
 * Materialize the profile's address stream.
 * Components are laid out side by side starting at @p base with
 * non-overlapping sub-regions.
 */
std::unique_ptr<AddressStream> buildStream(const BenchmarkProfile &profile,
                                           Addr base);

/**
 * Base address for an application: ASIDs get disjoint 16 GiB windows so
 * distinct applications never alias in a shared cache by accident.
 */
Addr applicationBase(Asid asid);

} // namespace molcache

#endif // MOLCACHE_WORKLOAD_PROFILE_HPP
