#include "contract/contract.hpp"

#include <utility>

namespace molcache::contract {

namespace {

// Thread-local so concurrent sweep workers (src/exec/) tally their own
// jobs' violations: SimResult::contractViolations is a same-thread delta
// and must not observe another worker's failures.
thread_local Counters g_counters;
Handler g_handler;

[[noreturn]] void
defaultHandler(Kind kind, const char *cond, const char *file, int line,
               const std::string &msg)
{
    panic(kindName(kind), " '", cond, "' violated at ", file, ":", line,
          msg.empty() ? "" : " ", msg);
}

} // namespace

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Expect:
        return "precondition";
      case Kind::Ensure:
        return "postcondition";
      case Kind::Invariant:
        return "invariant";
    }
    return "contract";
}

const Counters &
counters()
{
    return g_counters;
}

void
resetCounters()
{
    g_counters = Counters{};
}

Handler
setHandler(Handler handler)
{
    Handler previous = std::move(g_handler);
    g_handler = std::move(handler);
    return previous;
}

void
noteViolation(Kind kind, const char *cond, const char *file, int line,
              const std::string &msg)
{
    switch (kind) {
      case Kind::Expect:
        ++g_counters.expectFailures;
        break;
      case Kind::Ensure:
        ++g_counters.ensureFailures;
        break;
      case Kind::Invariant:
        ++g_counters.invariantFailures;
        break;
    }
    if (g_handler)
        g_handler(kind, cond, file, line, msg);
    else
        defaultHandler(kind, cond, file, line, msg);
}

} // namespace molcache::contract
