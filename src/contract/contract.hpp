/**
 * @file
 * Contract macros: preconditions, postconditions and invariants.
 *
 * Three macros replace ad-hoc asserts across the simulator core
 * (docs/static_analysis.md):
 *
 *  - MOLCACHE_EXPECT(cond, ...)    — precondition on a function's inputs;
 *  - MOLCACHE_ENSURE(cond, ...)    — postcondition on a function's result;
 *  - MOLCACHE_INVARIANT(cond, ...) — internal consistency of a structure.
 *
 * Activation: contracts are compiled in whenever NDEBUG is off (Debug)
 * or the build defines MOLCACHE_CONTRACTS_ENABLED (the CMake default for
 * every configuration except Release, so the tier-1 RelWithDebInfo build
 * keeps its guard rails); a pure Release build compiles them out to a
 * syntax-checked no-op — conditions must still compile, but nothing is
 * evaluated.  MOLCACHE_CONTRACTS_ACTIVE is 1/0 accordingly for code and
 * tests that need to know.
 *
 * A violation increments a per-kind counter (surfaced through
 * SimResult::contractViolations and the InvariantChecker audit) and then
 * invokes the violation handler.  The default handler panic()s, matching
 * the previous MOLCACHE_ASSERT behaviour; tests install a counting
 * handler via contract::setHandler to exercise violations non-fatally.
 */

#ifndef MOLCACHE_CONTRACT_CONTRACT_HPP
#define MOLCACHE_CONTRACT_CONTRACT_HPP

#include <functional>
#include <string>

#include "util/logging.hpp"
#include "util/types.hpp"

namespace molcache::contract {

/** Which contract macro was violated. */
enum class Kind : u8 { Expect, Ensure, Invariant };

const char *kindName(Kind kind);

/** Per-kind violation tallies since construction / last reset. */
struct Counters
{
    u64 expectFailures = 0;
    u64 ensureFailures = 0;
    u64 invariantFailures = 0;

    u64 total() const
    {
        return expectFailures + ensureFailures + invariantFailures;
    }
};

/** Per-thread violation counters (thread-local so parallel sweep
 * workers attribute violations to their own jobs). */
const Counters &counters();
void resetCounters();

/**
 * Violation handler: called after counting with the violated kind, the
 * stringified condition, the source location and the formatted message.
 */
using Handler = std::function<void(Kind kind, const char *cond,
                                   const char *file, int line,
                                   const std::string &msg)>;

/** Install @p handler; returns the previous one.  Empty restores the
 * default (panic). */
Handler setHandler(Handler handler);

/** Count and dispatch one violation (the macros' slow path). */
void noteViolation(Kind kind, const char *cond, const char *file, int line,
                   const std::string &msg);

} // namespace molcache::contract

#if !defined(NDEBUG) || defined(MOLCACHE_CONTRACTS_ENABLED)
#define MOLCACHE_CONTRACTS_ACTIVE 1
#else
#define MOLCACHE_CONTRACTS_ACTIVE 0
#endif

#if MOLCACHE_CONTRACTS_ACTIVE

#define MOLCACHE_CONTRACT_CHECK_(kind, cond, ...)                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::molcache::contract::noteViolation(                             \
                kind, #cond, __FILE__, __LINE__,                             \
                ::molcache::detail::concat(__VA_ARGS__));                    \
        }                                                                    \
    } while (0)

#else

/* Compiled out: the condition stays syntax- and type-checked (sizeof is
 * an unevaluated context) but nothing runs. */
#define MOLCACHE_CONTRACT_CHECK_(kind, cond, ...)                            \
    static_cast<void>(sizeof(!(cond)))

#endif

/** Precondition: the caller handed us sane inputs. */
#define MOLCACHE_EXPECT(cond, ...)                                           \
    MOLCACHE_CONTRACT_CHECK_(::molcache::contract::Kind::Expect, cond,       \
                             ##__VA_ARGS__)

/** Postcondition: we are about to hand back a sane result/state. */
#define MOLCACHE_ENSURE(cond, ...)                                           \
    MOLCACHE_CONTRACT_CHECK_(::molcache::contract::Kind::Ensure, cond,       \
                             ##__VA_ARGS__)

/** Structural invariant that must hold between operations. */
#define MOLCACHE_INVARIANT(cond, ...)                                        \
    MOLCACHE_CONTRACT_CHECK_(::molcache::contract::Kind::Invariant, cond,    \
                             ##__VA_ARGS__)

#endif // MOLCACHE_CONTRACT_CONTRACT_HPP
