#include "cache/way_partitioned.hpp"

#include <algorithm>
#include <sstream>

#include "stats/counter.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace molcache {

u32
WayPartitionedParams::numSets() const
{
    return static_cast<u32>(
        sizeBytes.value() / (static_cast<u64>(associativity) * lineSize));
}

void
WayPartitionedParams::validate() const
{
    if (lineSize == 0 || !isPowerOfTwo(lineSize))
        fatal("line size must be a power of two");
    if (associativity == 0)
        fatal("associativity must be >= 1");
    if (sizeBytes.value() %
                (static_cast<u64>(associativity) * lineSize) !=
            0 ||
        !isPowerOfTwo(numSets()))
        fatal("way-partitioned geometry must give 2^k sets");
}

WayPartitionedCache::WayPartitionedCache(const WayPartitionedParams &params)
    : params_(params)
{
    params_.validate();
    sets_ = params_.numSets();
    lines_.resize(static_cast<size_t>(sets_) * params_.associativity);
    nextRepartition_ = params_.repartitionPeriod;
}

WayPartitionedCache::Line &
WayPartitionedCache::lineAt(u32 set, u32 way)
{
    return lines_[static_cast<size_t>(set) * params_.associativity + way];
}

u32
WayPartitionedCache::setIndex(Addr addr) const
{
    return static_cast<u32>((addr / params_.lineSize) & (sets_ - 1));
}

Addr
WayPartitionedCache::tagOf(Addr addr) const
{
    return addr / params_.lineSize / sets_;
}

void
WayPartitionedCache::registerApplication(Asid asid, double missRateGoal)
{
    if (asid == kInvalidAsid)
        fatal("cannot register the invalid ASID");
    if (apps_.count(asid))
        fatal("ASID ", asid, " is already registered");
    if (apps_.size() >= params_.associativity)
        fatal("way partitioning supports at most associativity (",
              params_.associativity, ") applications");
    if (missRateGoal <= 0.0 || missRateGoal > 1.0)
        fatal("miss-rate goal out of (0,1]");
    apps_[asid].goal = missRateGoal;
    rebalanceEvenly();
}

bool
WayPartitionedCache::hasApplication(Asid asid) const
{
    return apps_.count(asid) != 0;
}

u32
WayPartitionedCache::waysOf(Asid asid) const
{
    const auto it = apps_.find(asid);
    return it == apps_.end() ? 0
                             : static_cast<u32>(it->second.ways.size());
}

WayPartitionedCache::App &
WayPartitionedCache::appFor(Asid asid)
{
    const auto it = apps_.find(asid);
    if (it != apps_.end())
        return it->second;
    registerApplication(asid, 0.1);
    return apps_.at(asid);
}

void
WayPartitionedCache::rebalanceEvenly()
{
    const u32 n = static_cast<u32>(apps_.size());
    const u32 base = params_.associativity / n;
    u32 extra = params_.associativity % n;
    u32 next_way = 0;
    for (auto &[asid, app] : apps_) {
        app.ways.clear();
        u32 quota = base + (extra > 0 ? 1 : 0);
        if (extra > 0)
            --extra;
        while (quota-- > 0)
            app.ways.push_back(next_way++);
    }
    MOLCACHE_ASSERT(next_way == params_.associativity,
                    "way distribution bookkeeping is off");
}

void
WayPartitionedCache::maybeRepartition()
{
    if (params_.repartitionPeriod == 0 || tick_ < nextRepartition_)
        return;
    nextRepartition_ = tick_ + params_.repartitionPeriod;

    // Marginal reallocation in the spirit of Suh's allocator: move one
    // way per period from the most under-goal donor with ways to spare
    // to the most over-goal receiver.
    App *donor = nullptr;
    App *receiver = nullptr;
    double donor_slack = 0.0;
    double receiver_need = 0.0;
    for (auto &[asid, app] : apps_) {
        if (app.intervalAccesses < 500)
            continue;
        const double mr = ratio(app.intervalMisses, app.intervalAccesses);
        const double delta = mr - app.goal;
        if (delta < 0 && app.ways.size() > 1 && -delta > donor_slack) {
            donor_slack = -delta;
            donor = &app;
        }
        if (delta > 0 && delta > receiver_need) {
            receiver_need = delta;
            receiver = &app;
        }
    }
    if (donor != nullptr && receiver != nullptr && donor != receiver) {
        const u32 way = donor->ways.back();
        donor->ways.pop_back();
        receiver->ways.push_back(way);
        ++repartitions_;
        // Lines in the moved column stay until naturally displaced —
        // lookups still find them (column caching restricts placement,
        // not lookup).
    }
    for (auto &[asid, app] : apps_) {
        app.intervalAccesses = 0;
        app.intervalMisses = 0;
    }
}

AccessResult
WayPartitionedCache::access(const MemAccess &access)
{
    App &app = appFor(access.asid);
    ++tick_;
    ++clock_;
    ++app.intervalAccesses;

    AccessResult result;
    result.energyNj = params_.energyPerAccessNj;
    energyNj_ += params_.energyPerAccessNj;

    const u32 set = setIndex(access.addr);
    const Addr tag = tagOf(access.addr);

    // Lookup over every way: hits outside the own columns are legal.
    for (u32 w = 0; w < params_.associativity; ++w) {
        Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag) {
            line.lru = clock_;
            if (access.isWrite())
                line.dirty = true;
            result.latencyCycles = params_.hitLatencyCycles;
            stats_.record(access.asid, true, access.isWrite(),
                          result.latencyCycles);
            result.hit = true;
            maybeRepartition();
            return result;
        }
    }

    // Miss: place within the requestor's columns only (invalid first,
    // else LRU among them).
    ++app.intervalMisses;
    MOLCACHE_ASSERT(!app.ways.empty(), "application with no columns");
    u32 victim = app.ways.front();
    u64 oldest = ~0ull;
    for (const u32 w : app.ways) {
        Line &line = lineAt(set, w);
        if (!line.valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (line.lru < oldest) {
            oldest = line.lru;
            victim = w;
        }
    }

    Line &line = lineAt(set, victim);
    if (line.valid && line.dirty)
        stats_.recordWriteback(line.asid);
    line.valid = true;
    line.tag = tag;
    line.asid = access.asid;
    line.dirty = access.isWrite();
    line.lru = clock_;

    result.latencyCycles =
        params_.hitLatencyCycles + params_.missPenaltyCycles;
    stats_.record(access.asid, false, access.isWrite(),
                  result.latencyCycles);
    result.hit = false;
    result.level = 2;
    maybeRepartition();
    return result;
}

std::string
WayPartitionedCache::name() const
{
    std::ostringstream os;
    os << formatSize(params_.sizeBytes) << " " << params_.associativity
       << "-way column-partitioned";
    return os.str();
}

void
WayPartitionedCache::resetStats()
{
    stats_.reset();
    energyNj_ = 0.0;
}

} // namespace molcache
