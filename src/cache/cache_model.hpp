/**
 * @file
 * The common interface every simulated cache implements.
 *
 * Both the traditional set-associative baseline (cache/set_assoc.hpp) and
 * the molecular cache (core/molecular_cache.hpp) are trace-driven models
 * behind this interface, so the simulator, benches and tests treat them
 * uniformly.
 */

#ifndef MOLCACHE_CACHE_CACHE_MODEL_HPP
#define MOLCACHE_CACHE_CACHE_MODEL_HPP

#include <span>
#include <string>

#include "cache/cache_stats.hpp"
#include "mem/access.hpp"

namespace molcache {

class CacheModel
{
  public:
    virtual ~CacheModel() = default;

    /** Present one reference; updates stats and returns the outcome. */
    virtual AccessResult access(const MemAccess &access) = 0;

    /**
     * Present a block of references; writes one outcome per reference.
     * Semantically identical to calling access() in order — models
     * override it purely to amortize per-reference overhead (the
     * molecular cache's batch pipeline, docs/perf.md) and the
     * differential suite pins byte-identical results against the scalar
     * path.  @p in and @p out must be the same length.
     */
    virtual void accessBatch(std::span<const MemAccess> in,
                             std::span<AccessResult> out);

    /** Aggregated statistics since construction / last resetStats(). */
    virtual const CacheStats &stats() const = 0;

    /** Human-readable model description for reports. */
    virtual std::string name() const = 0;

    /** Clear statistics (leaves cache contents intact). */
    virtual void resetStats() = 0;

    /** Total dynamic energy consumed so far, in nanojoules. */
    virtual double totalEnergyNj() const = 0;
};

} // namespace molcache

#endif // MOLCACHE_CACHE_CACHE_MODEL_HPP
