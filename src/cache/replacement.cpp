#include "cache/replacement.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace molcache {

namespace {

/** True LRU via per-way age stamps (small associativities only). */
class LruState final : public ReplacementState
{
  public:
    LruState(u32 sets, u32 ways)
        : ways_(ways), stamps_(static_cast<size_t>(sets) * ways, 0),
          clock_(0)
    {
    }

    void
    touch(u32 set, u32 way) override
    {
        stamps_[idx(set, way)] = ++clock_;
    }

    void
    insert(u32 set, u32 way) override
    {
        touch(set, way);
    }

    u32
    victim(u32 set) override
    {
        u32 best = 0;
        u64 oldest = stamps_[idx(set, 0)];
        for (u32 w = 1; w < ways_; ++w) {
            const u64 s = stamps_[idx(set, w)];
            if (s < oldest) {
                oldest = s;
                best = w;
            }
        }
        return best;
    }

    std::string name() const override { return "lru"; }

  private:
    size_t
    idx(u32 set, u32 way) const
    {
        return static_cast<size_t>(set) * ways_ + way;
    }

    u32 ways_;
    std::vector<u64> stamps_;
    u64 clock_;
};

/** FIFO: evict in insertion order, ignoring hits. */
class FifoState final : public ReplacementState
{
  public:
    FifoState(u32 sets, u32 ways)
        : ways_(ways), next_(sets, 0)
    {
    }

    void touch(u32, u32) override {}

    void
    insert(u32 set, u32 way) override
    {
        // Track the rotation implicitly: inserting at the victim slot
        // advances the pointer.
        if (way == next_[set])
            next_[set] = (next_[set] + 1) % ways_;
    }

    u32
    victim(u32 set) override
    {
        return next_[set];
    }

    std::string name() const override { return "fifo"; }

  private:
    u32 ways_;
    std::vector<u32> next_;
};

/** Uniform random victim. */
class RandomState final : public ReplacementState
{
  public:
    RandomState(u32 ways, u64 seed)
        : ways_(ways), rng_(seed)
    {
    }

    void touch(u32, u32) override {}
    void insert(u32, u32) override {}

    u32
    victim(u32) override
    {
        return rng_.below(ways_);
    }

    std::string name() const override { return "random"; }

  private:
    u32 ways_;
    Pcg32 rng_;
};

/** Tree pseudo-LRU (power-of-two associativities). */
class TreePlruState final : public ReplacementState
{
  public:
    TreePlruState(u32 sets, u32 ways)
        : ways_(ways), bits_(static_cast<size_t>(sets) * (ways - 1), false)
    {
        MOLCACHE_ASSERT(isPowerOfTwo(ways), "tree-PLRU needs 2^k ways");
    }

    void
    touch(u32 set, u32 way) override
    {
        // Walk root->leaf, pointing each node away from the touched way.
        u32 node = 0;
        u32 lo = 0, hi = ways_;
        while (hi - lo > 1) {
            const u32 mid = (lo + hi) / 2;
            const bool right = way >= mid;
            bit(set, node) = !right; // point away
            node = 2 * node + (right ? 2 : 1);
            (right ? lo : hi) = mid;
        }
    }

    void
    insert(u32 set, u32 way) override
    {
        touch(set, way);
    }

    u32
    victim(u32 set) override
    {
        u32 node = 0;
        u32 lo = 0, hi = ways_;
        while (hi - lo > 1) {
            const u32 mid = (lo + hi) / 2;
            const bool right = bit(set, node);
            node = 2 * node + (right ? 2 : 1);
            (right ? lo : hi) = mid;
        }
        return lo;
    }

    std::string name() const override { return "plru"; }

  private:
    std::vector<bool>::reference
    bit(u32 set, u32 node)
    {
        return bits_[static_cast<size_t>(set) * (ways_ - 1) + node];
    }

    u32 ways_;
    std::vector<bool> bits_;
};

} // namespace

ReplPolicy
parseReplPolicy(const std::string &text)
{
    if (text == "lru")
        return ReplPolicy::Lru;
    if (text == "fifo")
        return ReplPolicy::Fifo;
    if (text == "random")
        return ReplPolicy::Random;
    if (text == "plru")
        return ReplPolicy::TreePlru;
    fatal("unknown replacement policy '", text, "'");
}

std::string
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru:
        return "lru";
      case ReplPolicy::Fifo:
        return "fifo";
      case ReplPolicy::Random:
        return "random";
      case ReplPolicy::TreePlru:
        return "plru";
    }
    panic("unknown ReplPolicy");
}

std::unique_ptr<ReplacementState>
makeReplacementState(ReplPolicy policy, u32 sets, u32 ways, u64 seed)
{
    MOLCACHE_ASSERT(sets > 0 && ways > 0, "degenerate cache geometry");
    switch (policy) {
      case ReplPolicy::Lru:
        return std::make_unique<LruState>(sets, ways);
      case ReplPolicy::Fifo:
        return std::make_unique<FifoState>(sets, ways);
      case ReplPolicy::Random:
        return std::make_unique<RandomState>(ways, seed);
      case ReplPolicy::TreePlru:
        return std::make_unique<TreePlruState>(sets, ways);
    }
    panic("unknown ReplPolicy");
}

} // namespace molcache
