/**
 * @file
 * Per-set replacement policies for the traditional cache model.
 *
 * The paper's baselines are standard LRU set-associative caches; FIFO,
 * Random and tree-PLRU are provided for completeness (section 3.3 opens
 * with the FIFO/Random/LRU comparison).
 */

#ifndef MOLCACHE_CACHE_REPLACEMENT_HPP
#define MOLCACHE_CACHE_REPLACEMENT_HPP

#include <memory>
#include <string>
#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"

namespace molcache {

/** Policy selector. */
enum class ReplPolicy { Lru, Fifo, Random, TreePlru };

/** Parse "lru" / "fifo" / "random" / "plru". */
ReplPolicy parseReplPolicy(const std::string &text);

/** Printable name. */
std::string replPolicyName(ReplPolicy p);

/**
 * Replacement state for all sets of one cache.  The cache calls touch()
 * on hits, insert() on fills, and victim() when it needs to evict from a
 * full set.
 */
class ReplacementState
{
  public:
    virtual ~ReplacementState() = default;

    virtual void touch(u32 set, u32 way) = 0;
    virtual void insert(u32 set, u32 way) = 0;
    /** Pick the way to evict in a full set. */
    virtual u32 victim(u32 set) = 0;

    virtual std::string name() const = 0;
};

/** Factory. @p seed feeds the Random policy. */
std::unique_ptr<ReplacementState> makeReplacementState(ReplPolicy policy,
                                                       u32 sets, u32 ways,
                                                       u64 seed = 1);

} // namespace molcache

#endif // MOLCACHE_CACHE_REPLACEMENT_HPP
