/**
 * @file
 * Way-partitioned (column-caching) baseline — Suh, Rudolph & Devadas'
 * "Dynamic partitioning of shared cache memory" scheme, the closest
 * prior art the paper argues against (section 2): each application is
 * restricted to a subset of the ways ("columns") of a conventional
 * set-associative cache.
 *
 * The paper's critique, which this model lets you measure directly:
 * partition granularity is a whole way (size/associativity bytes), the
 * number of partitions is bounded by the associativity, and reaching
 * fine granularity requires high associativity — which costs superlinear
 * power (see power/cacti.hpp).  Contrast with molecules: 8 KB granules,
 * hundreds of partitions, direct-mapped building blocks.
 *
 * Implementation notes:
 *  - lookup searches ALL ways (hits in another application's column are
 *    legal — restriction applies to *placement*, as in column caching);
 *  - on a miss the victim is chosen by LRU among the requestor's
 *    assigned columns only;
 *  - a lightweight goal-driven reassigner (in the spirit of Suh's
 *    marginal-gain allocator) periodically moves columns from
 *    under-goal to over-goal applications.
 */

#ifndef MOLCACHE_CACHE_WAY_PARTITIONED_HPP
#define MOLCACHE_CACHE_WAY_PARTITIONED_HPP

#include <map>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

struct WayPartitionedParams
{
    Bytes sizeBytes = 2_MiB;
    u32 associativity = 8;
    u32 lineSize = 64;
    /** Reassignment period in accesses (0 disables dynamic repartition). */
    u64 repartitionPeriod = 25000;
    /** Dynamic energy per access (nJ); 0 disables energy accounting. */
    double energyPerAccessNj = 0.0;
    /** Hit latency in cache cycles. */
    Cycles hitLatencyCycles{1};
    /** Additional cycles a miss pays for the memory round trip. */
    Cycles missPenaltyCycles{200};

    u32 numSets() const;
    void validate() const;
};

class WayPartitionedCache final : public CacheModel
{
  public:
    explicit WayPartitionedCache(const WayPartitionedParams &params);

    /**
     * Assign an application and its miss-rate goal.  Ways are
     * (re)divided evenly among registered applications, remainder to the
     * earliest; at least one way each — registration beyond
     * `associativity` applications is fatal.
     */
    void registerApplication(Asid asid, double missRateGoal);
    bool hasApplication(Asid asid) const;

    /** Ways currently assigned to @p asid. */
    u32 waysOf(Asid asid) const;

    // CacheModel ------------------------------------------------------
    AccessResult access(const MemAccess &access) override;
    const CacheStats &stats() const override { return stats_; }
    std::string name() const override;
    void resetStats() override;
    double totalEnergyNj() const override { return energyNj_; }

    u64 repartitions() const { return repartitions_; }

  private:
    struct Line
    {
        Addr tag = 0;
        Asid asid = kInvalidAsid;
        u64 lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    struct App
    {
        double goal = 0.1;
        std::vector<u32> ways;
        u64 intervalAccesses = 0;
        u64 intervalMisses = 0;
    };

    Line &lineAt(u32 set, u32 way);
    u32 setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    App &appFor(Asid asid);
    void rebalanceEvenly();
    void maybeRepartition();

    WayPartitionedParams params_;
    u32 sets_;
    std::vector<Line> lines_;
    std::map<Asid, App> apps_;
    CacheStats stats_;
    u64 clock_ = 0;
    Tick tick_ = 0;
    Tick nextRepartition_ = 0;
    u64 repartitions_ = 0;
    double energyNj_ = 0.0;
};

} // namespace molcache

#endif // MOLCACHE_CACHE_WAY_PARTITIONED_HPP
