#include "cache/cache_model.hpp"

#include "contract/contract.hpp"

namespace molcache {

void
CacheModel::accessBatch(std::span<const MemAccess> in,
                        std::span<AccessResult> out)
{
    MOLCACHE_EXPECT(in.size() == out.size(),
                    "accessBatch span length mismatch");
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = access(in[i]);
}

} // namespace molcache
