#include "cache/set_assoc.hpp"

#include <sstream>

#include "util/bits.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace molcache {

u32
SetAssocParams::numSets() const
{
    return static_cast<u32>(
        sizeBytes.value() / (static_cast<u64>(associativity) * lineSize));
}

u32
SetAssocParams::numLines() const
{
    return static_cast<u32>(sizeBytes.value() / lineSize);
}

void
SetAssocParams::validate() const
{
    if (lineSize == 0 || !isPowerOfTwo(lineSize))
        fatal("line size must be a power of two, got ", lineSize);
    if (associativity == 0)
        fatal("associativity must be >= 1");
    const u64 setBytes = static_cast<u64>(associativity) * lineSize;
    if (sizeBytes.value() == 0 || sizeBytes.value() % setBytes != 0)
        fatal("cache size ", sizeBytes,
              " is not a multiple of associativity*lineSize");
    if (!isPowerOfTwo(numSets()))
        fatal("number of sets (", numSets(), ") must be a power of two");
}

SetAssocCache::SetAssocCache(const SetAssocParams &params)
    : params_(params)
{
    params_.validate();
    sets_ = params_.numSets();
    lines_.resize(static_cast<size_t>(sets_) * params_.associativity);
    repl_ = makeReplacementState(params_.replacement, sets_,
                                 params_.associativity, params_.seed);
}

u32
SetAssocCache::setIndex(Addr addr) const
{
    return static_cast<u32>((addr / params_.lineSize) & (sets_ - 1));
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr / params_.lineSize / sets_;
}

SetAssocCache::Line &
SetAssocCache::lineAt(u32 set, u32 way)
{
    return lines_[static_cast<size_t>(set) * params_.associativity + way];
}

const SetAssocCache::Line &
SetAssocCache::lineAt(u32 set, u32 way) const
{
    return lines_[static_cast<size_t>(set) * params_.associativity + way];
}

AccessResult
SetAssocCache::access(const MemAccess &access)
{
    const u32 set = setIndex(access.addr);
    const Addr tag = tagOf(access.addr);

    AccessResult result;
    result.energyNj = params_.energyPerAccessNj;
    energyNj_ += params_.energyPerAccessNj;

    // Lookup.
    for (u32 w = 0; w < params_.associativity; ++w) {
        Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag) {
            repl_->touch(set, w);
            if (access.isWrite())
                line.dirty = true;
            result.latencyCycles = params_.hitLatencyCycles;
            stats_.record(access.asid, true, access.isWrite(),
                          result.latencyCycles);
            result.hit = true;
            result.level = 0;
            return result;
        }
    }

    // Miss: find a fill slot — invalid way first, else policy victim.
    u32 fill = params_.associativity;
    for (u32 w = 0; w < params_.associativity; ++w) {
        if (!lineAt(set, w).valid) {
            fill = w;
            break;
        }
    }
    if (fill == params_.associativity)
        fill = repl_->victim(set);
    MOLCACHE_ASSERT(fill < params_.associativity, "victim out of range");

    Line &line = lineAt(set, fill);
    if (line.valid && line.dirty)
        stats_.recordWriteback(line.asid);
    line.valid = true;
    line.tag = tag;
    line.asid = access.asid;
    line.dirty = access.isWrite();
    repl_->insert(set, fill);

    result.latencyCycles =
        params_.hitLatencyCycles + params_.missPenaltyCycles;
    stats_.record(access.asid, false, access.isWrite(),
                  result.latencyCycles);
    result.hit = false;
    result.level = 2;
    return result;
}

std::string
SetAssocCache::name() const
{
    std::ostringstream os;
    os << formatSize(params_.sizeBytes) << " ";
    if (params_.associativity == 1)
        os << "direct-mapped";
    else
        os << params_.associativity << "-way";
    os << " " << replPolicyName(params_.replacement);
    return os.str();
}

void
SetAssocCache::resetStats()
{
    stats_.reset();
    energyNj_ = 0.0;
}

bool
SetAssocCache::probe(Addr addr) const
{
    const u32 set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (u32 w = 0; w < params_.associativity; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

u32
SetAssocCache::occupancy(Asid asid) const
{
    u32 count = 0;
    for (const Line &line : lines_)
        if (line.valid && line.asid == asid)
            ++count;
    return count;
}

void
SetAssocCache::flush()
{
    for (Line &line : lines_)
        line = Line{};
}

} // namespace molcache
