/**
 * @file
 * Traditional set-associative cache model (the Dinero role).
 *
 * This is the paper's baseline: a monolithic, shared, set-associative
 * cache with a common line size and associativity for all applications.
 * It is trace driven and tracks per-ASID statistics so the interference
 * experiment (Table 1) and the deviation baselines (Figure 5, Table 2)
 * fall out directly.
 */

#ifndef MOLCACHE_CACHE_SET_ASSOC_HPP
#define MOLCACHE_CACHE_SET_ASSOC_HPP

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/replacement.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

/** Geometry and policy of a traditional cache. */
struct SetAssocParams
{
    Bytes sizeBytes = 1_MiB;
    u32 associativity = 4;
    u32 lineSize = 64;
    ReplPolicy replacement = ReplPolicy::Lru;
    /** Read/write ports; only power reporting cares. */
    u32 ports = 1;
    /** Dynamic energy per access (nJ); 0 disables energy accounting. */
    double energyPerAccessNj = 0.0;
    /** Hit latency in cache cycles. */
    Cycles hitLatencyCycles{1};
    /** Additional cycles a miss pays for the memory round trip. */
    Cycles missPenaltyCycles{200};
    u64 seed = 1;

    u32 numSets() const;
    u32 numLines() const;

    /** fatal() unless sizes/associativity are coherent powers of two. */
    void validate() const;
};

class SetAssocCache final : public CacheModel
{
  public:
    explicit SetAssocCache(const SetAssocParams &params);

    AccessResult access(const MemAccess &access) override;
    const CacheStats &stats() const override { return stats_; }
    std::string name() const override;
    void resetStats() override;
    double totalEnergyNj() const override { return energyNj_; }

    const SetAssocParams &params() const { return params_; }

    /** True if @p addr is currently cached (no state change). */
    bool probe(Addr addr) const;

    /** Number of valid lines currently held by @p asid. */
    u32 occupancy(Asid asid) const;

    /** Invalidate everything (keeps stats). */
    void flush();

  private:
    struct Line
    {
        Addr tag = 0;
        Asid asid = kInvalidAsid;
        bool valid = false;
        bool dirty = false;
    };

    u32 setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line &lineAt(u32 set, u32 way);
    const Line &lineAt(u32 set, u32 way) const;

    SetAssocParams params_;
    u32 sets_;
    std::vector<Line> lines_;
    std::unique_ptr<ReplacementState> repl_;
    CacheStats stats_;
    double energyNj_ = 0.0;
};

} // namespace molcache

#endif // MOLCACHE_CACHE_SET_ASSOC_HPP
