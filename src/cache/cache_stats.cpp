#include "cache/cache_stats.hpp"

namespace molcache {

AccessCounters &
CacheStats::slot(Asid asid)
{
    const u32 v = asid.value();
    if (v < denseIndex_.size() && denseIndex_[v] != nullptr)
        return *denseIndex_[v];
    AccessCounters &c = perAsid_[asid]; // node-stable insertion
    if (denseIndex_.size() <= v)
        denseIndex_.resize(v + 1u, nullptr);
    denseIndex_[v] = &c;
    return c;
}

void
CacheStats::record(Asid asid, bool hit, bool isWrite, Cycles latency)
{
    auto bump = [&](AccessCounters &c) {
        ++c.accesses;
        if (hit)
            ++c.hits;
        else
            ++c.misses;
        if (isWrite)
            ++c.writes;
        c.latencyCycles += latency;
    };
    bump(global_);
    bump(slot(asid));
}

void
CacheStats::recordHitBatch(Asid asid, u64 count, u64 writes,
                           Cycles latencyEach)
{
    auto bump = [&](AccessCounters &c) {
        c.accesses += count;
        c.hits += count;
        c.writes += writes;
        c.latencyCycles += Cycles{latencyEach.value() * count};
    };
    bump(global_);
    bump(slot(asid));
}

void
CacheStats::recordWriteback(Asid asid)
{
    ++global_.writebacks;
    ++slot(asid).writebacks;
}

const AccessCounters &
CacheStats::forAsid(Asid asid) const
{
    static const AccessCounters kZero{};
    const auto it = perAsid_.find(asid);
    return it == perAsid_.end() ? kZero : it->second;
}

void
CacheStats::retire(Asid asid)
{
    const u32 v = asid.value();
    const auto it = perAsid_.find(asid);
    if (it != perAsid_.end()) {
        perAsid_.erase(it);
        if (v < denseIndex_.size())
            denseIndex_[v] = nullptr;
    }
    // Bump the generation even when the tenant never recorded an
    // access: the tag marks the reuse boundary of the ASID value, not
    // of the counters, so (asid, generation) stays unique across
    // recycling of completely idle tenants too.
    if (generation_.size() <= v)
        generation_.resize(v + 1u, 0u);
    ++generation_[v];
}

u32
CacheStats::generationOf(Asid asid) const
{
    const u32 v = asid.value();
    return v < generation_.size() ? generation_[v] : 0u;
}

std::map<Asid, double>
CacheStats::missRates() const
{
    std::map<Asid, double> out;
    for (const auto &[asid, c] : perAsid_)
        out[asid] = c.missRate();
    return out;
}

void
CacheStats::reset()
{
    global_ = AccessCounters{};
    perAsid_.clear();
    denseIndex_.clear();
    generation_.clear();
}

} // namespace molcache
