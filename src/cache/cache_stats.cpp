#include "cache/cache_stats.hpp"

namespace molcache {

AccessCounters &
CacheStats::slot(Asid asid)
{
    const u32 v = asid.value();
    if (v < denseIndex_.size() && denseIndex_[v] != nullptr)
        return *denseIndex_[v];
    AccessCounters &c = perAsid_[asid]; // node-stable insertion
    if (denseIndex_.size() <= v)
        denseIndex_.resize(v + 1u, nullptr);
    denseIndex_[v] = &c;
    return c;
}

void
CacheStats::record(Asid asid, bool hit, bool isWrite, Cycles latency)
{
    auto bump = [&](AccessCounters &c) {
        ++c.accesses;
        if (hit)
            ++c.hits;
        else
            ++c.misses;
        if (isWrite)
            ++c.writes;
        c.latencyCycles += latency;
    };
    bump(global_);
    bump(slot(asid));
}

void
CacheStats::recordWriteback(Asid asid)
{
    ++global_.writebacks;
    ++slot(asid).writebacks;
}

const AccessCounters &
CacheStats::forAsid(Asid asid) const
{
    static const AccessCounters kZero{};
    const auto it = perAsid_.find(asid);
    return it == perAsid_.end() ? kZero : it->second;
}

std::map<Asid, double>
CacheStats::missRates() const
{
    std::map<Asid, double> out;
    for (const auto &[asid, c] : perAsid_)
        out[asid] = c.missRate();
    return out;
}

void
CacheStats::reset()
{
    global_ = AccessCounters{};
    perAsid_.clear();
    denseIndex_.clear();
}

} // namespace molcache
