#include "cache/cache_stats.hpp"

namespace molcache {

void
CacheStats::record(Asid asid, bool hit, bool isWrite, Cycles latency)
{
    auto bump = [&](AccessCounters &c) {
        ++c.accesses;
        if (hit)
            ++c.hits;
        else
            ++c.misses;
        if (isWrite)
            ++c.writes;
        c.latencyCycles += latency;
    };
    bump(global_);
    bump(perAsid_[asid]);
}

void
CacheStats::recordWriteback(Asid asid)
{
    ++global_.writebacks;
    ++perAsid_[asid].writebacks;
}

const AccessCounters &
CacheStats::forAsid(Asid asid) const
{
    static const AccessCounters kZero{};
    const auto it = perAsid_.find(asid);
    return it == perAsid_.end() ? kZero : it->second;
}

std::map<Asid, double>
CacheStats::missRates() const
{
    std::map<Asid, double> out;
    for (const auto &[asid, c] : perAsid_)
        out[asid] = c.missRate();
    return out;
}

void
CacheStats::reset()
{
    global_ = AccessCounters{};
    perAsid_.clear();
}

} // namespace molcache
