/**
 * @file
 * Per-application and global cache statistics.
 *
 * Every cache model tracks hits/misses both globally and per ASID; the
 * paper's evaluation is entirely in terms of per-application miss rates
 * (Table 1, Figure 5, Table 2) so per-ASID resolution is first class.
 */

#ifndef MOLCACHE_CACHE_CACHE_STATS_HPP
#define MOLCACHE_CACHE_CACHE_STATS_HPP

#include <map>
#include <vector>

#include "stats/counter.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

/** Counter block kept once globally and once per ASID. */
struct AccessCounters
{
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writes = 0;
    u64 writebacks = 0;
    /** Sum of per-access latencies (cache cycles). */
    Cycles latencyCycles{};

    double missRate() const { return ratio(misses, accesses); }
    double hitRate() const { return ratio(hits, accesses); }
    /** Average memory access time, in cache cycles. */
    double amat() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(latencyCycles.value()) /
                                   static_cast<double>(accesses);
    }
};

class CacheStats
{
  public:
    /** Record one access outcome. */
    void record(Asid asid, bool hit, bool isWrite,
                Cycles latency = Cycles{0});

    /** Record a dirty-line eviction. */
    void recordWriteback(Asid asid);

    const AccessCounters &global() const { return global_; }

    /** Counters for @p asid (zeros if never seen). */
    const AccessCounters &forAsid(Asid asid) const;

    /** Per-ASID observed miss rates (only ASIDs actually seen). */
    std::map<Asid, double> missRates() const;

    /** All per-ASID counters. */
    const std::map<Asid, AccessCounters> &perAsid() const { return perAsid_; }

    void reset();

  private:
    /** Counter block of @p asid, created on first sight.  Steady-state
     * calls resolve through the dense index — no map walk per access. */
    AccessCounters &slot(Asid asid);

    AccessCounters global_;
    // Ordered authority for the reporting API; map nodes are stable so
    // the dense index can point at them.  molcache-lint: allow-map
    std::map<Asid, AccessCounters> perAsid_;
    std::vector<AccessCounters *> denseIndex_; // by asid value
};

} // namespace molcache

#endif // MOLCACHE_CACHE_CACHE_STATS_HPP
