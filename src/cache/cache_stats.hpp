/**
 * @file
 * Per-application and global cache statistics.
 *
 * Every cache model tracks hits/misses both globally and per ASID; the
 * paper's evaluation is entirely in terms of per-application miss rates
 * (Table 1, Figure 5, Table 2) so per-ASID resolution is first class.
 */

#ifndef MOLCACHE_CACHE_CACHE_STATS_HPP
#define MOLCACHE_CACHE_CACHE_STATS_HPP

#include <map>
#include <vector>

#include "stats/counter.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

/** Counter block kept once globally and once per ASID. */
struct AccessCounters
{
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writes = 0;
    u64 writebacks = 0;
    /** Sum of per-access latencies (cache cycles). */
    Cycles latencyCycles{};

    double missRate() const { return ratio(misses, accesses); }
    double hitRate() const { return ratio(hits, accesses); }
    /** Average memory access time, in cache cycles. */
    double amat() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(latencyCycles.value()) /
                                   static_cast<double>(accesses);
    }
};

class CacheStats
{
  public:
    /** Record one access outcome. */
    void record(Asid asid, bool hit, bool isWrite,
                Cycles latency = Cycles{0});

    /**
     * Batched equivalent of @p count hit records for @p asid, @p writes
     * of them writes, each with latency @p latencyEach.  The batch access
     * plane accumulates its uniform home-tile hits in lane-local counters
     * and flushes them through here; every counter is an integer sum, so
     * the result is identical to count record() calls.
     */
    void recordHitBatch(Asid asid, u64 count, u64 writes,
                        Cycles latencyEach);

    /** Record a dirty-line eviction. */
    void recordWriteback(Asid asid);

    const AccessCounters &global() const { return global_; }

    /** Counters for @p asid (zeros if never seen). */
    const AccessCounters &forAsid(Asid asid) const;

    /** Per-ASID observed miss rates (only ASIDs actually seen). */
    std::map<Asid, double> missRates() const;

    /** All per-ASID counters. */
    const std::map<Asid, AccessCounters> &perAsid() const { return perAsid_; }

    /**
     * Forget @p asid's counters so the slot can be recycled for a new
     * application under the same ASID value.  Long-running multi-tenant
     * churn (molcached attach/detach cycles) reuses ASIDs; without
     * retirement the per-ASID map — and every consumer iterating it —
     * would grow with lifetime tenant count instead of live tenant
     * count.  Bumps the slot's generation tag so telemetry snapshots
     * taken before the retire can be told apart from the successor
     * tenant's counters.  Global counters are untouched (lifetime
     * totals survive tenant departure).  A never-seen ASID still gets
     * its generation bumped — the tag marks ASID reuse, and idle
     * tenants recycle ASIDs too.
     */
    void retire(Asid asid);

    /**
     * Times @p asid's counter slot has been retired (0 = never).  The
     * pair (asid, generation) uniquely names one tenant's statistics
     * across ASID reuse.
     */
    u32 generationOf(Asid asid) const;

    /** Live per-ASID slots (bounded by live tenants once departures
     * retire their slots — the churn regression tests pin this). */
    u64 trackedAsids() const { return static_cast<u64>(perAsid_.size()); }

    void reset();

  private:
    /** Counter block of @p asid, created on first sight.  Steady-state
     * calls resolve through the dense index — no map walk per access. */
    AccessCounters &slot(Asid asid);

    AccessCounters global_;
    // Ordered authority for the reporting API; map nodes are stable so
    // the dense index can point at them.  molcache-lint: allow-map
    std::map<Asid, AccessCounters> perAsid_;
    std::vector<AccessCounters *> denseIndex_; // by asid value
    // Retire count per asid value; sized lazily by retire(), so the
    // common no-churn simulators never allocate it.
    std::vector<u32> generation_;
};

} // namespace molcache

#endif // MOLCACHE_CACHE_CACHE_STATS_HPP
