/**
 * @file
 * Runtime consistency audit of a molecular cache.
 *
 * The checker walks the whole structure — tiles, molecules, regions,
 * replacement views — and cross-checks the bookkeeping that the fault
 * and resize machinery must keep consistent (docs/fault_model.md):
 *
 *  - every non-free, non-shared molecule is owned by exactly one region,
 *    and its ASID gate matches that region's ASID;
 *  - no region claims a free or decommissioned molecule;
 *  - per-tile free counts match the molecules' actual gate state, and
 *    owned + free + decommissioned == total on every tile;
 *  - replacement views are internally consistent (row totals and
 *    per-tile totals both equal the region size);
 *  - valid-line counters match the resident-line sets;
 *  - decommissioned molecules are empty, fenced, and never admitted;
 *  - decommission tallies agree between tiles, Ulmos, and fault stats.
 *
 * check() is pure observation and returns a report; attach() installs
 * the audit as the cache's periodic hook and panic()s on the first
 * violation — the debug-mode harness for fuzz and fault-drill runs.
 */

#ifndef MOLCACHE_FAULT_INVARIANT_CHECKER_HPP
#define MOLCACHE_FAULT_INVARIANT_CHECKER_HPP

#include <string>
#include <vector>

#include "util/types.hpp"

namespace molcache {

class MolecularCache;

class InvariantChecker
{
  public:
    struct Report
    {
        /** Individual checks evaluated (grows with cache geometry). */
        u64 checksRun = 0;
        /** Human-readable descriptions of every violated invariant. */
        std::vector<std::string> violations;

        bool ok() const { return violations.empty(); }
    };

    /** Audit @p cache; never mutates it. */
    static Report check(const MolecularCache &cache);

    /**
     * Install the audit as @p cache's periodic hook (runs every
     * @p everyAccesses accesses) and panic() with the full violation
     * list the first time any invariant breaks.
     */
    static void attach(MolecularCache &cache, u64 everyAccesses);

    /** Total audits run through attach()-installed hooks. */
    static u64 auditsRun() { return auditsRun_; }

  private:
    static u64 auditsRun_;
};

} // namespace molcache

#endif // MOLCACHE_FAULT_INVARIANT_CHECKER_HPP
