/**
 * @file
 * Deterministic fault injection schedules.
 *
 * The paper's structural argument — a cache region is an aggregation of
 * small, individually ASID-gated molecules (figure 3) — implies a yield
 * and reliability story: a faulty molecule can be fenced off (its gate
 * forced to never match) and the region resized around it, where a
 * monolithic cache would lose a whole way.  This module provides the
 * fault *source*: seeded, reproducible schedules of
 *
 *  - transient per-line bit flips (detected by parity on the next probe
 *    of the slot and treated as a miss),
 *  - hard molecule faults (each detection trips the molecule's failure
 *    counter; at the configured threshold the molecule is
 *    decommissioned), and
 *  - whole-tile outages (every molecule of the tile decommissioned at
 *    once — a failed port, power gate or wordline driver).
 *
 * Events trigger on the cache's access tick so runs reproduce
 * bit-for-bit regardless of wall clock.  The *application* of events
 * (decommissioning, scrubbing, graceful degradation) lives in
 * MolecularCache; this module deliberately knows nothing about cache
 * internals so schedules can be built, saved and unit-tested in
 * isolation.
 */

#ifndef MOLCACHE_FAULT_FAULT_INJECTOR_HPP
#define MOLCACHE_FAULT_FAULT_INJECTOR_HPP

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace molcache {

class Config;

/** Fault taxonomy (docs/fault_model.md). */
enum class FaultKind : u8
{
    /** One line's stored bits corrupted; detected on the next probe. */
    TransientFlip,
    /** Permanent cell/comparator failure detected in one molecule. */
    HardFault,
    /** The whole tile drops out (port / power-gate / driver failure). */
    TileOutage,
};

const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    /** Access tick at (or after) which the event fires. */
    Tick tick = 0;
    FaultKind kind = FaultKind::TransientFlip;
    /** Molecule id (TransientFlip / HardFault) or tile id (TileOutage). */
    u32 target = 0;
    /** Line index within the molecule (TransientFlip only). */
    u32 line = 0;

    bool operator==(const FaultEvent &other) const = default;
};

/** Lifetime fault/degradation counters kept by the cache. */
struct FaultStats
{
    u64 transientFlipsInjected = 0;
    /** Flips caught by the parity check on a later probe of the slot. */
    u64 transientFlipsDetected = 0;
    /** Corrupt dirty lines dropped without writeback (data loss). */
    u64 dirtyLinesLost = 0;
    u64 hardFaultEvents = 0;
    u64 tileOutages = 0;
    u64 moleculesDecommissioned = 0;

    u64 eventsApplied() const
    {
        return transientFlipsInjected + hardFaultEvents + tileOutages;
    }
};

/**
 * Parameters of a randomly generated (but seed-deterministic) schedule.
 * Config keys (all optional, prefix `fault.`):
 *
 *     fault.seed                = 1      # schedule RNG seed
 *     fault.hard_fraction       = 0.25   # fraction of molecules hard-faulted
 *     fault.events_per_molecule = 1      # hard-fault detections per victim
 *     fault.transient_flips     = 100    # total bit flips over the window
 *     fault.tile_outages        = 1      # whole-tile outages
 *     fault.window_start        = 100000 # first eligible access tick
 *     fault.window_end          = 500000 # one past the last eligible tick
 */
struct FaultScheduleSpec
{
    u64 seed = 1;
    /** Fraction of all molecules that suffer hard faults, in [0,1]. */
    double hardFraction = 0.0;
    /** Hard-fault detections scheduled per victim molecule (>= 1); pair
     * with MolecularCacheParams::hardFaultThreshold. */
    u32 eventsPerMolecule = 1;
    /** Transient per-line flips scheduled over the window. */
    u64 transientFlips = 0;
    /** Whole-tile outages scheduled over the window. */
    u32 tileOutages = 0;
    /** Event ticks are uniform in [windowStart, windowEnd). */
    Tick windowStart = 0;
    Tick windowEnd = 1;
};

/** True if @p cfg carries any `fault.*` schedule key. */
bool hasFaultKeys(const Config &cfg);

/** Read a FaultScheduleSpec from `fault.*` keys, defaulting the event
 * window to [@p defaultStart, @p defaultEnd). */
FaultScheduleSpec faultSpecFromConfig(const Config &cfg, Tick defaultStart,
                                      Tick defaultEnd);

class FaultInjector
{
  public:
    /** An empty injector: never fires. */
    FaultInjector() = default;

    /**
     * Build a seed-deterministic random schedule.  Hard-fault victims are
     * distinct molecules sampled without replacement; the same spec and
     * geometry always yield the identical event list.
     *
     * @param spec             what to inject, when, and how much
     * @param totalMolecules   molecules in the cache (victim id space)
     * @param moleculesPerTile tile geometry (tile id space for outages)
     * @param linesPerMolecule line index space for transient flips
     */
    static FaultInjector fromSpec(const FaultScheduleSpec &spec,
                                  u32 totalMolecules, u32 moleculesPerTile,
                                  u32 linesPerMolecule);

    /** Add one explicit event (kept sorted by tick, stable). */
    void schedule(const FaultEvent &event);

    /** All events, sorted by trigger tick. */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Events scheduled in total / not yet drained. */
    std::size_t scheduled() const { return events_.size(); }
    std::size_t pending() const { return events_.size() - cursor_; }
    bool empty() const { return events_.empty(); }

    /**
     * Next event due at or before @p now, or nullptr when none is due.
     * Advances the drain cursor; call in a loop to apply bursts that
     * share a tick.
     */
    const FaultEvent *drainOne(Tick now);

    /** Tick of the next undrained event (~0 when none remain), so hot
     * loops can skip the drain call until it is actually due. */
    Tick
    nextDueTick() const
    {
        return cursor_ >= events_.size() ? ~Tick{0} : events_[cursor_].tick;
    }

  private:
    std::vector<FaultEvent> events_;
    std::size_t cursor_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_FAULT_FAULT_INJECTOR_HPP
