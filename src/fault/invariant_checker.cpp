#include "fault/invariant_checker.hpp"

#include <map>
#include <string>

#include "contract/contract.hpp"
#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "util/logging.hpp"

namespace molcache {

u64 InvariantChecker::auditsRun_ = 0;

namespace {

std::string
molName(MoleculeId id)
{
    return "molecule " + std::to_string(id.value());
}

} // namespace

InvariantChecker::Report
InvariantChecker::check(const MolecularCache &cache)
{
    Report rep;
    const MolecularCacheParams &p = cache.params();
    const auto fail = [&rep](std::string msg) {
        rep.violations.push_back(std::move(msg));
    };

    // Region side: build the ownership map and audit every replacement
    // view on the way.
    std::map<MoleculeId, Asid> owner;
    for (const Asid asid : cache.registeredAsids()) {
        const Region &region = cache.region(asid);
        const std::string who =
            "region asid=" + std::to_string(asid.value());

        u64 row_total = 0;
        for (const auto &row : region.rows()) {
            row_total += row.size();
            for (const MoleculeId id : row) {
                ++rep.checksRun;
                const auto [it, fresh] = owner.emplace(id, asid);
                if (!fresh)
                    fail(molName(id) + " owned by both asid=" +
                         std::to_string(it->second.value()) + " and asid=" +
                         std::to_string(asid.value()));
                ++rep.checksRun;
                if (!region.contains(id))
                    fail(who + " row holds " + molName(id) +
                         " but contains() denies it");

                const Molecule &m = cache.molecule(id);
                ++rep.checksRun;
                if (m.isFree())
                    fail(who + " claims free " + molName(id));
                else if (m.configuredAsid() != asid)
                    fail(molName(id) + " gate asid=" +
                         std::to_string(m.configuredAsid().value()) +
                         " mismatches owning " + who);
                ++rep.checksRun;
                if (m.decommissioned())
                    fail(who + " still holds decommissioned " + molName(id));
            }
        }
        ++rep.checksRun;
        if (row_total != region.size())
            fail(who + " rows hold " + std::to_string(row_total) +
                 " molecules but size()=" + std::to_string(region.size()));

        u64 tile_total = 0;
        for (const auto &[tile, mols] : region.byTile())
            tile_total += mols.size();
        ++rep.checksRun;
        if (tile_total != region.size())
            fail(who + " byTile holds " + std::to_string(tile_total) +
                 " molecules but size()=" + std::to_string(region.size()));
    }

    // Tile/molecule side: gate state vs. free-pool counters, line
    // bookkeeping, and the fence on decommissioned molecules.
    u64 owned_total = 0;
    u64 free_total = 0;
    u64 dec_total = 0;
    for (u32 t = 0; t < p.totalTiles(); ++t) {
        const Tile &tile = cache.tile(TileId{t});
        u32 free_here = 0;
        u32 dec_here = 0;
        const MoleculeId first = tile.firstMolecule();
        for (MoleculeId id = first; id < first + tile.numMolecules(); ++id) {
            const Molecule &m = cache.molecule(id);

            ++rep.checksRun;
            if (m.residentLines().size() != m.validLines())
                fail(molName(id) + " validLines()=" +
                     std::to_string(m.validLines()) + " but " +
                     std::to_string(m.residentLines().size()) +
                     " resident lines");

            if (m.decommissioned()) {
                ++dec_here;
                ++rep.checksRun;
                if (m.validLines() != 0)
                    fail("decommissioned " + molName(id) +
                         " still holds valid lines");
                ++rep.checksRun;
                if (!m.isFree() || m.sharedBit())
                    fail("decommissioned " + molName(id) +
                         " gate not fenced (asid or shared bit set)");
                ++rep.checksRun;
                if (owner.count(id))
                    fail("decommissioned " + molName(id) +
                         " still in a replacement view");
                continue;
            }

            if (m.isFree()) {
                ++free_here;
                ++rep.checksRun;
                if (owner.count(id))
                    fail("free " + molName(id) +
                         " appears in a replacement view");
            } else {
                ++owned_total;
                ++rep.checksRun;
                if (!owner.count(id))
                    fail(molName(id) + " gated for asid=" +
                         std::to_string(m.configuredAsid().value()) +
                         " but owned by no region");
            }
        }
        ++rep.checksRun;
        if (free_here != tile.freeCount())
            fail("tile " + std::to_string(t) + " freeCount()=" +
                 std::to_string(tile.freeCount()) + " but " +
                 std::to_string(free_here) + " molecules read free");
        ++rep.checksRun;
        if (dec_here != tile.decommissionedCount())
            fail("tile " + std::to_string(t) + " decommissionedCount()=" +
                 std::to_string(tile.decommissionedCount()) + " but " +
                 std::to_string(dec_here) + " molecules read decommissioned");
        free_total += free_here;
        dec_total += dec_here;
    }

    // Conservation: every molecule is owned, free, or decommissioned.
    ++rep.checksRun;
    if (owned_total + free_total + dec_total != p.totalMolecules())
        fail("conservation broken: owned=" + std::to_string(owned_total) +
             " + free=" + std::to_string(free_total) + " + decommissioned=" +
             std::to_string(dec_total) + " != total=" +
             std::to_string(p.totalMolecules()));
    ++rep.checksRun;
    if (free_total != cache.freeMolecules())
        fail("cache freeMolecules()=" + std::to_string(cache.freeMolecules()) +
             " but tiles hold " + std::to_string(free_total));

    // Decommission tallies must agree across every layer that tracks them.
    u64 ulmo_dec = 0;
    for (u32 c = 0; c < p.clusters; ++c)
        ulmo_dec += cache.ulmo(ClusterId{c}).decommissions();
    ++rep.checksRun;
    if (ulmo_dec != dec_total)
        fail("ulmos record " + std::to_string(ulmo_dec) +
             " decommissions but tiles hold " + std::to_string(dec_total));
    ++rep.checksRun;
    if (cache.faultStats().moleculesDecommissioned != dec_total)
        fail("fault stats record " +
             std::to_string(cache.faultStats().moleculesDecommissioned) +
             " decommissions but tiles hold " + std::to_string(dec_total));

    return rep;
}

void
InvariantChecker::attach(MolecularCache &cache, u64 everyAccesses)
{
    SimAccess{cache}.setAuditHook(
        everyAccesses,
        [last = contract::counters().total()](
            const MolecularCache &c) mutable {
            ++auditsRun_;
            Report rep = check(c);
            // Contract violations swallowed by a counting handler since
            // the previous audit still fail the audit: the structure may
            // look repaired, but an operation broke its contract.
            const u64 now = contract::counters().total();
            if (now != last) {
                rep.violations.push_back(
                    std::to_string(now - last) +
                    " contract violation(s) since the previous audit");
                last = now;
            }
            if (rep.ok())
                return;
            std::string all;
            for (const auto &v : rep.violations)
                all += "\n  - " + v;
            panic("invariant audit failed (", rep.violations.size(),
                  " violation(s)):", all);
        });
}

} // namespace molcache
