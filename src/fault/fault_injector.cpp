#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace molcache {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TransientFlip:
        return "transient-flip";
      case FaultKind::HardFault:
        return "hard-fault";
      case FaultKind::TileOutage:
        return "tile-outage";
    }
    panic("unknown FaultKind");
}

bool
hasFaultKeys(const Config &cfg)
{
    for (const char *key :
         {"fault.seed", "fault.hard_fraction", "fault.events_per_molecule",
          "fault.transient_flips", "fault.tile_outages",
          "fault.window_start", "fault.window_end"}) {
        if (cfg.has(key))
            return true;
    }
    return false;
}

FaultScheduleSpec
faultSpecFromConfig(const Config &cfg, Tick defaultStart, Tick defaultEnd)
{
    FaultScheduleSpec spec;
    spec.seed = static_cast<u64>(cfg.getInt("fault.seed", 1));
    spec.hardFraction = cfg.getDouble("fault.hard_fraction", 0.0);
    spec.eventsPerMolecule =
        static_cast<u32>(cfg.getInt("fault.events_per_molecule", 1));
    spec.transientFlips =
        static_cast<u64>(cfg.getInt("fault.transient_flips", 0));
    spec.tileOutages = static_cast<u32>(cfg.getInt("fault.tile_outages", 0));
    spec.windowStart = static_cast<Tick>(
        cfg.getInt("fault.window_start", static_cast<i64>(defaultStart)));
    spec.windowEnd = static_cast<Tick>(
        cfg.getInt("fault.window_end", static_cast<i64>(defaultEnd)));
    if (spec.hardFraction < 0.0 || spec.hardFraction > 1.0)
        fatal("fault.hard_fraction out of [0,1]");
    if (spec.eventsPerMolecule == 0)
        fatal("fault.events_per_molecule must be >= 1");
    if (spec.windowEnd <= spec.windowStart)
        fatal("fault window is empty (window_end <= window_start)");
    return spec;
}

FaultInjector
FaultInjector::fromSpec(const FaultScheduleSpec &spec, u32 totalMolecules,
                        u32 moleculesPerTile, u32 linesPerMolecule)
{
    MOLCACHE_ASSERT(totalMolecules > 0 && moleculesPerTile > 0 &&
                        linesPerMolecule > 0,
                    "fault schedule over an empty geometry");
    if (spec.hardFraction < 0.0 || spec.hardFraction > 1.0)
        fatal("fault hard fraction out of [0,1]");
    if (spec.windowEnd <= spec.windowStart)
        fatal("fault window is empty");

    FaultInjector inj;
    Pcg32 rng(spec.seed);
    const Tick span = spec.windowEnd - spec.windowStart;
    auto tick_in_window = [&] {
        return spec.windowStart + static_cast<Tick>(rng.next64() % span);
    };

    // Hard-fault victims: distinct molecules, sampled without replacement
    // via a partial Fisher-Yates shuffle so the same seed always names
    // the same victims.
    const u32 victims = std::min(
        totalMolecules,
        static_cast<u32>(std::lround(spec.hardFraction *
                                     static_cast<double>(totalMolecules))));
    std::vector<u32> ids(totalMolecules);
    for (u32 i = 0; i < totalMolecules; ++i)
        ids[i] = i;
    for (u32 i = 0; i < victims; ++i) {
        const u32 j = i + rng.below(totalMolecules - i);
        std::swap(ids[i], ids[j]);
        for (u32 e = 0; e < spec.eventsPerMolecule; ++e)
            inj.schedule({tick_in_window(), FaultKind::HardFault, ids[i], 0});
    }

    for (u64 f = 0; f < spec.transientFlips; ++f) {
        inj.schedule({tick_in_window(), FaultKind::TransientFlip,
                      rng.below(totalMolecules),
                      rng.below(linesPerMolecule)});
    }

    const u32 tiles = std::max<u32>(1, totalMolecules / moleculesPerTile);
    for (u32 t = 0; t < spec.tileOutages; ++t)
        inj.schedule({tick_in_window(), FaultKind::TileOutage,
                      rng.below(tiles), 0});

    return inj;
}

void
FaultInjector::schedule(const FaultEvent &event)
{
    MOLCACHE_ASSERT(cursor_ == 0 || events_.empty() ||
                        event.tick >= events_[cursor_ - 1].tick,
                    "scheduling a fault behind the drain cursor");
    // Insert after all events with the same tick: stable, so the order
    // of equal-tick events is the order they were scheduled in.
    const auto at = std::upper_bound(
        events_.begin() + static_cast<std::ptrdiff_t>(cursor_),
        events_.end(), event,
        [](const FaultEvent &a, const FaultEvent &b) {
            return a.tick < b.tick;
        });
    events_.insert(at, event);
}

const FaultEvent *
FaultInjector::drainOne(Tick now)
{
    if (cursor_ >= events_.size() || events_[cursor_].tick > now)
        return nullptr;
    return &events_[cursor_++];
}

} // namespace molcache
