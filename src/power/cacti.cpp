#include "power/cacti.hpp"

#include <algorithm>
#include <cmath>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace molcache {

double
dynamicPowerWatts(double energyNj, double freqMhz)
{
    // nJ * MHz = mW; divide by 1000 for watts.
    return energyNj * freqMhz / 1000.0;
}

CactiModel::CactiModel(TechNode node)
    : tech_(technology(node))
{
}

CactiModel::ArrayCost
CactiModel::costArray(u64 totalBits, u64 activeBits, u32 ports) const
{
    MOLCACHE_ASSERT(totalBits > 0 && activeBits > 0, "empty array");

    const double port_energy = 1.0 + tech_.portEnergyFactor * (ports - 1);
    const double port_delay = 1.0 + tech_.portDelayFactor * (ports - 1);
    const double port_lin = 1.0 + tech_.portAreaFactor * (ports - 1);

    // Organization search: subarrays of rows x cols bit cells.  Larger
    // subarrays save wire but cost bitline/wordline energy and delay;
    // the classic CACTI trade-off.  We sweep powers of two and keep the
    // lowest energy*delay^2 (delay-leaning, as CACTI's default weights).
    ArrayCost best;
    bool have_best = false;

    for (u32 rows = 32; rows <= 4096; rows *= 2) {
        for (u32 cols = 128; cols <= 8192; cols *= 2) {
            const u64 per_sub = static_cast<u64>(rows) * cols;
            const u64 subarrays = (totalBits + per_sub - 1) / per_sub;
            if (subarrays > 256)
                continue;
            // Don't organize small arrays into grossly oversized
            // subarrays — but always keep the minimal candidate legal so
            // tiny tag arrays organize too.
            if (per_sub > 8 * totalBits && !(rows == 32 && cols == 128))
                continue;

            // An access activates whole rows in as many subarrays as are
            // needed to deliver activeBits (column muxing notwithstanding,
            // every column of an activated subarray is precharged/sensed
            // against its bitline).
            const u64 active_subs =
                std::min<u64>(subarrays,
                              std::max<u64>(1, (activeBits + cols - 1) / cols));
            const double active_cols =
                static_cast<double>(active_subs) * cols;

            const double vdd = tech_.vdd;
            const double swing = vdd * tech_.bitlineSwing;

            // fJ component sums.
            const double e_bitline = active_cols * rows *
                                     tech_.bitcellCapFf * vdd * swing;
            const double e_wordline =
                active_cols * tech_.wordlineCapFf * vdd * vdd;
            const double e_sense = active_cols * tech_.senseAmpFj;
            const double e_decode =
                (floorLog2(rows) + ceilLog2(subarrays)) *
                tech_.decodeFjPerBit * static_cast<double>(active_subs);

            double energy_nj =
                (e_bitline + e_wordline + e_sense + e_decode) * 1e-6;
            energy_nj *= port_energy;

            // Area: cells plus ~30% periphery, inflated by porting.
            const double cell_mm2 = tech_.cellAreaUm2 * 1e-6;
            const double area =
                static_cast<double>(totalBits) * cell_mm2 * 1.3 *
                port_lin * port_lin;

            double delay_ns = tech_.decodeNsPerBit *
                                  (floorLog2(rows) + ceilLog2(subarrays)) +
                              tech_.bitlineNsPerRow * rows +
                              tech_.senseDelayNs;
            delay_ns *= port_delay;

            const double score = energy_nj * delay_ns * delay_ns;
            if (!have_best ||
                score < best.energyNj * best.delayNs * best.delayNs) {
                best.org = ArrayOrg{rows, cols,
                                    static_cast<u32>(subarrays), area};
                best.energyNj = energy_nj;
                best.delayNs = delay_ns;
                have_best = true;
            }
        }
    }
    MOLCACHE_ASSERT(have_best, "organization search found no candidate");
    return best;
}

double
CactiModel::wireEnergyNj(double areaMm2, u64 busBits, u32 ports) const
{
    const double port_energy = 1.0 + tech_.portEnergyFactor * (ports - 1);
    // Each bus bit traverses on average the half-perimeter of the array.
    const double flight_mm = 2.0 * std::sqrt(areaMm2);
    return static_cast<double>(busBits) * flight_mm * tech_.wireCapFfPerMm *
           tech_.vdd * tech_.vdd * 1e-6 * port_energy;
}

double
CactiModel::wireDelayNs(double areaMm2, u32 ports) const
{
    const double port_delay = 1.0 + tech_.portDelayFactor * (ports - 1);
    return 2.0 * std::sqrt(areaMm2) * tech_.wireNsPerMm * port_delay;
}

PowerTiming
CactiModel::evaluate(const CacheGeometry &g) const
{
    if (g.sizeBytes.value() == 0 || g.lineSize == 0 ||
        g.associativity == 0 ||
        g.ports == 0)
        fatal("degenerate cache geometry for power model");
    if (g.sizeBytes.value() %
            (static_cast<u64>(g.lineSize) * g.associativity) !=
        0)
        fatal("cache size not divisible by assoc*lineSize in power model");

    const u64 lines = g.sizeBytes.value() / g.lineSize;
    const u64 sets = lines / g.associativity;
    const u32 offset_bits = floorLog2(g.lineSize);
    const u32 index_bits = sets > 1 ? floorLog2(sets) : 0;
    const u32 tag_bits =
        g.addrBits - offset_bits - index_bits + g.extraTagBits + 2;

    AccessMode mode = g.mode;
    if (mode == AccessMode::Auto) {
        mode = g.associativity >= 8 ? AccessMode::Sequential
                                    : AccessMode::Parallel;
    }

    const u64 data_bits_total = g.sizeBytes.value() * 8;
    const u64 line_bits = static_cast<u64>(g.lineSize) * 8;
    const u64 data_bits_active =
        mode == AccessMode::Parallel
            ? line_bits * g.associativity // read every way, select late
            : line_bits;                  // tag resolved first: one way

    const u64 tag_bits_total = lines * tag_bits;
    const u64 tag_bits_active = static_cast<u64>(tag_bits) * g.associativity;

    const ArrayCost data = costArray(data_bits_total, data_bits_active,
                                     g.ports);
    const ArrayCost tag = costArray(tag_bits_total, tag_bits_active,
                                    g.ports);

    const double compare_nj = static_cast<double>(tag_bits_active) *
                              tech_.compareFjPerBit * 1e-6;
    const double output_nj = static_cast<double>(line_bits) *
                             tech_.outputFjPerBit * 1e-6;

    const double area = data.org.areaMm2 + tag.org.areaMm2;
    // Address and active tags plus the selected way's line travel the
    // full H-tree; under parallel access the unselected ways' lines still
    // travel the subarray-to-way-mux segment (late select), which is the
    // dominant associativity cost in large caches.
    double wire_nj = wireEnergyNj(
        area, g.addrBits + line_bits + tag_bits_active, g.ports);
    if (mode == AccessMode::Parallel && g.associativity > 1) {
        const double port_energy =
            1.0 + tech_.portEnergyFactor * (g.ports - 1);
        const double mux_flight_mm = 0.25 * std::sqrt(area);
        wire_nj += static_cast<double>(g.associativity - 1) *
                   static_cast<double>(line_bits) * mux_flight_mm *
                   tech_.wireCapFfPerMm * tech_.vdd * tech_.vdd * 1e-6 *
                   port_energy;
    }
    const double wire_ns = wireDelayNs(area, g.ports);

    PowerTiming out;
    out.mode = mode;
    out.dataOrg = data.org;
    out.tagOrg = tag.org;
    out.areaMm2 = area;

    out.readEnergyNj =
        data.energyNj + tag.energyNj + compare_nj + output_nj + wire_nj;
    // Writes skip the output driver but drive full-swing bitlines in the
    // written way; model as read minus output plus one extra line swing.
    out.writeEnergyNj = out.readEnergyNj - output_nj +
                        static_cast<double>(line_bits) *
                            tech_.bitcellCapFf * tech_.vdd * tech_.vdd * 1e-6;

    const double compare_ns = 0.05 + 0.01 * floorLog2(tag_bits);
    if (mode == AccessMode::Parallel) {
        // Tag and data proceed in parallel; compare/select tail.
        out.cycleNs = std::max(data.delayNs, tag.delayNs + compare_ns) +
                      wire_ns + 0.1;
    } else {
        // Phased: full tag resolution (one wire round), then the data way
        // (a second wire round) — roughly double the latency, as CACTI
        // reports for sequentially-accessed high associativities.
        out.cycleNs = (tag.delayNs + compare_ns + wire_ns) +
                      (data.delayNs + wire_ns) + 0.1;
    }

    out.energyBreakdownNj["data_array"] = data.energyNj;
    out.energyBreakdownNj["tag_array"] = tag.energyNj;
    out.energyBreakdownNj["compare"] = compare_nj;
    out.energyBreakdownNj["output"] = output_nj;
    out.energyBreakdownNj["wire"] = wire_nj;
    return out;
}

} // namespace molcache
