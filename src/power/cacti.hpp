/**
 * @file
 * CACTI-flavoured analytical cache timing / dynamic-energy model.
 *
 * Role in the reproduction: the paper derives Table 4 (power) and Table 5
 * (power-deviation product) from CACTI runs at 0.07 um.  This model
 * supplies the same outputs — dynamic energy per access (nJ), cycle time
 * (ns, hence achievable frequency) and area — for arbitrary
 * (size, associativity, line size, ports) points, including the 8-32 KB
 * direct-mapped molecules.
 *
 * Structure follows classic CACTI:
 *  - the data and tag arrays are split into subarrays; an organization
 *    search picks rows x columns minimizing an energy*delay objective;
 *  - per-access energy sums decoder, wordline, bitline, sense-amp,
 *    comparator, output-driver and global H-tree wire components;
 *  - access time is the decoder -> wordline -> bitline -> sense -> compare
 *    -> output path plus global wire flight;
 *  - multi-ported cells inflate energy, delay and area;
 *  - high associativities may use *sequential* (phased) access: tag first,
 *    then only the matching data way — less energy, roughly double the
 *    latency.  CACTI calls this "sequential access"; the paper's 8 MB
 *    8-way point (96 MHz vs ~200 MHz, yet lower power) is this regime, and
 *    the model switches to it automatically at associativity >= 8.
 *
 * Absolute accuracy is not the goal (the original authors' absolute watts
 * came from a 1996-era tool); monotone, physically-plausible scaling is.
 * The 70 nm node is calibrated so the 8 MB traditional caches land near
 * Table 4's operating points.
 */

#ifndef MOLCACHE_POWER_CACTI_HPP
#define MOLCACHE_POWER_CACTI_HPP

#include <map>
#include <string>

#include "power/tech.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

/** Tag-vs-data sequencing. */
enum class AccessMode { Auto, Parallel, Sequential };

/** A cache (or molecule) geometry to evaluate. */
struct CacheGeometry
{
    Bytes sizeBytes = 8_MiB;
    u32 associativity = 1;
    u32 lineSize = 64;
    u32 ports = 1;
    /** Physical address width modelled in the tag path. */
    u32 addrBits = 40;
    /** Extra tag bits (e.g. the molecular ASID field + shared bit). */
    u32 extraTagBits = 0;
    AccessMode mode = AccessMode::Auto;
};

/** One internal SRAM array after organization search. */
struct ArrayOrg
{
    u32 rows = 0;
    u32 cols = 0;
    u32 subarrays = 0;
    double areaMm2 = 0.0;
};

/** Model outputs for one geometry. */
struct PowerTiming
{
    double readEnergyNj = 0.0;
    double writeEnergyNj = 0.0;
    double cycleNs = 0.0;
    double areaMm2 = 0.0;
    /** Resolved access mode (never Auto). */
    AccessMode mode = AccessMode::Parallel;
    ArrayOrg dataOrg;
    ArrayOrg tagOrg;
    /** Component breakdown of the read energy (nJ), for reports. */
    std::map<std::string, double> energyBreakdownNj;

    double frequencyMhz() const { return cycleNs > 0 ? 1000.0 / cycleNs : 0; }
};

/** Dynamic power in watts at @p freqMhz given @p energyNj per access. */
double dynamicPowerWatts(double energyNj, double freqMhz);

class CactiModel
{
  public:
    explicit CactiModel(TechNode node);

    /** Evaluate a geometry; fatal() on malformed geometry. */
    PowerTiming evaluate(const CacheGeometry &geometry) const;

    const TechnologyParams &tech() const { return tech_; }

  private:
    struct ArrayCost
    {
        ArrayOrg org;
        double energyNj = 0.0; // per access, active portion
        double delayNs = 0.0;  // decode->sense path
    };

    /**
     * Organize an array of @p totalBits with @p activeBits read per
     * access, and cost one access.
     */
    ArrayCost costArray(u64 totalBits, u64 activeBits, u32 ports) const;

    /** Global H-tree cost across @p areaMm2 carrying @p busBits. */
    double wireEnergyNj(double areaMm2, u64 busBits, u32 ports) const;
    double wireDelayNs(double areaMm2, u32 ports) const;

    TechnologyParams tech_;
};

} // namespace molcache

#endif // MOLCACHE_POWER_CACTI_HPP
