/**
 * @file
 * Helpers turning model outputs into the paper's power-report rows.
 */

#ifndef MOLCACHE_POWER_REPORT_HPP
#define MOLCACHE_POWER_REPORT_HPP

#include <string>
#include <vector>

#include "power/cacti.hpp"

namespace molcache {

/** One row of a Table-4-style power report. */
struct PowerRow
{
    std::string label;
    double frequencyMhz = 0.0;
    double powerWatts = 0.0;
    double energyNj = 0.0;
    double cycleNs = 0.0;
    double areaMm2 = 0.0;
};

/** Evaluate a traditional cache geometry into a report row. */
PowerRow traditionalPowerRow(const CactiModel &model,
                             const CacheGeometry &geometry,
                             const std::string &label);

/**
 * Energy of one molecule probe, including the molecule's array access and
 * its line/tag flight over the tile-local interconnect to the tile port.
 */
double molecularPerProbeEnergyNj(const CactiModel &model,
                                 const CacheGeometry &moleculeGeometry,
                                 u32 moleculesPerTile);

/**
 * Per-access fixed tile cost: request flight over the tile plus the ASID
 * comparison every molecule on the tile performs (paper figure 3).
 */
double molecularTileFixedEnergyNj(const CactiModel &model,
                                  const CacheGeometry &moleculeGeometry,
                                  u32 moleculesPerTile);

/**
 * Energy per molecular-cache access when @p probedMolecules molecules are
 * probed: fixed tile cost plus per-probe costs.
 *
 * @param model            power model
 * @param moleculeGeometry geometry of a single molecule (DM, 64 B lines)
 * @param moleculesPerTile molecules physically on the tile
 * @param probedMolecules  molecules actually activated by this access
 */
double molecularAccessEnergyNj(const CactiModel &model,
                               const CacheGeometry &moleculeGeometry,
                               u32 moleculesPerTile, double probedMolecules);

} // namespace molcache

#endif // MOLCACHE_POWER_REPORT_HPP
