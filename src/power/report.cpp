#include "power/report.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace molcache {

PowerRow
traditionalPowerRow(const CactiModel &model, const CacheGeometry &geometry,
                    const std::string &label)
{
    const PowerTiming pt = model.evaluate(geometry);
    PowerRow row;
    row.label = label;
    row.frequencyMhz = pt.frequencyMhz();
    row.energyNj = pt.readEnergyNj;
    row.cycleNs = pt.cycleNs;
    row.areaMm2 = pt.areaMm2;
    row.powerWatts = dynamicPowerWatts(pt.readEnergyNj, pt.frequencyMhz());
    return row;
}

double
molecularPerProbeEnergyNj(const CactiModel &model,
                          const CacheGeometry &moleculeGeometry,
                          u32 moleculesPerTile)
{
    MOLCACHE_ASSERT(moleculesPerTile > 0, "tile with no molecules");
    const PowerTiming mol = model.evaluate(moleculeGeometry);

    // A probed molecule returns its line + tag over the tile-local
    // interconnect; the average molecule sits half a tile span away.
    const double tile_area = mol.areaMm2 * moleculesPerTile;
    const double flight_mm = 0.5 * std::sqrt(tile_area);
    const u64 bus_bits =
        static_cast<u64>(moleculeGeometry.lineSize) * 8 + 32;
    const double wire_nj = static_cast<double>(bus_bits) * flight_mm *
                           model.tech().wireCapFfPerMm * model.tech().vdd *
                           model.tech().vdd * 1e-6;
    return mol.readEnergyNj + wire_nj;
}

double
molecularTileFixedEnergyNj(const CactiModel &model,
                           const CacheGeometry &moleculeGeometry,
                           u32 moleculesPerTile)
{
    MOLCACHE_ASSERT(moleculesPerTile > 0, "tile with no molecules");
    const PowerTiming mol = model.evaluate(moleculeGeometry);

    // The request (address + ASID) is broadcast over the tile regardless
    // of how many molecules answer.
    const double tile_area = mol.areaMm2 * moleculesPerTile;
    const double flight_mm = 2.0 * std::sqrt(tile_area);
    const u64 bus_bits = moleculeGeometry.addrBits + 17;
    const double wire_nj = static_cast<double>(bus_bits) * flight_mm *
                           model.tech().wireCapFfPerMm * model.tech().vdd *
                           model.tech().vdd * 1e-6;

    // Every molecule on the tile performs the ASID comparison (17 bits:
    // 16-bit ASID + shared bit); only matching molecules proceed to the
    // tag/data arrays.
    const double asid_nj = moleculesPerTile * 17.0 *
                           model.tech().compareFjPerBit * 1e-6;
    return wire_nj + asid_nj;
}

double
molecularAccessEnergyNj(const CactiModel &model,
                        const CacheGeometry &moleculeGeometry,
                        u32 moleculesPerTile, double probedMolecules)
{
    return molecularTileFixedEnergyNj(model, moleculeGeometry,
                                      moleculesPerTile) +
           probedMolecules * molecularPerProbeEnergyNj(model,
                                                       moleculeGeometry,
                                                       moleculesPerTile);
}

} // namespace molcache
