#include "power/tech.hpp"

#include "util/logging.hpp"

namespace molcache {

namespace {

// Constants are in the units documented in tech.hpp.  The 70 nm node is
// the calibration anchor (see power/cacti.cpp and bench/table4_power);
// 130/100 nm scale capacitance and delay up with feature size, voltage
// too, roughly following the ITRS trend the original CACTI tables encode.

const TechnologyParams kNm130 = {
    .name = "130nm",
    .vdd = 1.5,
    .bitlineSwing = 0.25,
    .bitcellCapFf = 3.2,
    .wordlineCapFf = 2.4,
    .senseAmpFj = 28.0,
    .decodeFjPerBit = 160.0,
    .compareFjPerBit = 42.0,
    .wireCapFfPerMm = 420.0,
    .wireNsPerMm = 0.090,
    .cellAreaUm2 = 2.45,
    .senseDelayNs = 0.30,
    .decodeNsPerBit = 0.055,
    .bitlineNsPerRow = 0.0021,
    .outputFjPerBit = 45.0,
    .portEnergyFactor = 0.70,
    .portDelayFactor = 0.15,
    .portAreaFactor = 0.45,
};

const TechnologyParams kNm100 = {
    .name = "100nm",
    .vdd = 1.2,
    .bitlineSwing = 0.25,
    .bitcellCapFf = 2.4,
    .wordlineCapFf = 1.8,
    .senseAmpFj = 20.0,
    .decodeFjPerBit = 120.0,
    .compareFjPerBit = 30.0,
    .wireCapFfPerMm = 360.0,
    .wireNsPerMm = 0.075,
    .cellAreaUm2 = 1.45,
    .senseDelayNs = 0.25,
    .decodeNsPerBit = 0.048,
    .bitlineNsPerRow = 0.0018,
    .outputFjPerBit = 32.0,
    .portEnergyFactor = 0.70,
    .portDelayFactor = 0.15,
    .portAreaFactor = 0.45,
};

const TechnologyParams kNm70 = {
    .name = "70nm",
    .vdd = 1.1,
    .bitlineSwing = 0.25,
    .bitcellCapFf = 1.8,
    .wordlineCapFf = 1.4,
    .senseAmpFj = 16.0,
    .decodeFjPerBit = 95.0,
    .compareFjPerBit = 24.0,
    .wireCapFfPerMm = 310.0,
    .wireNsPerMm = 0.062,
    .cellAreaUm2 = 0.70,
    .senseDelayNs = 0.22,
    .decodeNsPerBit = 0.042,
    .bitlineNsPerRow = 0.0015,
    .outputFjPerBit = 24.0,
    .portEnergyFactor = 0.70,
    .portDelayFactor = 0.15,
    .portAreaFactor = 0.45,
};

} // namespace

TechNode
parseTechNode(const std::string &text)
{
    if (text == "130" || text == "130nm")
        return TechNode::Nm130;
    if (text == "100" || text == "100nm")
        return TechNode::Nm100;
    if (text == "70" || text == "70nm" || text == "0.07")
        return TechNode::Nm70;
    fatal("unknown technology node '", text, "' (expected 130|100|70)");
}

const TechnologyParams &
technology(TechNode node)
{
    switch (node) {
      case TechNode::Nm130:
        return kNm130;
      case TechNode::Nm100:
        return kNm100;
      case TechNode::Nm70:
        return kNm70;
    }
    panic("unknown TechNode");
}

} // namespace molcache
