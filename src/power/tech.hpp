/**
 * @file
 * Technology parameters for the analytical cache timing/energy model.
 *
 * The paper evaluates power with CACTI at 0.07 um.  molcache ships a
 * CACTI-flavoured analytical model (power/cacti.hpp) whose per-component
 * formulas are scaled by the constants below.  Three nodes are provided;
 * the 70 nm node is calibrated so an 8 MB direct-mapped 4-port cache
 * reproduces the paper's Table 4 operating point (~24.8 nJ/access,
 * ~5 ns cycle => 4.93 W at 199 MHz) and an 8 KB molecule lands in the
 * sub-nanojoule regime reported for small caches by Mamidipaka & Dutt.
 */

#ifndef MOLCACHE_POWER_TECH_HPP
#define MOLCACHE_POWER_TECH_HPP

#include <string>

#include "util/types.hpp"

namespace molcache {

/** Process node selector. */
enum class TechNode { Nm130, Nm100, Nm70 };

/** Parse "130"/"100"/"70" (nm). */
TechNode parseTechNode(const std::string &text);

/** Per-node electrical constants (already include layout geometry). */
struct TechnologyParams
{
    std::string name;
    /** Supply voltage (V). */
    double vdd;
    /** Bitline swing fraction of vdd during a read. */
    double bitlineSwing;
    /** Bitline capacitance per cell on the line (fF). */
    double bitcellCapFf;
    /** Wordline capacitance per cell (fF). */
    double wordlineCapFf;
    /** Sense-amp energy per column (fJ). */
    double senseAmpFj;
    /** Decoder energy per address bit (fJ). */
    double decodeFjPerBit;
    /** Comparator energy per tag bit (fJ). */
    double compareFjPerBit;
    /** Global wire capacitance per mm (fF). */
    double wireCapFfPerMm;
    /** Global wire delay per mm (ns), repeated. */
    double wireNsPerMm;
    /** SRAM cell area (um^2), single port. */
    double cellAreaUm2;
    /** Fixed sense + latch delay (ns). */
    double senseDelayNs;
    /** Decoder delay per doubling of rows (ns). */
    double decodeNsPerBit;
    /** Bitline delay per row on the line (ns). */
    double bitlineNsPerRow;
    /** Output driver energy per data bit (fJ). */
    double outputFjPerBit;

    /** Extra energy factor per additional port. */
    double portEnergyFactor;
    /** Extra delay factor per additional port. */
    double portDelayFactor;
    /** Extra linear cell dimension factor per additional port. */
    double portAreaFactor;
};

/** Constants for @p node. */
const TechnologyParams &technology(TechNode node);

} // namespace molcache

#endif // MOLCACHE_POWER_TECH_HPP
