#include "core/molecular_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "contract/contract.hpp"
#include "power/report.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace molcache {

MolecularCache::MolecularCache(const MolecularCacheParams &params)
    : params_(params), directory_(params.clusters),
      noc_(params.clusters, params.noc), resizer_(params)
{
    params_.validate();

    const u32 total_tiles = params_.totalTiles();
    tiles_.reserve(total_tiles);
    for (u32 t = 0; t < total_tiles; ++t) {
        tiles_.emplace_back(TileId{t}, ClusterId{t / params_.tilesPerCluster},
                            MoleculeId{t * params_.moleculesPerTile},
                            params_.moleculesPerTile,
                            params_.linesPerMolecule(), params_.lineSize);
    }

    ulmos_.reserve(params_.clusters);
    for (u32 c = 0; c < params_.clusters; ++c) {
        std::vector<TileId> cluster_tiles;
        for (u32 i = 0; i < params_.tilesPerCluster; ++i)
            cluster_tiles.push_back(TileId{c * params_.tilesPerCluster + i});
        ulmos_.emplace_back(ClusterId{c}, std::move(cluster_tiles),
                            directory_);
    }

    appsPerCluster_.assign(params_.clusters, 0);
    sharedByTile_.assign(total_tiles, {});
    if (isPowerOfTwo(params_.moleculesPerTile))
        molShift_ = static_cast<i32>(floorLog2(params_.moleculesPerTile));
    wayMemoOn_ = params_.wayMemoization;
    linesPerMol_ = params_.linesPerMolecule();
    lineShift_ = floorLog2(params_.lineSize);
    tagShift_ = lineShift_ + floorLog2(linesPerMol_);
    rng_ = makeRandomSource(params_.rngKind, params_.seed);

    globalResizePeriod_ = params_.resizePeriod;
    nextGlobalResize_ = params_.resizePeriod;

    if (params_.guardian.enabled)
        guardian_ = std::make_unique<QosGuardian>(params_);

    if (params_.enableEnergy) {
        const CactiModel model(params_.techNode);
        CacheGeometry mol;
        mol.sizeBytes = params_.moleculeSize;
        mol.associativity = 1;
        mol.lineSize = params_.lineSize;
        mol.ports = 1;
        mol.extraTagBits = 17; // 16-bit ASID + shared bit
        molProbeNj_ = molecularPerProbeEnergyNj(model, mol,
                                                params_.moleculesPerTile);
        molFillNj_ = model.evaluate(mol).writeEnergyNj;
        tileFixedNj_ = molecularTileFixedEnergyNj(model, mol,
                                                  params_.moleculesPerTile);
        // Ulmo hop: request + line flight across the cluster's footprint.
        const double mol_area = model.evaluate(mol).areaMm2;
        const double cluster_area = mol_area * params_.moleculesPerTile *
                                    params_.tilesPerCluster;
        const double flight_mm = 2.0 * std::sqrt(cluster_area);
        const u64 bus_bits = mol.addrBits +
                             static_cast<u64>(params_.lineSize) * 8;
        ulmoHopNj_ = static_cast<double>(bus_bits) * flight_mm *
                     model.tech().wireCapFfPerMm * model.tech().vdd *
                     model.tech().vdd * 1e-6;
    }
}

void
MolecularCache::registerApplication(Asid asid, double resizeGoal)
{
    const ClusterId cluster{asid.value() % params_.clusters};
    const u32 tile = appsPerCluster_[cluster.value()] %
                     params_.tilesPerCluster;
    registerApplication(asid, resizeGoal, cluster, tile,
                        params_.defaultLineMultiple);
}

void
MolecularCache::registerApplication(Asid asid, double resizeGoal,
                                    ClusterId cluster, u32 tileInCluster,
                                    u32 lineMultiple)
{
    if (asid == kInvalidAsid)
        fatal("cannot register the invalid ASID");
    if (hasApplication(asid))
        fatal("ASID ", asid, " is already registered");
    if (cluster.value() >= params_.clusters)
        fatal("cluster ", cluster, " out of range");
    if (tileInCluster >= params_.tilesPerCluster)
        fatal("tile ", tileInCluster, " out of cluster range");
    if (lineMultiple == 0 || !isPowerOfTwo(lineMultiple) ||
        lineMultiple > params_.linesPerMolecule())
        fatal("bad region line multiple ", lineMultiple);
    if (resizeGoal <= 0.0 || resizeGoal > 1.0)
        fatal("miss-rate goal out of (0,1]");

    const TileId home_tile{cluster.value() * params_.tilesPerCluster +
                           tileInCluster};
    auto [it, inserted] = regions_.emplace(
        std::piecewise_construct, std::forward_as_tuple(asid),
        std::forward_as_tuple(asid, params_.placement, lineMultiple,
                              home_tile, cluster, params_.moleculeSize,
                              params_.initialRowMax));
    MOLCACHE_ENSURE(inserted, "region emplace failed");
    Region &region = it->second;
    if (regionIndex_.size() <= asid.value())
        regionIndex_.resize(asid.value() + 1u, nullptr);
    regionIndex_[asid.value()] = &region;
    if (wayMemo_.size() <= asid.value())
        wayMemo_.resize(asid.value() + 1u);
    resetWayMemo(asid);
    region.resizeGoal = resizeGoal;
    region.maxAllocation = params_.maxAllocationChunk;
    region.resizePeriod = params_.resizePeriod;
    region.nextResizeTick = params_.resizePeriod;
    if (guardian_ != nullptr)
        region.capacityFloor = params_.guardian.floorMolecules;
    ++appsPerCluster_[cluster.value()];

    // Ground Zero (section 3.4): the initial grant comes from the home
    // tile; if it is exhausted we fall back to the cluster so the region
    // is never created empty while molecules remain.
    u32 want = 0;
    switch (params_.initialAllocation) {
      case InitialAllocation::Small:
        want = params_.initialMolecules;
        break;
      case InitialAllocation::HalfTile:
        want = params_.moleculesPerTile / 2;
        break;
      case InitialAllocation::FullTile:
        want = params_.moleculesPerTile;
        break;
    }
    want = std::max<u32>(want, 1);

    u32 got = 0;
    Tile &home = tiles_[home_tile.value()];
    while (got < want) {
        const MoleculeId id = home.allocate(asid);
        if (id == kInvalidMolecule)
            break;
        region.addMolecule(id, home_tile, /*initial=*/true);
        ++got;
    }
    if (got == 0)
        got = grant(region, 1);
    if (got == 0)
        warn("region for ASID ", asid, " created without molecules");
    // The initial allocation counts as the last grant; a shortfall here
    // already signals pool pressure to the thrash clause.
    region.lastGrant = got;
    region.lastGrantShort = got < want;
}

bool
MolecularCache::hasApplication(Asid asid) const
{
    return regions_.count(asid) != 0;
}

void
MolecularCache::unregisterApplication(Asid asid)
{
    const auto it = regions_.find(asid);
    if (it == regions_.end())
        fatal("ASID ", asid, " is not registered");
    Region &region = it->second;

    std::vector<MoleculeId> mols;
    for (const auto &[tile, ids] : region.byTile())
        mols.insert(mols.end(), ids.begin(), ids.end());
    for (const MoleculeId id : mols) {
        Molecule &m = molecule(id);
        for (const Addr la : m.residentLines())
            directory_.noteEviction(LineAddr{la}, region.homeCluster());
        const u32 dirty = tiles_[m.tile().value()].release(id);
        for (u32 i = 0; i < dirty; ++i)
            stats_.recordWriteback(asid);
        region.removeMolecule(id);
    }
    MOLCACHE_INVARIANT(appsPerCluster_[region.homeCluster().value()] > 0,
                       "cluster app count underflow");
    --appsPerCluster_[region.homeCluster().value()];
    regionIndex_[asid.value()] = nullptr;
    resetWayMemo(asid);
    regions_.erase(it);
}

void
MolecularCache::retireApplicationStats(Asid asid)
{
    // Deliberately not folded into unregisterApplication: migration
    // unregisters + re-registers the same tenant and its counters must
    // survive that round trip.  Only a caller recycling the ASID for a
    // *different* tenant (the molcached drain path) retires the slot.
    if (hasApplication(asid))
        fatal("cannot retire stats of live ASID ", asid,
              "; unregister it first");
    stats_.retire(asid);
}

void
MolecularCache::setResizeGoal(Asid asid, double resizeGoal)
{
    const auto it = regions_.find(asid);
    if (it == regions_.end())
        fatal("ASID ", asid, " is not registered");
    if (resizeGoal <= 0.0 || resizeGoal > 1.0)
        fatal("resize goal ", resizeGoal, " outside (0, 1]");
    it->second.resizeGoal = resizeGoal;
}

void
MolecularCache::migrateApplication(Asid asid, ClusterId cluster,
                                   u32 tileInCluster)
{
    const auto it = regions_.find(asid);
    if (it == regions_.end())
        fatal("ASID ", asid, " is not registered");
    if (cluster.value() >= params_.clusters)
        fatal("cluster ", cluster, " out of range");
    if (tileInCluster >= params_.tilesPerCluster)
        fatal("tile ", tileInCluster, " out of cluster range");

    Region &region = it->second;
    const TileId global_tile{cluster.value() * params_.tilesPerCluster +
                             tileInCluster};
    if (cluster == region.homeCluster()) {
        region.rehome(global_tile);
        return;
    }

    // Cross-cluster: rebuild the partition at the destination.
    const double goal = region.resizeGoal;
    const u32 line_multiple = region.lineMultiple();
    unregisterApplication(asid);
    registerApplication(asid, goal, cluster, tileInCluster, line_multiple);
}

Region &
MolecularCache::regionFor(Asid asid)
{
    // Dense per-ASID index: the per-access path must not pay a
    // node-based map walk (docs/perf.md).  regions_ stays the ordered
    // authority (stable nodes, ascending-ASID iteration for
    // deterministic resize/invalidation order); this is a cache of it.
    const u32 v = asid.value();
    if (v < regionIndex_.size() && regionIndex_[v] != nullptr)
        return *regionIndex_[v];
    registerApplication(asid, params_.defaultMissRateGoal);
    return *regionIndex_[v];
}

const Region &
MolecularCache::region(Asid asid) const
{
    const auto it = regions_.find(asid);
    if (it == regions_.end())
        fatal("ASID ", asid, " is not registered");
    return it->second;
}

u32
MolecularCache::residentLines(Asid asid) const
{
    const Region &r = region(asid);
    u32 lines = 0;
    for (const auto &[tile, mols] : r.byTile())
        for (const MoleculeId id : mols)
            lines += molecule(id).validLines();
    return lines;
}

Molecule &
MolecularCache::molecule(MoleculeId id)
{
    const u32 tile = tileIndexOf(id);
    MOLCACHE_EXPECT(tile < tiles_.size(), "molecule id out of range");
    return tiles_[tile].molecule(id);
}

const Molecule &
MolecularCache::molecule(MoleculeId id) const
{
    const u32 tile = tileIndexOf(id);
    MOLCACHE_EXPECT(tile < tiles_.size(), "molecule id out of range");
    return tiles_[tile].molecule(id);
}

u32
MolecularCache::freeMolecules() const
{
    u32 n = 0;
    for (const Tile &t : tiles_)
        n += t.freeCount();
    return n;
}

u32
MolecularCache::freeMoleculesInCluster(ClusterId cluster) const
{
    MOLCACHE_EXPECT(cluster.value() < params_.clusters,
                    "cluster out of range");
    u32 n = 0;
    for (const TileId t : ulmos_[cluster.value()].tiles())
        n += tiles_[t.value()].freeCount();
    return n;
}

void
MolecularCache::setSharedMolecule(MoleculeId id, bool shared)
{
    Molecule &m = molecule(id);
    auto &list = sharedByTile_[m.tile().value()];
    const auto it = std::find(list.begin(), list.end(), id);
    if (shared) {
        if (m.isFree())
            fatal("shared bit on an unassigned molecule");
        m.setSharedBit(true);
        if (it == list.end())
            list.push_back(id);
    } else {
        m.setSharedBit(false);
        if (it != list.end())
            list.erase(it);
    }
    // Cached probe schedules fold shared-bit molecules in; stale them.
    ++sharedGen_;
}

Molecule *
MolecularCache::probeTile(TileId tile, const std::vector<MoleculeId> &mols,
                          Addr addr)
{
    Tile &t = tiles_[tile.value()];
    for (const MoleculeId id : mols) {
        Molecule &m = t.molecule(id);
        switch (m.probe(addr)) {
          case Molecule::ProbeOutcome::Hit:
            return &m;
          case Molecule::ProbeOutcome::Miss:
            break;
          case Molecule::ProbeOutcome::Poisoned: {
            // The probe read data + tag + parity; the poisoned slot
            // failed the parity check, is dropped, and reads as a miss.
            const auto dropped = m.scrubIfPoisoned(addr);
            MOLCACHE_ENSURE(dropped.has_value(), "poisoned slot vanished");
            ++faultStats_.transientFlipsDetected;
            if (dropped->dirty)
                ++faultStats_.dirtyLinesLost;
            directory_.noteEviction(
                LineAddr{dropped->addr},
                ClusterId{tile.value() / params_.tilesPerCluster});
            break;
          }
        }
    }
    return nullptr;
}

double
MolecularCache::tileAccessEnergyNj(u32 probes) const
{
    return tileFixedNj_ + probes * molProbeNj_;
}

MolecularCache::WayMemoEntry *
MolecularCache::wayMemoSlot(Region &region, Addr addr)
{
    WayMemo &memo = wayMemo_[region.asid().value()];
    // Predictions are cheap to keep and expensive to re-learn, so the
    // table is only dropped when live re-validation cannot catch the
    // staleness: a re-homing (a level-0 prediction would now be a
    // remote hit), a capacity growth that outran the table (collision
    // pressure, not correctness), or — in the row-restricted ablation —
    // any generation/shared-bit move, because row membership of a
    // molecule is not re-checkable in O(1) at probe time.
    const u64 lines =
        std::max<u64>(static_cast<u64>(region.size()) * linesPerMol_, 64);
    const bool strict =
        params_.rowRestrictedLookup &&
        (memo.gen != region.generation() || memo.sharedGen != sharedGen_);
    if (memo.slots.size() < 2 * lines ||
        memo.homeTile != region.homeTile() || strict) [[unlikely]] {
        // 2x the capacity in lines: halves hash collisions for an
        // 8-byte-per-entry table whose footprint stays well under the
        // modeled line state it shadows.  assign() reuses the vector's
        // capacity, so steady state never allocates.
        const u64 entries = std::bit_ceil(2 * lines);
        memo.slots.assign(entries, WayMemoEntry{});
        memo.mask = entries - 1;
        memo.gen = region.generation();
        memo.sharedGen = sharedGen_;
        memo.homeTile = region.homeTile();
        ++wayMemoInvalidations_;
    }
    return &memo.slots[(addr >> lineShift_) & memo.mask];
}

void
MolecularCache::resetWayMemo(Asid asid)
{
    // Register/unregister come through here, so the batch lane resets
    // with the memo table.  A successor region under a recycled ASID
    // restarts its generation counter (and the map node can even reuse
    // the freed address), so the lane's stamp check alone could accept
    // dangling pointers; the explicit reset makes staleness structural.
    if (asid.value() < lanes_.size())
        lanes_[asid.value()] = BatchLane{};
    if (asid.value() >= wayMemo_.size())
        return;
    WayMemo &memo = wayMemo_[asid.value()];
    memo.gen = WayMemo::kNoStamp;
    memo.sharedGen = WayMemo::kNoStamp;
    memo.slots.clear();
}

AccessResult
MolecularCache::access(const MemAccess &a)
{
    if (a.asid == kInvalidAsid)
        fatal("access with the invalid ASID");
    ++tick_;
    applyDueFaults();
    return accessTicked(a);
}

AccessResult
MolecularCache::accessTicked(const MemAccess &a)
{
    Region &region = regionFor(a.asid);
    Tile &home = tiles_[region.homeTile().value()];
    home.notePortAccess();

    // The memoized probe schedule (docs/perf.md): equivalent to
    // planLookup() + the entry tile's shared-bit molecules, but rebuilt
    // only when region membership or shared-bit state changed —
    // steady-state accesses are allocation-free.
    const std::vector<MoleculeId> &shared_home =
        sharedByTile_[region.homeTile().value()];
    const ProbeSchedule &plan = region.probeSchedule(
        a.addr, params_.rowRestrictedLookup, sharedGen_,
        shared_home.empty() ? nullptr : &shared_home);

    u32 probes = static_cast<u32>(plan.home.size());
    double energy = tileAccessEnergyNj(probes);
    // The ASID stage gates every tile visit; matching molecules of a
    // tile are probed in parallel behind the single port.
    Cycles latency = params_.asidStageCycles +
                     params_.moleculeAccessCycles;
    u8 level = 0;

    // Way-memoization (docs/perf.md): verify the last-hit molecule for
    // this (row, line-index) key with a single tag probe before paying
    // the full schedule walk.  The verification makes the shortcut
    // self-correcting, and probes/energy/latency above were already
    // charged for the whole home schedule — the model cannot tell the
    // difference.
    Molecule *hit_mol = nullptr;
    WayMemoEntry *memo_slot = nullptr;
    if (wayMemoOn_ && !region.empty()) {
        memo_slot = wayMemoSlot(region, a.addr);
        const u32 tag_bits = static_cast<u32>(a.addr >> lineShift_ >> 10);
        if (memo_slot->mol != kInvalidMolecule &&
            memo_slot->tagBits == tag_bits) {
            Molecule &m = molecule(memo_slot->mol);
            // Live re-validation: the prediction survived membership
            // churn, so re-check the figure-3 ASID gate and the home
            // tile before trusting the verification probe.  A molecule
            // that passes both is in today's home schedule (its tile
            // never changes; an admitted molecule on the home tile is
            // either the region's own or shared-bit, both probed).
            if (m.admits(a.asid) && m.tile() == region.homeTile() &&
                m.probe(a.addr) == Molecule::ProbeOutcome::Hit) {
                hit_mol = &m;
                ++wayMemoHits_;
            } else {
                memo_slot->mol = kInvalidMolecule;
                ++wayMemoMispredicts_;
            }
        }
        if (hit_mol == nullptr) {
            hit_mol = probeTile(region.homeTile(), plan.home, a.addr);
            if (hit_mol != nullptr)
                *memo_slot = WayMemoEntry{tag_bits, hit_mol->id()};
        }
    } else {
        hit_mol = probeTile(region.homeTile(), plan.home, a.addr);
    }

    if (hit_mol == nullptr && !plan.remote.empty()) {
        // Tile miss: Ulmo forwards to the region's other tiles.
        Ulmo &ulmo = ulmos_[region.homeCluster().value()];
        ulmo.noteTileMiss();
        for (const TileProbes &tp : plan.remote) {
            const u32 n = static_cast<u32>(tp.molecules.size());
            energy += ulmoHopNj_ + tileAccessEnergyNj(n);
            latency += params_.ulmoHopCycles + params_.asidStageCycles +
                       params_.moleculeAccessCycles;
            probes += n;
            tiles_[tp.tile.value()].notePortAccess();
            ulmo.noteRemoteProbes(n);
            hit_mol = probeTile(tp.tile, tp.molecules, a.addr);
            if (hit_mol != nullptr) {
                ulmo.noteRemoteHit();
                level = 1;
                break;
            }
        }
    }

    const bool hit = hit_mol != nullptr;
    if (hit) {
        if (params_.placement == PlacementPolicy::LruDirect)
            hit_mol->noteTouch(a.addr, tick_);
        if (a.isWrite()) {
            hit_mol->markDirty(a.addr);
            const LineAddr line = lineAddrOf(a.addr, params_.lineSize);
            applyInvalidations(
                directory_.noteWrite(line, region.homeCluster()), line,
                a.asid, region.homeCluster());
        }
    } else {
        level = 2;
        latency += params_.missPenaltyCycles;
        energy += handleMiss(region, a);
    }

    region.noteAccess(hit);
    if (guardian_ != nullptr)
        guardian_->noteAccess(region, hit);
    stats_.record(a.asid, hit, a.isWrite(), latency);
    intervalAccesses_.increment();
    if (!hit)
        intervalMisses_.increment();
    probesTotal_ += probes;
    enabledIntegral_ += region.size();
    if (params_.enableEnergy)
        energyNj_ += energy;

    maybeResize(region);

    if (auditInterval_ != 0 && auditHook_ && tick_ % auditInterval_ == 0)
        auditHook_(*this);

    AccessResult result;
    result.hit = hit;
    result.energyNj = params_.enableEnergy ? energy : 0.0;
    result.latencyCycles = latency;
    result.level = level;
    return result;
}

void
MolecularCache::accessBatch(std::span<const MemAccess> in,
                            std::span<AccessResult> out)
{
    MOLCACHE_EXPECT(in.size() == out.size(),
                    "accessBatch span length mismatch");
    const size_t n = in.size();
    size_t i = 0;
    // The fast plane hoists revalidation behind generation stamps and
    // defers uniform bookkeeping, which requires: way-memoization live
    // (its poison fuse also guarantees no corrupt line exists anywhere),
    // no guardian (its noteAccess hook observes every access in order),
    // no audit hook (audits expect quiescent, fully-applied counters)
    // and whole-region lookup (row-restricted schedules vary per
    // address).  Everything else replays through the scalar reference
    // path — identical by construction.
    const bool eligible = wayMemoOn_ && guardian_ == nullptr &&
                          !params_.rowRestrictedLookup &&
                          !(auditInterval_ != 0 && auditHook_);
    if (!eligible) {
        for (; i < n; ++i)
            out[i] = access(in[i]);
        return;
    }
    while (i < n) {
        i = batchFastRun(in.data(), out.data(), i, n);
        if (i < n && !wayMemoOn_) {
            // A transient flip mid-block blew the fuse: finish scalar.
            for (; i < n; ++i)
                out[i] = access(in[i]);
        }
    }
}

size_t
MolecularCache::batchFastRun(const MemAccess *in, AccessResult *out,
                             size_t i, size_t n)
{
    const Cycles hit_latency =
        params_.asidStageCycles + params_.moleculeAccessCycles;
    const bool per_app =
        params_.resizeScheme == ResizeScheme::PerAppAdaptive;
    const bool lru = params_.placement == PlacementPolicy::LruDirect;
    const bool energy_on = params_.enableEnergy;
    const u32 line_mask = linesPerMol_ - 1;
    // Running energy total in a register: the adds happen in the same
    // per-record order as the scalar path, so the flushed value is
    // bit-identical to accumulating in memory.
    double e_acc = energyNj_;
    Tick fault_due = injector_.nextDueTick();

    for (; i < n; ++i) {
        const MemAccess a = in[i];
        if (a.asid == kInvalidAsid)
            fatal("access with the invalid ASID");
        ++tick_;
        if (tick_ >= fault_due) [[unlikely]] {
            // Fault events mutate membership and can poison lines; run
            // the record through the scalar tail with everything
            // flushed and quiescent.
            energyNj_ = e_acc;
            flushBatchLanes();
            applyDueFaults();
            out[i] = accessTicked(a);
            e_acc = energyNj_;
            fault_due = injector_.nextDueTick();
            if (!wayMemoOn_) {
                energyNj_ = e_acc;
                return i + 1;
            }
            continue;
        }

        const u32 v = a.asid.value();
        if (v >= lanes_.size()) [[unlikely]]
            lanes_.resize(v + 1u);
        BatchLane &lane = lanes_[v];
        Region *rp = v < regionIndex_.size() ? regionIndex_[v] : nullptr;
        if (rp == nullptr || lane.gen != rp->generation() ||
            lane.sharedGen != sharedGen_) [[unlikely]] {
            flushBatchLane(lane);
            rp = &regionFor(a.asid); // may auto-register the ASID
            refreshBatchLane(lane, *rp, a.addr);
        }
        Region &region = *rp;

        u32 probes = lane.homeProbes;
        double energy = lane.homeEnergy;
        Cycles latency = hit_latency;
        u8 level = 0;

        // Way-memo prediction first, exactly as the scalar path.
        Molecule *hit_mol = nullptr;
        WayMemoEntry *memo_slot = nullptr;
        const u32 tag_bits = static_cast<u32>(a.addr >> lineShift_ >> 10);
        if (lane.regionSize != 0) {
            memo_slot = &lane.slots[(a.addr >> lineShift_) & lane.mask];
            if (memo_slot->mol != kInvalidMolecule &&
                memo_slot->tagBits == tag_bits) {
                Molecule &m = molecule(memo_slot->mol);
                if (m.admits(a.asid) && m.tile() == region.homeTile() &&
                    m.probe(a.addr) == Molecule::ProbeOutcome::Hit) {
                    hit_mol = &m;
                    ++lane.pendMemoHits;
                } else {
                    memo_slot->mol = kInvalidMolecule;
                    ++lane.pendMispredicts;
                }
            }
        }

        if (hit_mol == nullptr) {
            // Mispredict / no prediction: scan the home schedule over
            // the tile's SoA tag view.  In-order first match preserves
            // probeTile()'s semantics; the fuse guarantees no poisoned
            // line exists, and the flag check keeps even that case from
            // reading a corrupt slot as a hit.
            const Addr tag = a.addr >> tagShift_;
            const u32 li = static_cast<u32>(a.addr >> lineShift_) &
                           line_mask;
            const u32 *base = lane.slotBase.data();
            const u32 count = lane.homeProbes;
            u32 j = 0;
            for (; j < count; ++j) {
                if (j + 2 < count) {
                    const u32 pf = base[j + 2] + li;
                    __builtin_prefetch(lane.flags + pf, 0, 1);
                    __builtin_prefetch(lane.tags + pf, 0, 1);
                }
                const u32 slot = base[j] + li;
                const u8 f = lane.flags[slot];
                if ((f & (kLineValid | kLinePoisoned)) == kLineValid &&
                    lane.tags[slot] == tag)
                    break;
            }
            if (j < count) {
                hit_mol = lane.homeMols[j];
                if (memo_slot != nullptr)
                    *memo_slot = WayMemoEntry{tag_bits, hit_mol->id()};
            }
        }

        if (hit_mol == nullptr && !lane.plan->remote.empty()) [[unlikely]] {
            // Tile miss with a multi-tile region: Ulmo escalation, same
            // as the scalar path (direct accounting — remote records
            // are not uniform, so nothing about them is deferred).
            Ulmo &ulmo = ulmos_[region.homeCluster().value()];
            ulmo.noteTileMiss();
            for (const TileProbes &tp : lane.plan->remote) {
                const u32 m = static_cast<u32>(tp.molecules.size());
                energy += ulmoHopNj_ + tileAccessEnergyNj(m);
                latency += params_.ulmoHopCycles +
                           params_.asidStageCycles +
                           params_.moleculeAccessCycles;
                probes += m;
                tiles_[tp.tile.value()].notePortAccess();
                ulmo.noteRemoteProbes(m);
                hit_mol = probeTile(tp.tile, tp.molecules, a.addr);
                if (hit_mol != nullptr) {
                    ulmo.noteRemoteHit();
                    level = 1;
                    break;
                }
            }
        }

        const bool hit = hit_mol != nullptr;
        if (hit && level == 0 && !a.isWrite()) [[likely]] {
            // The uniform record: a home-tile read hit.  Everything the
            // scalar path would add is a constant of the lane — defer.
            ++lane.pendHits;
            if (lru)
                hit_mol->noteTouch(a.addr, tick_);
        } else if (hit && level == 0) {
            // Home-tile write hit: still uniform in probes/latency, but
            // the coherence write path runs inline.
            ++lane.pendHits;
            ++lane.pendWrites;
            if (lru)
                hit_mol->noteTouch(a.addr, tick_);
            hit_mol->markDirty(a.addr);
            const LineAddr line = lineAddrOf(a.addr, params_.lineSize);
            applyInvalidations(
                directory_.noteWrite(line, region.homeCluster()), line,
                a.asid, region.homeCluster());
        } else {
            // Remote hit or miss: replay the scalar bookkeeping
            // directly (integer sums commute with the deferred flush).
            lane.home->notePortAccess();
            if (hit) {
                if (lru)
                    hit_mol->noteTouch(a.addr, tick_);
                if (a.isWrite()) {
                    hit_mol->markDirty(a.addr);
                    const LineAddr line =
                        lineAddrOf(a.addr, params_.lineSize);
                    applyInvalidations(
                        directory_.noteWrite(line, region.homeCluster()),
                        line, a.asid, region.homeCluster());
                }
            } else {
                level = 2;
                latency += params_.missPenaltyCycles;
                energy += handleMiss(region, a);
            }
            region.noteAccess(hit);
            stats_.record(a.asid, hit, a.isWrite(), latency);
            intervalAccesses_.increment();
            if (!hit)
                intervalMisses_.increment();
            probesTotal_ += probes;
            enabledIntegral_ += region.size();
        }
        if (energy_on)
            e_acc += energy;
        out[i] = AccessResult{hit, energy_on ? energy : 0.0, latency,
                              level};

        // Resize scheduling, per record as in the scalar path.  The
        // global schemes gate on the access tick, the per-app scheme on
        // the region's access count (tracked as a lane countdown so the
        // deferred counters need no flush to evaluate the gate).
        if (per_app) {
            if (--lane.accUntilResize <= 0) [[unlikely]] {
                flushBatchLane(lane);
                maybeResize(region);
                lane.accUntilResize =
                    static_cast<i64>(region.nextResizeTick) -
                    static_cast<i64>(region.accesses());
            }
        } else if (tick_ >= nextGlobalResize_) [[unlikely]] {
            energyNj_ = e_acc;
            flushBatchLanes();
            maybeResize(region);
            e_acc = energyNj_;
        }
    }

    energyNj_ = e_acc;
    flushBatchLanes();
    return n;
}

void
MolecularCache::refreshBatchLane(BatchLane &lane, Region &region,
                                 Addr addr)
{
    lane.region = &region;
    lane.gen = region.generation();
    lane.sharedGen = sharedGen_;
    Tile &home = tiles_[region.homeTile().value()];
    lane.home = &home;
    lane.tags = home.lineTags();
    lane.flags = home.lineFlags();
    lane.regionSize = region.size();
    const std::vector<MoleculeId> &shared_home =
        sharedByTile_[region.homeTile().value()];
    const ProbeSchedule &plan = region.probeSchedule(
        addr, params_.rowRestrictedLookup, sharedGen_,
        shared_home.empty() ? nullptr : &shared_home);
    lane.plan = &plan;
    lane.homeProbes = static_cast<u32>(plan.home.size());
    lane.homeEnergy = tileAccessEnergyNj(lane.homeProbes);
    lane.slotBase.clear();
    lane.homeMols.clear();
    for (const MoleculeId id : plan.home) {
        lane.slotBase.push_back((id - home.firstMolecule()) *
                                linesPerMol_);
        lane.homeMols.push_back(&home.molecule(id));
    }
    if (!region.empty()) {
        // Revalidate/rebuild the memo table under the same conditions
        // (and with the same invalidation accounting) as the scalar
        // path's per-access call — membership moves always come through
        // a generation bump, so refresh time is the first access after
        // staleness in both planes.
        wayMemoSlot(region, addr);
        WayMemo &memo = wayMemo_[region.asid().value()];
        lane.slots = memo.slots.data();
        lane.mask = memo.mask;
    } else {
        lane.slots = nullptr;
        lane.mask = 0;
    }
    if (params_.resizeScheme == ResizeScheme::PerAppAdaptive)
        lane.accUntilResize = static_cast<i64>(region.nextResizeTick) -
                              static_cast<i64>(region.accesses());
}

void
MolecularCache::flushBatchLane(BatchLane &lane)
{
    wayMemoHits_ += lane.pendMemoHits;
    wayMemoMispredicts_ += lane.pendMispredicts;
    lane.pendMemoHits = 0;
    lane.pendMispredicts = 0;
    if (lane.pendHits == 0)
        return;
    Region &region = *lane.region;
    region.noteAccessHits(lane.pendHits);
    stats_.recordHitBatch(region.asid(), lane.pendHits, lane.pendWrites,
                          params_.asidStageCycles +
                              params_.moleculeAccessCycles);
    lane.home->notePortAccesses(lane.pendHits);
    intervalAccesses_.increment(lane.pendHits);
    probesTotal_ += lane.pendHits * lane.homeProbes;
    enabledIntegral_ +=
        lane.pendHits * static_cast<u64>(lane.regionSize);
    lane.pendHits = 0;
    lane.pendWrites = 0;
}

void
MolecularCache::flushBatchLanes()
{
    for (BatchLane &lane : lanes_)
        flushBatchLane(lane);
}

double
MolecularCache::handleMiss(Region &region, const MemAccess &a)
{
    if (region.empty()) {
        // A region can be starved when its cluster was exhausted at
        // registration time; retry on every miss so it recovers as soon
        // as molecules free up.
        if (grant(region, 1) == 0)
            return 0.0; // uncacheable this access
    }

    const u64 unit = static_cast<u64>(region.lineMultiple()) *
                     params_.lineSize;
    const Addr base = alignDown(a.addr, unit);
    const Addr accessed_line = alignDown(a.addr, params_.lineSize);

    const MoleculeId mol_id =
        params_.placement == PlacementPolicy::LruDirect
            ? chooseLruDirectMolecule(region, a.addr)
            : region.chooseFillMolecule(a.addr, *rng_);
    Molecule &mol = molecule(mol_id);

    bool replaced = false;
    for (u32 i = 0; i < region.lineMultiple(); ++i) {
        const Addr la = base + static_cast<u64>(i) * params_.lineSize;
        const bool dirty = a.isWrite() && la == accessed_line;
        if (const auto ev = mol.fill(la, dirty, tick_)) {
            replaced = true;
            if (ev->poisoned) {
                // The fill displaced a corrupt line: the write of fresh
                // data is where the parity check catches it.
                ++faultStats_.transientFlipsDetected;
                if (ev->dirty)
                    ++faultStats_.dirtyLinesLost;
            } else if (ev->dirty) {
                stats_.recordWriteback(a.asid);
            }
            directory_.noteEviction(LineAddr{ev->addr},
                                    region.homeCluster());
        }
        applyInvalidations(
            directory_.noteFill(LineAddr{la}, region.homeCluster(), dirty),
            LineAddr{la}, a.asid, region.homeCluster());
    }

    if (replaced) {
        // The paper's resize counters record misses that lead to line
        // replacements (section 3.4, "Where to add?").
        mol.noteMiss();
        region.noteReplacement(mol_id, a.addr);
    }
    // The fill writes lineMultiple lines into the chosen molecule.
    return static_cast<double>(region.lineMultiple()) * molFillNj_;
}

MoleculeId
MolecularCache::chooseLruDirectMolecule(const Region &region, Addr addr)
{
    MOLCACHE_EXPECT(!region.empty(), "LRU-Direct fill into empty region");
    MoleculeId best = kInvalidMolecule;
    u64 best_tick = ~0ull;
    for (const auto &[tile, mols] : region.byTile()) {
        for (const MoleculeId id : mols) {
            const auto tick = molecule(id).slotTouchTick(addr);
            if (!tick)
                return id; // invalid slot: take it immediately
            if (*tick < best_tick) {
                best_tick = *tick;
                best = id;
            }
        }
    }
    MOLCACHE_ENSURE(best != kInvalidMolecule, "no LRU-Direct candidate");
    return best;
}

void
MolecularCache::applyInvalidations(const std::vector<ClusterId> &clusters,
                                   LineAddr lineAddr, Asid except,
                                   ClusterId origin)
{
    for (const ClusterId c : clusters) {
        // One invalidation message from the writing cluster to each
        // victim over the inter-cluster interconnect.
        noc_.sendMessage(origin.value(), c.value());
        ulmos_[c.value()].noteInvalidation();
        for (auto &[asid, region] : regions_) {
            if (region.homeCluster() != c || asid == except)
                continue;
            for (const auto &[tile, mols] : region.byTile()) {
                for (const MoleculeId id : mols) {
                    if (molecule(id).invalidate(lineAddr.value()))
                        stats_.recordWriteback(asid);
                }
            }
        }
        // Shared-bit molecules on the cluster's tiles.
        for (const TileId t : ulmos_[c.value()].tiles()) {
            for (const MoleculeId id : sharedByTile_[t.value()]) {
                Molecule &m = molecule(id);
                if (m.invalidate(lineAddr.value()))
                    stats_.recordWriteback(m.configuredAsid());
            }
        }
    }
}

void
MolecularCache::maybeResize(Region &region)
{
    switch (params_.resizeScheme) {
      case ResizeScheme::Constant:
        if (tick_ >= nextGlobalResize_) {
            runGlobalResizeCycle();
            intervalAccesses_.takeInterval();
            intervalMisses_.takeInterval();
            nextGlobalResize_ = tick_ + globalResizePeriod_;
        }
        break;
      case ResizeScheme::GlobalAdaptive:
        if (tick_ >= nextGlobalResize_) {
            runGlobalResizeCycle();
            const u64 acc = intervalAccesses_.takeInterval();
            const u64 miss = intervalMisses_.takeInterval();
            double mean_goal = 0.0;
            for (const auto &[asid, r] : regions_)
                mean_goal += r.resizeGoal;
            mean_goal /= regions_.empty() ? 1.0
                                          : static_cast<double>(
                                                regions_.size());
            globalResizePeriod_ = resizer_.adaptPeriod(
                globalResizePeriod_, ratio(miss, acc), mean_goal);
            nextGlobalResize_ = tick_ + globalResizePeriod_;
        }
        break;
      case ResizeScheme::PerAppAdaptive:
        // Side-band hint wakeup: a trusted phase hint may need to act
        // between two reactive wakeups (the adaptive period can dwarf
        // the hint's lead).  The pulse runs predictiveStep alone — the
        // reactive schedule, intervals and period adaptation are not
        // touched, so an armed hint never changes *when* Algorithm 1
        // evaluates, only how much capacity is there when it does.
        if (region.hintWakeTick != 0 &&
            region.accesses() >= region.hintWakeTick) {
            region.hintWakeTick = 0;
            if (region.accesses() < region.nextResizeTick)
                resizer_.predictivePulse(region, *this, guardian_.get());
        }
        if (region.accesses() >= region.nextResizeTick) {
            const RegionResize rr = resizer_.resizeRegion(
                region, region.resizeGoal, *this, guardian_.get());
            ++resizeCycles_;
            if (rr.evaluated) {
                region.resizePeriod = resizer_.adaptPeriod(
                    region.resizePeriod, rr.missRate, region.resizeGoal);
                // Oscillation backoff survives the adaptation: a
                // thrashing region's control loop stays slowed down
                // until it earns its responsiveness back.
                if (guardian_ != nullptr)
                    region.resizePeriod = guardian_->scaledPeriod(
                        region.asid(), region.resizePeriod);
            }
            region.nextResizeTick = region.accesses() + region.resizePeriod;
        }
        break;
    }
}

void
MolecularCache::runGlobalResizeCycle()
{
    ++resizeCycles_;
    for (auto &[asid, region] : regions_)
        resizer_.resizeRegion(region, region.resizeGoal, *this,
                              guardian_.get());
}

u32
MolecularCache::grant(Region &region, u32 count)
{
    if (count == 0)
        return 0;
    u32 got = 0;

    auto take_from = [&](TileId tile_index) {
        Tile &tile = tiles_[tile_index.value()];
        while (got < count) {
            const MoleculeId id = tile.allocate(region.asid());
            if (id == kInvalidMolecule)
                break;
            region.addMolecule(id, tile_index, /*initial=*/false);
            ++got;
        }
    };

    take_from(region.homeTile());

    Ulmo &ulmo = ulmos_[region.homeCluster().value()];
    for (const TileId t : ulmo.tiles()) {
        if (t == region.homeTile() || got >= count)
            continue;
        const u32 before = got;
        take_from(t);
        if (got > before)
            ulmo.noteDonation();
    }
    // Guardian pool-pressure accounting: a short grant means the whole
    // cluster is out of free molecules.  Gated on the guardian so the
    // unguarded build's counters stay untouched.
    if (guardian_ != nullptr && got < count)
        ulmo.noteGrantShortfall(count - got);
    return got;
}

void
MolecularCache::postPhaseHint(const PhaseHint &hint)
{
    if (guardian_ == nullptr || !guardian_->predictiveEnabled())
        return;
    if (!hasApplication(hint.asid))
        return;
    Region &region = regionFor(hint.asid);
    if (guardian_->acceptHint(hint, region)) {
        // Make sure a wakeup lands inside the hint's pre-shift window:
        // a quiet phase may have adapted the period far past the
        // announced lead, and a hint nobody wakes up for cannot act.
        // The side-band tick fires predictiveStep alone (maybeResize),
        // leaving the reactive schedule untouched.
        region.hintWakeTick =
            region.accesses() + std::max<u64>(1, hint.leadAccesses / 2);
    }
}

void
MolecularCache::setRegionFloor(Asid asid, u32 floorMolecules)
{
    Region &region = regionFor(asid);
    if (floorMolecules > params_.tilesPerCluster * params_.moleculesPerTile)
        fatal("capacity floor ", floorMolecules,
              " exceeds cluster capacity");
    region.capacityFloor = floorMolecules;
}

u32
MolecularCache::withdraw(Region &region, u32 count)
{
    u32 got = 0;
    while (got < count && region.size() > 1) {
        const MoleculeId id = region.pickWithdrawal();
        if (id == kInvalidMolecule)
            break;
        Molecule &m = molecule(id);
        for (const Addr la : m.residentLines())
            directory_.noteEviction(LineAddr{la}, region.homeCluster());
        const u32 dirty = tiles_[m.tile().value()].release(id);
        for (u32 i = 0; i < dirty; ++i)
            stats_.recordWriteback(region.asid());
        region.removeMolecule(id);
        ++got;
    }
    return got;
}

std::string
MolecularCache::name() const
{
    std::ostringstream os;
    os << "molecular " << formatSize(params_.totalSizeBytes()) << " ("
       << placementPolicyName(params_.placement) << ", " << params_.clusters
       << "x" << params_.tilesPerCluster << " tiles, "
       << formatSize(params_.moleculeSize) << " molecules)";
    return os.str();
}

void
MolecularCache::resetStats()
{
    stats_.reset();
    energyNj_ = 0.0;
    probesTotal_ = 0;
    enabledIntegral_ = 0;
    wayMemoHits_ = 0;
    wayMemoMispredicts_ = 0;
    wayMemoInvalidations_ = 0;
}

double
MolecularCache::worstCaseAccessEnergyNj() const
{
    return tileFixedNj_ + params_.moleculesPerTile * molProbeNj_;
}

double
MolecularCache::averageAccessEnergyNj() const
{
    const u64 acc = stats_.global().accesses;
    return acc == 0 ? 0.0 : energyNj_ / static_cast<double>(acc);
}

double
MolecularCache::averageProbesPerAccess() const
{
    return ratio(probesTotal_, stats_.global().accesses);
}

double
MolecularCache::averageEnabledMolecules() const
{
    return ratio(enabledIntegral_, stats_.global().accesses);
}

void
MolecularCache::setFaultInjector(FaultInjector injector)
{
    injector_ = std::move(injector);
}

void
MolecularCache::applyDueFaults()
{
    while (const FaultEvent *ev = injector_.drainOne(tick_)) {
        switch (ev->kind) {
          case FaultKind::TransientFlip:
            injectTransientFlip(
                MoleculeId{ev->target % params_.totalMolecules()},
                ev->line);
            break;
          case FaultKind::HardFault:
            injectHardFault(
                MoleculeId{ev->target % params_.totalMolecules()});
            break;
          case FaultKind::TileOutage:
            injectTileOutage(TileId{ev->target % params_.totalTiles()});
            break;
        }
    }
}

void
MolecularCache::injectTransientFlip(MoleculeId id, u32 line)
{
    Molecule &m = molecule(id);
    ++faultStats_.transientFlipsInjected;
    // Poison must be discovered by the full in-order schedule walk —
    // probeTile scrubs the slot and accounts the loss — so the memo
    // shortcut (which skips earlier schedule entries) is retired for
    // the rest of the run on the first flip, in every access path.
    wayMemoOn_ = false;
    if (m.decommissioned())
        return; // fenced arrays are power-gated: nothing to corrupt
    m.poisonLine(line % params_.linesPerMolecule());
}

void
MolecularCache::injectHardFault(MoleculeId id)
{
    Molecule &m = molecule(id);
    ++faultStats_.hardFaultEvents;
    if (m.decommissioned())
        return;
    if (m.noteHardFault() >= params_.hardFaultThreshold)
        decommissionMolecule(id);
}

void
MolecularCache::injectTileOutage(TileId tile)
{
    MOLCACHE_EXPECT(tile.value() < tiles_.size(),
                    "tile outage out of range");
    ++faultStats_.tileOutages;
    const Tile &t = tiles_[tile.value()];
    const MoleculeId first = t.firstMolecule();
    for (MoleculeId id = first; id < first + t.numMolecules(); ++id)
        decommissionMolecule(id);
}

void
MolecularCache::injectClusterOutage(ClusterId cluster)
{
    MOLCACHE_EXPECT(cluster.value() < params_.clusters,
                    "cluster outage out of range");
    const u32 first = cluster.value() * params_.tilesPerCluster;
    for (u32 i = 0; i < params_.tilesPerCluster; ++i)
        injectTileOutage(TileId{first + i});
}

bool
MolecularCache::decommissionMolecule(MoleculeId id)
{
    Molecule &m = molecule(id);
    if (m.decommissioned())
        return false;
    const TileId tile_index = m.tile();
    const ClusterId cluster{tile_index.value() / params_.tilesPerCluster};
    const Asid owner = m.configuredAsid();

    if (!m.isFree()) {
        if (m.sharedBit())
            setSharedMolecule(id, false);
        for (auto &[asid, region] : regions_) {
            if (!region.contains(id))
                continue;
            // Drain: the directory forgets the lines, the replacement
            // view forgets the molecule, and the region notes the
            // capacity hole so the resizer re-acquires around it.
            for (const Addr la : m.residentLines())
                directory_.noteEviction(LineAddr{la}, region.homeCluster());
            region.removeMolecule(id);
            region.noteMoleculeLost();
            break;
        }
    }

    const u32 dirty = tiles_[tile_index.value()].decommission(id);
    for (u32 i = 0; i < dirty; ++i)
        stats_.recordWriteback(owner);
    ulmos_[cluster.value()].noteDecommission();
    ++faultStats_.moleculesDecommissioned;
    return true;
}

u32
MolecularCache::decommissionedMolecules() const
{
    u32 n = 0;
    for (const Tile &t : tiles_)
        n += t.decommissionedCount();
    return n;
}

std::vector<Asid>
MolecularCache::registeredAsids() const
{
    std::vector<Asid> out;
    out.reserve(regions_.size());
    for (const auto &[asid, region] : regions_)
        out.push_back(asid);
    return out;
}

void
MolecularCache::setAuditHook(Tick everyAccesses, AuditHook hook)
{
    auditInterval_ = everyAccesses;
    auditHook_ = std::move(hook);
}

double
MolecularCache::hitPerMoleculeOf(Asid asid) const
{
    const Region &r = region(asid);
    if (r.size() == 0 || r.accesses() == 0)
        return 0.0;
    return (static_cast<double>(r.hits()) /
            static_cast<double>(r.accesses())) /
           static_cast<double>(r.size());
}

} // namespace molcache
