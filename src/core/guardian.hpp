/**
 * @file
 * QoS guardian — robustness layer around the paper's Algorithm 1
 * (docs/algorithm1.md, "Guardrails").
 *
 * The resizer trusts its inputs: nothing in Algorithm 1 detects an
 * infeasible miss-rate goal, bounds grant/withdraw oscillation, or stops
 * one region from starving the cluster pool.  The guardian wraps each
 * resize decision with four guards:
 *
 *  - admission control: a linear miss-vs-size response model
 *    (k ~= missRate * size, EWMA-smoothed) predicts the best achievable
 *    miss rate at cluster capacity; goals below that are flagged
 *    Infeasible and the region enters an explicit degraded mode where
 *    Algorithm 1 steers toward the achievable goal and the shortfall is
 *    reported, instead of looping hopeless grants;
 *  - stability: a hysteresis dead-band around the goal, a cooldown
 *    between opposite-direction actions, and an oscillation detector
 *    that counts delta sign flips over a sliding window — tripping it
 *    widens the dead-band and backs off the resize period;
 *  - fairness: per-region capacity floors (withdrawals are clamped at
 *    the floor, lost capacity is re-granted) and a global pool-pressure
 *    signal that pauses growth of regions already at their fair share;
 *  - convergence watchdog: counts evaluated epochs above goal and
 *    surfaces regions stuck past the budget.
 *
 * On top of the reactive guards sits an opt-in *predictive mode*
 * (params.guardian.predictive, docs/algorithm1.md "Predictive mode &
 * hint trust"): applications may announce upcoming phase shifts through
 * the PhaseHint side-band channel, and the guardian pre-grants /
 * pre-withdraws capacity ahead of the shift instead of waiting for the
 * misses to show up.  Hints are untrusted input — each one is scored
 * after the fact against the observed miss response, a per-region trust
 * EWMA decays when promises diverge from reality, and a region whose
 * trust falls below threshold is quarantined back to pure reactive
 * control (with a probation path to re-earn trust).  Every predictive
 * action runs through the same floor / fair-share / oscillation guards
 * as the reactive path.
 *
 * The guardian is opt-in (params.guardian.enabled, default off).  A
 * disabled guardian is a null pointer through the whole control plane,
 * leaving the resizer byte-identical to the unguarded build; predictive
 * mode off leaves a guardian-on run byte-identical to PR-5 reactive
 * control.
 */

#ifndef MOLCACHE_CORE_GUARDIAN_HPP
#define MOLCACHE_CORE_GUARDIAN_HPP

#include <vector>

#include "core/guardian_stats.hpp"
#include "core/params.hpp"
#include "core/region.hpp"
#include "mem/phase_hint.hpp"

namespace molcache {

class MoleculeBroker;

class QosGuardian
{
  public:
    explicit QosGuardian(const MolecularCacheParams &params);

    /**
     * Re-grant capacity up to the region's floor (after fault
     * decommissioning or an external squeeze).  Runs ahead of the
     * Algorithm-1 decision, is retried every cycle, and keeps working
     * even after the resizer's own pendingReacquire path has given up
     * on an exhausted pool.  @return molecules granted.
     */
    u32 restoreFloor(Region &region, MoleculeBroker &broker);

    /**
     * Pre-decision gate.  @return true when this epoch's decision
     * should be held (dead-band, cooldown, flip-guard or pool
     * pressure); otherwise false, with @p effectiveGoal set to the goal
     * Algorithm 1 should steer toward (the configured goal, or the
     * achievable substitute while the verdict is Infeasible).
     */
    bool gateHold(const Region &region, double missRate, double goal,
                  double *effectiveGoal);

    /**
     * Clamp a withdrawal so the region never drops below its capacity
     * floor; clipped withdrawals count as floor hits.
     */
    u32 clampWithdraw(const Region &region, u32 count);

    /** Record a grant outcome (pool-pressure EWMA). */
    void noteGrant(Asid asid, u32 want, u32 got);

    /**
     * Per-access QoS accounting: time-outside-goal is classified over
     * fixed windows of nominal-resize-period length, NOT over the
     * adaptive control intervals — the adaptive period stretches and
     * shrinks with workload phase (and with predictive mode's extra
     * wakeups), so interval-based classification would measure the
     * control loop's cadence instead of the application's QoS.
     */
    void noteAccess(const Region &region, bool hit)
    {
        RegState &s = stateFor(region.asid());
        ++s.qosWindowAccesses;
        if (!hit)
            ++s.qosWindowMisses;
        if (s.qosWindowAccesses >= static_cast<u64>(nominalResizePeriod_))
            rollQosWindow(s, region.resizeGoal);
    }

    /**
     * Post-decision bookkeeping for one evaluated epoch: sign-flip
     * window, oscillation backoff, feasibility estimate and watchdog.
     * @param delta this epoch's net molecule delta
     * @param goal  the region's *configured* goal (not the degraded one)
     */
    void afterDecision(const Region &region, i32 delta, double missRate,
                       double goal);

    /**
     * Apply the region's oscillation backoff to an adapted resize
     * period (PerAppAdaptive scheme), clamped to the configured period
     * bounds.
     */
    Tick scaledPeriod(Asid asid, Tick period) const;

    /** Predictive mode configured on (hints are worth delivering). */
    bool predictiveEnabled() const { return params_.predictive.enabled; }

    /**
     * Ingest one phase hint for @p region.  Low-confidence hints are
     * rejected; everything else arms the region's pending-hint slot (a
     * newer forecast finalizes the score of an older one first) —
     * quarantined and not-yet-trusted regions arm too, but only for
     * scoring, never for action, which is how they earn (back) trust.
     * No-op while predictive mode is off.  @return true when the hint
     * was armed *and* is eligible to act (the caller should pull the
     * next resize wakeup forward so the hint gets a pre-shift wakeup);
     * scored-only hints return false so untrusted tenants cannot
     * perturb the reactive schedule.
     */
    bool acceptHint(const PhaseHint &hint, const Region &region);

    /**
     * Predictive pre-provisioning, run once per resize wakeup ahead of
     * the Algorithm-1 decision.  Acts when the armed hint's shift lands
     * before the region's next wakeup: grows toward / shrinks toward
     * the promised footprint, bounded by maxActionMolecules, the
     * capacity floor and the fair-share guard, and skipped outright
     * during an oscillation cooldown or quarantine.  @p broker should
     * be the guarded broker so floor clamps and pool pressure apply.
     * @return net molecule delta (0 = no action this wakeup).
     */
    i32 predictiveStep(Region &region, MoleculeBroker &broker);

    const GuardianParams &params() const { return params_; }
    double poolPressure() const { return pressure_; }

    /** Telemetry slice for @p asid (zero-initialized when unseen). */
    GuardianAppTelemetry telemetry(Asid asid) const;
    /** Whole-cache aggregate over every region seen. */
    GuardianSummary summary() const;

  private:
    struct RegState
    {
        bool active = false;
        // Stability: sliding window of delta signs.
        std::vector<i8> window;
        u32 windowPos = 0;
        u32 windowFill = 0;
        i8 lastSign = 0;
        u32 epochsSinceAction = 0;
        u32 cooldownLeft = 0;
        u32 calmEpochs = 0;
        double bandScale = 1.0;
        double periodScale = 1.0;
        u32 oscillationEvents = 0;
        u32 maxSignFlips = 0;
        // Fairness.
        u64 floorHits = 0;
        u64 floorRestoreGrants = 0;
        u64 holdEpochs = 0;
        // Admission control: EWMA of k = missRate * size.
        double kEwma = 0.0;
        bool hasK = false;
        u32 infeasibleStreak = 0;
        FeasibilityVerdict verdict = FeasibilityVerdict::Unknown;
        double degradedGoal = 0.0;
        double shortfall = 0.0;
        // Watchdog.
        u32 epochsAboveGoal = 0;
        u32 lastEpochsToGoal = 0;
        u32 maxEpochsToGoal = 0;
        // Time outside the QoS goal (all guardian-on runs), classified
        // over fixed nominal-period access windows.
        u64 epochsOutsideGoal = 0;
        u64 accessesOutsideGoal = 0;
        u64 qosWindowAccesses = 0;
        u64 qosWindowMisses = 0;
        // Predictive mode: hint counters + trust state machine.
        u64 hintsSeen = 0;
        u64 hintsHonored = 0;
        u64 hintsRejected = 0;
        u64 preGrantMolecules = 0;
        u64 preWithdrawMolecules = 0;
        double trust = 0.0;
        bool quarantined = false;
        u32 quarantineEvents = 0;
        u32 quarantineEpochs = 0;
        // The armed (not yet scored) hint, at most one per region.
        bool hintArmed = false;
        bool hintActed = false;
        u64 hintDue = 0;            // region-access tick of the shift
        u32 hintTargetMolecules = 0;
        double hintConfidence = 0.0;
        i8 hintDirection = 0;       // promised grow(+1)/shrink(-1)/hold
        double hintMissBaseline = 0.0;
        bool hintBaselineKnown = false;
        // Post-shift evidence: misses/accesses accumulated over
        // evaluated intervals lying entirely past hintDue.  Averaging
        // across several intervals keeps the one-off refill transient of
        // a phase entry from deciding the verdict alone.
        double hintPostMisses = 0.0;
        u64 hintPostAccesses = 0;
        u32 hintPostIntervals = 0;
    };

    /** Promised-vs-size slack and observed-move margin for scoring. */
    static constexpr u32 kHintSizeSlack = 1;
    static constexpr double kHintMissMargin = 0.02;
    /** Post-shift intervals accumulated before a hint's score is
     * finalized (fewer are accepted when a newer hint supersedes it). */
    static constexpr u32 kHintScoreIntervals = 4;

    RegState &stateFor(Asid asid);
    const RegState *findState(Asid asid) const;
    u32 countSignFlips(const RegState &s) const;
    u32 activeRegions() const;
    /** Score a matured hint against the observed miss response and run
     * the trust state machine (quarantine / probation / restore). */
    void scoreHint(RegState &s, double missRate, double goal);
    /** Finalize an armed hint early (superseded by a newer forecast):
     * scored on whatever post-shift evidence accumulated, or counted
     * rejected when none did. */
    void finalizeHint(RegState &s, double goal);
    /** Close one fixed QoS window: classify it against the goal band
     * and fold it into the outside-goal counters. */
    void rollQosWindow(RegState &s, double goal);

    GuardianParams params_;
    /** Molecules one region could reach at most (its cluster's total). */
    u32 clusterCapacity_;
    u64 moleculeSizeBytes_;
    Tick nominalResizePeriod_;
    Tick minResizePeriod_;
    Tick maxResizePeriod_;
    // Dense per-ASID state; grown on first contact, never on the access
    // hot path (the guardian only runs at resize epochs).
    std::vector<RegState> states_;
    double pressure_ = 0.0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_GUARDIAN_HPP
