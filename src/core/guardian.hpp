/**
 * @file
 * QoS guardian — robustness layer around the paper's Algorithm 1
 * (docs/algorithm1.md, "Guardrails").
 *
 * The resizer trusts its inputs: nothing in Algorithm 1 detects an
 * infeasible miss-rate goal, bounds grant/withdraw oscillation, or stops
 * one region from starving the cluster pool.  The guardian wraps each
 * resize decision with four guards:
 *
 *  - admission control: a linear miss-vs-size response model
 *    (k ~= missRate * size, EWMA-smoothed) predicts the best achievable
 *    miss rate at cluster capacity; goals below that are flagged
 *    Infeasible and the region enters an explicit degraded mode where
 *    Algorithm 1 steers toward the achievable goal and the shortfall is
 *    reported, instead of looping hopeless grants;
 *  - stability: a hysteresis dead-band around the goal, a cooldown
 *    between opposite-direction actions, and an oscillation detector
 *    that counts delta sign flips over a sliding window — tripping it
 *    widens the dead-band and backs off the resize period;
 *  - fairness: per-region capacity floors (withdrawals are clamped at
 *    the floor, lost capacity is re-granted) and a global pool-pressure
 *    signal that pauses growth of regions already at their fair share;
 *  - convergence watchdog: counts evaluated epochs above goal and
 *    surfaces regions stuck past the budget.
 *
 * The guardian is opt-in (params.guardian.enabled, default off).  A
 * disabled guardian is a null pointer through the whole control plane,
 * leaving the resizer byte-identical to the unguarded build.
 */

#ifndef MOLCACHE_CORE_GUARDIAN_HPP
#define MOLCACHE_CORE_GUARDIAN_HPP

#include <vector>

#include "core/guardian_stats.hpp"
#include "core/params.hpp"
#include "core/region.hpp"

namespace molcache {

class MoleculeBroker;

class QosGuardian
{
  public:
    explicit QosGuardian(const MolecularCacheParams &params);

    /**
     * Re-grant capacity up to the region's floor (after fault
     * decommissioning or an external squeeze).  Runs ahead of the
     * Algorithm-1 decision, is retried every cycle, and keeps working
     * even after the resizer's own pendingReacquire path has given up
     * on an exhausted pool.  @return molecules granted.
     */
    u32 restoreFloor(Region &region, MoleculeBroker &broker);

    /**
     * Pre-decision gate.  @return true when this epoch's decision
     * should be held (dead-band, cooldown, flip-guard or pool
     * pressure); otherwise false, with @p effectiveGoal set to the goal
     * Algorithm 1 should steer toward (the configured goal, or the
     * achievable substitute while the verdict is Infeasible).
     */
    bool gateHold(const Region &region, double missRate, double goal,
                  double *effectiveGoal);

    /**
     * Clamp a withdrawal so the region never drops below its capacity
     * floor; clipped withdrawals count as floor hits.
     */
    u32 clampWithdraw(const Region &region, u32 count);

    /** Record a grant outcome (pool-pressure EWMA). */
    void noteGrant(Asid asid, u32 want, u32 got);

    /**
     * Post-decision bookkeeping for one evaluated epoch: sign-flip
     * window, oscillation backoff, feasibility estimate and watchdog.
     * @param delta this epoch's net molecule delta
     * @param goal  the region's *configured* goal (not the degraded one)
     */
    void afterDecision(const Region &region, i32 delta, double missRate,
                       double goal);

    /**
     * Apply the region's oscillation backoff to an adapted resize
     * period (PerAppAdaptive scheme), clamped to the configured period
     * bounds.
     */
    Tick scaledPeriod(Asid asid, Tick period) const;

    const GuardianParams &params() const { return params_; }
    double poolPressure() const { return pressure_; }

    /** Telemetry slice for @p asid (zero-initialized when unseen). */
    GuardianAppTelemetry telemetry(Asid asid) const;
    /** Whole-cache aggregate over every region seen. */
    GuardianSummary summary() const;

  private:
    struct RegState
    {
        bool active = false;
        // Stability: sliding window of delta signs.
        std::vector<i8> window;
        u32 windowPos = 0;
        u32 windowFill = 0;
        i8 lastSign = 0;
        u32 epochsSinceAction = 0;
        u32 cooldownLeft = 0;
        u32 calmEpochs = 0;
        double bandScale = 1.0;
        double periodScale = 1.0;
        u32 oscillationEvents = 0;
        u32 maxSignFlips = 0;
        // Fairness.
        u64 floorHits = 0;
        u64 floorRestoreGrants = 0;
        u64 holdEpochs = 0;
        // Admission control: EWMA of k = missRate * size.
        double kEwma = 0.0;
        bool hasK = false;
        u32 infeasibleStreak = 0;
        FeasibilityVerdict verdict = FeasibilityVerdict::Unknown;
        double degradedGoal = 0.0;
        double shortfall = 0.0;
        // Watchdog.
        u32 epochsAboveGoal = 0;
        u32 lastEpochsToGoal = 0;
        u32 maxEpochsToGoal = 0;
    };

    RegState &stateFor(Asid asid);
    const RegState *findState(Asid asid) const;
    u32 countSignFlips(const RegState &s) const;
    u32 activeRegions() const;

    GuardianParams params_;
    /** Molecules one region could reach at most (its cluster's total). */
    u32 clusterCapacity_;
    Tick minResizePeriod_;
    Tick maxResizePeriod_;
    // Dense per-ASID state; grown on first contact, never on the access
    // hot path (the guardian only runs at resize epochs).
    std::vector<RegState> states_;
    double pressure_ = 0.0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_GUARDIAN_HPP
