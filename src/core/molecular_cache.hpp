/**
 * @file
 * The molecular cache: the paper's primary contribution, behind the
 * common CacheModel interface.
 *
 * Composition (paper figures 1-2): clusters of tiles of molecules, one
 * Ulmo per cluster, a shared inter-cluster coherence directory, one
 * Region (partition) per registered application, and a Resizer running
 * Algorithm 1 on the configured schedule.
 *
 * Access path (sections 3.1-3.3):
 *   1. the request enters through the owning application's home tile;
 *      every molecule on the tile performs the ASID comparison, and the
 *      region's molecules on that tile are probed (level 0);
 *   2. on a tile miss, Ulmo probes only the other tiles of the cluster
 *      that contribute molecules to the region (level 1);
 *   3. on a global miss the line (or the region's line-multiple group of
 *      lines) is fetched and placed into a molecule chosen by the
 *      region's placement policy — Random or Randy (level 2).
 *
 * Dynamic energy is accounted per probe using the CACTI-flavoured model:
 * tile wire flight + all-tile ASID comparators + per-molecule array
 * reads, plus an Ulmo hop for escalated lookups.
 */

#ifndef MOLCACHE_CORE_MOLECULAR_CACHE_HPP
#define MOLCACHE_CORE_MOLECULAR_CACHE_HPP

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cache/cache_model.hpp"
#include "core/coherence.hpp"
#include "core/guardian.hpp"
#include "fault/fault_injector.hpp"
#include "core/params.hpp"
#include "core/placement.hpp"
#include "core/region.hpp"
#include "core/resizer.hpp"
#include "core/tile.hpp"
#include "core/ulmo.hpp"
#include "noc/topology.hpp"
#include "power/cacti.hpp"

namespace molcache {

class MolecularCache final : public CacheModel, private MoleculeBroker
{
  public:
    explicit MolecularCache(const MolecularCacheParams &params);

    /**
     * Create a partition for @p asid with the default placement (cluster
     * = asid mod clusters, tiles round-robin within the cluster).
     * @param resizeGoal the miss-rate goal Algorithm 1 steers towards
     */
    void registerApplication(Asid asid, double resizeGoal);

    /** Explicit placement variant; @p tileInCluster is the destination
     * tile's cluster-local ordinal (0..tilesPerCluster-1). */
    void registerApplication(Asid asid, double resizeGoal, ClusterId cluster,
                             u32 tileInCluster, u32 lineMultiple);

    bool hasApplication(Asid asid) const;

    /** Remove the partition and free its molecules.  Statistics for the
     * ASID survive (migration re-registers under the same ASID); callers
     * recycling the ASID for a *new* application follow up with
     * retireApplicationStats(). */
    void unregisterApplication(Asid asid);

    /**
     * Retire @p asid's statistics slot after unregisterApplication, so
     * the ASID value can be recycled for a future tenant without the
     * per-ASID stats map growing with lifetime tenant count
     * (CacheStats::retire).  Fatal if the ASID is still registered —
     * live regions must keep their counters.
     */
    void retireApplicationStats(Asid asid);

    /** Re-aim Algorithm 1: replace @p asid's miss-rate goal.  The next
     * resize epochs steer the region toward the new goal through the
     * usual grant/withdraw machinery (and guardian admission when
     * enabled).  This is the molcached setGoal verb. */
    void setResizeGoal(Asid asid, double resizeGoal);

    // CacheModel interface -------------------------------------------------
    AccessResult access(const MemAccess &access) override;
    /**
     * Batched access plane (docs/perf.md): processes the block through
     * per-ASID lanes that hoist the probe-schedule and way-memo
     * revalidation behind the same generation stamps, scan the home
     * tile's struct-of-arrays tag view with software prefetch, and
     * accumulate the uniform home-hit bookkeeping in lane-local
     * counters flushed at slow-path boundaries.  Byte-identical to
     * calling access() in order — pinned by the differential suite
     * (tests/core/batch_differential_test.cpp).  Configurations the
     * lanes cannot hoist safely (guardian hooks, audit hooks,
     * row-restricted lookup, memoization off or poisoned by a fault)
     * fall back to the scalar reference loop.
     */
    void accessBatch(std::span<const MemAccess> in,
                     std::span<AccessResult> out) override;
    const CacheStats &stats() const override { return stats_; }
    std::string name() const override;
    void resetStats() override;
    double totalEnergyNj() const override { return energyNj_; }

    // Introspection --------------------------------------------------------
    const MolecularCacheParams &params() const { return params_; }
    const Region &region(Asid asid) const;
    const Tile &tile(TileId index) const { return tiles_.at(index.value()); }
    const Ulmo &ulmo(ClusterId cluster) const
    {
        return ulmos_.at(cluster.value());
    }
    const CoherenceDirectory &directory() const { return directory_; }
    /** Inter-cluster interconnect stats (coherence traffic). */
    const NocModel &noc() const { return noc_; }
    const Resizer &resizer() const { return resizer_; }
    /** The QoS guardian, or nullptr when params().guardian is off. */
    const QosGuardian *guardian() const { return guardian_.get(); }

    /** True when phase hints have a consumer (guardian predictive mode
     * on) — callers skip the drain entirely otherwise, so hint-free
     * configurations stay byte-identical. */
    bool
    acceptsPhaseHints() const
    {
        return guardian_ != nullptr && guardian_->predictiveEnabled();
    }

    /** Deliver one phase hint to the guardian's predictive mode; hints
     * for unregistered ASIDs are dropped (tenants may hint before or
     * after their partition exists — the claim is simply void). */
    void postPhaseHint(const PhaseHint &hint);
    Molecule &molecule(MoleculeId id);
    const Molecule &molecule(MoleculeId id) const;

    /** Free molecules across the whole cache / one cluster. */
    u32 freeMolecules() const;
    u32 freeMoleculesInCluster(ClusterId cluster) const;

    /**
     * Per-region capacity floor in molecules (guardian fairness guard):
     * withdrawals never take the region below it and lost capacity is
     * re-granted.  Regions start at params().guardian.floorMolecules
     * when the guardian is enabled; this overrides one region.
     */
    void setRegionFloor(Asid asid, u32 floorMolecules);

    /** @{ Energy/probe reporting (Table 4 inputs). */
    /** All molecules of a tile enabled — the paper's worst case. */
    double worstCaseAccessEnergyNj() const;
    /** Measured mean energy per access so far. */
    double averageAccessEnergyNj() const;
    /** Measured mean molecules probed per access. */
    double averageProbesPerAccess() const;
    /** Measured mean region size (enabled molecules) over accesses. */
    double averageEnabledMolecules() const;
    /** @} */

    /** Lifetime hits of @p asid per currently-held molecule (Figure 6). */
    double hitPerMoleculeOf(Asid asid) const;

    /** Resize activity. */
    u64 resizeCycles() const { return resizeCycles_; }

    /** @{ Way-memoization telemetry (docs/perf.md): last-hit-molecule
     * predictions verified by a single tag probe (hits), predictions
     * that failed verification and fell back to the full schedule
     * (mispredicts), and per-region table rebuilds forced by the
     * generation stamps (invalidations).  Pure simulator-speed
     * accounting — modeled probe/energy/latency counters never see the
     * shortcut. */
    u64 wayMemoHits() const { return wayMemoHits_; }
    u64 wayMemoMispredicts() const { return wayMemoMispredicts_; }
    u64 wayMemoInvalidations() const { return wayMemoInvalidations_; }
    /** @} */

    // Fault injection & graceful degradation (docs/fault_model.md).  The
    // mutators live behind SimAccess (core/sim_access.hpp): they assume a
    // single-threaded quiescent cache, so service-path code must not be
    // able to reach them.  Read-only reporting stays public.
    const FaultStats &faultStats() const { return faultStats_; }

    /** Molecules permanently out of service across the whole cache. */
    u32 decommissionedMolecules() const;

    /** All registered ASIDs, ascending (introspection / audits). */
    std::vector<Asid> registeredAsids() const;

    /** Valid lines currently resident across @p asid's region — what a
     * forced migration or decommission would invalidate (service-level
     * remap-churn accounting, docs/fault_model.md). */
    u32 residentLines(Asid asid) const;

    /** Signature of the debug audit hook SimAccess can install. */
    using AuditHook = std::function<void(const MolecularCache &)>;

  private:
    // Simulator-only single-threaded mutators, reachable through the
    // SimAccess facade (core/sim_access.hpp) and nothing else.  Every
    // one of them either rewires the cache mid-run (fault injection,
    // audit hooks, shared bits) or tears a region down and rebuilds it
    // (migration) — correct under the trace-replay harness, undefined
    // under concurrent access from service worker threads.
    friend class SimAccess;

    /**
     * Move an application's entry point to another tile (the paper's
     * non-static processor-tile mapping, changed on a context switch).
     * Within the same cluster the region's molecules stay in place (they
     * become remote probes served via Ulmo and are re-acquired by the
     * new home tile through normal resizing).  Across clusters the
     * partition is rebuilt at the destination — regions are confined to
     * one tile cluster, Ulmo's search domain — so cached contents are
     * dropped (dirty lines written back).
     *
     * @param cluster       destination cluster
     * @param tileInCluster  destination tile, cluster-local index
     */
    void migrateApplication(Asid asid, ClusterId cluster, u32 tileInCluster);

    /** Configure a molecule's shared bit (it is probed by every request
     * entering its tile, regardless of ASID — paper figure 3). */
    void setSharedMolecule(MoleculeId id, bool shared);

    /** Install a deterministic fault schedule, driven off the access
     * tick; replaces any previous schedule. */
    void setFaultInjector(FaultInjector injector);

    /**
     * Permanently fence off @p id: resident lines are written back /
     * invalidated (with coherence-directory eviction notices), the
     * molecule leaves its region's replacement view and its tile's free
     * pool, and it can never be allocated again — the figure-3 ASID
     * comparator acts as the fence bit.  The owning region re-acquires
     * replacement capacity on its next resize epoch.
     * @return false if the molecule was already decommissioned.
     */
    bool decommissionMolecule(MoleculeId id);

    /** One detected hard fault on @p id; decommissions the molecule once
     * its failure counter reaches params().hardFaultThreshold. */
    void injectHardFault(MoleculeId id);

    /** Corrupt line @p line of @p id (modulo capacity); the parity check
     * catches it on the next probe of the slot and reads it as a miss. */
    void injectTransientFlip(MoleculeId id, u32 line);

    /** Decommission every molecule of @p tile at once. */
    void injectTileOutage(TileId tile);

    /** Decommission every molecule of every tile of @p cluster — the
     * whole-shard outage of a service chaos storm (a service shard is
     * exactly one tile cluster). */
    void injectClusterOutage(ClusterId cluster);

    /**
     * Debug audit hook, invoked every @p everyAccesses accesses with the
     * cache in a quiescent state (e.g. InvariantChecker::attach installs
     * a cross-layer consistency audit here).  0 disables.
     */
    void setAuditHook(Tick everyAccesses, AuditHook hook);

    // MoleculeBroker -------------------------------------------------------
    u32 grant(Region &region, u32 count) override;
    u32 withdraw(Region &region, u32 count) override;

    Region &regionFor(Asid asid);
    Tile &tileAt(TileId index) { return tiles_[index.value()]; }

    /** Tile array index hosting @p id — a shift when moleculesPerTile
     * is a power of two (the common geometries), a divide otherwise. */
    u32
    tileIndexOf(MoleculeId id) const
    {
        return molShift_ >= 0
                   ? id.value() >> static_cast<u32>(molShift_)
                   : id.value() / params_.moleculesPerTile;
    }

    /** Probe @p mols on @p tile; @return the hit molecule or nullptr. */
    Molecule *probeTile(TileId tile, const std::vector<MoleculeId> &mols,
                        Addr addr);

    /** One way-memoization prediction: the last molecule that produced
     * a home-tile hit for a line address hashing to this slot.  The
     * stored tag bits filter hash collisions — a colliding line simply
     * has no prediction, it never evicts a live one through a wasted
     * verification probe.  The filter is 32-bit (not the full line
     * address) to keep the entry at 8 bytes: a false filter match is
     * caught by the verification probe like any mispredict, so only
     * the table's cache footprint is at stake, never correctness. */
    struct WayMemoEntry
    {
        u32 tagBits = 0;
        MoleculeId mol = kInvalidMolecule;
    };

    /**
     * The way-memoization slot @p addr hashes to in @p region's table.
     * Revalidates the per-region table against the same stamps as
     * Region::probeSchedule and rebuilds it on mismatch (sized to the
     * region's capacity in lines, rounded up to a power of two).
     */
    WayMemoEntry *wayMemoSlot(Region &region, Addr addr);

    /** Drop @p asid's memo table unconditionally (ASID recycling: a new
     * region's generation counter restarts and could collide with the
     * stale stamp). */
    void resetWayMemo(Asid asid);

    /** access() minus the tick/fault prologue — the shared tail the
     * batch plane's slow records reuse so scalar and batched processing
     * stay one implementation. */
    AccessResult accessTicked(const MemAccess &access);

    /**
     * One per-ASID lane of the batch access plane: everything the scalar
     * path re-derives per access, hoisted once and re-validated by the
     * same (region generation, shared generation) stamps as the probe
     * schedules, plus the deferred accumulators for the uniform
     * home-tile-hit records.  Pointers target stable storage (region map
     * nodes, tile SoA arrays, way-memo slot buffers); the stamp check
     * gates every dereference, so a stale lane is refreshed before any
     * pointer is used.
     */
    struct BatchLane
    {
        Region *region = nullptr;
        u64 gen = ~0ull;
        u64 sharedGen = ~0ull;
        /** Way-memo table view (null while the region is empty). */
        WayMemoEntry *slots = nullptr;
        u64 mask = 0;
        /** Home-tile SoA view + per-probe slot offsets of the schedule. */
        Tile *home = nullptr;
        const Addr *tags = nullptr;
        const u8 *flags = nullptr;
        const ProbeSchedule *plan = nullptr;
        std::vector<u32> slotBase;
        std::vector<Molecule *> homeMols;
        u32 homeProbes = 0;
        double homeEnergy = 0.0;
        u32 regionSize = 0;
        /** PerAppAdaptive resize countdown (accesses until due). */
        i64 accUntilResize = 0;
        /** @{ Deferred accumulators: fast home-hit records only. */
        u64 pendHits = 0;
        u64 pendWrites = 0;
        u64 pendMemoHits = 0;
        u64 pendMispredicts = 0;
        /** @} */
    };

    /** Process records from @p i in the fast plane; returns the index
     * after the last record consumed (early when a fault event disabled
     * way-memoization mid-run).  Leaves all deferred state flushed. */
    size_t batchFastRun(const MemAccess *in, AccessResult *out, size_t i,
                        size_t n);
    /** Rebuild @p lane against @p region's current membership. */
    void refreshBatchLane(BatchLane &lane, Region &region, Addr addr);
    /** Flush one lane's / every lane's deferred accumulators. */
    void flushBatchLane(BatchLane &lane);
    void flushBatchLanes();

    /** Fill the miss (line-multiple aware) into the region.
     * @return dynamic energy of the line fills (nJ). */
    double handleMiss(Region &region, const MemAccess &access);

    /** LRU-Direct victim: the region's least-recently-touched slot at
     * the address's molecule index (invalid slots win outright). */
    MoleculeId chooseLruDirectMolecule(const Region &region, Addr addr);

    /** Apply directory-mandated invalidations for @p lineAddr, routing
     * one message per victim cluster from @p origin over the NoC. */
    void applyInvalidations(const std::vector<ClusterId> &clusters,
                            LineAddr lineAddr, Asid except,
                            ClusterId origin);

    /** Run resize scheduling after an access by @p region. */
    void maybeResize(Region &region);
    void runGlobalResizeCycle();

    /** Apply every scheduled fault due at the current tick. */
    void applyDueFaults();

    double tileAccessEnergyNj(u32 probes) const;

    MolecularCacheParams params_;
    std::vector<Tile> tiles_;
    CoherenceDirectory directory_;
    NocModel noc_;
    std::vector<Ulmo> ulmos_;
    // Ordered region authority: stable nodes (regionIndex_ points into
    // them) and ascending-ASID iteration keep resize/invalidation order
    // deterministic.  Never walked on the per-access path — regionFor
    // goes through the dense index.  molcache-lint: allow-map
    std::map<Asid, Region> regions_;
    // Dense ASID -> Region cache for the access hot path.
    std::vector<Region *> regionIndex_;
    Resizer resizer_;
    // QoS guardian (docs/algorithm1.md "Guardrails"); allocated only
    // when params_.guardian.enabled so the disabled control plane stays
    // byte-identical.
    std::unique_ptr<QosGuardian> guardian_;
    std::unique_ptr<RandomSource> rng_;

    CacheStats stats_;
    Tick tick_ = 0;

    // Resize scheduling state.
    u64 globalResizePeriod_;
    Tick nextGlobalResize_;
    u64 resizeCycles_ = 0;
    Counter intervalAccesses_;
    Counter intervalMisses_;

    // Per-cluster app counter for default tile placement.
    std::vector<u32> appsPerCluster_;

    // Precomputed energy constants (nJ).
    double molProbeNj_ = 0.0;
    double molFillNj_ = 0.0;
    double tileFixedNj_ = 0.0;
    double ulmoHopNj_ = 0.0;
    double energyNj_ = 0.0;
    u64 probesTotal_ = 0;
    u64 enabledIntegral_ = 0;

    // Shared-bit molecules per tile (probed by every request entering
    // the tile), indexed densely by tile.  sharedGen_ invalidates the
    // probe-schedule memos that folded these lists in.
    std::vector<std::vector<MoleculeId>> sharedByTile_;
    u64 sharedGen_ = 0;

    // Way-memoization state (docs/perf.md).  One table per ASID,
    // parallel to regionIndex_.  Entries survive region membership
    // churn: a prediction is re-validated live (ASID gate + home tile +
    // the verification probe), so only a re-homing — or any generation
    // move in the row-restricted ablation, where a stale entry could
    // hit a molecule outside the address's row — drops the table.
    struct WayMemo
    {
        static constexpr u64 kNoStamp = ~0ull;
        u64 gen = kNoStamp;
        u64 sharedGen = kNoStamp;
        u64 mask = 0; ///< slots.size() - 1 (power-of-two table)
        TileId homeTile{};
        std::vector<WayMemoEntry> slots;
    };
    std::vector<WayMemo> wayMemo_;
    /** params_.wayMemoization, dropped for good by the first transient
     * flip: a poisoned slot must be discovered by the full in-order
     * walk (probeTile scrubs it), which a memo shortcut would skip. */
    bool wayMemoOn_ = false;
    u64 wayMemoHits_ = 0;
    u64 wayMemoMispredicts_ = 0;
    u64 wayMemoInvalidations_ = 0;
    /** @{ Memo-key geometry: lines per molecule, log2(lineSize) and
     * log2(lineSize * linesPerMolecule) (the molecule tag shift). */
    u32 linesPerMol_ = 0;
    u32 lineShift_ = 0;
    u32 tagShift_ = 0;
    /** @} */

    /** Batch-plane lanes, indexed by ASID value (parallel to
     * regionIndex_).  Persistent across accessBatch calls so steady
     * state never rebuilds them; all deferred counters are zero outside
     * a call. */
    std::vector<BatchLane> lanes_;
    // moleculesPerTile as a shift (-1 when not a power of two).
    i32 molShift_ = -1;

    // Fault injection & audit state.
    FaultInjector injector_;
    FaultStats faultStats_;
    u64 auditInterval_ = 0;
    AuditHook auditHook_;
};

} // namespace molcache

#endif // MOLCACHE_CORE_MOLECULAR_CACHE_HPP
