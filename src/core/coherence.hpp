/**
 * @file
 * Inter-cluster coherence directory.
 *
 * Paper section 3: "Ulmo handles tile-misses and the coherence traffic
 * between the tile clusters".  molcache models that traffic with a
 * duplicate-tag style directory shared by all Ulmos: each resident line
 * address maps to the set of clusters holding a copy and an MSI-ish
 * state.  Fills add holders; writes invalidate remote holders; evictions
 * remove them.  With the disjoint per-application address windows of the
 * paper's workloads no invalidations occur (the directory just tracks);
 * shared-address-space workloads (e.g. threads of one application pinned
 * to different clusters) exercise the invalidate path — see
 * tests/core/coherence_test.cpp and examples.
 */

#ifndef MOLCACHE_CORE_COHERENCE_HPP
#define MOLCACHE_CORE_COHERENCE_HPP

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace molcache {

/** Directory statistics. */
struct CoherenceStats
{
    u64 fills = 0;
    u64 writes = 0;
    u64 evictions = 0;
    u64 invalidationsSent = 0;
    u64 downgrades = 0;
};

class CoherenceDirectory
{
  public:
    /** @param numClusters at most 32 clusters (holder bitmask width). */
    explicit CoherenceDirectory(u32 numClusters);

    /**
     * A line was filled into @p cluster.
     * @param exclusive true when the fill is for a write (M state)
     * @return clusters whose copies must be invalidated (empty for reads;
     *         reads of a remotely-modified line downgrade instead)
     */
    std::vector<ClusterId> noteFill(LineAddr lineAddr, ClusterId cluster,
                                    bool exclusive);

    /**
     * A write hit in @p cluster.
     * @return clusters whose copies must be invalidated
     */
    std::vector<ClusterId> noteWrite(LineAddr lineAddr, ClusterId cluster);

    /** @p cluster no longer holds the line. */
    void noteEviction(LineAddr lineAddr, ClusterId cluster);

    /** True if @p cluster currently holds @p lineAddr. */
    bool isHeld(LineAddr lineAddr, ClusterId cluster) const;

    /** Number of clusters holding @p lineAddr. */
    u32 holderCount(LineAddr lineAddr) const;

    /** True if some cluster holds the line modified. */
    bool isModified(LineAddr lineAddr) const;

    const CoherenceStats &stats() const { return stats_; }

    /** Tracked line count (size of the directory). */
    size_t entries() const { return map_.size(); }

  private:
    struct Entry
    {
        u32 holders = 0; // bitmask over clusters
        bool modified = false;
        ClusterId owner{}; // valid when modified
    };

    std::vector<ClusterId> othersOf(const Entry &e, ClusterId cluster) const;

    u32 numClusters_;
    // Per-line directory state: genuinely sparse (keyed by every line
    // address ever cached) and only touched on writes, fills and
    // evictions — never on the hit path.  molcache-lint: allow-map
    std::unordered_map<LineAddr, Entry> map_;
    CoherenceStats stats_;
};

} // namespace molcache

#endif // MOLCACHE_CORE_COHERENCE_HPP
