/**
 * @file
 * Telemetry types of the QoS guardian (docs/algorithm1.md, "Guardrails").
 *
 * Kept separate from guardian.hpp so the sim layer (QosSummary /
 * SimResult / result_json) can carry per-region guardian telemetry
 * without pulling the control-plane implementation into every report
 * translation unit.
 */

#ifndef MOLCACHE_CORE_GUARDIAN_STATS_HPP
#define MOLCACHE_CORE_GUARDIAN_STATS_HPP

#include "util/types.hpp"

namespace molcache {

/** Admission-control verdict on a region's miss-rate goal. */
enum class FeasibilityVerdict
{
    /** Not enough evidence yet (cold region, or goal never stressed). */
    Unknown,
    /** The goal has been met, or the size<->miss model predicts it can. */
    Feasible,
    /** The goal cannot be met even at cluster capacity; the region runs
     * in degraded mode against an achievable substitute goal and the
     * shortfall is reported instead of silently churning grants. */
    Infeasible,
};

const char *feasibilityVerdictName(FeasibilityVerdict v);

/** Per-region guardian telemetry (one slice of GuardianSummary). */
struct GuardianAppTelemetry
{
    FeasibilityVerdict verdict = FeasibilityVerdict::Unknown;
    /** Degraded-mode miss-rate shortfall: achievable goal - configured
     * goal, zero while the verdict is not Infeasible. */
    double shortfall = 0.0;
    /** Sliding windows whose delta sign-flip count hit the bound. */
    u32 oscillationEvents = 0;
    /** Worst sign-flip count observed in any single window. */
    u32 maxSignFlips = 0;
    /** Withdrawals clipped (fully or partly) by the capacity floor. */
    u64 floorHits = 0;
    /** Molecules granted to lift the region back to its floor. */
    u64 floorRestoreGrants = 0;
    /** Decisions held by the dead-band, cooldown or pressure guards. */
    u64 holdEpochs = 0;
    /** Evaluated resize epochs the last above-goal excursion took to
     * come back under the goal (0 = never left / never returned). */
    u32 lastEpochsToGoal = 0;
    u32 maxEpochsToGoal = 0;
    /** Above goal for longer than the watchdog budget (and not excused
     * as Infeasible): the region is stuck and needs operator attention. */
    bool stuck = false;
    /** @{ Time spent outside the QoS goal: fixed nominal-period access
     * windows (and the references inside them) whose miss rate sat
     * above the goal's dead-band.  Fixed windows, not the adaptive
     * control intervals, so the counter is comparable across reactive
     * and predictive runs regardless of control-loop cadence. */
    u64 epochsOutsideGoal = 0;
    u64 accessesOutsideGoal = 0;
    /** @} */
    /** @{ Predictive mode (zero / initialTrust unless enabled). */
    u64 hintsSeen = 0;
    /** Hints whose pre-provisioning action was taken. */
    u64 hintsHonored = 0;
    /** Hints dropped (low confidence, quarantine, or guard-blocked). */
    u64 hintsRejected = 0;
    /** Molecules moved ahead of hinted shifts. */
    u64 preGrantMolecules = 0;
    u64 preWithdrawMolecules = 0;
    /** Hint-trust score in [0,1]. */
    double trust = 0.0;
    /** Trust fell below threshold: hints ignored, reactive-only. */
    bool quarantined = false;
    u32 quarantineEvents = 0;
    /** @} */
};

/** Whole-cache guardian aggregate carried by SimResult. */
struct GuardianSummary
{
    bool enabled = false;
    u64 oscillationEvents = 0;
    u64 floorHits = 0;
    u64 floorRestoreGrants = 0;
    u64 holdEpochs = 0;
    u32 infeasibleRegions = 0;
    u32 stuckRegions = 0;
    u32 maxEpochsToGoal = 0;
    double maxShortfall = 0.0;
    /** EWMA of the grant-shortfall fraction: 0 = every grant satisfied,
     * toward 1 = the pool is exhausted (starvation pressure). */
    double poolPressure = 0.0;
    /** @{ Time outside goal, summed over regions (see the per-app
     * telemetry for the definition). */
    u64 epochsOutsideGoal = 0;
    u64 accessesOutsideGoal = 0;
    /** @} */
    /** @{ Predictive mode aggregate (all zero while disabled). */
    bool predictiveEnabled = false;
    u64 hintsSeen = 0;
    u64 hintsHonored = 0;
    u64 hintsRejected = 0;
    u64 preGrantMolecules = 0;
    u64 preWithdrawMolecules = 0;
    u32 quarantinedRegions = 0;
    /** Lowest per-region trust (1.0 when no region was ever hinted). */
    double minTrust = 1.0;
    /** @} */
};

} // namespace molcache

#endif // MOLCACHE_CORE_GUARDIAN_STATS_HPP
