/**
 * @file
 * Telemetry types of the QoS guardian (docs/algorithm1.md, "Guardrails").
 *
 * Kept separate from guardian.hpp so the sim layer (QosSummary /
 * SimResult / result_json) can carry per-region guardian telemetry
 * without pulling the control-plane implementation into every report
 * translation unit.
 */

#ifndef MOLCACHE_CORE_GUARDIAN_STATS_HPP
#define MOLCACHE_CORE_GUARDIAN_STATS_HPP

#include "util/types.hpp"

namespace molcache {

/** Admission-control verdict on a region's miss-rate goal. */
enum class FeasibilityVerdict
{
    /** Not enough evidence yet (cold region, or goal never stressed). */
    Unknown,
    /** The goal has been met, or the size<->miss model predicts it can. */
    Feasible,
    /** The goal cannot be met even at cluster capacity; the region runs
     * in degraded mode against an achievable substitute goal and the
     * shortfall is reported instead of silently churning grants. */
    Infeasible,
};

const char *feasibilityVerdictName(FeasibilityVerdict v);

/** Per-region guardian telemetry (one slice of GuardianSummary). */
struct GuardianAppTelemetry
{
    FeasibilityVerdict verdict = FeasibilityVerdict::Unknown;
    /** Degraded-mode miss-rate shortfall: achievable goal - configured
     * goal, zero while the verdict is not Infeasible. */
    double shortfall = 0.0;
    /** Sliding windows whose delta sign-flip count hit the bound. */
    u32 oscillationEvents = 0;
    /** Worst sign-flip count observed in any single window. */
    u32 maxSignFlips = 0;
    /** Withdrawals clipped (fully or partly) by the capacity floor. */
    u64 floorHits = 0;
    /** Molecules granted to lift the region back to its floor. */
    u64 floorRestoreGrants = 0;
    /** Decisions held by the dead-band, cooldown or pressure guards. */
    u64 holdEpochs = 0;
    /** Evaluated resize epochs the last above-goal excursion took to
     * come back under the goal (0 = never left / never returned). */
    u32 lastEpochsToGoal = 0;
    u32 maxEpochsToGoal = 0;
    /** Above goal for longer than the watchdog budget (and not excused
     * as Infeasible): the region is stuck and needs operator attention. */
    bool stuck = false;
};

/** Whole-cache guardian aggregate carried by SimResult. */
struct GuardianSummary
{
    bool enabled = false;
    u64 oscillationEvents = 0;
    u64 floorHits = 0;
    u64 floorRestoreGrants = 0;
    u64 holdEpochs = 0;
    u32 infeasibleRegions = 0;
    u32 stuckRegions = 0;
    u32 maxEpochsToGoal = 0;
    double maxShortfall = 0.0;
    /** EWMA of the grant-shortfall fraction: 0 = every grant satisfied,
     * toward 1 = the pool is exhausted (starvation pressure). */
    double poolPressure = 0.0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_GUARDIAN_STATS_HPP
