/**
 * @file
 * Hierarchical lookup planning (paper section 3.3, "Replacement and
 * Lookup").
 *
 * Because a region's data may live in any of its molecules, a lookup must
 * in principle probe them all.  To bound the energy, the search is
 * hierarchical: the requestor's tile is probed first, and only on a tile
 * miss does Ulmo forward the request to the other tiles of the cluster
 * that contribute molecules to the region.  The LookupPlan captures that
 * order; MolecularCache executes it and charges energy per probe.
 *
 * planLookup() is the *reference* implementation: the per-access hot
 * path uses Region::probeSchedule() (the memoized equivalent, see
 * docs/perf.md), and tests/core/probe_schedule_test.cpp pins the two
 * against each other across membership churn.
 */

#ifndef MOLCACHE_CORE_PLACEMENT_HPP
#define MOLCACHE_CORE_PLACEMENT_HPP

#include <vector>

#include "core/region.hpp"

namespace molcache {

/** Ordered probe schedule for one access. */
struct LookupPlan
{
    /** Molecules to probe on the requestor's tile (may be empty). */
    TileProbes home;
    /** Remote tiles, in ascending tile order, probed via Ulmo. */
    std::vector<TileProbes> remote;

    u32
    totalProbes() const
    {
        u32 n = static_cast<u32>(home.molecules.size());
        for (const auto &t : remote)
            n += static_cast<u32>(t.molecules.size());
        return n;
    }
};

/**
 * Build the probe schedule for @p addr issued from @p requestorTile.
 *
 * @param region         the requestor's cache region
 * @param requestorTile  tile the request enters through
 * @param addr           the referenced address
 * @param rowRestricted  Randy-only ablation: probe only the molecules of
 *                       the address's replacement row
 */
LookupPlan planLookup(const Region &region, TileId requestorTile,
                      Addr addr, bool rowRestricted);

} // namespace molcache

#endif // MOLCACHE_CORE_PLACEMENT_HPP
