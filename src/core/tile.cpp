#include "core/tile.hpp"

#include "contract/contract.hpp"
#include "util/logging.hpp"

namespace molcache {

Tile::Tile(TileId id, ClusterId cluster, MoleculeId firstMolecule,
           u32 numMolecules, u32 linesPerMol, u32 lineSize)
    : id_(id), cluster_(cluster), first_(firstMolecule),
      linesPerMol_(linesPerMol),
      soaTags_(static_cast<size_t>(numMolecules) * linesPerMol, 0),
      soaTouched_(static_cast<size_t>(numMolecules) * linesPerMol, 0),
      soaFlags_(static_cast<size_t>(numMolecules) * linesPerMol, 0),
      soaAsid_(numMolecules, kInvalidAsid), free_(numMolecules)
{
    MOLCACHE_EXPECT(numMolecules > 0, "tile with no molecules");
    molecules_.reserve(numMolecules);
    for (u32 i = 0; i < numMolecules; ++i) {
        const size_t base = static_cast<size_t>(i) * linesPerMol;
        molecules_.emplace_back(firstMolecule + i, id, linesPerMol,
                                lineSize, soaTags_.data() + base,
                                soaTouched_.data() + base,
                                soaFlags_.data() + base);
    }
}

MoleculeId
Tile::allocate(Asid asid)
{
    if (free_ == 0)
        return kInvalidMolecule;
    for (Molecule &m : molecules_) {
        // Decommissioned molecules read as free (no ASID) but are fenced
        // out of the pool forever.
        if (m.isFree() && !m.decommissioned()) {
            m.assignTo(asid);
            soaAsid_[m.id() - first_] = asid;
            --free_;
            return m.id();
        }
    }
    panic("tile free count ", free_, " but no free molecule found");
}

u32
Tile::release(MoleculeId mol)
{
    Molecule &m = molecule(mol);
    MOLCACHE_EXPECT(!m.isFree(), "releasing an already-free molecule");
    MOLCACHE_EXPECT(!m.decommissioned(),
                    "releasing a decommissioned molecule");
    const u32 dirty = m.release();
    soaAsid_[mol - first_] = kInvalidAsid;
    ++free_;
    return dirty;
}

u32
Tile::decommission(MoleculeId mol)
{
    Molecule &m = molecule(mol);
    MOLCACHE_EXPECT(!m.decommissioned(), "double decommission");
    u32 dirty = 0;
    if (m.isFree()) {
        MOLCACHE_INVARIANT(free_ > 0, "tile free count underflow");
        --free_;
    } else {
        dirty = m.release();
    }
    m.markDecommissioned();
    soaAsid_[mol - first_] = kInvalidAsid;
    ++decommissioned_;
    return dirty;
}

} // namespace molcache
