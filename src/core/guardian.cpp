#include "core/guardian.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "contract/contract.hpp"
#include "core/resizer.hpp"

namespace molcache {

namespace {

/** Dead-band widening / period backoff caps: bounded so a once-noisy
 * region can always earn its way back to normal responsiveness. */
constexpr double kMaxBandScale = 8.0;
constexpr double kMaxPeriodScale = 16.0;

/** EWMA weights: the feasibility model favours history (miss-vs-size
 * responses are noisy interval to interval); the pressure signal
 * favours recency (pool exhaustion must register within a few grants). */
constexpr double kFeasibilityKeep = 0.7;
constexpr double kPressureKeep = 0.8;

bool
traceHints()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read exactly once under the
    // magic-static lock, before any worker threads exist; nothing setenvs.
    static const bool on = std::getenv("MOLCACHE_TRACE_HINTS") != nullptr;
    return on;
}

} // namespace

const char *
feasibilityVerdictName(FeasibilityVerdict v)
{
    switch (v) {
      case FeasibilityVerdict::Unknown:
        return "unknown";
      case FeasibilityVerdict::Feasible:
        return "feasible";
      case FeasibilityVerdict::Infeasible:
        return "infeasible";
    }
    return "unknown";
}

QosGuardian::QosGuardian(const MolecularCacheParams &params)
    : params_(params.guardian),
      // Degenerate geometries must not poison the feasibility division
      // or the fair-share quotient; one molecule is the honest minimum.
      clusterCapacity_(std::max<u32>(
          1, params.tilesPerCluster * params.moleculesPerTile)),
      moleculeSizeBytes_(std::max<u64>(1, params.moleculeSize.value())),
      nominalResizePeriod_(std::max<Tick>(1, params.resizePeriod)),
      minResizePeriod_(params.minResizePeriod),
      maxResizePeriod_(params.maxResizePeriod)
{
    MOLCACHE_EXPECT(params_.enabled,
                    "guardian constructed while disabled in params");
}

QosGuardian::RegState &
QosGuardian::stateFor(Asid asid)
{
    if (states_.size() <= asid.value())
        states_.resize(asid.value() + 1u);
    RegState &s = states_[asid.value()];
    if (!s.active) {
        s.active = true;
        // A zero-width observation window would make the sign-window
        // index and the countSignFlips modulus undefined on the very
        // first decision; clamp to one slot (detector effectively off).
        s.window.assign(std::max<u32>(1, params_.oscillationWindow), 0);
        s.trust = params_.predictive.initialTrust;
    }
    return s;
}

const QosGuardian::RegState *
QosGuardian::findState(Asid asid) const
{
    if (states_.size() <= asid.value() || !states_[asid.value()].active)
        return nullptr;
    return &states_[asid.value()];
}

u32
QosGuardian::activeRegions() const
{
    u32 n = 0;
    for (const RegState &s : states_)
        if (s.active)
            ++n;
    return n;
}

u32
QosGuardian::restoreFloor(Region &region, MoleculeBroker &broker)
{
    const u32 floor = region.capacityFloor;
    if (floor == 0 || region.size() >= floor)
        return 0;
    const u32 want = floor - region.size();
    const u32 got = broker.grant(region, want);
    RegState &s = stateFor(region.asid());
    s.floorRestoreGrants += got;
    noteGrant(region.asid(), want, got);
    return got;
}

bool
QosGuardian::gateHold(const Region &region, double missRate, double goal,
                      double *effectiveGoal)
{
    RegState &s = stateFor(region.asid());

    double eff = goal;
    if (s.verdict == FeasibilityVerdict::Infeasible)
        eff = std::max(goal, s.degradedGoal);
    *effectiveGoal = eff;

    // Oscillation backoff pause: no decisions at all for a few epochs.
    if (s.cooldownLeft > 0) {
        --s.cooldownLeft;
        ++s.holdEpochs;
        return true;
    }

    // Hysteresis dead-band, widened while the region has been noisy.
    const double band = params_.hysteresis * s.bandScale;
    const double lo = eff * (1.0 - band);
    const double hi = eff * (1.0 + band);
    if (missRate >= lo && missRate <= hi) {
        ++s.holdEpochs;
        return true;
    }

    // Flip-guard: an action may not be reversed within the cooldown.
    const bool wants_shrink = missRate < lo;
    const bool wants_grow = missRate > hi;
    if (wants_shrink && s.lastSign > 0 &&
        s.epochsSinceAction < params_.cooldownEpochs) {
        ++s.holdEpochs;
        return true;
    }
    if (wants_grow && s.lastSign < 0 &&
        s.epochsSinceAction < params_.cooldownEpochs) {
        ++s.holdEpochs;
        return true;
    }

    // Starvation guard: while the pool is under pressure, a region at
    // or past its fair share of the cluster must not inflate further.
    if (wants_grow && pressure_ > params_.pressureThreshold) {
        const u32 share = clusterCapacity_ / std::max<u32>(1,
                                                           activeRegions());
        if (region.size() >= share) {
            ++s.holdEpochs;
            return true;
        }
    }
    return false;
}

u32
QosGuardian::clampWithdraw(const Region &region, u32 count)
{
    const u32 floor = region.capacityFloor;
    if (floor == 0 || count == 0)
        return count;
    const u32 size = region.size();
    if (size <= floor) {
        ++stateFor(region.asid()).floorHits;
        return 0;
    }
    const u32 room = size - floor;
    if (count > room) {
        ++stateFor(region.asid()).floorHits;
        return room;
    }
    return count;
}

void
QosGuardian::noteGrant(Asid asid, u32 want, u32 got)
{
    (void)asid;
    if (want == 0)
        return;
    const double shortfall =
        static_cast<double>(want - std::min(want, got)) /
        static_cast<double>(want);
    pressure_ = kPressureKeep * pressure_ +
                (1.0 - kPressureKeep) * shortfall;
}

u32
QosGuardian::countSignFlips(const RegState &s) const
{
    // Flips between consecutive *actions* inside the window; held or
    // zero-delta epochs in between do not reset the direction.
    u32 flips = 0;
    i8 prev = 0;
    const u32 n = std::min<u32>(s.windowFill,
                                static_cast<u32>(s.window.size()));
    const u32 len = static_cast<u32>(s.window.size());
    for (u32 i = 0; i < n; ++i) {
        const u32 idx = (s.windowPos + len - n + i) % len;
        const i8 sign = s.window[idx];
        if (sign == 0)
            continue;
        if (prev != 0 && sign != prev)
            ++flips;
        prev = sign;
    }
    return flips;
}

void
QosGuardian::afterDecision(const Region &region, i32 delta, double missRate,
                           double goal)
{
    RegState &s = stateFor(region.asid());
    ++s.epochsSinceAction;

    // --- Stability: sliding sign window + oscillation backoff. --------
    const i8 sign = delta > 0 ? i8{1} : delta < 0 ? i8{-1} : i8{0};
    if (sign != 0) {
        s.lastSign = sign;
        s.epochsSinceAction = 0;
    }
    s.window[s.windowPos] = sign;
    s.windowPos = (s.windowPos + 1) % static_cast<u32>(s.window.size());
    if (s.windowFill < s.window.size())
        ++s.windowFill;

    const u32 flips = countSignFlips(s);
    s.maxSignFlips = std::max(s.maxSignFlips, flips);
    if (flips >= params_.maxSignFlips) {
        // The region is fighting the controller: widen the dead-band,
        // slow the control loop down and pause decisions outright; the
        // window restarts so one burst counts as one event.
        ++s.oscillationEvents;
        s.bandScale = std::min(s.bandScale * 2.0, kMaxBandScale);
        s.periodScale = std::min(s.periodScale * 2.0, kMaxPeriodScale);
        s.cooldownLeft = params_.cooldownEpochs;
        std::fill(s.window.begin(), s.window.end(), i8{0});
        s.windowFill = 0;
        s.calmEpochs = 0;
    } else if (s.bandScale > 1.0 || s.periodScale > 1.0) {
        // Earn responsiveness back: one quiet window halves the backoff.
        if (++s.calmEpochs >= params_.oscillationWindow) {
            s.bandScale = std::max(1.0, s.bandScale / 2.0);
            s.periodScale = std::max(1.0, s.periodScale / 2.0);
            s.calmEpochs = 0;
        }
    }

    // --- Admission control: linear miss-vs-size response model. -------
    // missRate ~= k / size => the best the region can do at cluster
    // capacity is k / clusterCapacity.  A goal below that is hopeless no
    // matter how many molecules Algorithm 1 churns through.
    const double hi = goal * (1.0 + params_.hysteresis);
    if (region.size() > 0) {
        const double k = missRate * static_cast<double>(region.size());
        s.kEwma = s.hasK ? kFeasibilityKeep * s.kEwma +
                               (1.0 - kFeasibilityKeep) * k
                         : k;
        s.hasK = true;
    }
    const double predicted =
        s.hasK ? s.kEwma / static_cast<double>(clusterCapacity_) : 0.0;
    if (missRate <= hi) {
        s.verdict = FeasibilityVerdict::Feasible;
        s.infeasibleStreak = 0;
        s.degradedGoal = 0.0;
        s.shortfall = 0.0;
    } else if (s.hasK && predicted > hi) {
        if (++s.infeasibleStreak >= params_.feasibilityEpochs) {
            s.verdict = FeasibilityVerdict::Infeasible;
            s.degradedGoal = std::min(1.0, std::max(goal, predicted));
            s.shortfall = s.degradedGoal - goal;
        }
    } else {
        s.infeasibleStreak = 0;
        if (s.verdict == FeasibilityVerdict::Infeasible) {
            // The response model says capacity can reach the goal again
            // (e.g. the working set shrank): leave degraded mode and let
            // the watchdog time the re-convergence.
            s.verdict = FeasibilityVerdict::Unknown;
            s.degradedGoal = 0.0;
            s.shortfall = 0.0;
        }
    }

    // --- Convergence watchdog (always against the configured goal). ---
    if (missRate > hi) {
        ++s.epochsAboveGoal;
    } else {
        if (s.epochsAboveGoal > 0) {
            s.lastEpochsToGoal = s.epochsAboveGoal;
            s.maxEpochsToGoal =
                std::max(s.maxEpochsToGoal, s.epochsAboveGoal);
        }
        s.epochsAboveGoal = 0;
    }

    // --- Predictive mode: accumulate post-shift evidence for the armed
    // hint.  Only intervals lying *entirely* past the promised shift
    // count (a lying hint matches the departing phase by construction,
    // so a straddling interval would acquit exactly the hints that
    // deserve to fail), and the verdict averages several of them so the
    // one-off refill transient of a phase entry — misses spike for an
    // interval no matter what was promised — cannot decide it alone. ---
    if (s.hintArmed &&
        region.accesses() >= s.hintDue + region.intervalAccesses()) {
        s.hintPostMisses +=
            missRate * static_cast<double>(region.intervalAccesses());
        s.hintPostAccesses += region.intervalAccesses();
        if (++s.hintPostIntervals >= kHintScoreIntervals)
            scoreHint(s,
                      s.hintPostMisses /
                          static_cast<double>(s.hintPostAccesses),
                      goal);
    }
    if (s.quarantined)
        ++s.quarantineEpochs;
}

void
QosGuardian::scoreHint(RegState &s, double missRate, double goal)
{
    s.hintArmed = false;
    const double hi = goal * (1.0 + params_.hysteresis);
    const double base = s.hintBaselineKnown ? s.hintMissBaseline : goal;
    bool truthful;
    if (s.hintDirection > 0) {
        // Promised growth: the misses must have materialized — a clear
        // rise over the pre-shift baseline, or still above the goal
        // band (the capacity was genuinely needed).
        truthful = missRate >= base + kHintMissMargin || missRate > hi;
    } else if (s.hintDirection < 0) {
        // Promised shrink: the load must actually have eased.
        truthful = missRate <= base - kHintMissMargin || missRate <= hi;
    } else {
        // Promised steady state: staying inside the band is honest.
        truthful = missRate <= hi;
    }
    const double w = params_.predictive.trustWeight *
                     std::clamp(s.hintConfidence, 0.0, 1.0);
    s.trust = (1.0 - w) * s.trust + w * (truthful ? 1.0 : 0.0);
    if (traceHints())
        std::fprintf(stderr,
                     "hint score dir=%d miss=%.3f base=%.3f hi=%.3f "
                     "truthful=%d trust=%.3f\n",
                     static_cast<int>(s.hintDirection), missRate, base,
                     hi, truthful ? 1 : 0, s.trust);
    if (!s.quarantined && s.trust < params_.predictive.quarantineBelow) {
        s.quarantined = true;
        ++s.quarantineEvents;
        s.quarantineEpochs = 0;
    } else if (s.quarantined &&
               s.trust > params_.predictive.restoreAbove &&
               s.quarantineEpochs >= params_.predictive.probationEpochs) {
        // Probation served and trust re-earned (hysteresis gap above
        // the quarantine threshold): back to predictive service.
        s.quarantined = false;
    }
}

void
QosGuardian::rollQosWindow(RegState &s, double goal)
{
    // The base hysteresis band, never the oscillation-widened one: the
    // metric must not soften because the control loop got noisy.
    const double hi = goal * (1.0 + params_.hysteresis);
    const double missRate =
        static_cast<double>(s.qosWindowMisses) /
        static_cast<double>(s.qosWindowAccesses);
    if (missRate > hi) {
        ++s.epochsOutsideGoal;
        s.accessesOutsideGoal += s.qosWindowAccesses;
    }
    s.qosWindowAccesses = 0;
    s.qosWindowMisses = 0;
}

void
QosGuardian::finalizeHint(RegState &s, double goal)
{
    if (!s.hintArmed)
        return;
    if (s.hintPostAccesses > 0) {
        // Scored on whatever post-shift evidence is in: the phases are
        // moving faster than the full accumulation window, and waiting
        // for a window that will never fill would let every hint —
        // honest or lying — expire unjudged.
        scoreHint(s,
                  s.hintPostMisses /
                      static_cast<double>(s.hintPostAccesses),
                  goal);
    } else {
        // Not one clean post-shift interval was observed (the hint
        // arrived and was replaced within a single control period):
        // unjudgeable, counted rejected.
        s.hintArmed = false;
        ++s.hintsRejected;
    }
}

bool
QosGuardian::acceptHint(const PhaseHint &hint, const Region &region)
{
    if (!params_.predictive.enabled)
        return false;
    RegState &s = stateFor(region.asid());
    ++s.hintsSeen;
    finalizeHint(s, region.resizeGoal);
    const double conf = std::clamp(hint.confidence, 0.0, 1.0);
    if (conf < params_.predictive.minConfidence) {
        ++s.hintsRejected;
        return false;
    }
    const u64 mols =
        (hint.predictedFootprintBytes + moleculeSizeBytes_ - 1) /
        moleculeSizeBytes_;
    const u32 target =
        static_cast<u32>(std::clamp<u64>(mols, 1, clusterCapacity_));
    const u32 size = region.size();
    s.hintArmed = true;
    s.hintActed = false;
    s.hintDue = region.accesses() + hint.leadAccesses;
    s.hintTargetMolecules = target;
    s.hintConfidence = conf;
    s.hintDirection = target > size + kHintSizeSlack    ? i8{1}
                      : target + kHintSizeSlack < size  ? i8{-1}
                                                        : i8{0};
    s.hintBaselineKnown = region.lastMissRate <= 1.0;
    s.hintMissBaseline = s.hintBaselineKnown ? region.lastMissRate : 0.0;
    s.hintPostMisses = 0.0;
    s.hintPostAccesses = 0;
    s.hintPostIntervals = 0;
    if (traceHints())
        std::fprintf(stderr,
                     "hint accept asid=%u now=%llu due=%llu target=%u "
                     "size=%u dir=%d base=%.3f conf=%.2f quar=%d\n",
                     region.asid().value(),
                     static_cast<unsigned long long>(region.accesses()),
                     static_cast<unsigned long long>(s.hintDue), target,
                     size, static_cast<int>(s.hintDirection),
                     s.hintMissBaseline, conf, s.quarantined ? 1 : 0);
    if (s.quarantined || s.trust < params_.predictive.actAbove) {
        // Quarantined and not-yet-proven tenants keep getting scored
        // (the probation / trust-earning path) but their hints buy no
        // capacity movement — and no schedule movement either: pulling
        // the wakeup forward for a hint that cannot act would let an
        // untrusted tenant perturb the reactive cadence for free.
        ++s.hintsRejected;
        return false;
    }
    return true;
}

i32
QosGuardian::predictiveStep(Region &region, MoleculeBroker &broker)
{
    if (!params_.predictive.enabled)
        return 0;
    RegState &s = stateFor(region.asid());
    if (!s.hintArmed || s.hintActed || s.quarantined ||
        s.trust < params_.predictive.actAbove)
        return 0;
    // Oscillation pause: a thrashing control loop does not get to pile
    // predictive actions on top of the backoff.
    if (s.cooldownLeft > 0)
        return 0;
    const u64 now = region.accesses();
    const Tick period = region.resizePeriod > 0 ? region.resizePeriod
                                                : nominalResizePeriod_;
    const u32 size = region.size();
    const u32 target = s.hintTargetMolecules;
    const bool grows = target > size;

    // Timing is asymmetric.  A pre-grant lands on the last wakeup before
    // the shift so the capacity is there when the new phase arrives; the
    // look-ahead is bounded by the nominal period so a backed-off
    // control loop cannot pull it absurdly early.  A pre-withdraw waits
    // for the shift itself — the departing phase is still using those
    // molecules, and taking them early converts warm hits into misses.
    if (grows) {
        if (now + std::min(period, nominalResizePeriod_) < s.hintDue)
            return 0; // too early: another wakeup comes before the shift
        if (now > s.hintDue + period) {
            // Expired unacted (a long cooldown, or the hint arrived
            // late): reactive control has taken over; the hint stays
            // armed for scoring only.
            s.hintActed = true;
            ++s.hintsRejected;
            return 0;
        }
    } else if (now < s.hintDue) {
        return 0; // shrink waits for the promised shift to happen
    }

    s.hintActed = true;
    i32 delta = 0;
    if (grows) {
        u32 want = std::min(target - size,
                            params_.predictive.maxActionMolecules);
        // Fair-share guard, mirroring gateHold's starvation clause: a
        // pressured pool never pre-funds a region past its share.
        if (pressure_ > params_.pressureThreshold) {
            const u32 share =
                clusterCapacity_ / std::max<u32>(1, activeRegions());
            if (size >= share) {
                ++s.hintsRejected;
                return 0;
            }
            want = std::min(want, share - size);
        }
        const u32 got = broker.grant(region, want);
        s.preGrantMolecules += got;
        delta = static_cast<i32>(got);
    } else if (target < size && pressure_ > params_.pressureThreshold) {
        // Pre-withdraw frees capacity only when someone is actually
        // starving for it; with an uncontended pool the molecules stay
        // where they are (warm) and reactive control reclaims them at
        // its own pace.
        const u32 want = std::min(size - target,
                                  params_.predictive.maxActionMolecules);
        const u32 got = broker.withdraw(region, want);
        s.preWithdrawMolecules += got;
        delta = -static_cast<i32>(got);
    }
    ++s.hintsHonored;
    if (traceHints())
        std::fprintf(stderr,
                     "hint act asid=%u now=%llu due=%llu target=%u "
                     "size=%u delta=%d pressure=%.2f\n",
                     region.asid().value(),
                     static_cast<unsigned long long>(now),
                     static_cast<unsigned long long>(s.hintDue), target,
                     size, delta, pressure_);
    if (delta != 0) {
        // A predictive action is an action for the reactive flip-guard
        // (it must not be reversed within the cooldown) — but it never
        // enters the oscillation sign window: an honest phase-alternating
        // tenant is moving *with* its phases, not fighting the
        // controller, and must not be punished with a backoff for it.
        s.lastSign = delta > 0 ? i8{1} : i8{-1};
        s.epochsSinceAction = 0;
    }
    return delta;
}

Tick
QosGuardian::scaledPeriod(Asid asid, Tick period) const
{
    const RegState *s = findState(asid);
    if (s == nullptr || s->periodScale <= 1.0)
        return period;
    const double scaled = static_cast<double>(period) * s->periodScale;
    const double capped =
        std::min(scaled, static_cast<double>(maxResizePeriod_));
    return std::clamp(static_cast<Tick>(capped), minResizePeriod_,
                      maxResizePeriod_);
}

GuardianAppTelemetry
QosGuardian::telemetry(Asid asid) const
{
    GuardianAppTelemetry out;
    const RegState *s = findState(asid);
    if (s == nullptr)
        return out;
    out.verdict = s->verdict;
    out.shortfall = s->shortfall;
    out.oscillationEvents = s->oscillationEvents;
    out.maxSignFlips = s->maxSignFlips;
    out.floorHits = s->floorHits;
    out.floorRestoreGrants = s->floorRestoreGrants;
    out.holdEpochs = s->holdEpochs;
    out.lastEpochsToGoal = s->lastEpochsToGoal;
    out.maxEpochsToGoal = s->maxEpochsToGoal;
    out.stuck = s->epochsAboveGoal >= params_.watchdogEpochs &&
                s->verdict != FeasibilityVerdict::Infeasible;
    out.epochsOutsideGoal = s->epochsOutsideGoal;
    out.accessesOutsideGoal = s->accessesOutsideGoal;
    out.hintsSeen = s->hintsSeen;
    out.hintsHonored = s->hintsHonored;
    out.hintsRejected = s->hintsRejected;
    out.preGrantMolecules = s->preGrantMolecules;
    out.preWithdrawMolecules = s->preWithdrawMolecules;
    out.trust = s->trust;
    out.quarantined = s->quarantined;
    out.quarantineEvents = s->quarantineEvents;
    return out;
}

GuardianSummary
QosGuardian::summary() const
{
    GuardianSummary out;
    out.enabled = true;
    out.predictiveEnabled = params_.predictive.enabled;
    out.poolPressure = pressure_;
    for (u32 i = 0; i < states_.size(); ++i) {
        const RegState &s = states_[i];
        if (!s.active)
            continue;
        const GuardianAppTelemetry t = telemetry(Asid{static_cast<u16>(i)});
        out.oscillationEvents += t.oscillationEvents;
        out.floorHits += t.floorHits;
        out.floorRestoreGrants += t.floorRestoreGrants;
        out.holdEpochs += t.holdEpochs;
        if (t.verdict == FeasibilityVerdict::Infeasible)
            ++out.infeasibleRegions;
        if (t.stuck)
            ++out.stuckRegions;
        out.maxEpochsToGoal = std::max(
            out.maxEpochsToGoal, std::max(t.maxEpochsToGoal,
                                          s.epochsAboveGoal));
        out.maxShortfall = std::max(out.maxShortfall, t.shortfall);
        out.epochsOutsideGoal += t.epochsOutsideGoal;
        out.accessesOutsideGoal += t.accessesOutsideGoal;
        out.hintsSeen += t.hintsSeen;
        out.hintsHonored += t.hintsHonored;
        out.hintsRejected += t.hintsRejected;
        out.preGrantMolecules += t.preGrantMolecules;
        out.preWithdrawMolecules += t.preWithdrawMolecules;
        if (t.quarantined)
            ++out.quarantinedRegions;
        if (t.hintsSeen > 0)
            out.minTrust = std::min(out.minTrust, t.trust);
    }
    return out;
}

} // namespace molcache
