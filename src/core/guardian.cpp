#include "core/guardian.hpp"

#include <algorithm>
#include <cmath>

#include "contract/contract.hpp"
#include "core/resizer.hpp"

namespace molcache {

namespace {

/** Dead-band widening / period backoff caps: bounded so a once-noisy
 * region can always earn its way back to normal responsiveness. */
constexpr double kMaxBandScale = 8.0;
constexpr double kMaxPeriodScale = 16.0;

/** EWMA weights: the feasibility model favours history (miss-vs-size
 * responses are noisy interval to interval); the pressure signal
 * favours recency (pool exhaustion must register within a few grants). */
constexpr double kFeasibilityKeep = 0.7;
constexpr double kPressureKeep = 0.8;

} // namespace

const char *
feasibilityVerdictName(FeasibilityVerdict v)
{
    switch (v) {
      case FeasibilityVerdict::Unknown:
        return "unknown";
      case FeasibilityVerdict::Feasible:
        return "feasible";
      case FeasibilityVerdict::Infeasible:
        return "infeasible";
    }
    return "unknown";
}

QosGuardian::QosGuardian(const MolecularCacheParams &params)
    : params_(params.guardian),
      clusterCapacity_(params.tilesPerCluster * params.moleculesPerTile),
      minResizePeriod_(params.minResizePeriod),
      maxResizePeriod_(params.maxResizePeriod)
{
    MOLCACHE_EXPECT(params_.enabled,
                    "guardian constructed while disabled in params");
}

QosGuardian::RegState &
QosGuardian::stateFor(Asid asid)
{
    if (states_.size() <= asid.value())
        states_.resize(asid.value() + 1u);
    RegState &s = states_[asid.value()];
    if (!s.active) {
        s.active = true;
        s.window.assign(params_.oscillationWindow, 0);
    }
    return s;
}

const QosGuardian::RegState *
QosGuardian::findState(Asid asid) const
{
    if (states_.size() <= asid.value() || !states_[asid.value()].active)
        return nullptr;
    return &states_[asid.value()];
}

u32
QosGuardian::activeRegions() const
{
    u32 n = 0;
    for (const RegState &s : states_)
        if (s.active)
            ++n;
    return n;
}

u32
QosGuardian::restoreFloor(Region &region, MoleculeBroker &broker)
{
    const u32 floor = region.capacityFloor;
    if (floor == 0 || region.size() >= floor)
        return 0;
    const u32 want = floor - region.size();
    const u32 got = broker.grant(region, want);
    RegState &s = stateFor(region.asid());
    s.floorRestoreGrants += got;
    noteGrant(region.asid(), want, got);
    return got;
}

bool
QosGuardian::gateHold(const Region &region, double missRate, double goal,
                      double *effectiveGoal)
{
    RegState &s = stateFor(region.asid());

    double eff = goal;
    if (s.verdict == FeasibilityVerdict::Infeasible)
        eff = std::max(goal, s.degradedGoal);
    *effectiveGoal = eff;

    // Oscillation backoff pause: no decisions at all for a few epochs.
    if (s.cooldownLeft > 0) {
        --s.cooldownLeft;
        ++s.holdEpochs;
        return true;
    }

    // Hysteresis dead-band, widened while the region has been noisy.
    const double band = params_.hysteresis * s.bandScale;
    const double lo = eff * (1.0 - band);
    const double hi = eff * (1.0 + band);
    if (missRate >= lo && missRate <= hi) {
        ++s.holdEpochs;
        return true;
    }

    // Flip-guard: an action may not be reversed within the cooldown.
    const bool wants_shrink = missRate < lo;
    const bool wants_grow = missRate > hi;
    if (wants_shrink && s.lastSign > 0 &&
        s.epochsSinceAction < params_.cooldownEpochs) {
        ++s.holdEpochs;
        return true;
    }
    if (wants_grow && s.lastSign < 0 &&
        s.epochsSinceAction < params_.cooldownEpochs) {
        ++s.holdEpochs;
        return true;
    }

    // Starvation guard: while the pool is under pressure, a region at
    // or past its fair share of the cluster must not inflate further.
    if (wants_grow && pressure_ > params_.pressureThreshold) {
        const u32 share = clusterCapacity_ / std::max<u32>(1,
                                                           activeRegions());
        if (region.size() >= share) {
            ++s.holdEpochs;
            return true;
        }
    }
    return false;
}

u32
QosGuardian::clampWithdraw(const Region &region, u32 count)
{
    const u32 floor = region.capacityFloor;
    if (floor == 0 || count == 0)
        return count;
    const u32 size = region.size();
    if (size <= floor) {
        ++stateFor(region.asid()).floorHits;
        return 0;
    }
    const u32 room = size - floor;
    if (count > room) {
        ++stateFor(region.asid()).floorHits;
        return room;
    }
    return count;
}

void
QosGuardian::noteGrant(Asid asid, u32 want, u32 got)
{
    (void)asid;
    if (want == 0)
        return;
    const double shortfall =
        static_cast<double>(want - std::min(want, got)) /
        static_cast<double>(want);
    pressure_ = kPressureKeep * pressure_ +
                (1.0 - kPressureKeep) * shortfall;
}

u32
QosGuardian::countSignFlips(const RegState &s) const
{
    // Flips between consecutive *actions* inside the window; held or
    // zero-delta epochs in between do not reset the direction.
    u32 flips = 0;
    i8 prev = 0;
    const u32 n = std::min<u32>(s.windowFill,
                                static_cast<u32>(s.window.size()));
    const u32 len = static_cast<u32>(s.window.size());
    for (u32 i = 0; i < n; ++i) {
        const u32 idx = (s.windowPos + len - n + i) % len;
        const i8 sign = s.window[idx];
        if (sign == 0)
            continue;
        if (prev != 0 && sign != prev)
            ++flips;
        prev = sign;
    }
    return flips;
}

void
QosGuardian::afterDecision(const Region &region, i32 delta, double missRate,
                           double goal)
{
    RegState &s = stateFor(region.asid());
    ++s.epochsSinceAction;

    // --- Stability: sliding sign window + oscillation backoff. --------
    const i8 sign = delta > 0 ? i8{1} : delta < 0 ? i8{-1} : i8{0};
    if (sign != 0) {
        s.lastSign = sign;
        s.epochsSinceAction = 0;
    }
    s.window[s.windowPos] = sign;
    s.windowPos = (s.windowPos + 1) % static_cast<u32>(s.window.size());
    if (s.windowFill < s.window.size())
        ++s.windowFill;

    const u32 flips = countSignFlips(s);
    s.maxSignFlips = std::max(s.maxSignFlips, flips);
    if (flips >= params_.maxSignFlips) {
        // The region is fighting the controller: widen the dead-band,
        // slow the control loop down and pause decisions outright; the
        // window restarts so one burst counts as one event.
        ++s.oscillationEvents;
        s.bandScale = std::min(s.bandScale * 2.0, kMaxBandScale);
        s.periodScale = std::min(s.periodScale * 2.0, kMaxPeriodScale);
        s.cooldownLeft = params_.cooldownEpochs;
        std::fill(s.window.begin(), s.window.end(), i8{0});
        s.windowFill = 0;
        s.calmEpochs = 0;
    } else if (s.bandScale > 1.0 || s.periodScale > 1.0) {
        // Earn responsiveness back: one quiet window halves the backoff.
        if (++s.calmEpochs >= params_.oscillationWindow) {
            s.bandScale = std::max(1.0, s.bandScale / 2.0);
            s.periodScale = std::max(1.0, s.periodScale / 2.0);
            s.calmEpochs = 0;
        }
    }

    // --- Admission control: linear miss-vs-size response model. -------
    // missRate ~= k / size => the best the region can do at cluster
    // capacity is k / clusterCapacity.  A goal below that is hopeless no
    // matter how many molecules Algorithm 1 churns through.
    const double hi = goal * (1.0 + params_.hysteresis);
    if (region.size() > 0) {
        const double k = missRate * static_cast<double>(region.size());
        s.kEwma = s.hasK ? kFeasibilityKeep * s.kEwma +
                               (1.0 - kFeasibilityKeep) * k
                         : k;
        s.hasK = true;
    }
    const double predicted =
        s.hasK ? s.kEwma / static_cast<double>(clusterCapacity_) : 0.0;
    if (missRate <= hi) {
        s.verdict = FeasibilityVerdict::Feasible;
        s.infeasibleStreak = 0;
        s.degradedGoal = 0.0;
        s.shortfall = 0.0;
    } else if (s.hasK && predicted > hi) {
        if (++s.infeasibleStreak >= params_.feasibilityEpochs) {
            s.verdict = FeasibilityVerdict::Infeasible;
            s.degradedGoal = std::min(1.0, std::max(goal, predicted));
            s.shortfall = s.degradedGoal - goal;
        }
    } else {
        s.infeasibleStreak = 0;
        if (s.verdict == FeasibilityVerdict::Infeasible) {
            // The response model says capacity can reach the goal again
            // (e.g. the working set shrank): leave degraded mode and let
            // the watchdog time the re-convergence.
            s.verdict = FeasibilityVerdict::Unknown;
            s.degradedGoal = 0.0;
            s.shortfall = 0.0;
        }
    }

    // --- Convergence watchdog (always against the configured goal). ---
    if (missRate > hi) {
        ++s.epochsAboveGoal;
    } else {
        if (s.epochsAboveGoal > 0) {
            s.lastEpochsToGoal = s.epochsAboveGoal;
            s.maxEpochsToGoal =
                std::max(s.maxEpochsToGoal, s.epochsAboveGoal);
        }
        s.epochsAboveGoal = 0;
    }
}

Tick
QosGuardian::scaledPeriod(Asid asid, Tick period) const
{
    const RegState *s = findState(asid);
    if (s == nullptr || s->periodScale <= 1.0)
        return period;
    const double scaled = static_cast<double>(period) * s->periodScale;
    const double capped =
        std::min(scaled, static_cast<double>(maxResizePeriod_));
    return std::clamp(static_cast<Tick>(capped), minResizePeriod_,
                      maxResizePeriod_);
}

GuardianAppTelemetry
QosGuardian::telemetry(Asid asid) const
{
    GuardianAppTelemetry out;
    const RegState *s = findState(asid);
    if (s == nullptr)
        return out;
    out.verdict = s->verdict;
    out.shortfall = s->shortfall;
    out.oscillationEvents = s->oscillationEvents;
    out.maxSignFlips = s->maxSignFlips;
    out.floorHits = s->floorHits;
    out.floorRestoreGrants = s->floorRestoreGrants;
    out.holdEpochs = s->holdEpochs;
    out.lastEpochsToGoal = s->lastEpochsToGoal;
    out.maxEpochsToGoal = s->maxEpochsToGoal;
    out.stuck = s->epochsAboveGoal >= params_.watchdogEpochs &&
                s->verdict != FeasibilityVerdict::Infeasible;
    return out;
}

GuardianSummary
QosGuardian::summary() const
{
    GuardianSummary out;
    out.enabled = true;
    out.poolPressure = pressure_;
    for (u32 i = 0; i < states_.size(); ++i) {
        const RegState &s = states_[i];
        if (!s.active)
            continue;
        const GuardianAppTelemetry t = telemetry(Asid{static_cast<u16>(i)});
        out.oscillationEvents += t.oscillationEvents;
        out.floorHits += t.floorHits;
        out.floorRestoreGrants += t.floorRestoreGrants;
        out.holdEpochs += t.holdEpochs;
        if (t.verdict == FeasibilityVerdict::Infeasible)
            ++out.infeasibleRegions;
        if (t.stuck)
            ++out.stuckRegions;
        out.maxEpochsToGoal = std::max(
            out.maxEpochsToGoal, std::max(t.maxEpochsToGoal,
                                          s.epochsAboveGoal));
        out.maxShortfall = std::max(out.maxShortfall, t.shortfall);
    }
    return out;
}

} // namespace molcache
