#include "core/ulmo.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace molcache {

Ulmo::Ulmo(u32 cluster, std::vector<u32> tiles, CoherenceDirectory &directory)
    : cluster_(cluster), tiles_(std::move(tiles)), directory_(directory)
{
    MOLCACHE_ASSERT(!tiles_.empty(), "Ulmo with no tiles");
}

bool
Ulmo::managesTile(u32 tile) const
{
    return std::find(tiles_.begin(), tiles_.end(), tile) != tiles_.end();
}

} // namespace molcache
