#include "core/ulmo.hpp"

#include <algorithm>

#include "contract/contract.hpp"

namespace molcache {

Ulmo::Ulmo(ClusterId cluster, std::vector<TileId> tiles,
           CoherenceDirectory &directory)
    : cluster_(cluster), tiles_(std::move(tiles)), directory_(directory)
{
    MOLCACHE_EXPECT(!tiles_.empty(), "Ulmo with no tiles");
}

bool
Ulmo::managesTile(TileId tile) const
{
    return std::find(tiles_.begin(), tiles_.end(), tile) != tiles_.end();
}

} // namespace molcache
