#include "core/resizer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/guardian.hpp"
#include "util/logging.hpp"

namespace molcache {

namespace {

/**
 * Broker wrapper used when a QosGuardian is active: withdrawals are
 * clamped at the region's capacity floor and every grant outcome feeds
 * the pool-pressure signal.  Algorithm 1 itself stays unaware of it.
 */
class GuardedBroker final : public MoleculeBroker
{
  public:
    GuardedBroker(MoleculeBroker &inner, QosGuardian &guardian)
        : inner_(inner), guardian_(guardian)
    {
    }

    u32
    grant(Region &region, u32 count) override
    {
        const u32 got = inner_.grant(region, count);
        guardian_.noteGrant(region.asid(), count, got);
        return got;
    }

    u32
    withdraw(Region &region, u32 count) override
    {
        const u32 allowed = guardian_.clampWithdraw(region, count);
        if (allowed == 0)
            return 0;
        return inner_.withdraw(region, allowed);
    }

  private:
    MoleculeBroker &inner_;
    QosGuardian &guardian_;
};

} // namespace

Resizer::Resizer(const MolecularCacheParams &params)
    : params_(params)
{
}

RegionResize
Resizer::resizeRegion(Region &region, double goal,
                      MoleculeBroker &rawBroker, QosGuardian *guardian) const
{
    RegionResize out;

    // With the guardian active every grant/withdraw below goes through
    // the floor-clamping, pressure-tracking wrapper; without it the raw
    // broker is used directly and this function is byte-identical to
    // the unguarded build.
    std::optional<GuardedBroker> guarded;
    if (guardian != nullptr)
        guarded.emplace(rawBroker, *guardian);
    MoleculeBroker &broker =
        guarded ? static_cast<MoleculeBroker &>(*guarded) : rawBroker;

    // Fault recovery runs ahead of the regular Algorithm-1 decision (and
    // regardless of interval sample size): capacity lost to
    // decommissioned molecules is re-acquired from the cluster pool so a
    // faulted region converges back toward its goal instead of silently
    // violating QoS.  Retried every cycle while the grant falls short;
    // abandoned once the cluster has nothing left to give (graceful
    // degradation — the region then competes through Algorithm 1 alone).
    if (region.pendingReacquire > 0) {
        const u32 got = broker.grant(region, region.pendingReacquire);
        granted_ += got;
        recoveryGrants_ += got;
        out.delta += static_cast<i32>(got);
        region.pendingReacquire = got == 0 ? 0
                                           : region.pendingReacquire - got;
    }

    // Fairness guard: a region squeezed below its capacity floor (fault
    // decommissioning, or an exhausted pool at reacquire time) is topped
    // back up first.  Unlike pendingReacquire this is retried forever —
    // the floor is a standing guarantee, not a one-shot repair.
    if (guardian != nullptr) {
        const u32 got = guardian->restoreFloor(region, rawBroker);
        granted_ += got;
        out.delta += static_cast<i32>(got);
    }

    // Predictive pre-provisioning (guardian predictive mode): with a
    // trusted phase hint landing before the next wakeup, capacity moves
    // ahead of the shift instead of after it.  Runs through the guarded
    // broker so the floor clamp, pool pressure and fair-share bounds all
    // apply.  The delta is kept out of the sign fed to afterDecision:
    // honest phase hints alternate direction with the phases themselves,
    // and counting them as controller sign flips would trip the
    // oscillation backoff on exactly the tenants that behave.
    i32 predictive = 0;
    if (guardian != nullptr) {
        predictive = guardian->predictiveStep(region, broker);
        if (predictive > 0)
            granted_ += static_cast<u32>(predictive);
        else if (predictive < 0)
            withdrawn_ += static_cast<u32>(-predictive);
        out.delta += predictive;
    }

    if (region.intervalAccesses() == 0)
        return out; // idle partition: nothing to learn from
    if (region.intervalAccesses() < params_.minIntervalSample)
        return out; // too few samples: keep accumulating the interval

    ++runs_;
    out.evaluated = true;
    const double mr = region.intervalMissRate();
    out.missRate = mr;

    // Re-convergence bookkeeping: a region recovering from a fault burst
    // counts resize epochs until it is back within its miss-rate goal.
    if (region.recovering) {
        ++region.recoveryEpochs;
        if (mr <= goal) {
            region.recovering = false;
            region.lastRecoveryEpochs = region.recoveryEpochs;
        }
    }

    if (region.maxAllocation == 0)
        region.maxAllocation = params_.maxAllocationChunk;

    if (region.lastMissRate > 1.0) {
        // First evaluation: the interval is dominated by compulsory
        // (cold) misses, which say nothing about the partition's steady
        // state.  Observe only; decisions start next cycle.
        region.lastMissRate = mr;
        region.closeInterval();
        return out;
    }

    // Guardian pre-decision gate: hold the epoch (hysteresis dead-band,
    // cooldown, flip-guard, pool pressure) or steer Algorithm 1 toward
    // the degraded goal of an infeasible region.  A held epoch still
    // closes the interval and updates lastMissRate so the next decision
    // compares against fresh history.
    const double configured_goal = goal;
    if (guardian != nullptr) {
        double effective = goal;
        if (guardian->gateHold(region, mr, goal, &effective)) {
            guardian->afterDecision(region, out.delta - predictive, mr,
                                    configured_goal);
            region.lastMissRate = mr;
            region.closeInterval();
            return out;
        }
        goal = effective;
    }

    // Thrash detection is cold-miss compensated: compulsory fills into
    // empty slots (region still warming, or freshly grown) do not count.
    // A single noisy interval must not cap a partition, so the clause
    // fires only on the second consecutive thrashing interval.
    const double replacement_rate = region.intervalReplacementRate();
    if (replacement_rate > params_.thrashThreshold)
        ++region.thrashStreak;
    else
        region.thrashStreak = 0;

    if (region.thrashStreak >= 2) {
        // Thrashing: growth does not help a partition missing more than
        // half its accesses (working set far beyond reach), so the
        // partition is resized *to* the allocation cap (maxAllocation),
        // freeing molecules for applications that can convert them into
        // hits.  Below the cap it may still grow toward it — but not
        // while the pool is under pressure (the last grant fell short),
        // so a hopeless application cannot churn a scarce pool.
        if (region.size() > region.maxAllocation) {
            const u32 got =
                broker.withdraw(region, region.size() - region.maxAllocation);
            withdrawn_ += got;
            out.delta -= static_cast<i32>(got);
        } else if (region.size() < region.maxAllocation &&
                   !region.lastGrantShort) {
            const u32 want = region.maxAllocation - region.size();
            const u32 got = broker.grant(region, want);
            region.lastGrant = got;
            region.lastGrantShort = got < want;
            granted_ += got;
            out.delta += static_cast<i32>(got);
        }
    } else if (mr < goal) {
        // Not thrashing: the allocation cap recovers so a partition that
        // was once squeezed can grow normally again.
        region.maxAllocation = params_.maxAllocationChunk;
        // Overachieving: shrink, conservatively (sqrt of the linear
        // target keeps withdrawals slower than additions).
        const double t =
            std::sqrt(static_cast<double>(region.size()) * mr / goal);
        // The sqrt law yields zero for a region missing (almost) never,
        // which would pin an over-provisioned partition forever; release
        // at least one molecule per cycle so it drifts toward its goal.
        // lround() returns a (signed) long; t is non-negative by
        // construction, so clamp at zero before the unsigned conversion
        // instead of relying on that implicitly.
        const long rounded = std::max(0L, std::lround(t));
        u32 want = std::max<u32>(1, static_cast<u32>(rounded));
        if (region.size() > 0)
            want = std::min(want, region.size() - 1); // keep >= 1 molecule
        const u32 got = broker.withdraw(region, want);
        withdrawn_ += got;
        out.delta -= static_cast<i32>(got);
    } else if (mr < region.lastMissRate * (1.0 - params_.improvementEpsilon) ||
               params_.growWhenNotImproving) {
        region.maxAllocation = params_.maxAllocationChunk;
        // Above goal but improving: linear cache-size <-> miss-rate model
        // says we need size * mr / goal molecules in total.
        const double target =
            static_cast<double>(region.size()) * mr / goal;
        u32 want = 0;
        if (target > region.size()) {
            // Subtract and clamp in double first: a pathological
            // mr/goal ratio can push ceil(target) past u32 range, and
            // the old double->u32 conversion of it was undefined there.
            const double extra = std::ceil(target) -
                                 static_cast<double>(region.size());
            const double capped = std::min(
                extra, static_cast<double>(region.maxAllocation));
            want = static_cast<u32>(capped);
        }
        const u32 got = broker.grant(region, want);
        if (want > 0) {
            region.lastGrant = got;
            region.lastGrantShort = got < want;
        }
        granted_ += got;
        out.delta += static_cast<i32>(got);
    }
    // else: above goal and not improving — growth is not paying off; hold.

    if (guardian != nullptr)
        guardian->afterDecision(region, out.delta - predictive, mr,
                                configured_goal);

    region.lastMissRate = mr;
    region.closeInterval();
    return out;
}

i32
Resizer::predictivePulse(Region &region, MoleculeBroker &rawBroker,
                         QosGuardian *guardian) const
{
    if (guardian == nullptr)
        return 0;
    GuardedBroker guarded(rawBroker, *guardian);
    const i32 delta = guardian->predictiveStep(region, guarded);
    if (delta > 0)
        granted_ += static_cast<u32>(delta);
    else if (delta < 0)
        withdrawn_ += static_cast<u32>(-delta);
    return delta;
}

Tick
Resizer::adaptPeriod(Tick period, double missRate, double goal) const
{
    Tick next;
    if (missRate < goal) {
        next = period * 2;
    } else {
        next = static_cast<Tick>(
            std::max(1.0, 0.1 * static_cast<double>(period)));
    }
    return std::clamp(next, params_.minResizePeriod,
                      params_.maxResizePeriod);
}

} // namespace molcache
