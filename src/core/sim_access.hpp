/**
 * @file
 * SimAccess: the simulator-only mutation surface of MolecularCache.
 *
 * The molcached service (src/service/) shares MolecularCache with the
 * trace-replay harness, but a handful of mutators are only correct on a
 * quiescent single-threaded cache: fault injection rewires tiles mid
 * run, setAuditHook installs re-entrant callbacks, setSharedMolecule
 * flips probe filtering under every region's feet, and migration tears
 * a partition down and rebuilds it.  Those used to be public methods —
 * nothing stopped future service code from calling them off a worker
 * thread with only a shard lock held.
 *
 * They are now private to MolecularCache and reachable only through
 * this friend facade.  The rule is mechanical, so machine-checkable:
 * naming SimAccess under src/service/ is a molcache-lint
 * `sim-access-in-service` finding (docs/static_analysis.md).  Sim-side
 * callers (benches, tests, the sweep engine, the InvariantChecker's
 * attached audit) construct one explicitly, which also makes the
 * "this code assumes a quiescent cache" contract visible at the call
 * site:
 *
 *     SimAccess sim(cache);
 *     sim.injectTileOutage(TileId{2});
 *
 * The facade is stateless and free to construct per call site; holding
 * one confers no locking whatsoever.
 */

#ifndef MOLCACHE_CORE_SIM_ACCESS_HPP
#define MOLCACHE_CORE_SIM_ACCESS_HPP

#include <utility>

#include "core/molecular_cache.hpp"

namespace molcache {

class SimAccess
{
  public:
    explicit SimAccess(MolecularCache &cache)
        : cache_(cache)
    {
    }

    /** @{ See the MolecularCache declarations for semantics. */
    void
    migrateApplication(Asid asid, ClusterId cluster, u32 tileInCluster)
    {
        cache_.migrateApplication(asid, cluster, tileInCluster);
    }

    void
    setSharedMolecule(MoleculeId id, bool shared)
    {
        cache_.setSharedMolecule(id, shared);
    }

    void
    setFaultInjector(FaultInjector injector)
    {
        cache_.setFaultInjector(std::move(injector));
    }

    bool
    decommissionMolecule(MoleculeId id)
    {
        return cache_.decommissionMolecule(id);
    }

    void
    injectHardFault(MoleculeId id)
    {
        cache_.injectHardFault(id);
    }

    void
    injectTransientFlip(MoleculeId id, u32 line)
    {
        cache_.injectTransientFlip(id, line);
    }

    void
    injectTileOutage(TileId tile)
    {
        cache_.injectTileOutage(tile);
    }

    void
    injectClusterOutage(ClusterId cluster)
    {
        cache_.injectClusterOutage(cluster);
    }

    void
    setAuditHook(Tick everyAccesses, MolecularCache::AuditHook hook)
    {
        cache_.setAuditHook(everyAccesses, std::move(hook));
    }
    /** @} */

  private:
    MolecularCache &cache_;
};

} // namespace molcache

#endif // MOLCACHE_CORE_SIM_ACCESS_HPP
