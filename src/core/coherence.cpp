#include "core/coherence.hpp"

#include "contract/contract.hpp"

namespace molcache {

CoherenceDirectory::CoherenceDirectory(u32 numClusters)
    : numClusters_(numClusters)
{
    MOLCACHE_EXPECT(numClusters >= 1 && numClusters <= 32,
                    "directory supports 1..32 clusters");
}

std::vector<ClusterId>
CoherenceDirectory::othersOf(const Entry &e, ClusterId cluster) const
{
    std::vector<ClusterId> out;
    for (u32 c = 0; c < numClusters_; ++c)
        if (c != cluster.value() && (e.holders & (1u << c)))
            out.push_back(ClusterId{c});
    return out;
}

std::vector<ClusterId>
CoherenceDirectory::noteFill(LineAddr lineAddr, ClusterId cluster,
                             bool exclusive)
{
    MOLCACHE_EXPECT(cluster.value() < numClusters_, "cluster out of range");
    ++stats_.fills;
    Entry &e = map_[lineAddr];

    std::vector<ClusterId> invalidate;
    if (exclusive) {
        invalidate = othersOf(e, cluster);
        stats_.invalidationsSent += invalidate.size();
        e.holders = 1u << cluster.value();
        e.modified = true;
        e.owner = cluster;
        return invalidate;
    }

    // Read fill: a remote modified copy is downgraded to shared (its data
    // is assumed written back), everyone keeps a copy.
    if (e.modified && e.owner != cluster) {
        e.modified = false;
        ++stats_.downgrades;
    }
    e.holders |= 1u << cluster.value();
    return invalidate;
}

std::vector<ClusterId>
CoherenceDirectory::noteWrite(LineAddr lineAddr, ClusterId cluster)
{
    MOLCACHE_EXPECT(cluster.value() < numClusters_, "cluster out of range");
    ++stats_.writes;
    Entry &e = map_[lineAddr];
    std::vector<ClusterId> invalidate = othersOf(e, cluster);
    stats_.invalidationsSent += invalidate.size();
    e.holders = 1u << cluster.value();
    e.modified = true;
    e.owner = cluster;
    return invalidate;
}

void
CoherenceDirectory::noteEviction(LineAddr lineAddr, ClusterId cluster)
{
    MOLCACHE_EXPECT(cluster.value() < numClusters_, "cluster out of range");
    const auto it = map_.find(lineAddr);
    if (it == map_.end())
        return;
    ++stats_.evictions;
    Entry &e = it->second;
    e.holders &= ~(1u << cluster.value());
    if (e.modified && e.owner == cluster)
        e.modified = false;
    if (e.holders == 0)
        map_.erase(it);
}

bool
CoherenceDirectory::isHeld(LineAddr lineAddr, ClusterId cluster) const
{
    const auto it = map_.find(lineAddr);
    return it != map_.end() &&
           (it->second.holders & (1u << cluster.value()));
}

u32
CoherenceDirectory::holderCount(LineAddr lineAddr) const
{
    const auto it = map_.find(lineAddr);
    if (it == map_.end())
        return 0;
    u32 n = 0;
    for (u32 c = 0; c < numClusters_; ++c)
        if (it->second.holders & (1u << c))
            ++n;
    return n;
}

bool
CoherenceDirectory::isModified(LineAddr lineAddr) const
{
    const auto it = map_.find(lineAddr);
    return it != map_.end() && it->second.modified;
}

} // namespace molcache
