#include "core/coherence.hpp"

#include "util/logging.hpp"

namespace molcache {

CoherenceDirectory::CoherenceDirectory(u32 numClusters)
    : numClusters_(numClusters)
{
    MOLCACHE_ASSERT(numClusters >= 1 && numClusters <= 32,
                    "directory supports 1..32 clusters");
}

std::vector<u32>
CoherenceDirectory::othersOf(const Entry &e, u32 cluster) const
{
    std::vector<u32> out;
    for (u32 c = 0; c < numClusters_; ++c)
        if (c != cluster && (e.holders & (1u << c)))
            out.push_back(c);
    return out;
}

std::vector<u32>
CoherenceDirectory::noteFill(Addr lineAddr, u32 cluster, bool exclusive)
{
    MOLCACHE_ASSERT(cluster < numClusters_, "cluster out of range");
    ++stats_.fills;
    Entry &e = map_[lineAddr];

    std::vector<u32> invalidate;
    if (exclusive) {
        invalidate = othersOf(e, cluster);
        stats_.invalidationsSent += invalidate.size();
        e.holders = 1u << cluster;
        e.modified = true;
        e.owner = cluster;
        return invalidate;
    }

    // Read fill: a remote modified copy is downgraded to shared (its data
    // is assumed written back), everyone keeps a copy.
    if (e.modified && e.owner != cluster) {
        e.modified = false;
        ++stats_.downgrades;
    }
    e.holders |= 1u << cluster;
    return invalidate;
}

std::vector<u32>
CoherenceDirectory::noteWrite(Addr lineAddr, u32 cluster)
{
    MOLCACHE_ASSERT(cluster < numClusters_, "cluster out of range");
    ++stats_.writes;
    Entry &e = map_[lineAddr];
    std::vector<u32> invalidate = othersOf(e, cluster);
    stats_.invalidationsSent += invalidate.size();
    e.holders = 1u << cluster;
    e.modified = true;
    e.owner = cluster;
    return invalidate;
}

void
CoherenceDirectory::noteEviction(Addr lineAddr, u32 cluster)
{
    MOLCACHE_ASSERT(cluster < numClusters_, "cluster out of range");
    const auto it = map_.find(lineAddr);
    if (it == map_.end())
        return;
    ++stats_.evictions;
    Entry &e = it->second;
    e.holders &= ~(1u << cluster);
    if (e.modified && e.owner == cluster)
        e.modified = false;
    if (e.holders == 0)
        map_.erase(it);
}

bool
CoherenceDirectory::isHeld(Addr lineAddr, u32 cluster) const
{
    const auto it = map_.find(lineAddr);
    return it != map_.end() && (it->second.holders & (1u << cluster));
}

u32
CoherenceDirectory::holderCount(Addr lineAddr) const
{
    const auto it = map_.find(lineAddr);
    if (it == map_.end())
        return 0;
    u32 n = 0;
    for (u32 c = 0; c < numClusters_; ++c)
        if (it->second.holders & (1u << c))
            ++n;
    return n;
}

bool
CoherenceDirectory::isModified(Addr lineAddr) const
{
    const auto it = map_.find(lineAddr);
    return it != map_.end() && it->second.modified;
}

} // namespace molcache
