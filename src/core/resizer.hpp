/**
 * @file
 * Dynamic partition resizing — the paper's Algorithm 1 (section 3.4).
 *
 * Per resize cycle, for every application partition:
 *
 *   if replacementRate > 50% twice in a row: (thrashing: growth won't help)
 *       resize the partition TO maxAllocation molecules
 *       (the paper's resize(max_allocation): a partition replacing in
 *        more than half its accesses is capped, freeing molecules for
 *        applications that can use them; growth back toward the cap
 *        pauses while the pool is under pressure)
 *   else if missRate < goal:                (overachieving: give back)
 *       withdraw sqrt(size * missRate / goal) molecules
 *                                            ("withdraw more slowly than
 *                                             you add — conservative")
 *   else if missRate < lastMissRate:        (growth is helping: continue)
 *       target = size * missRate / goal     (linear size<->miss model)
 *       grow by min(target - size, maxAllocation)
 *   else:                                    (not improving: hold)
 *
 * Afterwards the resize period adapts: below goal it doubles, above goal
 * it drops to 10% (clamped to [minResizePeriod, maxResizePeriod]).
 *
 * Molecules granted come from the region's home tile first, then from the
 * other tiles of its cluster (via Ulmo); withdrawn molecules return to
 * their owning tile's free pool.  The MoleculeBroker interface decouples
 * this policy logic from MolecularCache's bookkeeping.
 */

#ifndef MOLCACHE_CORE_RESIZER_HPP
#define MOLCACHE_CORE_RESIZER_HPP

#include "core/params.hpp"
#include "core/region.hpp"

namespace molcache {

class QosGuardian;

/** Grants/retrieves molecules on behalf of the resizer. */
class MoleculeBroker
{
  public:
    virtual ~MoleculeBroker() = default;

    /**
     * Try to add @p count molecules to @p region (home tile first, then
     * cluster).  @return molecules actually granted.
     */
    virtual u32 grant(Region &region, u32 count) = 0;

    /**
     * Withdraw up to @p count molecules chosen by the region's
     * least-activity rule; never drops the region below one molecule.
     * @return molecules actually withdrawn.
     */
    virtual u32 withdraw(Region &region, u32 count) = 0;
};

/** Outcome of one region's resize evaluation. */
struct RegionResize
{
    /** Interval miss rate the decision was based on. */
    double missRate = 0.0;
    /** Molecules granted (positive) or withdrawn (negative). */
    i32 delta = 0;
    /** True if the interval had traffic and a decision was evaluated. */
    bool evaluated = false;
};

class Resizer
{
  public:
    explicit Resizer(const MolecularCacheParams &params);

    /**
     * Run Algorithm 1 for one region and close its interval.
     * @param region   the partition
     * @param goal     the partition's miss-rate goal
     * @param broker   molecule source/sink
     * @param guardian optional QoS guardian (docs/algorithm1.md,
     *                 "Guardrails"): floor restoration runs ahead of the
     *                 decision, the pre-decision gate may hold the epoch
     *                 or substitute a degraded goal, withdrawals are
     *                 clamped at the region's capacity floor, and the
     *                 oscillation/feasibility/watchdog bookkeeping runs
     *                 after.  Null leaves Algorithm 1 untouched.
     */
    RegionResize resizeRegion(Region &region, double goal,
                              MoleculeBroker &broker,
                              QosGuardian *guardian = nullptr) const;

    /**
     * Adapt a resize period from an observed miss rate (global or
     * per-application scheme).
     */
    Tick adaptPeriod(Tick period, double missRate, double goal) const;

    /**
     * Side-band predictive wakeup (guardian predictive mode): run only
     * the guardian's predictiveStep through the guarded broker — no
     * Algorithm-1 evaluation, no interval close, no period adaptation —
     * so acting on a phase hint never disturbs the reactive sampling
     * cadence.  @return net molecule delta.
     */
    i32 predictivePulse(Region &region, MoleculeBroker &broker,
                        QosGuardian *guardian) const;

    /** @{ Lifetime counters. */
    u64 runs() const { return runs_; }
    u64 granted() const { return granted_; }
    u64 withdrawn() const { return withdrawn_; }
    /** Molecules re-granted to regions that lost capacity to faults. */
    u64 recoveryGrants() const { return recoveryGrants_; }
    /** @} */

  private:
    MolecularCacheParams params_;
    mutable u64 runs_ = 0;
    mutable u64 granted_ = 0;
    mutable u64 withdrawn_ = 0;
    mutable u64 recoveryGrants_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_RESIZER_HPP
