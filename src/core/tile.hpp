/**
 * @file
 * A tile: 32-256 molecules behind a single read/write port.
 *
 * Tiles are the physical aggregation level (paper figure 2): every
 * processor is statically assigned to a tile and all its requests enter
 * the molecular cache there.  The tile also owns the free pool that the
 * resizer draws molecules from.
 */

#ifndef MOLCACHE_CORE_TILE_HPP
#define MOLCACHE_CORE_TILE_HPP

#include <vector>

#include "contract/contract.hpp"
#include "core/molecule.hpp"
#include "util/types.hpp"

namespace molcache {

class Tile
{
  public:
    /**
     * @param id            global tile index
     * @param cluster       owning tile-cluster index
     * @param firstMolecule global id of this tile's first molecule
     * @param numMolecules  molecules on the tile
     * @param linesPerMol   lines per molecule
     * @param lineSize      line size (bytes)
     */
    Tile(TileId id, ClusterId cluster, MoleculeId firstMolecule,
         u32 numMolecules, u32 linesPerMol, u32 lineSize);

    TileId id() const { return id_; }
    ClusterId cluster() const { return cluster_; }
    u32 numMolecules() const
    {
        return static_cast<u32>(molecules_.size());
    }
    MoleculeId firstMolecule() const { return first_; }

    /** True if @p mol lives on this tile. */
    bool owns(MoleculeId mol) const
    {
        return mol >= first_ && mol < first_ + numMolecules();
    }

    /* Inline: resolved once per probe on the access hot path. */
    Molecule &
    molecule(MoleculeId mol)
    {
        MOLCACHE_EXPECT(owns(mol), "molecule ", mol, " not on tile ", id_);
        return molecules_[mol - first_];
    }
    const Molecule &
    molecule(MoleculeId mol) const
    {
        MOLCACHE_EXPECT(owns(mol), "molecule ", mol, " not on tile ", id_);
        return molecules_[mol - first_];
    }

    /** Molecules currently unassigned. */
    u32 freeCount() const { return free_; }

    /**
     * Take one free molecule and configure it for @p asid.
     * @return its id, or kInvalidMolecule if the tile is exhausted.
     */
    MoleculeId allocate(Asid asid);

    /** Return @p mol to the free pool; @return dirty lines dropped. */
    u32 release(MoleculeId mol);

    /**
     * Permanently fence @p mol out of service (hard fault): contents are
     * invalidated, the ASID gate is cleared, and the molecule can never
     * be allocated again.  A free molecule leaves the free pool; an
     * assigned one must already have been removed from its region's
     * replacement view by the caller.
     * @return dirty lines dropped (writebacks owed by the caller).
     */
    u32 decommission(MoleculeId mol);

    /** Molecules permanently out of service on this tile. */
    u32 decommissionedCount() const { return decommissioned_; }

    /** Molecules still in service (free or assigned). */
    u32 usableMolecules() const
    {
        return numMolecules() - decommissioned_;
    }

    /** Port-pressure accounting: one request entered this tile. */
    void notePortAccess() { ++portAccesses_; }
    /** Batched flush of @p n deferred port accesses (batch lanes). */
    void notePortAccesses(u64 n) { portAccesses_ += n; }
    u64 portAccesses() const { return portAccesses_; }

    /** @{ Struct-of-arrays tag view for the batched access path
     * (docs/perf.md).  All line state of the tile's molecules lives in
     * these contiguous per-tile arrays; each molecule holds pointer
     * views into its `linesPerMolecule()`-sized span.  The slot of
     * address line index @p li in molecule @p mol is
     * `(mol - firstMolecule()) * linesPerMolecule() + li` — a pure
     * offset computation, no per-molecule pointer chase, so the batch
     * kernel can prefetch the next probe target.  Coherent by
     * construction: molecules mutate line state through the same
     * storage. */
    const Addr *lineTags() const { return soaTags_.data(); }
    const u8 *lineFlags() const { return soaFlags_.data(); }
    /** Configured ASID per molecule (figure 3's comparator column),
     * mirrored on allocate/release/decommission. */
    const Asid *moleculeAsids() const { return soaAsid_.data(); }
    u32 linesPerMolecule() const { return linesPerMol_; }
    /** @} */

  private:
    TileId id_;
    ClusterId cluster_;
    MoleculeId first_;
    u32 linesPerMol_;
    /* SoA line state; declared before molecules_ so the arrays exist
     * when the molecule views are constructed. */
    std::vector<Addr> soaTags_;
    std::vector<Tick> soaTouched_;
    std::vector<u8> soaFlags_;
    std::vector<Asid> soaAsid_;
    std::vector<Molecule> molecules_;
    u32 free_;
    u32 decommissioned_ = 0;
    u64 portAccesses_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_TILE_HPP
