#include "core/params.hpp"

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace molcache {

PlacementPolicy
parsePlacementPolicy(const std::string &text)
{
    if (text == "random")
        return PlacementPolicy::Random;
    if (text == "randy")
        return PlacementPolicy::Randy;
    if (text == "lrudirect")
        return PlacementPolicy::LruDirect;
    fatal("unknown placement policy '", text,
          "' (expected random|randy|lrudirect)");
}

std::string
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::Random:
        return "random";
      case PlacementPolicy::Randy:
        return "randy";
      case PlacementPolicy::LruDirect:
        return "lru-direct";
    }
    panic("unknown PlacementPolicy");
}

ResizeScheme
parseResizeScheme(const std::string &text)
{
    if (text == "constant")
        return ResizeScheme::Constant;
    if (text == "global")
        return ResizeScheme::GlobalAdaptive;
    if (text == "perapp")
        return ResizeScheme::PerAppAdaptive;
    fatal("unknown resize scheme '", text,
          "' (expected constant|global|perapp)");
}

std::string
resizeSchemeName(ResizeScheme s)
{
    switch (s) {
      case ResizeScheme::Constant:
        return "constant";
      case ResizeScheme::GlobalAdaptive:
        return "global";
      case ResizeScheme::PerAppAdaptive:
        return "perapp";
    }
    panic("unknown ResizeScheme");
}

void
MolecularCacheParams::validate() const
{
    if (lineSize == 0 || !isPowerOfTwo(lineSize))
        fatal("molecule line size must be a power of two");
    if (moleculeSize.value() == 0 || !isPowerOfTwo(moleculeSize.value()))
        fatal("molecule size must be a power of two");
    if (moleculeSize.value() < lineSize)
        fatal("molecule smaller than one line");
    if (moleculesPerTile == 0)
        fatal("tile needs at least one molecule");
    if (tilesPerCluster == 0 || clusters == 0)
        fatal("need at least one tile and one cluster");
    if (defaultLineMultiple == 0 || !isPowerOfTwo(defaultLineMultiple))
        fatal("region line multiple must be a power of two");
    if (defaultLineMultiple > linesPerMolecule())
        fatal("region line multiple exceeds molecule capacity");
    if (maxAllocationChunk == 0)
        fatal("maxAllocationChunk must be >= 1");
    if (thrashThreshold <= 0.0 || thrashThreshold > 1.0)
        fatal("thrash threshold out of (0,1]");
    if (resizePeriod == 0)
        fatal("resize period must be > 0");
    if (minResizePeriod == 0 || minResizePeriod > maxResizePeriod)
        fatal("bad resize period clamp");
    if (hardFaultThreshold == 0)
        fatal("hardFaultThreshold must be >= 1");
    if (guardian.enabled) {
        if (guardian.hysteresis < 0.0 || guardian.hysteresis >= 1.0)
            fatal("guardian hysteresis out of [0,1)");
        if (guardian.oscillationWindow < 2)
            fatal("guardian oscillation window must be >= 2");
        if (guardian.maxSignFlips == 0)
            fatal("guardian maxSignFlips must be >= 1");
        if (guardian.watchdogEpochs == 0)
            fatal("guardian watchdog budget must be >= 1");
        if (guardian.feasibilityEpochs == 0)
            fatal("guardian feasibilityEpochs must be >= 1");
        if (guardian.pressureThreshold <= 0.0 ||
            guardian.pressureThreshold > 1.0)
            fatal("guardian pressure threshold out of (0,1]");
    }
}

} // namespace molcache
