/**
 * @file
 * Ulmo — the tile-cluster controller ("Unlimited Molecules").
 *
 * One Ulmo manages each cluster of 4-8 tiles (paper figure 2).  It
 * handles tile misses by forwarding requests to the other tiles of the
 * cluster that contribute molecules to the requesting application's
 * region, brokers molecule donations between tiles during resizing, and
 * fronts the inter-cluster coherence directory.
 */

#ifndef MOLCACHE_CORE_ULMO_HPP
#define MOLCACHE_CORE_ULMO_HPP

#include <vector>

#include "core/coherence.hpp"
#include "core/tile.hpp"
#include "util/types.hpp"

namespace molcache {

class Ulmo
{
  public:
    /**
     * @param cluster   cluster index
     * @param tiles     global indices of this cluster's tiles
     * @param directory shared inter-cluster coherence directory
     */
    Ulmo(ClusterId cluster, std::vector<TileId> tiles,
         CoherenceDirectory &directory);

    ClusterId cluster() const { return cluster_; }
    const std::vector<TileId> &tiles() const { return tiles_; }
    bool managesTile(TileId tile) const;

    CoherenceDirectory &directory() { return directory_; }
    const CoherenceDirectory &directory() const { return directory_; }

    /** @{ Escalation statistics. */
    void noteTileMiss() { ++tileMisses_; }
    void noteRemoteProbes(u32 probes) { remoteProbes_ += probes; }
    void noteRemoteHit() { ++remoteHits_; }
    void noteDonation() { ++donations_; }
    void noteInvalidation() { ++invalidationsApplied_; }
    /** A molecule of this cluster was permanently fenced off. */
    void noteDecommission() { ++decommissions_; }
    /** A grant fell @p missing molecules short: the cluster's free pool
     * is exhausted (QoS-guardian pressure accounting). */
    void noteGrantShortfall(u32 missing)
    {
        ++grantShortfalls_;
        grantShortfallMolecules_ += missing;
    }

    u64 tileMisses() const { return tileMisses_; }
    u64 remoteProbes() const { return remoteProbes_; }
    u64 remoteHits() const { return remoteHits_; }
    u64 donations() const { return donations_; }
    u64 invalidationsApplied() const { return invalidationsApplied_; }
    u64 decommissions() const { return decommissions_; }
    u64 grantShortfalls() const { return grantShortfalls_; }
    u64 grantShortfallMolecules() const { return grantShortfallMolecules_; }
    /** @} */

  private:
    ClusterId cluster_;
    std::vector<TileId> tiles_;
    CoherenceDirectory &directory_;

    u64 tileMisses_ = 0;
    u64 remoteProbes_ = 0;
    u64 remoteHits_ = 0;
    u64 donations_ = 0;
    u64 invalidationsApplied_ = 0;
    u64 decommissions_ = 0;
    u64 grantShortfalls_ = 0;
    u64 grantShortfallMolecules_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_ULMO_HPP
