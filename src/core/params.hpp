/**
 * @file
 * Configuration of a molecular cache instance.
 *
 * Terminology (paper section 3):
 *  - molecule: small direct-mapped caching unit (8-32 KB, 64 B lines);
 *  - tile: 32-256 molecules behind one read/write port; each processor is
 *    assigned to a tile;
 *  - tile cluster: 4-8 tiles managed by one controller (Ulmo) that handles
 *    tile misses and inter-cluster coherence;
 *  - region/partition: the set of molecules configured with one
 *    application's ASID.
 */

#ifndef MOLCACHE_CORE_PARAMS_HPP
#define MOLCACHE_CORE_PARAMS_HPP

#include <string>

#include "noc/topology.hpp"
#include "power/tech.hpp"
#include "util/random.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

/** Molecule-selection policy on replacement (paper section 3.3). */
enum class PlacementPolicy
{
    /** Any molecule of the region, uniformly at random. */
    Random,
    /**
     * Randy: the replacement view's row is fixed by the address
     * (row = (addr / moleculeSize) mod rowMax), and a random molecule of
     * that row is chosen; rows can have different widths (variable way
     * size / adaptive associativity).
     */
    Randy,
    /**
     * LRU-Direct (the paper's future-work scheme, section 5): the region
     * acts as one associative set per molecule index — the displaced
     * slot is the least-recently-touched one among the region's
     * molecules at the address's index (direct-mapped within a molecule,
     * LRU across molecules).  Costly in hardware (global recency state);
     * included to evaluate what Random/Randy give up.
     */
    LruDirect,
};

/** When the resize daemon runs (paper section 3.4, "When to add?"). */
enum class ResizeScheme
{
    /** Fixed address count between resizes. */
    Constant,
    /**
     * One global period adapted from the overall cache miss rate:
     * under goal => period doubles, over => period drops to 10 %.
     */
    GlobalAdaptive,
    /** Per-application periods adapted from each application's miss rate. */
    PerAppAdaptive,
};

/** Initial partition size ("Ground Zero" in section 3.4). */
enum class InitialAllocation
{
    /** A very small start (params.initialMolecules, default 2). */
    Small,
    /** Half the molecules of the home tile (the paper's default). */
    HalfTile,
    /** Everything free on the home tile. */
    FullTile,
};

PlacementPolicy parsePlacementPolicy(const std::string &text);
std::string placementPolicyName(PlacementPolicy p);
ResizeScheme parseResizeScheme(const std::string &text);
std::string resizeSchemeName(ResizeScheme s);

/**
 * Predictive apportioning on top of the guardian (docs/algorithm1.md,
 * "Predictive mode & hint trust").  Default off — with it disabled the
 * guardian never reads a phase hint and never pre-provisions, so every
 * guardian-on run stays byte-identical to the PR-5 reactive control
 * plane (and guardian-off paper sweeps stay byte-identical, full stop).
 */
struct PredictiveGuardianParams
{
    bool enabled = false;
    /** Hints below this confidence are dropped at the door. */
    double minConfidence = 0.25;
    /** Largest pre-grant/pre-withdraw in one predictive action,
     * molecules.  Deliberately above maxAllocationChunk: the whole point
     * of a trusted hint is to move further in one step than a reactive
     * epoch would dare. */
    u32 maxActionMolecules = 64;
    /** Trust a region starts with — deliberately midway, so a new
     * tenant must earn headroom before one bad hint quarantines it. */
    double initialTrust = 0.5;
    /** Trust required before a hint moves capacity.  Sits above
     * initialTrust, so a brand-new tenant's first forecast is scored
     * against reality but acts on nothing: trust is earned by a
     * truthful hint before the guardian spends molecules on one, and a
     * tenant that opens with a lie never gets to churn the pool. */
    double actAbove = 0.55;
    /** EWMA step per scored hint (scaled by the hint's confidence):
     * trust := (1-w)*trust + w*score. */
    double trustWeight = 0.45;
    /** Trust below this quarantines the region back to pure reactive
     * control; its hints are still scored so it can re-earn trust. */
    double quarantineBelow = 0.30;
    /** Trust must climb back above this (hysteresis gap vs the
     * quarantine threshold, mirroring the dead-band) to leave
     * quarantine... */
    double restoreAbove = 0.65;
    /** ...and the region must have sat out at least this many evaluated
     * epochs (probation, mirroring the oscillation cooldown). */
    u32 probationEpochs = 4;
};

/**
 * QoS guardian configuration (docs/algorithm1.md, "Guardrails").
 * Default off — a disabled guardian never touches the control plane, so
 * sweeps stay byte-identical to the unguarded build.
 */
struct GuardianParams
{
    bool enabled = false;
    /** Relative dead-band around the goal: a decision is held while
     * goal*(1-h) <= missRate <= goal*(1+h); widened under oscillation. */
    double hysteresis = 0.10;
    /** Epochs an action blocks the opposite-direction action (the
     * flip-guard), and the pause imposed after an oscillation event. */
    u32 cooldownEpochs = 2;
    /** Sliding-window length, in evaluated resize epochs, of the
     * delta sign-flip oscillation detector. */
    u32 oscillationWindow = 8;
    /** Sign flips per window that count as control-plane thrashing. */
    u32 maxSignFlips = 2;
    /** Default per-region capacity floor in molecules (0 = no floor);
     * overridable per region via MolecularCache::setRegionFloor. */
    u32 floorMolecules = 2;
    /** Evaluated epochs above goal before a region is flagged stuck. */
    u32 watchdogEpochs = 32;
    /** Consecutive infeasible-looking epochs before the admission
     * controller degrades the goal. */
    u32 feasibilityEpochs = 4;
    /** Pool-pressure EWMA above which regions at or past their fair
     * share stop growing (starvation guard). */
    double pressureThreshold = 0.75;
    /** Phase-hint driven pre-provisioning; off by default. */
    PredictiveGuardianParams predictive;
};

struct MolecularCacheParams
{
    /** Molecule capacity (paper: 8-32 KB). */
    Bytes moleculeSize = 8_KiB;
    /** Molecule line size in bytes (paper: 64). */
    u32 lineSize = 64;
    /** Molecules per tile (paper: 32-256). */
    u32 moleculesPerTile = 64;
    /** Tiles per cluster (paper: 4-8). */
    u32 tilesPerCluster = 4;
    /** Number of tile clusters. */
    u32 clusters = 1;

    PlacementPolicy placement = PlacementPolicy::Randy;
    ResizeScheme resizeScheme = ResizeScheme::GlobalAdaptive;

    /** Initial resize period, in addresses serviced (paper: ~25000). */
    u64 resizePeriod = 25000;
    /** Clamp for the adaptive period. */
    u64 minResizePeriod = 2500;
    u64 maxResizePeriod = 800000;

    /** Largest molecule grant in one resize step ("How much to add?"). */
    u32 maxAllocationChunk = 32;
    /**
     * Minimum references a partition must have seen before a resize
     * decision is taken on it; below this the interval keeps
     * accumulating.  Guards the adaptive schemes (whose period can drop
     * to 10%) against deciding on statistically meaningless samples.
     */
    u64 minIntervalSample = 2000;
    /** Miss rate above which a partition is considered thrashing. */
    double thrashThreshold = 0.5;
    /**
     * Relative improvement over the previous interval required for the
     * grow branch ("miss rate < last miss rate") to keep growing; filters
     * interval-to-interval noise that would otherwise random-walk a
     * partition upward at its miss-rate floor.
     */
    double improvementEpsilon = 0.05;

    InitialAllocation initialAllocation = InitialAllocation::HalfTile;
    /** Molecules for InitialAllocation::Small. */
    u32 initialMolecules = 2;
    /**
     * Randy: number of replacement-view rows opened by the initial
     * allocation (initial molecules are dealt round-robin across them, so
     * each row starts with width ~= initial/rows).  The paper's figure 4
     * sketches few rows of width 1-2; too many width-1 rows make the
     * region behave direct-mapped.
     */
    u32 initialRowMax = 8;

    /** Default region line-size multiple (1 => 64 B, 2 => 128 B, ...). */
    u32 defaultLineMultiple = 1;

    /** Miss-rate goal for applications that were never registered
     * explicitly (the paper uses default goals when none is provided). */
    double defaultMissRateGoal = 0.1;

    /** RNG used for molecule selection (hardware-RNG ablation). */
    RngKind rngKind = RngKind::Pcg32;
    u64 seed = 1;

    /**
     * Ablation: with Randy placement, restrict lookup to the molecules of
     * the address's replacement row instead of the whole region.  Unsafe
     * across rowMax changes (stale rows), so default off as in the paper.
     */
    bool rowRestrictedLookup = false;

    /** Grow a partition even when its miss rate did not improve (the
     * paper's Algorithm 1 grows only while improving; see DESIGN.md). */
    bool growWhenNotImproving = false;

    /**
     * Way-memoization probe skipping (Ishihara & Fallah, PAPERS.md): a
     * dense last-hit-molecule table per (ASID, row, slot), probed before
     * the full schedule and invalidated by the same generation stamps as
     * the memoized probe schedules.  A pure simulator fast path — every
     * modeled counter (probes, energy, latency) is still charged as if
     * the full home-tile schedule were searched, so results stay
     * byte-identical with this off or on (docs/perf.md).
     */
    bool wayMemoization = true;

    /** QoS guardian around the resizer (admission control, hysteresis,
     * floors, watchdog); off by default. */
    GuardianParams guardian;

    /**
     * Hard-fault detections a molecule's failure counter must reach
     * before the molecule is decommissioned (fenced off permanently).
     * 1 = decommission on first detection; higher values model ECC-style
     * correct-then-count policies.  See docs/fault_model.md.
     */
    u32 hardFaultThreshold = 1;

    /** Technology node for energy accounting. */
    TechNode techNode = TechNode::Nm70;
    /** Account dynamic energy per access (small runtime cost). */
    bool enableEnergy = true;

    /** @{ Latency model, in cache cycles.  The ASID comparison adds one
     * pipeline stage to every molecule access (paper section 3.1); tile
     * misses pay an Ulmo hop per remote tile visited (section 3.3). */
    Cycles asidStageCycles{1};
    Cycles moleculeAccessCycles{1};
    Cycles ulmoHopCycles{4};
    Cycles missPenaltyCycles{200};
    /** @} */

    /** Inter-cluster interconnect carrying coherence traffic (the
     * paper's topology-agnostic "cloud" between tile clusters). */
    NocParams noc;

    u32 totalTiles() const { return clusters * tilesPerCluster; }
    u32 totalMolecules() const { return totalTiles() * moleculesPerTile; }
    Bytes tileSizeBytes() const { return moleculeSize * moleculesPerTile; }
    Bytes clusterSizeBytes() const
    {
        return tileSizeBytes() * tilesPerCluster;
    }
    Bytes totalSizeBytes() const { return clusterSizeBytes() * clusters; }
    u32 linesPerMolecule() const
    {
        return static_cast<u32>(moleculeSize.value() / lineSize);
    }

    /** fatal() on incoherent geometry. */
    void validate() const;
};

} // namespace molcache

#endif // MOLCACHE_CORE_PARAMS_HPP
