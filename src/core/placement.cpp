#include "core/placement.hpp"

#include <algorithm>

namespace molcache {

LookupPlan
planLookup(const Region &region, TileId requestorTile, Addr addr,
           bool rowRestricted)
{
    LookupPlan plan;
    plan.home.tile = requestorTile;

    const bool restrict_row =
        rowRestricted && region.policy() == PlacementPolicy::Randy &&
        !region.empty();
    // With row restriction only the molecules of the address's row are
    // eligible anywhere in the hierarchy.
    const std::vector<MoleculeId> *row = nullptr;
    if (restrict_row)
        row = &region.rows()[region.rowOf(addr).value()];

    auto eligible = [&](MoleculeId mol) {
        return !restrict_row ||
               std::find(row->begin(), row->end(), mol) != row->end();
    };

    for (const auto &[tile, mols] : region.byTile()) {
        if (tile == requestorTile) {
            for (const MoleculeId m : mols)
                if (eligible(m))
                    plan.home.molecules.push_back(m);
            continue;
        }
        TileProbes probes;
        probes.tile = tile;
        for (const MoleculeId m : mols)
            if (eligible(m))
                probes.molecules.push_back(m);
        if (!probes.molecules.empty())
            plan.remote.push_back(std::move(probes));
    }
    return plan;
}

} // namespace molcache
