/**
 * @file
 * The molecule: a small direct-mapped caching unit.
 *
 * Molecules are the homogeneous building blocks of the molecular cache
 * (paper section 3).  Each is direct mapped with 64 B lines and is gated
 * by an ASID comparator: a molecule only participates in lookups whose
 * requestor ASID matches its configured ASID, unless its shared bit is
 * set (figure 3 of the paper).
 */

#ifndef MOLCACHE_CORE_MOLECULE_HPP
#define MOLCACHE_CORE_MOLECULE_HPP

#include <optional>
#include <vector>

#include "util/types.hpp"

namespace molcache {

/** Dense molecule identifier, unique across the whole molecular cache. */
using MoleculeId = u32;
inline constexpr MoleculeId kInvalidMolecule = ~0u;

/** What fill() displaced (for writeback accounting). */
struct Eviction
{
    Addr addr = 0;
    bool dirty = false;
};

class Molecule
{
  public:
    /**
     * @param id       global molecule id
     * @param tile     owning tile index
     * @param numLines capacity in lines
     * @param lineSize line size in bytes
     */
    Molecule(MoleculeId id, u32 tile, u32 numLines, u32 lineSize);

    MoleculeId id() const { return id_; }
    u32 tile() const { return tile_; }
    u32 numLines() const { return numLines_; }
    u32 lineSize() const { return lineSize_; }

    /** ASID gate (paper figure 3). */
    Asid configuredAsid() const { return asid_; }
    bool isFree() const { return asid_ == kInvalidAsid; }
    bool sharedBit() const { return shared_; }
    void setSharedBit(bool shared) { shared_ = shared; }

    /** True if a request from @p requestor may proceed past the gate. */
    bool
    admits(Asid requestor) const
    {
        return shared_ || asid_ == requestor;
    }

    /** Configure the molecule into an application's region (invalidates
     * contents: the previous owner's lines must not leak). */
    void assignTo(Asid asid);

    /** Return to the free pool; returns dirty lines dropped (writebacks). */
    u32 release();

    /**
     * Probe for @p addr.  Direct mapped: one index, one tag compare.
     * @return true on hit; marks dirty on write hits via markDirty().
     */
    bool lookup(Addr addr) const;

    /** Set the dirty bit of a resident line (write hit). */
    void markDirty(Addr addr);

    /**
     * Install the line holding @p addr, displacing whatever occupies the
     * slot.  @return the eviction if a valid line was displaced.
     * @param tick recency stamp for the LRU-Direct scheme (0 = untracked)
     */
    std::optional<Eviction> fill(Addr addr, bool dirty, u64 tick = 0);

    /** Stamp the recency of a resident line (hit path, LRU-Direct). */
    void noteTouch(Addr addr, u64 tick);

    /**
     * Recency stamp of the slot @p addr maps to, regardless of which tag
     * occupies it; nullopt when the slot is invalid (an invalid slot is
     * always the preferred LRU-Direct victim).
     */
    std::optional<u64> slotTouchTick(Addr addr) const;

    /** Drop the line holding @p addr if resident; true if it was dirty. */
    bool invalidate(Addr addr);

    /** Replacement-miss counter (resize guidance, section 3.4). */
    u64 missCount() const { return missCount_; }
    void noteMiss() { ++missCount_; }
    void resetMissCount() { missCount_ = 0; }

    /** Valid lines currently held. */
    u32 validLines() const { return valid_; }

    /** Addresses of all resident lines (coherence bookkeeping on
     * withdrawal/reassignment). */
    std::vector<Addr> residentLines() const;

  private:
    struct Line
    {
        Addr tag = 0;
        u64 touched = 0;
        bool valid = false;
        bool dirty = false;
    };

    u32 indexOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    MoleculeId id_;
    u32 tile_;
    u32 numLines_;
    u32 lineSize_;
    Asid asid_ = kInvalidAsid;
    bool shared_ = false;
    std::vector<Line> lines_;
    u64 missCount_ = 0;
    u32 valid_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_MOLECULE_HPP
