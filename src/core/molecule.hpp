/**
 * @file
 * The molecule: a small direct-mapped caching unit.
 *
 * Molecules are the homogeneous building blocks of the molecular cache
 * (paper section 3).  Each is direct mapped with 64 B lines and is gated
 * by an ASID comparator: a molecule only participates in lookups whose
 * requestor ASID matches its configured ASID, unless its shared bit is
 * set (figure 3 of the paper).
 */

#ifndef MOLCACHE_CORE_MOLECULE_HPP
#define MOLCACHE_CORE_MOLECULE_HPP

#include <optional>
#include <vector>

#include "util/types.hpp"

namespace molcache {

/** What fill() displaced (for writeback accounting). */
struct Eviction
{
    Addr addr = 0;
    bool dirty = false;
    /** The displaced line was poisoned: its data is corrupt, so a dirty
     * copy is dropped (data loss), never written back. */
    bool poisoned = false;
};

/** @{ Per-line state bits of the struct-of-arrays tag view.  Line state
 * is split into three parallel arrays (tags / recency stamps / flag
 * bytes) so the batched access path can scan a tile's slots as
 * contiguous memory with software prefetch (docs/perf.md). */
inline constexpr u8 kLineValid = 1u << 0;
inline constexpr u8 kLineDirty = 1u << 1;
inline constexpr u8 kLinePoisoned = 1u << 2;
/** @} */

class Molecule
{
  public:
    /**
     * Standalone molecule owning its line storage (unit tests, ad-hoc
     * construction).
     *
     * @param id       global molecule id
     * @param tile     owning tile index
     * @param numLines capacity in lines
     * @param lineSize line size in bytes
     */
    Molecule(MoleculeId id, TileId tile, u32 numLines, u32 lineSize);

    /**
     * View onto tile-owned struct-of-arrays line storage: @p tags,
     * @p touched and @p flags each point at @p numLines zero-initialized
     * slots inside the tile's contiguous arrays.  The pointers must stay
     * valid for the molecule's lifetime (vector heap buffers survive
     * Tile moves, so they do).
     */
    Molecule(MoleculeId id, TileId tile, u32 numLines, u32 lineSize,
             Addr *tags, Tick *touched, u8 *flags);

    /* Line storage is referenced by raw pointers; copying would alias
     * two molecules onto one owner's slots. Moves are fine: the owning
     * vectors' heap buffers are stable across moves. */
    Molecule(const Molecule &) = delete;
    Molecule &operator=(const Molecule &) = delete;
    Molecule(Molecule &&) = default;
    Molecule &operator=(Molecule &&) = default;

    MoleculeId id() const { return id_; }
    TileId tile() const { return tile_; }
    u32 numLines() const { return numLines_; }
    u32 lineSize() const { return lineSize_; }

    /** ASID gate (paper figure 3). */
    Asid configuredAsid() const { return asid_; }
    bool isFree() const { return asid_ == kInvalidAsid; }
    bool sharedBit() const { return shared_; }
    void setSharedBit(bool shared) { shared_ = shared; }

    /** True if a request from @p requestor may proceed past the gate. */
    bool
    admits(Asid requestor) const
    {
        return shared_ || asid_ == requestor;
    }

    /** Configure the molecule into an application's region (invalidates
     * contents: the previous owner's lines must not leak). */
    void assignTo(Asid asid);

    /** Return to the free pool; returns dirty lines dropped (writebacks). */
    u32 release();

    /**
     * Probe for @p addr.  Direct mapped: one index, one tag compare.
     * @return true on hit; marks dirty on write hits via markDirty().
     */
    bool
    lookup(Addr addr) const
    {
        const u32 i = indexOf(addr);
        return (flags_[i] & kLineValid) != 0 && tags_[i] == tagOf(addr);
    }

    /** Outcome of a single hot-path probe (see probe()). */
    enum class ProbeOutcome : u8 { Miss, Hit, Poisoned };

    /**
     * Hot-path probe: parity check + tag compare of the slot @p addr
     * maps to, reading the slot once.  Poisoned means the parity check
     * tripped — the caller must scrubIfPoisoned() to drop the line and
     * learn its identity (rare, so the bookkeeping stays off this path).
     */
    ProbeOutcome
    probe(Addr addr) const
    {
        const u32 i = indexOf(addr);
        const u8 f = flags_[i];
        if ((f & kLineValid) == 0)
            return ProbeOutcome::Miss;
        if ((f & kLinePoisoned) != 0) [[unlikely]]
            return ProbeOutcome::Poisoned;
        return tags_[i] == tagOf(addr) ? ProbeOutcome::Hit
                                       : ProbeOutcome::Miss;
    }

    /** Set the dirty bit of a resident line (write hit). */
    void markDirty(Addr addr);

    /**
     * Install the line holding @p addr, displacing whatever occupies the
     * slot.  @return the eviction if a valid line was displaced.
     * @param tick recency stamp for the LRU-Direct scheme (0 = untracked)
     */
    std::optional<Eviction> fill(Addr addr, bool dirty, Tick tick = 0);

    /** Stamp the recency of a resident line (hit path, LRU-Direct). */
    void noteTouch(Addr addr, Tick tick);

    /**
     * Recency stamp of the slot @p addr maps to, regardless of which tag
     * occupies it; nullopt when the slot is invalid (an invalid slot is
     * always the preferred LRU-Direct victim).
     */
    std::optional<Tick> slotTouchTick(Addr addr) const;

    /** Drop the line holding @p addr if resident; true if it was dirty.
     * A poisoned line reports false: corrupt data is never written back. */
    bool invalidate(Addr addr);

    /** @{ Fault model (docs/fault_model.md).
     *
     * A transient flip corrupts one stored line; the corruption is
     * latent until the slot is next probed, when the parity/ECC check
     * catches it (scrubIfPoisoned) and the access is treated as a miss.
     * Hard faults trip a per-molecule failure counter; at the configured
     * threshold the cache decommissions the molecule — its ASID gate is
     * fenced to never match again (the paper's figure 3 comparator as
     * the fence bit) and it becomes permanently unallocatable. */

    /** Corrupt the line in slot @p index; true if a valid line was hit
     * (flips landing in invalid slots are harmless). */
    bool poisonLine(u32 index);

    /**
     * Parity check of the slot @p addr maps to.  If the resident line is
     * poisoned it is dropped on the spot (detected corruption reads as a
     * miss) and its identity is returned so the caller can update the
     * coherence directory and account any data loss.
     */
    std::optional<Eviction> scrubIfPoisoned(Addr addr);

    /** Currently-poisoned (corrupt but undetected) lines. */
    u32 poisonedLines() const;

    /** One hard-fault detection; @return the failure counter after it. */
    u32 noteHardFault() { return ++hardFaults_; }
    u32 hardFaults() const { return hardFaults_; }

    /** Permanently out of service; set only via Tile::decommission(). */
    bool decommissioned() const { return decommissioned_; }
    /** @} */

    /** Replacement-miss counter (resize guidance, section 3.4). */
    u64 missCount() const { return missCount_; }
    void noteMiss() { ++missCount_; }
    void resetMissCount() { missCount_ = 0; }

    /** Valid lines currently held. */
    u32 validLines() const { return valid_; }

    /** Addresses of all resident lines (coherence bookkeeping on
     * withdrawal/reassignment). */
    std::vector<Addr> residentLines() const;

  private:
    friend class Tile; // sole caller of markDecommissioned()

    /** Reset one slot to the invalid state (`Line{}` of old). */
    void clearLine(u32 index);
    void markDecommissioned() { decommissioned_ = true; }

    /** Slot index / tag of @p addr.  Line size and line count are
     * powers of two, so these are shifts — a per-probe divide would
     * dominate the access hot path (docs/perf.md). */
    u32
    indexOf(Addr addr) const
    {
        return static_cast<u32>((addr >> lineShift_) & (numLines_ - 1));
    }
    Addr
    tagOf(Addr addr) const
    {
        return addr >> tagShift_;
    }

    MoleculeId id_;
    TileId tile_;
    u32 numLines_;
    u32 lineSize_;
    u32 lineShift_ = 0; ///< log2(lineSize_)
    u32 tagShift_ = 0;  ///< log2(lineSize_ * numLines_)
    Asid asid_ = kInvalidAsid;
    bool shared_ = false;
    /** @{ Struct-of-arrays line state.  Either views into the owning
     * tile's contiguous per-tile arrays (hot configuration) or into the
     * own* vectors below (standalone construction). */
    Addr *tags_ = nullptr;
    Tick *touched_ = nullptr;
    u8 *flags_ = nullptr;
    std::vector<Addr> ownTags_;
    std::vector<Tick> ownTouched_;
    std::vector<u8> ownFlags_;
    /** @} */
    u64 missCount_ = 0;
    u32 valid_ = 0;
    u32 hardFaults_ = 0;
    bool decommissioned_ = false;
};

} // namespace molcache

#endif // MOLCACHE_CORE_MOLECULE_HPP
