#include "core/region.hpp"

#include <algorithm>

#include "contract/contract.hpp"
#include "stats/counter.hpp"

namespace molcache {

Region::Region(Asid asid, PlacementPolicy policy, u32 lineMultiple,
               TileId homeTile, ClusterId homeCluster, Bytes moleculeSize,
               u32 initialRowMax)
    : asid_(asid), policy_(policy), lineMultiple_(lineMultiple),
      homeTile_(homeTile), homeCluster_(homeCluster),
      moleculeSize_(moleculeSize), initialRowMax_(initialRowMax)
{
    MOLCACHE_EXPECT(lineMultiple_ >= 1, "line multiple must be >= 1");
    MOLCACHE_EXPECT(moleculeSize_ > Bytes{0}, "molecule size must be > 0");
    MOLCACHE_EXPECT(initialRowMax_ >= 1, "initialRowMax must be >= 1");
}

void
Region::addMolecule(MoleculeId mol, TileId tile, bool initial)
{
    MOLCACHE_EXPECT(!contains(mol), "molecule already in region");

    u32 row;
    if (policy_ != PlacementPolicy::Randy) {
        // Random / LRU-Direct: single-row view — every addition just
        // increases associativity.
        if (rows_.empty()) {
            rows_.emplace_back();
            rowMiss_.push_back(0);
        }
        row = 0;
    } else if (rows_.empty() || (initial && rowMax() < initialRowMax_)) {
        // Initial allocation: open rows up to initialRowMax first ...
        rows_.emplace_back();
        rowMiss_.push_back(0);
        row = rowMax() - 1;
    } else if (initial) {
        // ... then deal the rest round-robin (widen the narrowest row),
        // so every row starts with the same associativity.
        row = 0;
        for (u32 r = 1; r < rowMax(); ++r)
            if (rows_[r].size() < rows_[row].size())
                row = r;
    } else {
        // Growth: widen the rows with the highest replacement activity —
        // rows taking more misses need more associativity.  Heat is
        // normalized per way so a multi-molecule grant spreads across
        // the hot rows instead of piling onto one.
        row = 0;
        double best = -1.0;
        for (u32 r = 0; r < rowMax(); ++r) {
            const double heat = static_cast<double>(rowMiss_[r]) /
                                static_cast<double>(rows_[r].size());
            if (heat > best) {
                best = heat;
                row = r;
            }
        }
    }

    rows_[row].push_back(mol);
    molRow_[mol] = RowIndex{row};
    molTile_[mol] = tile;
    molMiss_[mol] = 0;
    byTile_[tile].push_back(mol);
    ++size_;
}

void
Region::removeMolecule(MoleculeId mol)
{
    const auto rowIt = molRow_.find(mol);
    MOLCACHE_EXPECT(rowIt != molRow_.end(), "molecule not in region");
    const u32 row = rowIt->second.value();

    auto &rowVec = rows_[row];
    rowVec.erase(std::find(rowVec.begin(), rowVec.end(), mol));
    if (rowVec.empty()) {
        // Delete the emptied row; later rows shift down one index, which
        // remaps addresses — harmless, since lookup probes the whole
        // region and stale lines age out through replacement.
        rows_.erase(rows_.begin() + row);
        rowMiss_.erase(rowMiss_.begin() + row);
        for (auto &[m, r] : molRow_)
            if (r.value() > row)
                --r;
    }

    const TileId tile = molTile_.at(mol);
    auto &tileVec = byTile_.at(tile);
    tileVec.erase(std::find(tileVec.begin(), tileVec.end(), mol));
    if (tileVec.empty())
        byTile_.erase(tile);

    molRow_.erase(mol);
    molTile_.erase(mol);
    molMiss_.erase(mol);
    --size_;
}

RowIndex
Region::rowOf(Addr addr) const
{
    MOLCACHE_EXPECT(!rows_.empty(), "rowOf on empty region");
    return RowIndex{
        static_cast<u32>((addr / moleculeSize_.value()) % rowMax())};
}

MoleculeId
Region::chooseFillMolecule(Addr addr, RandomSource &rng) const
{
    MOLCACHE_EXPECT(size_ > 0, "fill into empty region");
    if (policy_ == PlacementPolicy::Randy) {
        const auto &row = rows_[rowOf(addr).value()];
        return row[rng.below(static_cast<u32>(row.size()))];
    }
    // Random: uniform over every molecule of the region.
    u32 pick = rng.below(size_);
    for (const auto &row : rows_) {
        if (pick < row.size())
            return row[pick];
        pick -= static_cast<u32>(row.size());
    }
    panic("region size bookkeeping is inconsistent");
}

MoleculeId
Region::pickWithdrawal() const
{
    if (size_ == 0)
        return kInvalidMolecule;

    if (policy_ == PlacementPolicy::Randy) {
        // Coldest row first, then the coldest molecule within it.  Rows
        // of width 1 are spared while any wider row exists: emptying a
        // row shrinks rowMax and remaps every address to a new row,
        // which costs a storm of stale-line replacements.
        bool wide_exists = false;
        for (const auto &row : rows_)
            if (row.size() > 1)
                wide_exists = true;

        i64 coldRow = -1;
        for (u32 r = 0; r < rowMax(); ++r) {
            if (wide_exists && rows_[r].size() < 2)
                continue;
            if (coldRow < 0 ||
                rowMiss_[r] < rowMiss_[static_cast<size_t>(coldRow)]) {
                coldRow = r;
            }
        }
        MOLCACHE_ENSURE(coldRow >= 0, "no withdrawable row found");
        const auto &row = rows_[static_cast<size_t>(coldRow)];
        MoleculeId best = row.front();
        for (const MoleculeId m : row)
            if (molMiss_.at(m) < molMiss_.at(best))
                best = m;
        return best;
    }

    MoleculeId best = kInvalidMolecule;
    for (const auto &[mol, misses] : molMiss_)
        if (best == kInvalidMolecule || misses < molMiss_.at(best))
            best = mol;
    return best;
}

void
Region::noteReplacement(MoleculeId mol, Addr addr)
{
    const auto it = molRow_.find(mol);
    MOLCACHE_EXPECT(it != molRow_.end(), "replacement in foreign molecule");
    ++rowMiss_[it->second.value()];
    ++molMiss_[mol];
    ++intervalReplacements_;
    (void)addr;
}

void
Region::noteAccess(bool hit)
{
    ++accesses_;
    ++intervalAccesses_;
    if (hit) {
        ++hits_;
    } else {
        ++intervalMisses_;
    }
}

double
Region::intervalMissRate() const
{
    return ratio(intervalMisses_, intervalAccesses_);
}

double
Region::intervalReplacementRate() const
{
    return ratio(intervalReplacements_, intervalAccesses_);
}

void
Region::closeInterval()
{
    intervalAccesses_ = 0;
    intervalMisses_ = 0;
    intervalReplacements_ = 0;
    for (auto &v : rowMiss_)
        v = 0;
    for (auto &[m, v] : molMiss_)
        v = 0;
}

} // namespace molcache
