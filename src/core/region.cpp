#include "core/region.hpp"

#include <algorithm>

#include "contract/contract.hpp"
#include "stats/counter.hpp"

namespace molcache {

TilePlacement::Entry *
TilePlacement::find(TileId tile)
{
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), tile,
        [](const Entry &e, TileId t) { return e.tile < t; });
    return it != entries_.end() && it->tile == tile ? &*it : nullptr;
}

const TilePlacement::Entry *
TilePlacement::find(TileId tile) const
{
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), tile,
        [](const Entry &e, TileId t) { return e.tile < t; });
    return it != entries_.end() && it->tile == tile ? &*it : nullptr;
}

TilePlacement::Entry &
TilePlacement::findOrCreate(TileId tile)
{
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), tile,
        [](const Entry &e, TileId t) { return e.tile < t; });
    if (it == entries_.end() || it->tile != tile)
        it = entries_.insert(it, Entry{tile, {}});
    return *it;
}

void
TilePlacement::erase(TileId tile)
{
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), tile,
        [](const Entry &e, TileId t) { return e.tile < t; });
    MOLCACHE_EXPECT(it != entries_.end() && it->tile == tile,
                    "erasing a tile with no placement entry");
    entries_.erase(it);
}

const std::vector<MoleculeId> &
TilePlacement::at(TileId tile) const
{
    const Entry *e = find(tile);
    MOLCACHE_EXPECT(e != nullptr, "no molecules placed on tile");
    return e->molecules;
}

Region::Region(Asid asid, PlacementPolicy policy, u32 lineMultiple,
               TileId homeTile, ClusterId homeCluster, Bytes moleculeSize,
               u32 initialRowMax)
    : asid_(asid), policy_(policy), lineMultiple_(lineMultiple),
      homeTile_(homeTile), homeCluster_(homeCluster),
      moleculeSize_(moleculeSize), initialRowMax_(initialRowMax)
{
    MOLCACHE_EXPECT(lineMultiple_ >= 1, "line multiple must be >= 1");
    MOLCACHE_EXPECT(moleculeSize_ > Bytes{0}, "molecule size must be > 0");
    MOLCACHE_EXPECT(initialRowMax_ >= 1, "initialRowMax must be >= 1");
}

Region::MolEntry *
Region::findMol(MoleculeId mol)
{
    const auto it = std::lower_bound(
        mols_.begin(), mols_.end(), mol,
        [](const MolEntry &e, MoleculeId m) { return e.mol < m; });
    return it != mols_.end() && it->mol == mol ? &*it : nullptr;
}

const Region::MolEntry *
Region::findMol(MoleculeId mol) const
{
    const auto it = std::lower_bound(
        mols_.begin(), mols_.end(), mol,
        [](const MolEntry &e, MoleculeId m) { return e.mol < m; });
    return it != mols_.end() && it->mol == mol ? &*it : nullptr;
}

void
Region::addMolecule(MoleculeId mol, TileId tile, bool initial)
{
    MOLCACHE_EXPECT(!contains(mol), "molecule already in region");

    u32 row;
    if (policy_ != PlacementPolicy::Randy) {
        // Random / LRU-Direct: single-row view — every addition just
        // increases associativity.
        if (rows_.empty()) {
            rows_.emplace_back();
            rowMiss_.push_back(0);
        }
        row = 0;
    } else if (rows_.empty() || (initial && rowMax() < initialRowMax_)) {
        // Initial allocation: open rows up to initialRowMax first ...
        rows_.emplace_back();
        rowMiss_.push_back(0);
        row = rowMax() - 1;
    } else if (initial) {
        // ... then deal the rest round-robin (widen the narrowest row),
        // so every row starts with the same associativity.
        row = 0;
        for (u32 r = 1; r < rowMax(); ++r)
            if (rows_[r].size() < rows_[row].size())
                row = r;
    } else {
        // Growth: widen the rows with the highest replacement activity —
        // rows taking more misses need more associativity.  Heat is
        // normalized per way so a multi-molecule grant spreads across
        // the hot rows instead of piling onto one.
        row = 0;
        double best = -1.0;
        for (u32 r = 0; r < rowMax(); ++r) {
            const double heat = static_cast<double>(rowMiss_[r]) /
                                static_cast<double>(rows_[r].size());
            if (heat > best) {
                best = heat;
                row = r;
            }
        }
    }

    rows_[row].push_back(mol);
    const auto it = std::lower_bound(
        mols_.begin(), mols_.end(), mol,
        [](const MolEntry &e, MoleculeId m) { return e.mol < m; });
    mols_.insert(it, MolEntry{mol, tile, RowIndex{row}, 0});
    byTile_.findOrCreate(tile).molecules.push_back(mol);
    ++size_;
    ++generation_;
}

void
Region::removeMolecule(MoleculeId mol)
{
    const MolEntry *entry = findMol(mol);
    MOLCACHE_EXPECT(entry != nullptr, "molecule not in region");
    const u32 row = entry->row.value();
    const TileId tile = entry->tile;

    auto &rowVec = rows_[row];
    rowVec.erase(std::find(rowVec.begin(), rowVec.end(), mol));
    if (rowVec.empty()) {
        // Delete the emptied row; later rows shift down one index, which
        // remaps addresses — harmless, since lookup probes the whole
        // region and stale lines age out through replacement.
        rows_.erase(rows_.begin() + row);
        rowMiss_.erase(rowMiss_.begin() + row);
        for (MolEntry &e : mols_)
            if (e.row.value() > row)
                --e.row;
    }

    TilePlacement::Entry *te = byTile_.find(tile);
    MOLCACHE_EXPECT(te != nullptr, "molecule's tile has no placement entry");
    auto &tileVec = te->molecules;
    tileVec.erase(std::find(tileVec.begin(), tileVec.end(), mol));
    if (tileVec.empty())
        byTile_.erase(tile);

    mols_.erase(std::lower_bound(
        mols_.begin(), mols_.end(), mol,
        [](const MolEntry &e, MoleculeId m) { return e.mol < m; }));
    --size_;
    ++generation_;
}

RowIndex
Region::rowOf(Addr addr) const
{
    MOLCACHE_EXPECT(!rows_.empty(), "rowOf on empty region");
    return RowIndex{
        static_cast<u32>((addr / moleculeSize_.value()) % rowMax())};
}

MoleculeId
Region::chooseFillMolecule(Addr addr, RandomSource &rng) const
{
    MOLCACHE_EXPECT(size_ > 0, "fill into empty region");
    if (policy_ == PlacementPolicy::Randy) {
        const auto &row = rows_[rowOf(addr).value()];
        return row[rng.below(static_cast<u32>(row.size()))];
    }
    // Random: uniform over every molecule of the region.
    u32 pick = rng.below(size_);
    for (const auto &row : rows_) {
        if (pick < row.size())
            return row[pick];
        pick -= static_cast<u32>(row.size());
    }
    panic("region size bookkeeping is inconsistent");
}

MoleculeId
Region::pickWithdrawal() const
{
    if (size_ == 0)
        return kInvalidMolecule;

    if (policy_ == PlacementPolicy::Randy) {
        // Coldest row first, then the coldest molecule within it.  Rows
        // of width 1 are spared while any wider row exists: emptying a
        // row shrinks rowMax and remaps every address to a new row,
        // which costs a storm of stale-line replacements.
        bool wide_exists = false;
        for (const auto &row : rows_)
            if (row.size() > 1)
                wide_exists = true;

        i64 coldRow = -1;
        for (u32 r = 0; r < rowMax(); ++r) {
            if (wide_exists && rows_[r].size() < 2)
                continue;
            if (coldRow < 0 ||
                rowMiss_[r] < rowMiss_[static_cast<size_t>(coldRow)]) {
                coldRow = r;
            }
        }
        MOLCACHE_ENSURE(coldRow >= 0, "no withdrawable row found");
        const auto &row = rows_[static_cast<size_t>(coldRow)];
        MoleculeId best = row.front();
        u64 bestMiss = findMol(best)->miss;
        for (const MoleculeId m : row) {
            const u64 miss = findMol(m)->miss;
            if (miss < bestMiss) {
                best = m;
                bestMiss = miss;
            }
        }
        return best;
    }

    // Random / LRU-Direct: coldest molecule, ascending id on ties (the
    // entries are id-sorted, matching the std::map scan this replaced).
    MoleculeId best = mols_.front().mol;
    u64 bestMiss = mols_.front().miss;
    for (const MolEntry &e : mols_) {
        if (e.miss < bestMiss) {
            best = e.mol;
            bestMiss = e.miss;
        }
    }
    return best;
}

void
Region::noteReplacement(MoleculeId mol, Addr addr)
{
    MolEntry *entry = findMol(mol);
    MOLCACHE_EXPECT(entry != nullptr, "replacement in foreign molecule");
    ++rowMiss_[entry->row.value()];
    ++entry->miss;
    ++intervalReplacements_;
    (void)addr;
}

void
Region::noteAccess(bool hit)
{
    ++accesses_;
    ++intervalAccesses_;
    if (hit) {
        ++hits_;
    } else {
        ++intervalMisses_;
    }
}

double
Region::intervalMissRate() const
{
    return ratio(intervalMisses_, intervalAccesses_);
}

double
Region::intervalReplacementRate() const
{
    return ratio(intervalReplacements_, intervalAccesses_);
}

void
Region::closeInterval()
{
    intervalAccesses_ = 0;
    intervalMisses_ = 0;
    intervalReplacements_ = 0;
    for (auto &v : rowMiss_)
        v = 0;
    for (MolEntry &e : mols_)
        e.miss = 0;
}

const ProbeSchedule &
Region::probeSchedule(Addr addr, bool rowRestricted, u64 sharedGen,
                      const std::vector<MoleculeId> *sharedHome)
{
    const bool restrict_row =
        rowRestricted && policy_ == PlacementPolicy::Randy && !rows_.empty();
    if (scheduleGen_ != generation_ || scheduleSharedGen_ != sharedGen ||
        scheduleRowRestricted_ != restrict_row ||
        schedules_.size() != (restrict_row ? rows_.size() : 1)) {
        // Membership, shared-bit state or lookup mode moved: drop every
        // memo.  Slots are rebuilt on demand so a churning region only
        // pays for the rows it actually touches.
        schedules_.resize(restrict_row ? rows_.size() : 1);
        scheduleValid_.assign(schedules_.size(), 0);
        scheduleGen_ = generation_;
        scheduleSharedGen_ = sharedGen;
        scheduleRowRestricted_ = restrict_row;
    }
    const size_t slot = restrict_row ? rowOf(addr).value() : 0;
    if (!scheduleValid_[slot]) {
        rebuildSchedule(slot, restrict_row, sharedHome);
        scheduleValid_[slot] = 1;
    }
    return schedules_[slot];
}

void
Region::rebuildSchedule(size_t slot, bool restrictRow,
                        const std::vector<MoleculeId> *sharedHome)
{
    ProbeSchedule &s = schedules_[slot];
    s.home.clear();
    s.remote.clear();

    const std::vector<MoleculeId> *row =
        restrictRow ? &rows_[slot] : nullptr;
    const auto eligible = [&](MoleculeId mol) {
        return row == nullptr ||
               std::find(row->begin(), row->end(), mol) != row->end();
    };

    for (const auto &[tile, mols] : byTile_) {
        if (tile == homeTile_) {
            for (const MoleculeId m : mols)
                if (eligible(m))
                    s.home.push_back(m);
            continue;
        }
        TileProbes probes;
        probes.tile = tile;
        for (const MoleculeId m : mols)
            if (eligible(m))
                probes.molecules.push_back(m);
        if (!probes.molecules.empty())
            s.remote.push_back(std::move(probes));
    }

    // Shared-bit molecules of the entry tile answer every request; they
    // are exempt from row restriction (the row hash is region-local).
    if (sharedHome != nullptr)
        for (const MoleculeId m : *sharedHome)
            if (!contains(m))
                s.home.push_back(m);
}

} // namespace molcache
