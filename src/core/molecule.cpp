#include "core/molecule.hpp"

#include "contract/contract.hpp"
#include "util/bits.hpp"

namespace molcache {

Molecule::Molecule(MoleculeId id, TileId tile, u32 numLines,
                   u32 lineSize)
    : id_(id), tile_(tile), numLines_(numLines), lineSize_(lineSize),
      ownTags_(numLines, 0), ownTouched_(numLines, 0),
      ownFlags_(numLines, 0)
{
    MOLCACHE_EXPECT(numLines > 0 && isPowerOfTwo(numLines),
                    "molecule lines must be a power of two");
    MOLCACHE_EXPECT(isPowerOfTwo(lineSize), "line size must be 2^k");
    lineShift_ = floorLog2(lineSize);
    tagShift_ = lineShift_ + floorLog2(numLines);
    tags_ = ownTags_.data();
    touched_ = ownTouched_.data();
    flags_ = ownFlags_.data();
}

Molecule::Molecule(MoleculeId id, TileId tile, u32 numLines, u32 lineSize,
                   Addr *tags, Tick *touched, u8 *flags)
    : id_(id), tile_(tile), numLines_(numLines), lineSize_(lineSize),
      tags_(tags), touched_(touched), flags_(flags)
{
    MOLCACHE_EXPECT(numLines > 0 && isPowerOfTwo(numLines),
                    "molecule lines must be a power of two");
    MOLCACHE_EXPECT(isPowerOfTwo(lineSize), "line size must be 2^k");
    MOLCACHE_EXPECT(tags != nullptr && touched != nullptr &&
                        flags != nullptr,
                    "molecule line-view pointers must be non-null");
    lineShift_ = floorLog2(lineSize);
    tagShift_ = lineShift_ + floorLog2(numLines);
}

void
Molecule::clearLine(u32 index)
{
    tags_[index] = 0;
    touched_[index] = 0;
    flags_[index] = 0;
}

void
Molecule::assignTo(Asid asid)
{
    MOLCACHE_EXPECT(asid != kInvalidAsid, "assigning invalid ASID");
    MOLCACHE_EXPECT(!decommissioned_, "assigning a decommissioned molecule");
    // Reconfiguration invalidates contents: region data must not leak
    // between applications.
    for (u32 i = 0; i < numLines_; ++i)
        clearLine(i);
    valid_ = 0;
    asid_ = asid;
    missCount_ = 0;
}

u32
Molecule::release()
{
    u32 dirty = 0;
    for (u32 i = 0; i < numLines_; ++i) {
        // Poisoned lines are corrupt: dropped, never written back.
        const u8 f = flags_[i];
        if ((f & (kLineValid | kLineDirty | kLinePoisoned)) ==
            (kLineValid | kLineDirty))
            ++dirty;
        clearLine(i);
    }
    valid_ = 0;
    asid_ = kInvalidAsid;
    shared_ = false;
    missCount_ = 0;
    return dirty;
}

void
Molecule::markDirty(Addr addr)
{
    const u32 i = indexOf(addr);
    MOLCACHE_EXPECT((flags_[i] & kLineValid) != 0 &&
                        tags_[i] == tagOf(addr),
                    "markDirty on non-resident line");
    flags_[i] |= kLineDirty;
}

std::optional<Eviction>
Molecule::fill(Addr addr, bool dirty, Tick tick)
{
    const u32 i = indexOf(addr);
    const u8 f = flags_[i];
    std::optional<Eviction> evicted;
    if ((f & kLineValid) != 0) {
        if (tags_[i] == tagOf(addr)) {
            // Refill of a resident line.  A poisoned copy is overwritten
            // by the fresh fill, which also clears the corruption — but
            // its dirty bit described lost data, so it must not merge.
            const bool merged = (f & kLinePoisoned) != 0
                                    ? dirty
                                    : ((f & kLineDirty) != 0 || dirty);
            flags_[i] = kLineValid | (merged ? kLineDirty : 0);
            touched_[i] = tick;
            return std::nullopt;
        }
        // Reconstruct the displaced address from tag+index.
        const Addr old = (tags_[i] * numLines_ + i) * lineSize_;
        evicted = Eviction{old, (f & kLineDirty) != 0,
                           (f & kLinePoisoned) != 0};
    } else {
        ++valid_;
    }
    tags_[i] = tagOf(addr);
    flags_[i] = kLineValid | (dirty ? kLineDirty : 0);
    touched_[i] = tick;
    return evicted;
}

void
Molecule::noteTouch(Addr addr, Tick tick)
{
    const u32 i = indexOf(addr);
    MOLCACHE_EXPECT((flags_[i] & kLineValid) != 0 &&
                        tags_[i] == tagOf(addr),
                    "noteTouch on non-resident line");
    touched_[i] = tick;
}

std::optional<Tick>
Molecule::slotTouchTick(Addr addr) const
{
    const u32 i = indexOf(addr);
    if ((flags_[i] & kLineValid) == 0)
        return std::nullopt;
    return touched_[i];
}

std::vector<Addr>
Molecule::residentLines() const
{
    std::vector<Addr> out;
    out.reserve(valid_);
    for (u32 i = 0; i < numLines_; ++i) {
        if ((flags_[i] & kLineValid) != 0)
            out.push_back((tags_[i] * numLines_ + i) * lineSize_);
    }
    return out;
}

bool
Molecule::invalidate(Addr addr)
{
    const u32 i = indexOf(addr);
    const u8 f = flags_[i];
    if ((f & kLineValid) == 0 || tags_[i] != tagOf(addr))
        return false;
    const bool was_dirty = (f & (kLineDirty | kLinePoisoned)) == kLineDirty;
    clearLine(i);
    --valid_;
    return was_dirty;
}

bool
Molecule::poisonLine(u32 index)
{
    MOLCACHE_EXPECT(index < numLines_, "poisoned line index out of range");
    if ((flags_[index] & kLineValid) == 0)
        return false; // flip in an invalid slot: nothing to corrupt
    flags_[index] |= kLinePoisoned;
    return true;
}

std::optional<Eviction>
Molecule::scrubIfPoisoned(Addr addr)
{
    const u32 i = indexOf(addr);
    const u8 f = flags_[i];
    if ((f & kLineValid) == 0 || (f & kLinePoisoned) == 0)
        return std::nullopt;
    // Parity caught the corruption: drop the line whatever tag it holds
    // (the probe reads the whole slot), and report its identity.
    const Addr resident = (tags_[i] * numLines_ + i) * lineSize_;
    const Eviction dropped{resident, (f & kLineDirty) != 0, true};
    clearLine(i);
    --valid_;
    return dropped;
}

u32
Molecule::poisonedLines() const
{
    u32 n = 0;
    for (u32 i = 0; i < numLines_; ++i)
        if ((flags_[i] & (kLineValid | kLinePoisoned)) ==
            (kLineValid | kLinePoisoned))
            ++n;
    return n;
}

} // namespace molcache
