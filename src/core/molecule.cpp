#include "core/molecule.hpp"

#include "contract/contract.hpp"
#include "util/bits.hpp"

namespace molcache {

Molecule::Molecule(MoleculeId id, TileId tile, u32 numLines,
                   u32 lineSize)
    : id_(id), tile_(tile), numLines_(numLines), lineSize_(lineSize),
      lines_(numLines)
{
    MOLCACHE_EXPECT(numLines > 0 && isPowerOfTwo(numLines),
                    "molecule lines must be a power of two");
    MOLCACHE_EXPECT(isPowerOfTwo(lineSize), "line size must be 2^k");
    lineShift_ = floorLog2(lineSize);
    tagShift_ = lineShift_ + floorLog2(numLines);
}

void
Molecule::assignTo(Asid asid)
{
    MOLCACHE_EXPECT(asid != kInvalidAsid, "assigning invalid ASID");
    MOLCACHE_EXPECT(!decommissioned_, "assigning a decommissioned molecule");
    // Reconfiguration invalidates contents: region data must not leak
    // between applications.
    for (Line &l : lines_)
        l = Line{};
    valid_ = 0;
    asid_ = asid;
    missCount_ = 0;
}

u32
Molecule::release()
{
    u32 dirty = 0;
    for (Line &l : lines_) {
        // Poisoned lines are corrupt: dropped, never written back.
        if (l.valid && l.dirty && !l.poisoned)
            ++dirty;
        l = Line{};
    }
    valid_ = 0;
    asid_ = kInvalidAsid;
    shared_ = false;
    missCount_ = 0;
    return dirty;
}

void
Molecule::markDirty(Addr addr)
{
    Line &l = lines_[indexOf(addr)];
    MOLCACHE_EXPECT(l.valid && l.tag == tagOf(addr),
                    "markDirty on non-resident line");
    l.dirty = true;
}

std::optional<Eviction>
Molecule::fill(Addr addr, bool dirty, Tick tick)
{
    Line &l = lines_[indexOf(addr)];
    std::optional<Eviction> evicted;
    if (l.valid) {
        if (l.tag == tagOf(addr)) {
            // Refill of a resident line.  A poisoned copy is overwritten
            // by the fresh fill, which also clears the corruption — but
            // its dirty bit described lost data, so it must not merge.
            l.dirty = l.poisoned ? dirty : (l.dirty || dirty);
            l.poisoned = false;
            l.touched = tick;
            return std::nullopt;
        }
        // Reconstruct the displaced address from tag+index.
        const Addr old = (l.tag * numLines_ + indexOf(addr)) * lineSize_;
        evicted = Eviction{old, l.dirty, l.poisoned};
    } else {
        ++valid_;
    }
    l.valid = true;
    l.tag = tagOf(addr);
    l.dirty = dirty;
    l.poisoned = false;
    l.touched = tick;
    return evicted;
}

void
Molecule::noteTouch(Addr addr, Tick tick)
{
    Line &l = lines_[indexOf(addr)];
    MOLCACHE_EXPECT(l.valid && l.tag == tagOf(addr),
                    "noteTouch on non-resident line");
    l.touched = tick;
}

std::optional<Tick>
Molecule::slotTouchTick(Addr addr) const
{
    const Line &l = lines_[indexOf(addr)];
    if (!l.valid)
        return std::nullopt;
    return l.touched;
}

std::vector<Addr>
Molecule::residentLines() const
{
    std::vector<Addr> out;
    out.reserve(valid_);
    for (u32 i = 0; i < numLines_; ++i) {
        if (lines_[i].valid)
            out.push_back((lines_[i].tag * numLines_ + i) * lineSize_);
    }
    return out;
}

bool
Molecule::invalidate(Addr addr)
{
    Line &l = lines_[indexOf(addr)];
    if (!l.valid || l.tag != tagOf(addr))
        return false;
    const bool was_dirty = l.dirty && !l.poisoned;
    l = Line{};
    --valid_;
    return was_dirty;
}

bool
Molecule::poisonLine(u32 index)
{
    MOLCACHE_EXPECT(index < numLines_, "poisoned line index out of range");
    Line &l = lines_[index];
    if (!l.valid)
        return false; // flip in an invalid slot: nothing to corrupt
    l.poisoned = true;
    return true;
}

std::optional<Eviction>
Molecule::scrubIfPoisoned(Addr addr)
{
    Line &l = lines_[indexOf(addr)];
    if (!l.valid || !l.poisoned)
        return std::nullopt;
    // Parity caught the corruption: drop the line whatever tag it holds
    // (the probe reads the whole slot), and report its identity.
    const Addr resident =
        (l.tag * numLines_ + indexOf(addr)) * lineSize_;
    const Eviction dropped{resident, l.dirty, true};
    l = Line{};
    --valid_;
    return dropped;
}

u32
Molecule::poisonedLines() const
{
    u32 n = 0;
    for (const Line &l : lines_)
        if (l.valid && l.poisoned)
            ++n;
    return n;
}

} // namespace molcache
