#include "core/molecule.hpp"

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace molcache {

Molecule::Molecule(MoleculeId id, u32 tile, u32 numLines, u32 lineSize)
    : id_(id), tile_(tile), numLines_(numLines), lineSize_(lineSize),
      lines_(numLines)
{
    MOLCACHE_ASSERT(numLines > 0 && isPowerOfTwo(numLines),
                    "molecule lines must be a power of two");
    MOLCACHE_ASSERT(isPowerOfTwo(lineSize), "line size must be 2^k");
}

u32
Molecule::indexOf(Addr addr) const
{
    return static_cast<u32>((addr / lineSize_) & (numLines_ - 1));
}

Addr
Molecule::tagOf(Addr addr) const
{
    return addr / lineSize_ / numLines_;
}

void
Molecule::assignTo(Asid asid)
{
    MOLCACHE_ASSERT(asid != kInvalidAsid, "assigning invalid ASID");
    // Reconfiguration invalidates contents: region data must not leak
    // between applications.
    for (Line &l : lines_)
        l = Line{};
    valid_ = 0;
    asid_ = asid;
    missCount_ = 0;
}

u32
Molecule::release()
{
    u32 dirty = 0;
    for (Line &l : lines_) {
        if (l.valid && l.dirty)
            ++dirty;
        l = Line{};
    }
    valid_ = 0;
    asid_ = kInvalidAsid;
    shared_ = false;
    missCount_ = 0;
    return dirty;
}

bool
Molecule::lookup(Addr addr) const
{
    const Line &l = lines_[indexOf(addr)];
    return l.valid && l.tag == tagOf(addr);
}

void
Molecule::markDirty(Addr addr)
{
    Line &l = lines_[indexOf(addr)];
    MOLCACHE_ASSERT(l.valid && l.tag == tagOf(addr),
                    "markDirty on non-resident line");
    l.dirty = true;
}

std::optional<Eviction>
Molecule::fill(Addr addr, bool dirty, u64 tick)
{
    Line &l = lines_[indexOf(addr)];
    std::optional<Eviction> evicted;
    if (l.valid) {
        if (l.tag == tagOf(addr)) {
            // Refill of a resident line: just merge the dirty bit.
            l.dirty = l.dirty || dirty;
            l.touched = tick;
            return std::nullopt;
        }
        // Reconstruct the displaced address from tag+index.
        const Addr old = (l.tag * numLines_ + indexOf(addr)) * lineSize_;
        evicted = Eviction{old, l.dirty};
    } else {
        ++valid_;
    }
    l.valid = true;
    l.tag = tagOf(addr);
    l.dirty = dirty;
    l.touched = tick;
    return evicted;
}

void
Molecule::noteTouch(Addr addr, u64 tick)
{
    Line &l = lines_[indexOf(addr)];
    MOLCACHE_ASSERT(l.valid && l.tag == tagOf(addr),
                    "noteTouch on non-resident line");
    l.touched = tick;
}

std::optional<u64>
Molecule::slotTouchTick(Addr addr) const
{
    const Line &l = lines_[indexOf(addr)];
    if (!l.valid)
        return std::nullopt;
    return l.touched;
}

std::vector<Addr>
Molecule::residentLines() const
{
    std::vector<Addr> out;
    out.reserve(valid_);
    for (u32 i = 0; i < numLines_; ++i) {
        if (lines_[i].valid)
            out.push_back((lines_[i].tag * numLines_ + i) * lineSize_);
    }
    return out;
}

bool
Molecule::invalidate(Addr addr)
{
    Line &l = lines_[indexOf(addr)];
    if (!l.valid || l.tag != tagOf(addr))
        return false;
    const bool was_dirty = l.dirty;
    l = Line{};
    --valid_;
    return was_dirty;
}

} // namespace molcache
