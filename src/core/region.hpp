/**
 * @file
 * A cache region (partition): the set of molecules owned by one
 * application, plus its *replacement view*.
 *
 * The replacement view (paper figure 4) arranges the region's molecules
 * as a 2-D sparse matrix.  Rows partition the address space
 * (row = (addr / moleculeSize) mod rowMax) and each row's width is that
 * row's associativity — rows may have different widths, which is how the
 * molecular cache realizes per-line adaptive associativity.  The physical
 * placement of molecules (which tile they sit on) has no bearing on the
 * view.
 *
 * With the Random placement policy the view degenerates to a single row
 * containing every molecule.
 *
 * Hot-path design (docs/perf.md): membership changes only at resize,
 * fault and migration events — rare next to the millions of accesses
 * between them — so all per-molecule bookkeeping lives in flat sorted
 * vectors (no node-based maps) and the per-access probe schedule is
 * memoized.  A generation counter bumped by every mutation invalidates
 * the cached schedules lazily.
 */

#ifndef MOLCACHE_CORE_REGION_HPP
#define MOLCACHE_CORE_REGION_HPP

#include <vector>

#include "core/molecule.hpp"
#include "core/params.hpp"
#include "util/random.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

/** Probes for one tile (one hop of a hierarchical lookup). */
struct TileProbes
{
    TileId tile{};
    std::vector<MoleculeId> molecules;
};

/**
 * A memoized probe schedule: everything one access needs to visit, in
 * probe order.  `home` already folds in the entry tile's shared-bit
 * molecules so the access loop touches exactly two arrays.
 */
struct ProbeSchedule
{
    /** Molecules to probe on the region's home tile (region members
     * first, then foreign shared-bit molecules of that tile). */
    std::vector<MoleculeId> home;
    /** Remote tiles, ascending tile order, probed via Ulmo. */
    std::vector<TileProbes> remote;
};

/**
 * Molecules per hosting tile: a flat vector of (tile, molecules)
 * entries sorted by tile.  Shaped like the std::map it replaced —
 * range-for yields pair-like entries and at()/count()/size() keep
 * working — but contiguous, so the per-access walk is cache-friendly.
 */
class TilePlacement
{
  public:
    struct Entry
    {
        TileId tile{};
        std::vector<MoleculeId> molecules;
    };

    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Entries for @p tile; fatal contract violation when absent. */
    const std::vector<MoleculeId> &at(TileId tile) const;
    size_t count(TileId tile) const { return find(tile) ? 1u : 0u; }

  private:
    friend class Region;
    Entry *find(TileId tile);
    const Entry *find(TileId tile) const;
    /** Entry for @p tile, created (sorted) when missing. */
    Entry &findOrCreate(TileId tile);
    void erase(TileId tile);

    std::vector<Entry> entries_; // sorted by tile
};

class Region
{
  public:
    /**
     * @param asid         owning application
     * @param policy       Random or Randy placement
     * @param lineMultiple region line size in molecule lines (paper 3.2)
     * @param homeTile     tile of the owning processor
     * @param homeCluster  cluster of the home tile
     * @param moleculeSize molecule capacity (bytes), fixes the row hash
     */
    Region(Asid asid, PlacementPolicy policy, u32 lineMultiple,
           TileId homeTile, ClusterId homeCluster, Bytes moleculeSize,
           u32 initialRowMax = 8);

    Asid asid() const { return asid_; }
    TileId homeTile() const { return homeTile_; }
    ClusterId homeCluster() const { return homeCluster_; }

    /** Re-home the region onto another tile of the SAME cluster (the
     * paper's non-static processor-tile mapping on context switch);
     * molecules stay where they are and become remote probes. */
    void
    rehome(TileId tile)
    {
        homeTile_ = tile;
        ++generation_;
    }
    u32 lineMultiple() const { return lineMultiple_; }
    PlacementPolicy policy() const { return policy_; }

    bool empty() const { return size_ == 0; }
    u32 size() const { return size_; }
    u32 rowMax() const { return static_cast<u32>(rows_.size()); }
    const std::vector<std::vector<MoleculeId>> &rows() const { return rows_; }

    /** Molecules per hosting tile, ascending tile order. */
    const TilePlacement &byTile() const { return byTile_; }

    /** True if @p mol belongs to this region. */
    bool contains(MoleculeId mol) const { return findMol(mol) != nullptr; }

    /**
     * Membership/topology generation: bumped by addMolecule,
     * removeMolecule and rehome.  Anything derived from the membership
     * (notably the memoized probe schedules) is stale once it changes.
     */
    u64 generation() const { return generation_; }

    /**
     * The memoized probe schedule for @p addr (docs/perf.md).  Rebuilt
     * lazily when the region generation or @p sharedGen moved since the
     * cached copy was computed; steady-state calls are allocation-free.
     *
     * Matches planLookup(*this, homeTile(), addr, rowRestricted) with
     * the foreign molecules of @p sharedHome (the home tile's
     * shared-bit list, may be null) appended to the home probes —
     * pinned by tests/core/probe_schedule_test.cpp.
     *
     * @param rowRestricted Randy-only row-restricted-lookup ablation
     * @param sharedGen     generation of the caller's shared-bit state
     * @param sharedHome    shared-bit molecules hosted on homeTile()
     */
    const ProbeSchedule &
    probeSchedule(Addr addr, bool rowRestricted, u64 sharedGen,
                  const std::vector<MoleculeId> *sharedHome);

    /**
     * Add @p mol (hosted on @p tile) to the region.
     * During initial allocation (@p initial true) each molecule opens its
     * own row, establishing rowMax; later grants widen the row with the
     * highest replacement-miss count ("Where to add?", section 3.4).
     */
    void addMolecule(MoleculeId mol, TileId tile, bool initial);

    /** Remove @p mol from the view; empty rows are deleted (rowMax may
     * shrink — lookups stay correct because the whole region is probed). */
    void removeMolecule(MoleculeId mol);

    /** Replacement-view row of @p addr (Randy hash). */
    RowIndex rowOf(Addr addr) const;

    /**
     * Choose the molecule that receives a fill for @p addr:
     * Random — uniform over the region; Randy — uniform over the
     * molecules of the address's row.
     */
    MoleculeId chooseFillMolecule(Addr addr, RandomSource &rng) const;

    /**
     * Withdrawal candidate: the molecule holding the least replacement
     * activity this interval — per-molecule counters under Random,
     * per-row counters under Randy (section 3.4, "Where to add?").
     * @return kInvalidMolecule if the region is empty.
     */
    MoleculeId pickWithdrawal() const;

    /** Account a replacement performed into @p mol for @p addr. */
    void noteReplacement(MoleculeId mol, Addr addr);

    /** Per-access accounting (drives the resizer and HPM). */
    void noteAccess(bool hit);

    /** Batched equivalent of @p n noteAccess(true) calls (the batch
     * access plane flushes its per-lane hit accumulator through here;
     * all counters are sums, so the result is identical). */
    void
    noteAccessHits(u64 n)
    {
        accesses_ += n;
        intervalAccesses_ += n;
        hits_ += n;
    }

    /** @{ Interval statistics consumed by the resizer. */
    u64 intervalAccesses() const { return intervalAccesses_; }
    u64 intervalMisses() const { return intervalMisses_; }
    double intervalMissRate() const;
    /**
     * Cold-miss-compensated rate: only misses that displaced a line count
     * (compulsory fills into empty slots do not indicate thrashing).  The
     * paper suggests exactly this refinement ("counters with cold miss
     * compensation", section 3.4).
     */
    double intervalReplacementRate() const;
    /** Close the interval: zero interval and per-molecule/row counters. */
    void closeInterval();
    /** @} */

    /** @{ Lifetime statistics. */
    u64 accesses() const { return accesses_; }
    u64 hits() const { return hits_; }
    /** @} */

    /** @{ Resizer per-region state (Algorithm 1). */
    double resizeGoal = 0.1;   // miss-rate goal Algorithm 1 steers towards
    double lastMissRate = 2.0; // "+inf": first interval always improves
    u32 maxAllocation = 0;     // chunk cap; clamped by the thrash clause
    u32 lastGrant = 0;         // molecules granted by the last grow
    bool lastGrantShort = false; // last grow delivered less than wanted
    u64 nextResizeTick = 0;    // per-app adaptive scheme deadline
    u64 resizePeriod = 0;      // per-app adaptive scheme period
    u64 hintWakeTick = 0;      // side-band predictive wakeup (0 = none);
                               // fires predictiveStep only, so a phase
                               // hint never perturbs the reactive cadence
    u32 thrashStreak = 0;      // consecutive intervals above the threshold
    u32 capacityFloor = 0;     // guardian fairness floor, molecules (0=off)
    /** @} */

    /** @{ Fault-degradation state (docs/fault_model.md).  A molecule
     * lost to decommissioning leaves a capacity hole; the resizer
     * re-acquires replacements from the cluster pool ahead of the normal
     * Algorithm-1 decision and tracks how many resize epochs the region
     * needs to converge back under its miss-rate goal. */
    u32 pendingReacquire = 0;   // replacements not yet re-granted
    bool recovering = false;    // above-goal since a capacity loss
    u32 recoveryEpochs = 0;     // epochs spent in the current recovery
    u32 lastRecoveryEpochs = 0; // epochs the last completed recovery took
    u64 moleculesLost = 0;      // lifetime molecules lost to faults

    /** Record the fault-loss of one owned molecule (post-removal). */
    void
    noteMoleculeLost()
    {
        ++moleculesLost;
        ++pendingReacquire;
        if (!recovering) {
            recovering = true;
            recoveryEpochs = 0;
        }
    }
    /** @} */

  private:
    /** Flat per-molecule record: row/tile/interval-miss bookkeeping that
     * used to live in three parallel std::maps. */
    struct MolEntry
    {
        MoleculeId mol{};
        TileId tile{};
        RowIndex row{};
        u64 miss = 0;
    };

    /** Binary search in the sorted mols_ vector; nullptr when absent. */
    MolEntry *findMol(MoleculeId mol);
    const MolEntry *findMol(MoleculeId mol) const;

    /** Rebuild the cached schedule slot for @p row (kNoRow = whole
     * region) against the current membership + shared list. */
    void rebuildSchedule(size_t slot, bool restrictRow,
                         const std::vector<MoleculeId> *sharedHome);

    Asid asid_;
    PlacementPolicy policy_;
    u32 lineMultiple_;
    TileId homeTile_;
    ClusterId homeCluster_;
    Bytes moleculeSize_;
    u32 initialRowMax_;

    std::vector<std::vector<MoleculeId>> rows_;
    std::vector<u64> rowMiss_;
    std::vector<MolEntry> mols_; // sorted by mol
    TilePlacement byTile_;
    u32 size_ = 0;
    u64 generation_ = 0;

    // Probe-schedule memo: one slot per replacement row under
    // row-restricted Randy lookup, a single slot otherwise.  Slots are
    // rebuilt lazily on (generation, sharedGen, mode) mismatch.
    std::vector<ProbeSchedule> schedules_;
    std::vector<u8> scheduleValid_;
    u64 scheduleGen_ = ~0ull;
    u64 scheduleSharedGen_ = ~0ull;
    bool scheduleRowRestricted_ = false;

    u64 intervalAccesses_ = 0;
    u64 intervalMisses_ = 0;
    u64 intervalReplacements_ = 0;
    u64 accesses_ = 0;
    u64 hits_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_REGION_HPP
