/**
 * @file
 * A cache region (partition): the set of molecules owned by one
 * application, plus its *replacement view*.
 *
 * The replacement view (paper figure 4) arranges the region's molecules
 * as a 2-D sparse matrix.  Rows partition the address space
 * (row = (addr / moleculeSize) mod rowMax) and each row's width is that
 * row's associativity — rows may have different widths, which is how the
 * molecular cache realizes per-line adaptive associativity.  The physical
 * placement of molecules (which tile they sit on) has no bearing on the
 * view.
 *
 * With the Random placement policy the view degenerates to a single row
 * containing every molecule.
 */

#ifndef MOLCACHE_CORE_REGION_HPP
#define MOLCACHE_CORE_REGION_HPP

#include <map>
#include <vector>

#include "core/molecule.hpp"
#include "core/params.hpp"
#include "util/random.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

class Region
{
  public:
    /**
     * @param asid         owning application
     * @param policy       Random or Randy placement
     * @param lineMultiple region line size in molecule lines (paper 3.2)
     * @param homeTile     tile of the owning processor
     * @param homeCluster  cluster of the home tile
     * @param moleculeSize molecule capacity (bytes), fixes the row hash
     */
    Region(Asid asid, PlacementPolicy policy, u32 lineMultiple,
           TileId homeTile, ClusterId homeCluster, Bytes moleculeSize,
           u32 initialRowMax = 8);

    Asid asid() const { return asid_; }
    TileId homeTile() const { return homeTile_; }
    ClusterId homeCluster() const { return homeCluster_; }

    /** Re-home the region onto another tile of the SAME cluster (the
     * paper's non-static processor-tile mapping on context switch);
     * molecules stay where they are and become remote probes. */
    void rehome(TileId tile) { homeTile_ = tile; }
    u32 lineMultiple() const { return lineMultiple_; }
    PlacementPolicy policy() const { return policy_; }

    bool empty() const { return size_ == 0; }
    u32 size() const { return size_; }
    u32 rowMax() const { return static_cast<u32>(rows_.size()); }
    const std::vector<std::vector<MoleculeId>> &rows() const { return rows_; }

    /** Molecules per hosting tile; iteration starts at the home tile. */
    const std::map<TileId, std::vector<MoleculeId>> &byTile() const
    {
        return byTile_;
    }

    /** True if @p mol belongs to this region. */
    bool contains(MoleculeId mol) const { return molRow_.count(mol) != 0; }

    /**
     * Add @p mol (hosted on @p tile) to the region.
     * During initial allocation (@p initial true) each molecule opens its
     * own row, establishing rowMax; later grants widen the row with the
     * highest replacement-miss count ("Where to add?", section 3.4).
     */
    void addMolecule(MoleculeId mol, TileId tile, bool initial);

    /** Remove @p mol from the view; empty rows are deleted (rowMax may
     * shrink — lookups stay correct because the whole region is probed). */
    void removeMolecule(MoleculeId mol);

    /** Replacement-view row of @p addr (Randy hash). */
    RowIndex rowOf(Addr addr) const;

    /**
     * Choose the molecule that receives a fill for @p addr:
     * Random — uniform over the region; Randy — uniform over the
     * molecules of the address's row.
     */
    MoleculeId chooseFillMolecule(Addr addr, RandomSource &rng) const;

    /**
     * Withdrawal candidate: the molecule holding the least replacement
     * activity this interval — per-molecule counters under Random,
     * per-row counters under Randy (section 3.4, "Where to add?").
     * @return kInvalidMolecule if the region is empty.
     */
    MoleculeId pickWithdrawal() const;

    /** Account a replacement performed into @p mol for @p addr. */
    void noteReplacement(MoleculeId mol, Addr addr);

    /** Per-access accounting (drives the resizer and HPM). */
    void noteAccess(bool hit);

    /** @{ Interval statistics consumed by the resizer. */
    u64 intervalAccesses() const { return intervalAccesses_; }
    u64 intervalMisses() const { return intervalMisses_; }
    double intervalMissRate() const;
    /**
     * Cold-miss-compensated rate: only misses that displaced a line count
     * (compulsory fills into empty slots do not indicate thrashing).  The
     * paper suggests exactly this refinement ("counters with cold miss
     * compensation", section 3.4).
     */
    double intervalReplacementRate() const;
    /** Close the interval: zero interval and per-molecule/row counters. */
    void closeInterval();
    /** @} */

    /** @{ Lifetime statistics. */
    u64 accesses() const { return accesses_; }
    u64 hits() const { return hits_; }
    /** @} */

    /** @{ Resizer per-region state (Algorithm 1). */
    double resizeGoal = 0.1;   // miss-rate goal Algorithm 1 steers towards
    double lastMissRate = 2.0; // "+inf": first interval always improves
    u32 maxAllocation = 0;     // chunk cap; clamped by the thrash clause
    u32 lastGrant = 0;         // molecules granted by the last grow
    bool lastGrantShort = false; // last grow delivered less than wanted
    u64 nextResizeTick = 0;    // per-app adaptive scheme deadline
    u64 resizePeriod = 0;      // per-app adaptive scheme period
    u32 thrashStreak = 0;      // consecutive intervals above the threshold
    /** @} */

    /** @{ Fault-degradation state (docs/fault_model.md).  A molecule
     * lost to decommissioning leaves a capacity hole; the resizer
     * re-acquires replacements from the cluster pool ahead of the normal
     * Algorithm-1 decision and tracks how many resize epochs the region
     * needs to converge back under its miss-rate goal. */
    u32 pendingReacquire = 0;   // replacements not yet re-granted
    bool recovering = false;    // above-goal since a capacity loss
    u32 recoveryEpochs = 0;     // epochs spent in the current recovery
    u32 lastRecoveryEpochs = 0; // epochs the last completed recovery took
    u64 moleculesLost = 0;      // lifetime molecules lost to faults

    /** Record the fault-loss of one owned molecule (post-removal). */
    void
    noteMoleculeLost()
    {
        ++moleculesLost;
        ++pendingReacquire;
        if (!recovering) {
            recovering = true;
            recoveryEpochs = 0;
        }
    }
    /** @} */

  private:
    Asid asid_;
    PlacementPolicy policy_;
    u32 lineMultiple_;
    TileId homeTile_;
    ClusterId homeCluster_;
    Bytes moleculeSize_;
    u32 initialRowMax_;

    std::vector<std::vector<MoleculeId>> rows_;
    std::vector<u64> rowMiss_;
    std::map<MoleculeId, u64> molMiss_;
    std::map<MoleculeId, RowIndex> molRow_;
    std::map<MoleculeId, TileId> molTile_;
    std::map<TileId, std::vector<MoleculeId>> byTile_;
    u32 size_ = 0;

    u64 intervalAccesses_ = 0;
    u64 intervalMisses_ = 0;
    u64 intervalReplacements_ = 0;
    u64 accesses_ = 0;
    u64 hits_ = 0;
};

} // namespace molcache

#endif // MOLCACHE_CORE_REGION_HPP
