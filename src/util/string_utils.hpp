/**
 * @file
 * Small string helpers shared by the config and CLI parsers.
 */

#ifndef MOLCACHE_UTIL_STRING_UTILS_HPP
#define MOLCACHE_UTIL_STRING_UTILS_HPP

#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace molcache {

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split @p s on @p sep, trimming each piece; empty pieces are kept. */
std::vector<std::string> split(std::string_view s, char sep);

/** ASCII lower-case copy. */
std::string toLower(std::string_view s);

/** True if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/**
 * Parse a size with optional binary suffix: "8K"/"8KiB"/"8KB" = 8192,
 * "1M" = 1 MiB, plain digits = bytes.  Calls fatal() on malformed input.
 */
u64 parseSize(std::string_view s);

/** Parse a boolean from "1/0/true/false/yes/no/on/off". */
bool parseBool(std::string_view s);

/** printf-style double with fixed precision. */
std::string formatDouble(double v, int precision);

} // namespace molcache

#endif // MOLCACHE_UTIL_STRING_UTILS_HPP
