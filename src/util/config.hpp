/**
 * @file
 * Minimal key=value configuration store.
 *
 * Experiments and example binaries accept overrides either from a file
 * (one `key = value` per line, '#' comments) or from CLI tokens of the
 * form `key=value`.  Typed getters convert on access and fatal() on
 * malformed values so misconfiguration fails loudly.  File parse errors
 * carry `path:line` context, and binaries can call warnUnknownKeys()
 * after consuming their keys so a typo ("fault.sed = 7") is reported
 * instead of silently ignored.
 */

#ifndef MOLCACHE_UTIL_CONFIG_HPP
#define MOLCACHE_UTIL_CONFIG_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"
#include "util/units.hpp"

namespace molcache {

class Config
{
  public:
    Config() = default;

    /** Parse a config file; fatal() if unreadable. */
    static Config fromFile(const std::string &path);

    /** Parse `key=value` tokens (e.g. remaining CLI args). */
    static Config fromTokens(const std::vector<std::string> &tokens);

    /** Set/overwrite a key. */
    void set(const std::string &key, const std::string &value);

    /** Merge @p other into this, overwriting duplicates. */
    void merge(const Config &other);

    bool has(const std::string &key) const;

    /** Raw string value; fatal() if missing. */
    std::string getString(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    i64 getInt(const std::string &key) const;
    i64 getInt(const std::string &key, i64 fallback) const;

    double getDouble(const std::string &key) const;
    double getDouble(const std::string &key, double fallback) const;

    bool getBool(const std::string &key) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** Size with K/M/G suffix support. */
    u64 getSize(const std::string &key) const;
    u64 getSize(const std::string &key, u64 fallback) const;
    /** Strongly-typed variant: fallback and result carry the unit. */
    Bytes getSize(const std::string &key, Bytes fallback) const;

    /** All keys in sorted order (for dumping). */
    std::vector<std::string> keys() const;

    /**
     * warn() about every key not covered by @p knownKeys and return how
     * many there were.  An entry ending in '.' is a prefix wildcard:
     * "fault." covers every `fault.*` key.  Call after a binary has read
     * its keys so misspellings surface instead of silently defaulting.
     */
    u32 warnUnknownKeys(const std::vector<std::string> &knownKeys) const;

  private:
    std::optional<std::string> lookup(const std::string &key) const;

    std::map<std::string, std::string> values_;
};

} // namespace molcache

#endif // MOLCACHE_UTIL_CONFIG_HPP
