#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace molcache {

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

void
CliParser::addOption(const std::string &name, const std::string &defaultValue,
                     const std::string &help)
{
    options_[name] = Option{defaultValue, help, false, false};
}

void
CliParser::addFlag(const std::string &name, const std::string &help)
{
    options_[name] = Option{"0", help, true, false};
}

void
CliParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            printHelpAndExit();
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        bool have_value = false;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            have_value = true;
        }
        auto it = options_.find(arg);
        if (it == options_.end())
            fatal("unknown option '--", arg, "' (try --help)");
        Option &opt = it->second;
        if (opt.isFlag) {
            opt.value = have_value ? value : "1";
        } else if (have_value) {
            opt.value = value;
        } else {
            if (i + 1 >= argc)
                fatal("option '--", arg, "' needs a value");
            opt.value = argv[++i];
        }
        opt.seen = true;
    }
}

const CliParser::Option &
CliParser::find(const std::string &name) const
{
    const auto it = options_.find(name);
    if (it == options_.end())
        panic("query of unregistered option '", name, "'");
    return it->second;
}

bool
CliParser::flag(const std::string &name) const
{
    return parseBool(find(name).value);
}

std::string
CliParser::str(const std::string &name) const
{
    return find(name).value;
}

i64
CliParser::integer(const std::string &name) const
{
    const std::string v = find(name).value;
    i64 out = 0;
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || p != v.data() + v.size())
        fatal("option '--", name, "' has non-integer value '", v, "'");
    return out;
}

double
CliParser::real(const std::string &name) const
{
    const std::string v = find(name).value;
    try {
        return std::stod(v);
    } catch (const std::exception &) {
        fatal("option '--", name, "' has non-numeric value '", v, "'");
    }
}

u64
CliParser::size(const std::string &name) const
{
    return parseSize(find(name).value);
}

void
CliParser::printHelpAndExit() const
{
    std::printf("%s — %s\n\noptions:\n", program_.c_str(), summary_.c_str());
    for (const auto &[name, opt] : options_) {
        std::printf("  --%-22s %s%s\n", name.c_str(), opt.help.c_str(),
                    opt.isFlag ? " (flag)"
                               : (" [default: " + opt.value + "]").c_str());
    }
    std::exit(0);
}

} // namespace molcache
