#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>

namespace molcache {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

void
emitFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
emitPanic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace detail
} // namespace molcache
