/**
 * @file
 * Small bit-manipulation helpers used by cache indexing logic.
 */

#ifndef MOLCACHE_UTIL_BITS_HPP
#define MOLCACHE_UTIL_BITS_HPP

#include <bit>
#include <cassert>

#include "util/types.hpp"

namespace molcache {

/** True iff @p v is a power of two (zero is not). */
inline constexpr bool
isPowerOfTwo(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
inline constexpr u32
floorLog2(u64 v)
{
    assert(v != 0);
    return 63u - static_cast<u32>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be non-zero. */
inline constexpr u32
ceilLog2(u64 v)
{
    assert(v != 0);
    return v == 1 ? 0u : floorLog2(v - 1) + 1;
}

/** Round @p v down to a multiple of power-of-two @p align. */
inline constexpr u64
alignDown(u64 v, u64 align)
{
    assert(isPowerOfTwo(align));
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of power-of-two @p align. */
inline constexpr u64
alignUp(u64 v, u64 align)
{
    assert(isPowerOfTwo(align));
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of @p v, right-aligned. */
inline constexpr u64
bitsOf(u64 v, u32 hi, u32 lo)
{
    assert(hi >= lo && hi < 64);
    const u64 width = hi - lo + 1;
    const u64 mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    return (v >> lo) & mask;
}

} // namespace molcache

#endif // MOLCACHE_UTIL_BITS_HPP
