/**
 * @file
 * Small bit-manipulation helpers used by cache indexing logic.
 */

#ifndef MOLCACHE_UTIL_BITS_HPP
#define MOLCACHE_UTIL_BITS_HPP

#include <bit>

#include "contract/contract.hpp"
#include "util/types.hpp"

namespace molcache {

/** True iff @p v is a power of two (zero is not). */
inline constexpr bool
isPowerOfTwo(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
inline constexpr u32
floorLog2(u64 v)
{
    MOLCACHE_EXPECT(v != 0, "floorLog2 of zero");
    return 63u - static_cast<u32>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be non-zero. */
inline constexpr u32
ceilLog2(u64 v)
{
    MOLCACHE_EXPECT(v != 0, "ceilLog2 of zero");
    return v == 1 ? 0u : floorLog2(v - 1) + 1;
}

/** Round @p v down to a multiple of power-of-two @p align. */
inline constexpr u64
alignDown(u64 v, u64 align)
{
    MOLCACHE_EXPECT(isPowerOfTwo(align), "alignment must be a power of two");
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of power-of-two @p align. */
inline constexpr u64
alignUp(u64 v, u64 align)
{
    MOLCACHE_EXPECT(isPowerOfTwo(align), "alignment must be a power of two");
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of @p v, right-aligned. */
inline constexpr u64
bitsOf(u64 v, u32 hi, u32 lo)
{
    MOLCACHE_EXPECT(hi >= lo && hi < 64, "bad bit range");
    const u64 width = hi - lo + 1;
    const u64 mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    return (v >> lo) & mask;
}

} // namespace molcache

#endif // MOLCACHE_UTIL_BITS_HPP
