/**
 * @file
 * Central registry of every configuration key molcache understands.
 *
 * Binaries read keys through Config::get* and then call
 * Config::warnUnknownKeys(knownConfigKeyNames()) so typos surface instead
 * of silently defaulting.  tools/molcache_lint enforces the inverse
 * direction at CI time: every key literal passed to a Config::get or
 * Config::has call in the tree must appear here, so a key can neither be
 * read nor registered in only one place.  Entries ending in '.' are prefix wildcards
 * (e.g. "goal." covers "goal.0", "goal.1", ...).
 */

#ifndef MOLCACHE_UTIL_CONFIG_KEYS_HPP
#define MOLCACHE_UTIL_CONFIG_KEYS_HPP

#include <string>
#include <vector>

namespace molcache {

/** One registered key (or '.'-terminated prefix) and its purpose. */
struct ConfigKeyInfo
{
    const char *key;
    const char *help;
};

/** The full registry, sorted by key. */
const std::vector<ConfigKeyInfo> &knownConfigKeys();

/** Registry keys only — the warnUnknownKeys() argument. */
std::vector<std::string> knownConfigKeyNames();

/** True if @p key is registered (exact match or prefix wildcard). */
bool isKnownConfigKey(const std::string &key);

} // namespace molcache

#endif // MOLCACHE_UTIL_CONFIG_KEYS_HPP
