#include "util/config.hpp"

#include <charconv>
#include <fstream>

#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace molcache {

namespace {

void
parseLineInto(Config &cfg, const std::string &line, const std::string &where)
{
    const std::string stripped = trim(line.substr(0, line.find('#')));
    if (stripped.empty())
        return;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos)
        fatal("malformed config entry '", stripped, "' at ", where,
              " (expected 'key = value')");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty())
        fatal("empty config key at ", where);
    cfg.set(key, value);
}

} // namespace

Config
Config::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '", path, "'");
    Config cfg;
    std::string line;
    u64 lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        parseLineInto(cfg, line, path + ":" + std::to_string(lineno));
    }
    return cfg;
}

Config
Config::fromTokens(const std::vector<std::string> &tokens)
{
    Config cfg;
    for (const auto &tok : tokens)
        parseLineInto(cfg, tok, "command line");
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.values_)
        values_[k] = v;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::optional<std::string>
Config::lookup(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string &key) const
{
    const auto v = lookup(key);
    if (!v)
        fatal("missing required config key '", key, "'");
    return *v;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    return lookup(key).value_or(fallback);
}

i64
Config::getInt(const std::string &key) const
{
    const std::string v = getString(key);
    i64 out = 0;
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || p != v.data() + v.size())
        fatal("config key '", key, "' has non-integer value '", v, "'");
    return out;
}

i64
Config::getInt(const std::string &key, i64 fallback) const
{
    return has(key) ? getInt(key) : fallback;
}

double
Config::getDouble(const std::string &key) const
{
    const std::string v = getString(key);
    try {
        size_t used = 0;
        const double out = std::stod(v, &used);
        if (used != v.size())
            fatal("config key '", key, "' has non-numeric value '", v, "'");
        return out;
    } catch (const std::exception &) {
        fatal("config key '", key, "' has non-numeric value '", v, "'");
    }
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    return has(key) ? getDouble(key) : fallback;
}

bool
Config::getBool(const std::string &key) const
{
    return parseBool(getString(key));
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    return has(key) ? getBool(key) : fallback;
}

u64
Config::getSize(const std::string &key) const
{
    return parseSize(getString(key));
}

u64
Config::getSize(const std::string &key, u64 fallback) const
{
    return has(key) ? getSize(key) : fallback;
}

Bytes
Config::getSize(const std::string &key, Bytes fallback) const
{
    return has(key) ? Bytes{getSize(key)} : fallback;
}

u32
Config::warnUnknownKeys(const std::vector<std::string> &knownKeys) const
{
    u32 unknown = 0;
    for (const auto &[key, value] : values_) {
        bool known = false;
        for (const auto &k : knownKeys) {
            if (k == key ||
                (!k.empty() && k.back() == '.' &&
                 key.compare(0, k.size(), k) == 0)) {
                known = true;
                break;
            }
        }
        if (!known) {
            ++unknown;
            warn("unknown config key '", key, "' (value '", value,
                 "') — ignored; check for a typo");
        }
    }
    return unknown;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

} // namespace molcache
