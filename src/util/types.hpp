/**
 * @file
 * Fundamental scalar types used throughout molcache.
 *
 * The simulator follows the gem5 convention of short fixed-width aliases
 * plus a handful of domain types (addresses, application-space identifiers,
 * simulated time).  Keeping these in one header ensures every module agrees
 * on widths and avoids accidental narrowing.
 */

#ifndef MOLCACHE_UTIL_TYPES_HPP
#define MOLCACHE_UTIL_TYPES_HPP

#include <cstdint>
#include <limits>

namespace molcache {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Physical (or trace) byte address. */
using Addr = u64;

/**
 * Application Space Identifier.  Every running application owning a cache
 * region is tagged with a unique ASID; molecules are configured with the
 * ASID of the region they belong to (paper section 3.1).
 */
using Asid = u16;

/** Sentinel ASID meaning "no application / unconfigured". */
inline constexpr Asid kInvalidAsid = std::numeric_limits<Asid>::max();

/** Simulated time expressed in cache accesses serviced. */
using Tick = u64;

/** Invalid/sentinel address. */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

} // namespace molcache

#endif // MOLCACHE_UTIL_TYPES_HPP
