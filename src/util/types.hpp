/**
 * @file
 * Fundamental scalar and strong domain types used throughout molcache.
 *
 * The simulator follows the gem5 convention of short fixed-width aliases
 * plus a set of *strong* domain types (identifiers for molecules, tiles,
 * clusters, replacement-view rows and applications).  The hot paths
 * shuffle many integers that mean very different things; a transposed
 * argument silently corrupts results instead of failing fast.  StrongId
 * makes each identifier its own type so the compiler rejects the mix-up
 * at zero runtime cost (the wrapper is a single register-sized value and
 * every operation inlines to the raw integer op).
 *
 * Conventions (docs/static_analysis.md):
 *  - construct explicitly: `MoleculeId{7}`, never from another id type;
 *  - `.value()` is the only escape hatch back to the raw integer — use
 *    it at indexing/formatting boundaries only;
 *  - ids support ordering, increment and offset arithmetic (`id + n`,
 *    `idA - idB`), but no cross-type operations;
 *  - public APIs in src/core/ take the strong types, never raw u64/u32
 *    ids (enforced by tools/molcache_lint).
 */

#ifndef MOLCACHE_UTIL_TYPES_HPP
#define MOLCACHE_UTIL_TYPES_HPP

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace molcache {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Physical (or trace) byte address. */
using Addr = u64;

/** Simulated time expressed in cache accesses serviced. */
using Tick = u64;

/** Invalid/sentinel address. */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/**
 * Zero-cost strongly-typed identifier.
 *
 * @tparam Tag  phantom type distinguishing id spaces (never defined)
 * @tparam RepT underlying integer representation
 */
template <typename Tag, typename RepT>
class StrongId
{
  public:
    using Rep = RepT;

    constexpr StrongId() = default;
    constexpr explicit StrongId(RepT v) : v_(v) {}

    /** The raw integer; use only at indexing/formatting boundaries. */
    constexpr RepT value() const { return v_; }

    friend constexpr bool operator==(StrongId, StrongId) = default;
    friend constexpr auto operator<=>(StrongId, StrongId) = default;

    /** Dense-id iteration (`for (id = first; id < end; ++id)`). */
    constexpr StrongId &
    operator++()
    {
        ++v_;
        return *this;
    }
    constexpr StrongId &
    operator--()
    {
        --v_;
        return *this;
    }

    /** Offset within one id space. */
    friend constexpr StrongId
    operator+(StrongId a, RepT n)
    {
        return StrongId(static_cast<RepT>(a.v_ + n));
    }

    /** Distance within one id space. */
    friend constexpr RepT
    operator-(StrongId a, StrongId b)
    {
        return static_cast<RepT>(a.v_ - b.v_);
    }

  private:
    RepT v_ = 0;
};

/** Ids format as their raw value (logging, gtest failure messages). */
template <typename Tag, typename RepT>
std::ostream &
operator<<(std::ostream &os, StrongId<Tag, RepT> id)
{
    return os << +id.value();
}

/** Dense molecule identifier, unique across the whole molecular cache. */
using MoleculeId = StrongId<struct MoleculeIdTag, u32>;

/** Global tile index (tiles are numbered across all clusters). */
using TileId = StrongId<struct TileIdTag, u32>;

/** Tile-cluster index (one Ulmo per cluster). */
using ClusterId = StrongId<struct ClusterIdTag, u32>;

/** Row of a region's replacement view (paper figure 4). */
using RowIndex = StrongId<struct RowIndexTag, u32>;

/**
 * Application Space Identifier.  Every running application owning a cache
 * region is tagged with a unique ASID; molecules are configured with the
 * ASID of the region they belong to (paper section 3.1).
 */
using Asid = StrongId<struct AsidTag, u16>;

/**
 * A line-aligned byte address — the granule the coherence directory
 * tracks.  Distinct from Addr so a raw (unaligned) reference address
 * cannot be passed where a line identity is required.
 */
using LineAddr = StrongId<struct LineAddrTag, u64>;

/** Sentinel molecule id meaning "no molecule". */
inline constexpr MoleculeId kInvalidMolecule{
    std::numeric_limits<u32>::max()};

/** Sentinel ASID meaning "no application / unconfigured". */
inline constexpr Asid kInvalidAsid{std::numeric_limits<u16>::max()};

/** Line identity of @p addr for a @p lineSize-byte line. */
constexpr LineAddr
lineAddrOf(Addr addr, u32 lineSize)
{
    return LineAddr{addr & ~(static_cast<Addr>(lineSize) - 1)};
}

} // namespace molcache

/** Strong ids hash as their raw value (unordered containers). */
template <typename Tag, typename RepT>
struct std::hash<molcache::StrongId<Tag, RepT>>
{
    std::size_t
    operator()(molcache::StrongId<Tag, RepT> id) const noexcept
    {
        return std::hash<RepT>{}(id.value());
    }
};

#endif // MOLCACHE_UTIL_TYPES_HPP
