/**
 * @file
 * Portable Clang Thread Safety Analysis (TSA) annotation macros.
 *
 * Under Clang with -Wthread-safety these expand to the capability
 * attributes, turning lock discipline into a compile-time property: a
 * read of a MOLCACHE_GUARDED_BY member without its mutex held, a
 * function called without its MOLCACHE_REQUIRES capability, or a lock
 * released on the wrong path is a build break (the clang presets and CI
 * add -Werror=thread-safety).  Under every other compiler they expand
 * to nothing, so the annotated code stays portable to the GCC-only
 * tier-1 build.
 *
 * Annotate with the semantic vocabulary, not raw attributes:
 *
 *   - MOLCACHE_CAPABILITY("mutex")  on a lockable class (mc::Mutex);
 *   - MOLCACHE_GUARDED_BY(m)        on data members the mutex protects;
 *   - MOLCACHE_PT_GUARDED_BY(m)     on pointers whose *pointee* it protects;
 *   - MOLCACHE_REQUIRES(m)          on functions that must be called with
 *                                   m held (and do not change that);
 *   - MOLCACHE_ACQUIRE(m)/MOLCACHE_RELEASE(m) on lock/unlock functions;
 *   - MOLCACHE_EXCLUDES(m)          on functions that must NOT hold m
 *                                   (deadlock documentation);
 *   - MOLCACHE_SCOPED_CAPABILITY    on RAII lock holders (mc::MutexLock);
 *   - MOLCACHE_NO_THREAD_SAFETY_ANALYSIS  the audited escape hatch —
 *     always pair it with a comment saying why the analysis is wrong.
 *
 * docs/static_analysis.md ("Concurrency discipline") has the usage
 * rules; tests/exec/tsa_probe.cpp pins that an unguarded access really
 * fails to compile under the clang preset.
 */

#ifndef MOLCACHE_UTIL_THREAD_ANNOTATIONS_HPP
#define MOLCACHE_UTIL_THREAD_ANNOTATIONS_HPP

#if defined(__clang__) && (!defined(SWIG))
#define MOLCACHE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MOLCACHE_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

#define MOLCACHE_CAPABILITY(x) \
    MOLCACHE_THREAD_ANNOTATION(capability(x))

#define MOLCACHE_SCOPED_CAPABILITY \
    MOLCACHE_THREAD_ANNOTATION(scoped_lockable)

#define MOLCACHE_GUARDED_BY(x) \
    MOLCACHE_THREAD_ANNOTATION(guarded_by(x))

#define MOLCACHE_PT_GUARDED_BY(x) \
    MOLCACHE_THREAD_ANNOTATION(pt_guarded_by(x))

#define MOLCACHE_ACQUIRED_BEFORE(...) \
    MOLCACHE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define MOLCACHE_ACQUIRED_AFTER(...) \
    MOLCACHE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define MOLCACHE_REQUIRES(...) \
    MOLCACHE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define MOLCACHE_REQUIRES_SHARED(...) \
    MOLCACHE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define MOLCACHE_ACQUIRE(...) \
    MOLCACHE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define MOLCACHE_ACQUIRE_SHARED(...) \
    MOLCACHE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define MOLCACHE_RELEASE(...) \
    MOLCACHE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define MOLCACHE_RELEASE_SHARED(...) \
    MOLCACHE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define MOLCACHE_TRY_ACQUIRE(...) \
    MOLCACHE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define MOLCACHE_EXCLUDES(...) \
    MOLCACHE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define MOLCACHE_ASSERT_CAPABILITY(x) \
    MOLCACHE_THREAD_ANNOTATION(assert_capability(x))

#define MOLCACHE_RETURN_CAPABILITY(x) \
    MOLCACHE_THREAD_ANNOTATION(lock_returned(x))

#define MOLCACHE_NO_THREAD_SAFETY_ANALYSIS \
    MOLCACHE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // MOLCACHE_UTIL_THREAD_ANNOTATIONS_HPP
