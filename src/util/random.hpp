/**
 * @file
 * Deterministic, seedable random number sources.
 *
 * The molecular cache's Random and Randy replacement schemes pick victim
 * molecules at random; the paper notes that the load-spreading quality of
 * Random replacement "is highly dependent on the entropy of the random
 * number generator implemented in hardware" (section 3.3).  To study that,
 * molcache provides several sources behind one interface:
 *
 *  - Pcg32          — high quality software PRNG (simulation default);
 *  - XorShift64Star — mid quality, very cheap;
 *  - GaloisLfsr16   — a 16-bit LFSR modelling the kind of shift-register
 *                     RNG that is realistic to build in cache hardware
 *                     (short period, correlated low bits).
 *
 * All sources are deterministic given a seed so experiments reproduce
 * bit-for-bit.
 */

#ifndef MOLCACHE_UTIL_RANDOM_HPP
#define MOLCACHE_UTIL_RANDOM_HPP

#include <memory>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace molcache {

/** Abstract stream of uniform 32-bit random values. */
class RandomSource
{
  public:
    virtual ~RandomSource() = default;

    /** Next uniform 32-bit value. */
    virtual u32 next32() = 0;

    /** Human-readable generator name (for reports). */
    virtual std::string name() const = 0;

    /** Uniform value in [0, bound); bound must be non-zero. */
    u32 below(u32 bound);

    /** Uniform value in [lo, hi] inclusive. */
    u32 between(u32 lo, u32 hi);

    /** Uniform double in [0, 1). */
    double unitReal();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /** Uniform 64-bit value. */
    u64 next64();
};

/** PCG-XSH-RR 64/32 (O'Neill 2014); molcache's default generator. */
class Pcg32 final : public RandomSource
{
  public:
    explicit Pcg32(u64 seed = 0x853c49e6748fea9bull,
                   u64 stream = 0xda3e39cb94b95bdbull);

    u32 next32() override;
    std::string name() const override { return "pcg32"; }

  private:
    u64 state_;
    u64 inc_;
};

/** xorshift64* — cheap, decent quality. */
class XorShift64Star final : public RandomSource
{
  public:
    explicit XorShift64Star(u64 seed = 0x9e3779b97f4a7c15ull);

    u32 next32() override;
    std::string name() const override { return "xorshift64star"; }

  private:
    u64 state_;
};

/**
 * 16-bit Galois LFSR (taps 16,14,13,11 — maximal length, period 65535).
 * Models a minimal hardware RNG; its short period and bit correlation make
 * it a deliberately weak source for the RNG-entropy ablation.
 */
class GaloisLfsr16 final : public RandomSource
{
  public:
    explicit GaloisLfsr16(u16 seed = 0xACE1u);

    u32 next32() override;
    std::string name() const override { return "lfsr16"; }

    /** Advance one LFSR step and return the 16-bit state. */
    u16 step();

  private:
    u16 state_;
};

/** Kind selector used by configuration code. */
enum class RngKind { Pcg32, XorShift, Lfsr16 };

/** Factory: build a generator of @p kind with the given seed. */
std::unique_ptr<RandomSource> makeRandomSource(RngKind kind, u64 seed);

/** Parse "pcg32" / "xorshift" / "lfsr16" into an RngKind. */
RngKind parseRngKind(const std::string &text);

} // namespace molcache

#endif // MOLCACHE_UTIL_RANDOM_HPP
