/**
 * @file
 * Size literals and human-readable size formatting.
 */

#ifndef MOLCACHE_UTIL_UNITS_HPP
#define MOLCACHE_UTIL_UNITS_HPP

#include <cstddef>
#include <string>

#include "util/types.hpp"

namespace molcache {

inline constexpr u64 operator""_KiB(unsigned long long v) { return v << 10; }
inline constexpr u64 operator""_MiB(unsigned long long v) { return v << 20; }
inline constexpr u64 operator""_GiB(unsigned long long v) { return v << 30; }

/** Format a byte count as e.g. "512KiB", "6MiB", "768B". */
inline std::string
formatSize(u64 bytes)
{
    if (bytes >= 1_GiB && bytes % 1_GiB == 0)
        return std::to_string(bytes >> 30) + "GiB";
    if (bytes >= 1_MiB && bytes % 1_MiB == 0)
        return std::to_string(bytes >> 20) + "MiB";
    if (bytes >= 1_KiB && bytes % 1_KiB == 0)
        return std::to_string(bytes >> 10) + "KiB";
    return std::to_string(bytes) + "B";
}

} // namespace molcache

#endif // MOLCACHE_UTIL_UNITS_HPP
