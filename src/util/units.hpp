/**
 * @file
 * Strong physical units (byte capacities, cache cycles), size literals
 * and human-readable size formatting.
 *
 * StrongUnit is the quantity counterpart of StrongId (util/types.hpp):
 * a zero-cost wrapper supporting exactly the arithmetic a quantity
 * legitimately has — units add and subtract among themselves, scale by
 * dimensionless factors, and divide into a dimensionless ratio — while
 * rejecting cross-unit mixes (Bytes + Cycles) at compile time.
 */

#ifndef MOLCACHE_UTIL_UNITS_HPP
#define MOLCACHE_UTIL_UNITS_HPP

#include <cstddef>
#include <ostream>
#include <string>

#include "util/types.hpp"

namespace molcache {

/**
 * Zero-cost strongly-typed quantity.
 *
 * @tparam Tag  phantom type distinguishing unit dimensions
 * @tparam RepT underlying integer representation
 */
template <typename Tag, typename RepT>
class StrongUnit
{
  public:
    using Rep = RepT;

    constexpr StrongUnit() = default;
    constexpr explicit StrongUnit(RepT v) : v_(v) {}

    /** The raw magnitude; use at formatting/modelling boundaries only. */
    constexpr RepT value() const { return v_; }

    friend constexpr bool operator==(StrongUnit, StrongUnit) = default;
    friend constexpr auto operator<=>(StrongUnit, StrongUnit) = default;

    constexpr StrongUnit &
    operator+=(StrongUnit o)
    {
        v_ += o.v_;
        return *this;
    }
    constexpr StrongUnit &
    operator-=(StrongUnit o)
    {
        v_ -= o.v_;
        return *this;
    }

    friend constexpr StrongUnit
    operator+(StrongUnit a, StrongUnit b)
    {
        return StrongUnit(static_cast<RepT>(a.v_ + b.v_));
    }
    friend constexpr StrongUnit
    operator-(StrongUnit a, StrongUnit b)
    {
        return StrongUnit(static_cast<RepT>(a.v_ - b.v_));
    }

    /** Scaling by a dimensionless factor. */
    friend constexpr StrongUnit
    operator*(StrongUnit a, RepT k)
    {
        return StrongUnit(static_cast<RepT>(a.v_ * k));
    }
    friend constexpr StrongUnit
    operator*(RepT k, StrongUnit a)
    {
        return StrongUnit(static_cast<RepT>(k * a.v_));
    }
    friend constexpr StrongUnit
    operator/(StrongUnit a, RepT k)
    {
        return StrongUnit(static_cast<RepT>(a.v_ / k));
    }

    /** Same-unit division yields a dimensionless ratio. */
    friend constexpr RepT
    operator/(StrongUnit a, StrongUnit b)
    {
        return static_cast<RepT>(a.v_ / b.v_);
    }
    friend constexpr StrongUnit
    operator%(StrongUnit a, StrongUnit b)
    {
        return StrongUnit(static_cast<RepT>(a.v_ % b.v_));
    }

  private:
    RepT v_ = 0;
};

/** Units format as their raw magnitude. */
template <typename Tag, typename RepT>
std::ostream &
operator<<(std::ostream &os, StrongUnit<Tag, RepT> v)
{
    return os << +v.value();
}

/** A byte capacity (molecule/tile/cache sizes). */
using Bytes = StrongUnit<struct BytesTag, u64>;

/** A latency/duration in cache cycles. */
using Cycles = StrongUnit<struct CyclesTag, u64>;

inline constexpr Bytes operator""_KiB(unsigned long long v)
{
    return Bytes{v << 10};
}
inline constexpr Bytes operator""_MiB(unsigned long long v)
{
    return Bytes{v << 20};
}
inline constexpr Bytes operator""_GiB(unsigned long long v)
{
    return Bytes{v << 30};
}

/** Format a byte count as e.g. "512KiB", "6MiB", "768B". */
inline std::string
formatSize(Bytes bytes)
{
    const u64 b = bytes.value();
    if (bytes >= 1_GiB && b % (1_GiB).value() == 0)
        return std::to_string(b >> 30) + "GiB";
    if (bytes >= 1_MiB && b % (1_MiB).value() == 0)
        return std::to_string(b >> 20) + "MiB";
    if (bytes >= 1_KiB && b % (1_KiB).value() == 0)
        return std::to_string(b >> 10) + "KiB";
    return std::to_string(b) + "B";
}

} // namespace molcache

#endif // MOLCACHE_UTIL_UNITS_HPP
