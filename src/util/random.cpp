#include "util/random.hpp"

#include "util/logging.hpp"

namespace molcache {

u32
RandomSource::below(u32 bound)
{
    MOLCACHE_ASSERT(bound != 0, "below() with zero bound");
    // Debiased modulo via rejection sampling (Lemire-style threshold).
    const u32 threshold = (-bound) % bound;
    for (;;) {
        const u32 r = next32();
        if (r >= threshold)
            return r % bound;
    }
}

u32
RandomSource::between(u32 lo, u32 hi)
{
    MOLCACHE_ASSERT(lo <= hi, "between() with lo > hi");
    const u32 span = hi - lo;
    if (span == 0xffffffffu)
        return next32();
    return lo + below(span + 1);
}

double
RandomSource::unitReal()
{
    // 32 uniform bits scaled into [0,1).
    return next32() * (1.0 / 4294967296.0);
}

bool
RandomSource::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return unitReal() < p;
}

u64
RandomSource::next64()
{
    return (static_cast<u64>(next32()) << 32) | next32();
}

Pcg32::Pcg32(u64 seed, u64 stream)
    : state_(0), inc_((stream << 1) | 1u)
{
    // Standard PCG seeding sequence.
    next32();
    state_ += seed;
    next32();
}

u32
Pcg32::next32()
{
    const u64 old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    const u32 xorshifted = static_cast<u32>(((old >> 18) ^ old) >> 27);
    const u32 rot = static_cast<u32>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

XorShift64Star::XorShift64Star(u64 seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
{
}

u32
XorShift64Star::next32()
{
    u64 x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return static_cast<u32>((x * 0x2545f4914f6cdd1dull) >> 32);
}

GaloisLfsr16::GaloisLfsr16(u16 seed)
    : state_(seed ? seed : 0xACE1u)
{
}

u16
GaloisLfsr16::step()
{
    const u16 lsb = state_ & 1u;
    state_ >>= 1;
    if (lsb)
        state_ ^= 0xB400u; // taps 16,14,13,11
    return state_;
}

u32
GaloisLfsr16::next32()
{
    // Two steps give 32 bits, but the halves are strongly correlated —
    // that weakness is intentional (hardware-RNG model).
    const u32 hi = step();
    const u32 lo = step();
    return (hi << 16) | lo;
}

std::unique_ptr<RandomSource>
makeRandomSource(RngKind kind, u64 seed)
{
    switch (kind) {
      case RngKind::Pcg32:
        return std::make_unique<Pcg32>(seed);
      case RngKind::XorShift:
        return std::make_unique<XorShift64Star>(seed);
      case RngKind::Lfsr16:
        return std::make_unique<GaloisLfsr16>(static_cast<u16>(seed));
    }
    panic("unknown RngKind");
}

RngKind
parseRngKind(const std::string &text)
{
    if (text == "pcg32")
        return RngKind::Pcg32;
    if (text == "xorshift")
        return RngKind::XorShift;
    if (text == "lfsr16")
        return RngKind::Lfsr16;
    fatal("unknown RNG kind '", text, "' (expected pcg32|xorshift|lfsr16)");
}

} // namespace molcache
