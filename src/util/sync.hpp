/**
 * @file
 * The repo's only sanctioned mutex/condition-variable vocabulary.
 *
 * mc::Mutex, mc::MutexLock and mc::CondVar wrap the standard primitives
 * with the Clang Thread Safety Analysis capability annotations
 * (util/thread_annotations.hpp), so every guarded member can name the
 * mutex that protects it and an access without the lock is a compile
 * error under the clang presets.  Raw std::mutex /
 * std::condition_variable / std::lock_guard / std::unique_lock outside
 * this header are a molcache-lint `naked-mutex` finding: unannotated
 * primitives are invisible to the analysis, so they would silently
 * punch holes in the machine-checked discipline ROADMAP item 1's
 * concurrent service depends on.
 *
 * Deliberately small surface:
 *
 *   - Mutex: exclusive-only (no shared/timed variants until a caller
 *     needs them), non-recursive.
 *   - MutexLock: scope-shaped RAII holder, no unlock()/release() —
 *     early release hides the critical-section extent from both the
 *     reader and the analysis; end the scope instead.
 *   - CondVar: waits on the Mutex directly (condition_variable_any), so
 *     waiting code stays in the annotated vocabulary.  Only the
 *     while-loop form is supported: callers re-check their predicate
 *     around wait(), which is also what keeps
 *     bugprone-spuriously-wake-up-functions happy at call sites.
 *
 * docs/static_analysis.md ("Concurrency discipline") has the usage
 * rules and escape hatches.
 */

#ifndef MOLCACHE_UTIL_SYNC_HPP
#define MOLCACHE_UTIL_SYNC_HPP

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace molcache {
namespace mc {

/** An annotated exclusive mutex (a TSA "capability"). */
class MOLCACHE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() MOLCACHE_ACQUIRE()
    {
        m_.lock();
    }

    void
    unlock() MOLCACHE_RELEASE()
    {
        m_.unlock();
    }

    bool
    try_lock() MOLCACHE_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex m_;
};

/**
 * RAII holder: acquires in the constructor, releases in the destructor.
 * The TSA scoped-capability annotation makes the held extent visible to
 * the analysis, so guarded members are accessible exactly inside the
 * lexical scope of the lock object.
 */
class MOLCACHE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) MOLCACHE_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() MOLCACHE_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * A condition variable that waits on mc::Mutex directly.
 *
 * wait() must be called with the mutex held (TSA-enforced) and — like
 * every condition variable — inside a while loop re-checking the
 * condition, because wakeups may be spurious and the predicate usually
 * reads guarded state the analysis wants to see under the caller's own
 * lock scope:
 *
 *     mc::MutexLock lock(mutex_);
 *     while (!condition())   // reads MOLCACHE_GUARDED_BY(mutex_) state
 *         cv_.wait(mutex_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /**
     * Atomically release @p mutex, sleep, and re-acquire before
     * returning.  The enclosing while loop lives at the call site; the
     * suppression below is the one place the "wait needs a loop" check
     * cannot see the caller's loop.
     */
    void
    wait(Mutex &mutex) MOLCACHE_REQUIRES(mutex)
    {
        // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions): the
        // re-check loop is the documented caller contract (see above);
        // this wrapper is the loop body, not the loop.
        cv_.wait(mutex.m_);
    }

    /**
     * wait() with a deadline: returns after a notification, a spurious
     * wakeup or @p millis milliseconds, whichever comes first — the
     * caller's while loop re-checks the predicate either way, so the
     * return value would only invite skipping that re-check and is
     * deliberately void.  This is what periodic control threads (the
     * molcached epoch thread) use to both pace their work and notice a
     * stop request promptly.
     */
    void
    waitFor(Mutex &mutex, u64 millis) MOLCACHE_REQUIRES(mutex)
    {
        // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions): as with
        // wait(), the re-check loop is the documented caller contract.
        cv_.wait_for(mutex.m_, std::chrono::milliseconds(millis));
    }

    void
    notifyOne()
    {
        cv_.notify_one();
    }

    void
    notifyAll()
    {
        cv_.notify_all();
    }

  private:
    std::condition_variable_any cv_;
};

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_UTIL_SYNC_HPP
