/**
 * @file
 * Status / error reporting in the gem5 style.
 *
 * Two classes of terminating reports are distinguished (see the gem5 coding
 * style): panic() is for conditions that indicate a bug in molcache itself
 * and aborts; fatal() is for user errors (bad configuration, malformed
 * input) and exits cleanly with a non-zero status.  inform() and warn()
 * never stop the simulation.
 */

#ifndef MOLCACHE_UTIL_LOGGING_HPP
#define MOLCACHE_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace molcache {

/** Verbosity levels for the global logger. */
enum class LogLevel { Quiet, Warn, Info, Debug };

/** Set the global verbosity; messages below the level are suppressed. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {
/** Emit one formatted line to stderr with the given tag. */
void emit(const char *tag, const std::string &msg);
[[noreturn]] void emitFatal(const std::string &msg);
[[noreturn]] void emitPanic(const std::string &msg);

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (static_cast<void>(os), ..., static_cast<void>(os << args));
    return os.str();
}
} // namespace detail

/** Normal operating message; no connotation of incorrect behaviour. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Something might be off; simulation continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Developer-level trace message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug", detail::concat(std::forward<Args>(args)...));
}

/**
 * The simulation cannot continue due to a user error (bad configuration,
 * invalid arguments).  Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitFatal(detail::concat(std::forward<Args>(args)...));
}

/**
 * Something happened that should never happen regardless of user input —
 * i.e. a molcache bug.  Aborts (may dump core).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitPanic(detail::concat(std::forward<Args>(args)...));
}

/** panic() if @p cond is false; used for internal invariants. */
#define MOLCACHE_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::molcache::panic("assertion '", #cond, "' failed at ",         \
                              __FILE__, ":", __LINE__, " ", ##__VA_ARGS__); \
        }                                                                   \
    } while (0)

} // namespace molcache

#endif // MOLCACHE_UTIL_LOGGING_HPP
