#include "util/config_keys.hpp"

#include <algorithm>

namespace molcache {

const std::vector<ConfigKeyInfo> &
knownConfigKeys()
{
    // Keep sorted by key.  molcache_lint parses this initializer, so
    // every entry must be a plain "key", "help" string-literal pair.
    static const std::vector<ConfigKeyInfo> keys = {
        {"assoc", "set-associative/way-partitioned associativity"},
        {"audit", "invariant audit period in accesses (0 = off)"},
        {"clusters", "number of tile clusters"},
        {"fault.events_per_molecule", "hard-fault detections per victim"},
        {"fault.hard_fraction", "fraction of molecules hard-faulted"},
        {"fault.seed", "fault schedule RNG seed"},
        {"fault.tile_outages", "whole-tile outages scheduled"},
        {"fault.transient_flips", "transient bit flips scheduled"},
        {"fault.window_end", "one past the last eligible fault tick"},
        {"fault.window_start", "first eligible fault tick"},
        {"goal", "common per-application miss-rate goal"},
        {"goal.", "per-ASID miss-rate goal override (goal.<asid>)"},
        {"guardian.cooldown", "epochs an action blocks its reversal"},
        {"guardian.enabled", "QoS guardian around the resizer (0/1)"},
        {"guardian.feasibility_epochs", "infeasible epochs before degrading"},
        {"guardian.floor", "default per-region capacity floor, molecules"},
        {"guardian.floor.", "per-ASID capacity floor (guardian.floor.<asid>)"},
        {"guardian.hysteresis", "relative dead-band around the goal"},
        {"guardian.max_flips", "delta sign flips per window that trip"},
        {"guardian.predictive.act_above", "trust required before hints act"},
        {"guardian.predictive.enabled", "phase-hint pre-provisioning (0/1)"},
        {"guardian.predictive.initial_trust", "trust a new region starts with"},
        {"guardian.predictive.max_action", "molecule cap per predictive action"},
        {"guardian.predictive.min_confidence", "confidence floor for hints"},
        {"guardian.predictive.probation", "epochs quarantine must last"},
        {"guardian.predictive.quarantine_below", "trust level entering quarantine"},
        {"guardian.predictive.restore_above", "trust level leaving quarantine"},
        {"guardian.predictive.trust_weight", "trust EWMA step per scored hint"},
        {"guardian.pressure", "pool-pressure level pausing fair-share growth"},
        {"guardian.watchdog", "epochs above goal before a region is stuck"},
        {"guardian.window", "oscillation detector window, epochs"},
        {"hard_fault_threshold", "detections before decommissioning"},
        {"model", "cache model: molecular | setassoc | waypart"},
        {"molecule", "molecule capacity in bytes"},
        {"placement", "placement policy: random | randy | lrudirect"},
        {"profiles", "comma-separated workload profile names"},
        {"refs", "references to simulate"},
        {"replacement", "set-assoc replacement policy"},
        {"resize", "resize scheme: constant | global | perapp"},
        {"seed", "workload/model RNG seed"},
        {"service.admit_high_water", "demand/healthy capacity closing admission (0 = off)"},
        {"service.admit_low_water", "demand/healthy capacity reopening admission"},
        {"service.audit_epochs", "service audit period in epochs (0 = off)"},
        {"service.chaos.hard_faults", "chaos hard-fault decommission events"},
        {"service.chaos.seed", "chaos schedule RNG seed"},
        {"service.chaos.shard_outages", "chaos whole-shard outages (max shards-1)"},
        {"service.chaos.shard_stalls", "chaos shard-stall events"},
        {"service.chaos.stall_epochs", "epochs one stall event lasts"},
        {"service.chaos.transient_flips", "chaos transient bit flips"},
        {"service.chaos.window_end", "last epoch chaos events may fire"},
        {"service.chaos.window_start", "first epoch chaos events may fire"},
        {"service.default_floor", "service default tenant floor, molecules"},
        {"service.default_goal", "service default tenant miss-rate goal"},
        {"service.degrade_goals", "relax goals when healthy capacity shrinks (0/1)"},
        {"service.epoch_ms", "service control-plane epoch period (0 = manual)"},
        {"service.guardian", "service QoS guardian on its shards (0/1)"},
        {"service.max_tenants", "service admission cap (0 = unlimited)"},
        {"service.quarantine_threshold", "decommissioned fraction quarantining a shard"},
        {"service.recovery_slack", "miss-rate slack ending remap warm-up"},
        {"service.shards", "independently-locked service cache shards"},
        {"size", "total cache capacity in bytes"},
        {"tiles", "tiles per cluster"},
        {"workload.hint.confidence", "confidence stamped on emitted hints"},
        {"workload.hint.drop", "probability a due hint is never emitted"},
        {"workload.hint.enabled", "adversary phase-hint emission (0/1)"},
        {"workload.hint.invert", "promise the departing phase (0/1)"},
        {"workload.hint.jitter", "+/- emission jitter, references"},
        {"workload.hint.lead", "hint lead ahead of the boundary, references"},
        {"workload.hint.magnitude", "promised footprint = truth * this"},
    };
    return keys;
}

std::vector<std::string>
knownConfigKeyNames()
{
    std::vector<std::string> names;
    names.reserve(knownConfigKeys().size());
    for (const ConfigKeyInfo &info : knownConfigKeys())
        names.emplace_back(info.key);
    return names;
}

bool
isKnownConfigKey(const std::string &key)
{
    return std::any_of(
        knownConfigKeys().begin(), knownConfigKeys().end(),
        [&](const ConfigKeyInfo &info) {
            const std::string known = info.key;
            if (!known.empty() && known.back() == '.')
                return key.compare(0, known.size(), known) == 0;
            return key == known;
        });
}

} // namespace molcache
