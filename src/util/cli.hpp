/**
 * @file
 * Tiny command-line parser used by benches and examples.
 *
 * Supported forms: `--flag`, `--key value`, `--key=value` and positional
 * arguments.  Unknown options fail loudly; `--help` prints registered
 * options and exits.
 */

#ifndef MOLCACHE_UTIL_CLI_HPP
#define MOLCACHE_UTIL_CLI_HPP

#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace molcache {

class CliParser
{
  public:
    /** @param program  name shown in --help
     *  @param summary  one-line description shown in --help */
    CliParser(std::string program, std::string summary);

    /** Register a value option with a default. */
    void addOption(const std::string &name, const std::string &defaultValue,
                   const std::string &help);

    /** Register a boolean flag (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /** Parse argv; calls fatal() on unknown options, exits on --help. */
    void parse(int argc, const char *const *argv);

    bool flag(const std::string &name) const;
    std::string str(const std::string &name) const;
    i64 integer(const std::string &name) const;
    double real(const std::string &name) const;
    u64 size(const std::string &name) const;

    const std::vector<std::string> &positional() const { return positional_; }

  private:
    struct Option
    {
        std::string value;
        std::string help;
        bool isFlag = false;
        bool seen = false;
    };

    const Option &find(const std::string &name) const;
    void printHelpAndExit() const;

    std::string program_;
    std::string summary_;
    std::map<std::string, Option> options_;
    std::vector<std::string> positional_;
};

} // namespace molcache

#endif // MOLCACHE_UTIL_CLI_HPP
