#include "util/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/logging.hpp"

namespace molcache {

std::string
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(trim(s.substr(start, i - start)));
            start = i + 1;
        }
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

u64
parseSize(std::string_view raw)
{
    const std::string s = trim(raw);
    if (s.empty())
        fatal("empty size string");

    size_t pos = 0;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos])))
        ++pos;
    if (pos == 0)
        fatal("malformed size '", s, "'");

    u64 value = 0;
    auto [p, ec] = std::from_chars(s.data(), s.data() + pos, value);
    if (ec != std::errc())
        fatal("malformed size '", s, "'");

    const std::string suffix = toLower(trim(s.substr(pos)));
    if (suffix.empty() || suffix == "b")
        return value;
    if (suffix == "k" || suffix == "kb" || suffix == "kib")
        return value << 10;
    if (suffix == "m" || suffix == "mb" || suffix == "mib")
        return value << 20;
    if (suffix == "g" || suffix == "gb" || suffix == "gib")
        return value << 30;
    fatal("unknown size suffix '", suffix, "' in '", s, "'");
}

bool
parseBool(std::string_view raw)
{
    const std::string s = toLower(trim(raw));
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    fatal("malformed boolean '", s, "'");
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace molcache
