/**
 * @file
 * Tenants as first-class handles.
 *
 * One tenant = one application = one ASID/region inside one shard of
 * the service.  attach() hands the caller a TenantHandle; every later
 * verb (access/setGoal/detach) takes the handle, so there is no stringy
 * tenant lookup on the hot path — the handle carries the routing facts
 * (shard, ASID) as immutable state.
 *
 * Lifetime ("departure drains safely"): the handle is a refcounted view
 * of a TenantState that the Service tracks only weakly.  detach() marks
 * the tenant departing but revokes nothing — outstanding handle copies
 * on other worker threads keep accessing the still-registered region.
 * Only when the last handle is destroyed does the control-plane epoch
 * observe the weak reference expired and actually unregister the
 * region, write back its dirty lines and retire + recycle the ASID.  A
 * worker can therefore never race a region teardown: teardown waits for
 * every reference to drop first.
 *
 * The (asid, generation) pair uniquely names a tenant across ASID reuse
 * — generations come from CacheStats::generationOf, bumped each time a
 * departed tenant's stats slot is retired.
 */

#ifndef MOLCACHE_SERVICE_TENANT_HPP
#define MOLCACHE_SERVICE_TENANT_HPP

#include <limits>
#include <memory>
#include <string>

#include "contract/contract.hpp"
#include "util/types.hpp"

namespace molcache {
namespace mc {

class Service;

/** What a caller asks for when attaching a tenant. */
struct TenantSpec
{
    /** Placement wildcard: the service picks the least-loaded shard. */
    static constexpr u32 kAnyShard = std::numeric_limits<u32>::max();
    /** Floor wildcard: use ServiceOptions::defaultFloor. */
    static constexpr u32 kDefaultFloor = std::numeric_limits<u32>::max();

    /** Display name (telemetry only; empty gets "asid<N>"). */
    std::string name;
    /** Miss-rate goal Algorithm 1 steers towards; 0 = the service
     * default (ServiceOptions::defaultGoal). */
    double missRateGoal = 0.0;
    /** Capacity floor in molecules (guardian fairness guard). */
    u32 floorMolecules = kDefaultFloor;
    /** Region line-size multiple (1 => 64 B lines, 2 => 128 B, ...). */
    u32 lineMultiple = 1;
    /** Destination shard, or kAnyShard for service placement. */
    u32 shard = kAnyShard;
};

namespace detail {

/** Immutable routing facts shared by every copy of a handle; the
 * Service keeps only a weak reference (see file comment). */
struct TenantState
{
    u32 shard = 0;
    Asid asid{};
    u32 generation = 0;
    std::string name;
};

} // namespace detail

/**
 * Refcounted tenant reference.  Copyable and cheap (one shared_ptr);
 * copying or destroying a handle never takes a service lock.  An empty
 * (default-constructed, or failed-attach) handle is falsy and must not
 * be passed to the service verbs.
 */
class TenantHandle
{
  public:
    TenantHandle() = default;

    bool valid() const { return state_ != nullptr; }
    explicit operator bool() const { return valid(); }

    /** @{ Immutable tenant facts; handle must be valid(). */
    Asid
    asid() const
    {
        MOLCACHE_EXPECT(valid(), "asid() on an empty TenantHandle");
        return state_->asid;
    }

    u32
    shard() const
    {
        MOLCACHE_EXPECT(valid(), "shard() on an empty TenantHandle");
        return state_->shard;
    }

    /** Stats-slot generation at attach: (asid, generation) names this
     * tenant uniquely across ASID recycling. */
    u32
    generation() const
    {
        MOLCACHE_EXPECT(valid(), "generation() on an empty TenantHandle");
        return state_->generation;
    }

    const std::string &
    name() const
    {
        MOLCACHE_EXPECT(valid(), "name() on an empty TenantHandle");
        return state_->name;
    }
    /** @} */

    /** Drop this reference early (same as destroying the handle). */
    void reset() { state_.reset(); }

  private:
    friend class Service;

    explicit TenantHandle(std::shared_ptr<const detail::TenantState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<const detail::TenantState> state_;
};

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_SERVICE_TENANT_HPP
