/**
 * @file
 * Tenants as first-class handles.
 *
 * One tenant = one application = one ASID/region inside one shard of
 * the service.  attach() hands the caller a TenantHandle; every later
 * verb (access/setGoal/detach) takes the handle, so there is no stringy
 * tenant lookup on the hot path — the handle carries the routing facts
 * (shard, ASID, generation) packed into one atomic word.
 *
 * Routing is atomic, not immutable, because of the degradation ladder
 * (docs/fault_model.md): when a shard is quarantined after capacity
 * loss, the control plane re-homes its tenants onto healthy shards and
 * republishes the routing word.  Readers snapshot the word lock-free,
 * then re-check it once under the shard lock — see Service::access for
 * the two-phase protocol that makes a remap invisible to workers.
 *
 * Lifetime ("departure drains safely"): the handle is a refcounted view
 * of a TenantState that the Service tracks only weakly.  detach() marks
 * the tenant departing but revokes nothing — outstanding handle copies
 * on other worker threads keep accessing the still-registered region.
 * Only when the last handle is destroyed does the control-plane epoch
 * observe the weak reference expired and actually unregister the
 * region, write back its dirty lines and retire + recycle the ASID.  A
 * worker can therefore never race a region teardown: teardown waits for
 * every reference to drop first.
 *
 * The (asid, generation) pair uniquely names a tenant *within its
 * current shard* across ASID reuse — generations come from
 * CacheStats::generationOf, bumped each time a departed (or remapped)
 * tenant's stats slot is retired.
 */

#ifndef MOLCACHE_SERVICE_TENANT_HPP
#define MOLCACHE_SERVICE_TENANT_HPP

#include <atomic>
#include <limits>
#include <memory>
#include <string>

#include "contract/contract.hpp"
#include "util/types.hpp"

namespace molcache {
namespace mc {

class Service;

/** What a caller asks for when attaching a tenant. */
struct TenantSpec
{
    /** Placement wildcard: the service picks the least-loaded shard. */
    static constexpr u32 kAnyShard = std::numeric_limits<u32>::max();
    /** Floor wildcard: use ServiceOptions::defaultFloor. */
    static constexpr u32 kDefaultFloor = std::numeric_limits<u32>::max();

    /** Display name (telemetry only; empty gets "tenant<N>"). */
    std::string name;
    /** Miss-rate goal Algorithm 1 steers towards; 0 = the service
     * default (ServiceOptions::defaultGoal). */
    double missRateGoal = 0.0;
    /** Capacity floor in molecules (guardian fairness guard). */
    u32 floorMolecules = kDefaultFloor;
    /** Region line-size multiple (1 => 64 B lines, 2 => 128 B, ...). */
    u32 lineMultiple = 1;
    /** Destination shard, or kAnyShard for service placement. */
    u32 shard = kAnyShard;
};

namespace detail {

/** Routing facts shared by every copy of a handle; the Service keeps
 * only a weak reference (see file comment).  The (shard, asid,
 * generation) triple is packed into one word so workers snapshot it in
 * a single atomic load and a remap republishes it in a single store —
 * a reader can never see the new shard with the old ASID. */
struct TenantState
{
    /** shard:16 | asid:16 | generation:32 (shard counts are validated
     * against the 16-bit field by ServiceOptions). */
    static constexpr u64
    pack(u32 shard, u16 asid, u32 generation)
    {
        return (static_cast<u64>(shard) << 48) |
               (static_cast<u64>(asid) << 32) |
               static_cast<u64>(generation);
    }

    static constexpr u32
    shardOf(u64 routing)
    {
        return static_cast<u32>(routing >> 48);
    }

    static constexpr u16
    asidOf(u64 routing)
    {
        return static_cast<u16>((routing >> 32) & 0xffffu);
    }

    static constexpr u32
    generationOf(u64 routing)
    {
        return static_cast<u32>(routing);
    }

    std::atomic<u64> routing{0};
    std::string name;
};

} // namespace detail

/**
 * Refcounted tenant reference.  Copyable and cheap (one shared_ptr);
 * copying or destroying a handle never takes a service lock.  An empty
 * (default-constructed, or failed-attach) handle is falsy and must not
 * be passed to the service verbs.
 */
class TenantHandle
{
  public:
    TenantHandle() = default;

    bool valid() const { return state_ != nullptr; }
    explicit operator bool() const { return valid(); }

    /** @{ Current routing facts; handle must be valid().  Instantaneous
     * snapshots: a quarantine-driven remap may re-home the tenant
     * between two calls (the service verbs re-check internally). */
    Asid
    asid() const
    {
        MOLCACHE_EXPECT(valid(), "asid() on an empty TenantHandle");
        return Asid{detail::TenantState::asidOf(routing())};
    }

    u32
    shard() const
    {
        MOLCACHE_EXPECT(valid(), "shard() on an empty TenantHandle");
        return detail::TenantState::shardOf(routing());
    }

    /** Stats-slot generation at (re)registration: (asid, generation)
     * names this tenant uniquely within its shard across recycling. */
    u32
    generation() const
    {
        MOLCACHE_EXPECT(valid(), "generation() on an empty TenantHandle");
        return detail::TenantState::generationOf(routing());
    }
    /** @} */

    const std::string &
    name() const
    {
        MOLCACHE_EXPECT(valid(), "name() on an empty TenantHandle");
        return state_->name;
    }

    /** Drop this reference early (same as destroying the handle). */
    void reset() { state_.reset(); }

  private:
    friend class Service;

    explicit TenantHandle(std::shared_ptr<detail::TenantState> state)
        : state_(std::move(state))
    {
    }

    u64
    routing() const
    {
        return state_->routing.load(std::memory_order_acquire);
    }

    std::shared_ptr<detail::TenantState> state_;
};

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_SERVICE_TENANT_HPP
