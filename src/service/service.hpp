/**
 * @file
 * mc::Service — "molcached", the embeddable concurrent multi-tenant
 * facade over MolecularCache (ROADMAP item 1, docs/molcached.md).
 *
 * The simulator core is single-threaded by design; the service makes it
 * serve concurrent callers with three structural moves:
 *
 *  1. SHARDING.  A shard is one tile cluster — the paper confines every
 *     region to one cluster (Ulmo's search domain), so clusters share
 *     nothing on the access path and each shard can own a whole
 *     MolecularCache instance behind its own mc::Mutex.  A tenant lives
 *     in exactly one shard; access() takes exactly one shard lock and
 *     runs the unmodified allocation-free PR-4 hot path under it.
 *
 *  2. TENANT HANDLES.  attach() returns a refcounted TenantHandle
 *     (service/tenant.hpp); detach() only marks departure, and the
 *     control plane unregisters the region once every handle reference
 *     has dropped — departure drains safely instead of racing workers.
 *
 *  3. EPOCHS.  All cross-shard work — draining departures, recycling
 *     ASIDs (generation-tagged, CacheStats::retire), merging per-shard
 *     statistics into one ServiceSummary snapshot, running the
 *     InvariantChecker audit — happens in runEpochNow(), serialized by
 *     the admin mutex: a single logical writer.  With epochMillis > 0 a
 *     control-plane thread paces epochs; with 0 the embedder (or a
 *     deterministic test) calls runEpochNow() itself.  Resizing itself
 *     stays where the paper puts it — inside the access path, per
 *     region, under the shard lock — so a shard's behaviour is
 *     byte-identical to the single-threaded simulator fed the same
 *     per-shard access sequence.
 *
 * THE RESILIENCE PLANE (docs/fault_model.md, "Service-level faults &
 * the degradation ladder").  The epoch is also where faults land and
 * where the service climbs down gracefully instead of failing calls:
 *
 *  - a seeded ChaosSchedule (service/chaos.hpp) fires transient flips,
 *    hard-fault decommissions, whole-shard outages and shard stalls at
 *    epoch boundaries, each applied under the target shard's lock;
 *  - a shard that loses quarantineThreshold of its molecules is
 *    QUARANTINED: admissions stop, its live tenants are re-homed onto
 *    healthy shards (strictest goal first) with warm-up accounting, and
 *    the shard drains;
 *  - remaining tenants' miss-rate goals are proportionally DEGRADED
 *    (goal x total/healthy capacity) through the normal resize goals,
 *    so the guardian arbitrates the pain instead of thrashing;
 *  - OVERLOAD PROTECTION: attach() admits against healthy capacity
 *    with hysteresis (AttachError::Overloaded), and accessChecked()
 *    answers Overloaded + suggested-retry-after while a shard stalls
 *    instead of queueing behind it;
 *  - recovery SLOs (epochs to drain / remap / back-to-goal, remap
 *    churn) land in ServiceSummary::resilience.
 *
 * With chaos off and admission watermarks unset, none of this runs and
 * the service stays byte-identical to the pre-resilience behaviour.
 *
 * Lock order (docs/molcached.md): controlMutex_ -> adminMutex_ ->
 * {shard mutexes (ascending), summaryMutex_}; the two innermost are
 * never held together.  access() takes only its shard mutex; summary()
 * takes only summaryMutex_.  A remap takes its two shard locks
 * *sequentially* (destination first, then source), never together.
 */

#ifndef MOLCACHE_SERVICE_SERVICE_HPP
#define MOLCACHE_SERVICE_SERVICE_HPP

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/molecular_cache.hpp"
#include "service/chaos.hpp"
#include "service/service_options.hpp"
#include "service/tenant.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace molcache {
namespace mc {

/** Why attach() returned an empty handle. */
enum class AttachError : u8 {
    None = 0,
    /** ServiceOptions::maxTenants live tenants already. */
    TooManyTenants,
    /** The shard's 16-bit ASID space is exhausted (live tenants). */
    NoAsid,
    /** The spec itself is out of range (goal, shard index, ...). */
    BadSpec,
    /** Healthy-capacity admission said no (ServiceOptions::
     * admitHighWater watermark, with hysteresis). */
    Overloaded,
    /** The pinned shard is quarantined, or every shard is. */
    ShardUnavailable,
};

/** Number of AttachError values (per-reason counter array size). */
inline constexpr size_t kAttachErrorCount = 6;

const char *attachErrorName(AttachError error);

/** Backpressure verdict of a checked access (see accessChecked). */
enum class AccessStatus : u8 {
    Ok = 0,
    /** The tenant's shard is stalled; retry after the suggested number
     * of epochs instead of queueing on the shard lock. */
    Overloaded,
};

/** Result of Service::accessChecked: the access outcome plus the
 * backpressure verdict.  When status is Overloaded the access was shed
 * (result is empty) and retryAfterEpochs suggests the backoff. */
struct AccessOutcome
{
    AccessResult result{};
    AccessStatus status = AccessStatus::Ok;
    u64 retryAfterEpochs = 0;
};

/** Per-tenant slice of a summary snapshot. */
struct ServiceTenantSummary
{
    std::string name;
    u32 shard = 0;
    u16 asid = 0;
    u32 generation = 0;
    double goal = 0.0;
    /** Goal actually steered towards (== goal unless the degradation
     * ladder relaxed it after capacity loss). */
    double effectiveGoal = 0.0;
    bool degraded = false;
    bool departing = false;
    /** Quarantine-driven re-homings this tenant survived. */
    u32 remaps = 0;
    /** Remapped and not yet re-converged to its (degraded) goal. */
    bool recovering = false;
    /** Per-epoch interval miss-rate EWMA (the recovery criterion). */
    double missEwma = 0.0;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    double missRate = 0.0;
};

/** Per-shard slice of a summary snapshot. */
struct ServiceShardSummary
{
    u32 shard = 0;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
    u32 regions = 0;
    u32 freeMolecules = 0;
    u32 decommissionedMolecules = 0;
    u64 resizeCycles = 0;
    /** Molecules still in service (total - decommissioned). */
    u32 healthyMolecules = 0;
    /** Quarantined by the degradation ladder (permanent: molecule
     * decommissioning never heals). */
    bool quarantined = false;
    /** Epoch until which a chaos stall sheds checked accesses (0 or
     * past = not stalled). */
    u64 stalledUntilEpoch = 0;
};

/** Resilience / recovery-SLO slice of a summary snapshot. */
struct ServiceResilienceSummary
{
    /** The options carried a non-empty chaos storm. */
    bool chaosEnabled = false;
    /** @{ Chaos events fired so far, by kind, plus not-yet-due ones. */
    u64 chaosTransientFlips = 0;
    u64 chaosHardFaults = 0;
    u64 chaosShardOutages = 0;
    u64 chaosShardStalls = 0;
    u64 chaosPending = 0;
    /** @} */
    /** Lifetime quarantine transitions / fully-drained quarantines. */
    u64 shardsQuarantined = 0;
    u64 shardsDrained = 0;
    /** Completed tenant re-homings / tenants still waiting for a
     * healthy destination (retried every epoch). */
    u64 tenantsRemapped = 0;
    u64 remapsPending = 0;
    /** Remap churn: resident lines dropped at the source, and misses
     * absorbed at the destination during warm-up. */
    u64 remapInvalidations = 0;
    u64 remapForcedMisses = 0;
    /** Remapped tenants not yet back at their (degraded) goal. */
    u64 tenantsRecovering = 0;
    /** Checked accesses answered Overloaded instead of served. */
    u64 accessesShed = 0;
    /** attach() rejections by reason (indexed by AttachError; the None
     * slot stays 0 — successes are ServiceSummary::tenantsAttached). */
    std::array<u64, kAttachErrorCount> attachRejects{};
    /** @{ Recovery SLOs: worst case observed so far, in epochs. */
    u64 maxEpochsToDrain = 0;
    u64 maxEpochsToRemap = 0;
    u64 maxEpochsBackToGoal = 0;
    /** @} */

    /** True once any resilience machinery (not just legacy admission
     * rejections) has engaged — gates the additive JSON blocks so
     * fault-free telemetry stays byte-identical. */
    bool
    active() const
    {
        return chaosEnabled || shardsQuarantined != 0 ||
               tenantsRemapped != 0 || remapsPending != 0 ||
               accessesShed != 0 ||
               attachRejects[static_cast<size_t>(
                   AttachError::Overloaded)] != 0 ||
               attachRejects[static_cast<size_t>(
                   AttachError::ShardUnavailable)] != 0;
    }
};

/**
 * Snapshot telemetry, rebuilt by every epoch and returned by value from
 * Service::summary() — readers never see a torn view and never contend
 * with the access path.  Counters are lifetime totals (they survive
 * tenant departure; per-tenant rows list live tenants only).
 */
struct ServiceSummary
{
    /** Epochs completed when this snapshot was taken (0 = none yet). */
    u64 epoch = 0;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
    u32 tenantsLive = 0;
    u64 tenantsAttached = 0;
    u64 tenantsDetached = 0;
    u64 tenantsDrained = 0;
    u64 invariantChecksRun = 0;
    u64 invariantViolations = 0;
    /** Contract-macro violations observed by the embedder's threads.
     * contract::counters() is thread-local, so the service cannot read
     * worker deltas itself; harnesses (bench/service_churn) fold their
     * workers' deltas in before serializing. */
    u64 contractViolations = 0;
    ServiceResilienceSummary resilience;
    std::vector<ServiceShardSummary> shards;
    std::vector<ServiceTenantSummary> tenants;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

class Service
{
  public:
    /** Validates @p options (fatal with file:line context on builder
     * violations) and starts the control-plane thread when
     * options.epochMillis > 0. */
    explicit Service(const ServiceOptions &options);
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Admit a tenant: pick a shard (least loaded healthy one, unless
     * the spec pins one), allocate a generation-tagged ASID, register
     * the region and return its handle.  On rejection returns an empty
     * handle and sets @p error (when non-null) to the reason; every
     * rejection is also counted per reason in
     * ServiceSummary::resilience.attachRejects.
     */
    TenantHandle attach(const TenantSpec &spec,
                        AttachError *error = nullptr)
        MOLCACHE_EXCLUDES(adminMutex_);

    /**
     * Begin departure: the tenant stops counting against admission and
     * is unregistered by the first epoch that runs after every handle
     * copy (including @p handle itself, which stays usable) is
     * destroyed.  Idempotent.
     */
    void detach(const TenantHandle &handle) MOLCACHE_EXCLUDES(adminMutex_);

    /**
     * The hot path: one shard lock, then the unmodified simulator-core
     * access (probe schedule, resizer, guardian).  Allocation-free in
     * steady state — the perf suite gates this (docs/perf.md).
     *
     * Remap-safe: the routing word is re-checked once under the shard
     * lock and the access re-routes if the control plane re-homed the
     * tenant while we waited.  Ignores stall backpressure (always
     * serves) — latency-sensitive callers use accessChecked().
     */
    AccessResult access(const TenantHandle &handle, Addr addr,
                        bool isWrite = false);

    /**
     * Backpressure-aware access: when the tenant's shard is stalled
     * (chaos ShardStall), the access is shed with AccessStatus::
     * Overloaded and a suggested retry-after in epochs instead of
     * being served; otherwise identical to access().  Shed accesses
     * are counted in ServiceSummary::resilience.accessesShed.
     */
    AccessOutcome accessChecked(const TenantHandle &handle, Addr addr,
                                bool isWrite = false);

    /** The backpressure probe accessChecked() uses: Ok, or Overloaded
     * with the suggested retry-after (lock-free; two atomic loads). */
    AccessStatus backpressure(const TenantHandle &handle,
                              u64 *retryAfterEpochs = nullptr) const;

    /** One reference inside an accessBatch() block. */
    struct TenantAccess
    {
        Addr addr = 0;
        bool write = false;
    };

    /**
     * Batched hot path: semantically identical to calling access() once
     * per entry (same results in @p out, same cache state after), but
     * the shard lock is taken once per fixed-size chunk instead of once
     * per reference, and the chunk runs through the simulator core's
     * batched data plane (MolecularCache::accessBatch, docs/perf.md).
     * Allocation-free: references are staged through a stack buffer.
     * Remap-safe per chunk (routing is re-checked under each chunk's
     * lock hold).  @p in and @p out must have equal lengths.
     */
    void accessBatch(const TenantHandle &handle,
                     std::span<const TenantAccess> in,
                     std::span<AccessResult> out);

    /** Replace the tenant's miss-rate goal; Algorithm 1 re-steers on
     * its next resize epochs (the degradation ladder re-applies its
     * capacity factor on the next epoch). */
    void setGoal(const TenantHandle &handle, double missRateGoal)
        MOLCACHE_EXCLUDES(adminMutex_);

    /**
     * Run one control-plane epoch on the caller's thread: drain
     * departures, fire due chaos events, quarantine/remap/degrade,
     * audit (per ServiceOptions::auditEpochs), rebuild the summary
     * snapshot.  This is the only epoch entry point — the control
     * thread calls it too — so embedders running with epochMillis == 0
     * get the identical control plane, just paced by themselves.
     */
    void runEpochNow() MOLCACHE_EXCLUDES(adminMutex_);

    /** Last completed epoch's snapshot (copy; see ServiceSummary). */
    ServiceSummary summary() const MOLCACHE_EXCLUDES(summaryMutex_);

    /** Epochs completed so far. */
    u64
    epochsCompleted() const
    {
        return epochsRun_.load(std::memory_order_acquire);
    }

    u32
    shardCount() const
    {
        return static_cast<u32>(shards_.size());
    }

    const ServiceOptions &
    options() const
    {
        return options_;
    }

  private:
    /** One tile cluster behind its own lock (see file comment). */
    struct Shard
    {
        mc::Mutex mutex;
        std::unique_ptr<MolecularCache> cache MOLCACHE_PT_GUARDED_BY(mutex);
        /** Round-robin home-tile cursor for new regions. */
        u32 nextTile MOLCACHE_GUARDED_BY(mutex) = 0;
        /** Epoch until which a chaos stall sheds checked accesses;
         * written by the control plane, read lock-free by
         * backpressure(). */
        std::atomic<u64> stallUntilEpoch{0};
    };

    /** 16-bit ASID allocator with recycling: departures push their ASID
     * back, so dense per-ASID structures stay sized by peak concurrent
     * tenants, not lifetime tenants.  One pool per shard (ASIDs are
     * per-cache); objects live in asidPools_, which is guarded by
     * adminMutex_. */
    struct AsidPool
    {
        std::vector<u16> freeList;
        u32 nextFresh = 0;

        bool acquire(Asid *out);
        void release(Asid asid);
    };

    /** Control-plane view of one tenant (weak: handles own the state). */
    struct TenantRecord
    {
        std::weak_ptr<detail::TenantState> live;
        std::string name;
        u32 shard = 0;
        Asid asid{};
        u32 generation = 0;
        double goal = 0.0;
        /** Goal after the degradation ladder's capacity factor. */
        double effectiveGoal = 0.0;
        /** Spec facts a remap must re-register with. */
        u32 floor = 0;
        u32 lineMultiple = 1;
        /** Molecules this tenant demands for healthy-capacity
         * admission (max(floor, 1)). */
        u32 demand = 1;
        bool departing = false;
        /** @{ Remap / recovery bookkeeping (docs/fault_model.md). */
        u32 remaps = 0;
        u64 remapEpoch = 0;
        bool recovering = false;
        double preRemapEwma = 0.0;
        double missEwma = 0.0;
        bool ewmaValid = false;
        /** Stats-slot values at the last epoch (interval deltas). */
        u64 lastAccesses = 0;
        u64 lastMisses = 0;
        /** Counters carried over from shards this tenant left. */
        u64 carryAccesses = 0;
        u64 carryHits = 0;
        u64 carryMisses = 0;
        /** @} */
    };

    /** Control-plane health state of one shard. */
    struct ShardHealth
    {
        bool quarantined = false;
        u64 quarantinedAt = 0;
        /** Epoch the quarantined shard reached zero regions (0 = not
         * yet). */
        u64 drainedAt = 0;
        /** Molecules still in service (refreshed every epoch). */
        u32 healthy = 0;
    };

    /** Validates @p options, then builds one seeded cache per shard. */
    static std::vector<std::unique_ptr<Shard>> buildShards(
        const ServiceOptions &options);

    void controlLoop() MOLCACHE_EXCLUDES(controlMutex_, adminMutex_);
    void runEpochLocked() MOLCACHE_REQUIRES(adminMutex_)
        MOLCACHE_EXCLUDES(summaryMutex_);
    /** Least-loaded non-quarantined shard, or shards_.size() when every
     * shard is quarantined. */
    u32 pickShard() const MOLCACHE_REQUIRES(adminMutex_);
    /** Fire chaos events due at @p epoch (under the shard locks). */
    void applyChaosLocked(u64 epoch) MOLCACHE_REQUIRES(adminMutex_);
    /** Refresh per-shard healthy counts; quarantine over-threshold
     * shards. */
    void updateHealthLocked(u64 epoch) MOLCACHE_REQUIRES(adminMutex_);
    /** Re-home live tenants off quarantined shards (strictest goal
     * first); the stragglers retry next epoch. */
    void remapQuarantinedLocked(u64 epoch) MOLCACHE_REQUIRES(adminMutex_);
    /** Move one tenant to @p dest; false when no ASID is free there or
     * the tenant expired. */
    bool remapTenantLocked(TenantRecord &record, u32 dest, u64 epoch)
        MOLCACHE_REQUIRES(adminMutex_);
    /** Recompute healthy capacity and re-apply degraded goals. */
    void degradeGoalsLocked() MOLCACHE_REQUIRES(adminMutex_);

    const ServiceOptions options_;
    // Shard array: immutable after construction (the vector and the
    // Shard objects it points to are built once; all mutable state
    // inside a Shard is guarded by its own mutex).
    const std::vector<std::unique_ptr<Shard>> shards_;
    /** Molecules per shard (immutable geometry). */
    const u32 shardMolecules_;

    mutable mc::Mutex adminMutex_;
    std::vector<TenantRecord> tenants_ MOLCACHE_GUARDED_BY(adminMutex_);
    std::vector<AsidPool> asidPools_ MOLCACHE_GUARDED_BY(adminMutex_);
    std::vector<u32> liveByShard_ MOLCACHE_GUARDED_BY(adminMutex_);
    std::vector<ShardHealth> shardHealth_ MOLCACHE_GUARDED_BY(adminMutex_);
    ChaosSchedule chaosSchedule_ MOLCACHE_GUARDED_BY(adminMutex_);
    u64 tenantsAttached_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 tenantsDetached_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 tenantsDrained_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 invariantChecksRun_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 invariantViolations_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    /** @{ Resilience accounting (see ServiceResilienceSummary). */
    u64 chaosTransientFlips_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 chaosHardFaults_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 chaosShardOutages_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 chaosShardStalls_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 shardsQuarantined_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 shardsDrained_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 tenantsRemapped_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 remapsPending_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 remapInvalidations_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 remapForcedMisses_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 maxEpochsToDrain_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 maxEpochsToRemap_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 maxEpochsBackToGoal_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    /** Tenant demand (molecules) counting against admission. */
    u64 demandMolecules_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    /** Healthy molecules across non-quarantined shards (last epoch). */
    u64 healthyMoleculesTotal_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    /** Hysteresis latch: once admission closes on the high watermark it
     * reopens only below the low one. */
    bool admissionClosed_ MOLCACHE_GUARDED_BY(adminMutex_) = false;
    /** @} */

    /** Per-reason attach rejections (lock-free so pre-admission spec
     * failures count without taking adminMutex_). */
    std::array<std::atomic<u64>, kAttachErrorCount> attachErrors_{};
    /** Checked accesses shed with AccessStatus::Overloaded. */
    std::atomic<u64> accessesShed_{0};

    mutable mc::Mutex summaryMutex_;
    ServiceSummary summary_ MOLCACHE_GUARDED_BY(summaryMutex_);

    std::atomic<u64> epochsRun_{0};

    mc::Mutex controlMutex_;
    mc::CondVar controlCv_;
    bool stopRequested_ MOLCACHE_GUARDED_BY(controlMutex_) = false;
    // lint: allow(raw-thread): joined in ~Service after the stop handshake
    // lint: unguarded(written by ctor/dtor only, never concurrently)
    std::thread controlThread_;
};

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_SERVICE_SERVICE_HPP
