/**
 * @file
 * mc::Service — "molcached", the embeddable concurrent multi-tenant
 * facade over MolecularCache (ROADMAP item 1, docs/molcached.md).
 *
 * The simulator core is single-threaded by design; the service makes it
 * serve concurrent callers with three structural moves:
 *
 *  1. SHARDING.  A shard is one tile cluster — the paper confines every
 *     region to one cluster (Ulmo's search domain), so clusters share
 *     nothing on the access path and each shard can own a whole
 *     MolecularCache instance behind its own mc::Mutex.  A tenant lives
 *     in exactly one shard; access() takes exactly one shard lock and
 *     runs the unmodified allocation-free PR-4 hot path under it.
 *
 *  2. TENANT HANDLES.  attach() returns a refcounted TenantHandle
 *     (service/tenant.hpp); detach() only marks departure, and the
 *     control plane unregisters the region once every handle reference
 *     has dropped — departure drains safely instead of racing workers.
 *
 *  3. EPOCHS.  All cross-shard work — draining departures, recycling
 *     ASIDs (generation-tagged, CacheStats::retire), merging per-shard
 *     statistics into one ServiceSummary snapshot, running the
 *     InvariantChecker audit — happens in runEpochNow(), serialized by
 *     the admin mutex: a single logical writer.  With epochMillis > 0 a
 *     control-plane thread paces epochs; with 0 the embedder (or a
 *     deterministic test) calls runEpochNow() itself.  Resizing itself
 *     stays where the paper puts it — inside the access path, per
 *     region, under the shard lock — so a shard's behaviour is
 *     byte-identical to the single-threaded simulator fed the same
 *     per-shard access sequence.
 *
 * Lock order (docs/molcached.md): controlMutex_ -> adminMutex_ ->
 * {shard mutexes (ascending), summaryMutex_}; the two innermost are
 * never held together.  access() takes only its shard mutex; summary()
 * takes only summaryMutex_.
 */

#ifndef MOLCACHE_SERVICE_SERVICE_HPP
#define MOLCACHE_SERVICE_SERVICE_HPP

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/molecular_cache.hpp"
#include "service/service_options.hpp"
#include "service/tenant.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace molcache {
namespace mc {

/** Why attach() returned an empty handle. */
enum class AttachError : u8 {
    None = 0,
    /** ServiceOptions::maxTenants live tenants already. */
    TooManyTenants,
    /** The shard's 16-bit ASID space is exhausted (live tenants). */
    NoAsid,
    /** The spec itself is out of range (goal, shard index, ...). */
    BadSpec,
};

const char *attachErrorName(AttachError error);

/** Per-tenant slice of a summary snapshot. */
struct ServiceTenantSummary
{
    std::string name;
    u32 shard = 0;
    u16 asid = 0;
    u32 generation = 0;
    double goal = 0.0;
    bool departing = false;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    double missRate = 0.0;
};

/** Per-shard slice of a summary snapshot. */
struct ServiceShardSummary
{
    u32 shard = 0;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
    u32 regions = 0;
    u32 freeMolecules = 0;
    u32 decommissionedMolecules = 0;
    u64 resizeCycles = 0;
};

/**
 * Snapshot telemetry, rebuilt by every epoch and returned by value from
 * Service::summary() — readers never see a torn view and never contend
 * with the access path.  Counters are lifetime totals (they survive
 * tenant departure; per-tenant rows list live tenants only).
 */
struct ServiceSummary
{
    /** Epochs completed when this snapshot was taken (0 = none yet). */
    u64 epoch = 0;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
    u32 tenantsLive = 0;
    u64 tenantsAttached = 0;
    u64 tenantsDetached = 0;
    u64 tenantsDrained = 0;
    u64 invariantChecksRun = 0;
    u64 invariantViolations = 0;
    /** Contract-macro violations observed by the embedder's threads.
     * contract::counters() is thread-local, so the service cannot read
     * worker deltas itself; harnesses (bench/service_churn) fold their
     * workers' deltas in before serializing. */
    u64 contractViolations = 0;
    std::vector<ServiceShardSummary> shards;
    std::vector<ServiceTenantSummary> tenants;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

class Service
{
  public:
    /** Validates @p options (fatal with file:line context on builder
     * violations) and starts the control-plane thread when
     * options.epochMillis > 0. */
    explicit Service(const ServiceOptions &options);
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Admit a tenant: pick a shard (least loaded, unless the spec pins
     * one), allocate a generation-tagged ASID, register the region and
     * return its handle.  On rejection returns an empty handle and sets
     * @p error (when non-null) to the reason.
     */
    TenantHandle attach(const TenantSpec &spec,
                        AttachError *error = nullptr)
        MOLCACHE_EXCLUDES(adminMutex_);

    /**
     * Begin departure: the tenant stops counting against admission and
     * is unregistered by the first epoch that runs after every handle
     * copy (including @p handle itself, which stays usable) is
     * destroyed.  Idempotent.
     */
    void detach(const TenantHandle &handle) MOLCACHE_EXCLUDES(adminMutex_);

    /**
     * The hot path: one shard lock, then the unmodified simulator-core
     * access (probe schedule, resizer, guardian).  Allocation-free in
     * steady state — the perf suite gates this (docs/perf.md).
     */
    AccessResult access(const TenantHandle &handle, Addr addr,
                        bool isWrite = false);

    /** One reference inside an accessBatch() block. */
    struct TenantAccess
    {
        Addr addr = 0;
        bool write = false;
    };

    /**
     * Batched hot path: semantically identical to calling access() once
     * per entry (same results in @p out, same cache state after), but
     * the shard lock is taken once per fixed-size chunk instead of once
     * per reference, and the chunk runs through the simulator core's
     * batched data plane (MolecularCache::accessBatch, docs/perf.md).
     * Allocation-free: references are staged through a stack buffer.
     * @p in and @p out must have equal lengths.
     */
    void accessBatch(const TenantHandle &handle,
                     std::span<const TenantAccess> in,
                     std::span<AccessResult> out);

    /** Replace the tenant's miss-rate goal; Algorithm 1 re-steers on
     * its next resize epochs. */
    void setGoal(const TenantHandle &handle, double missRateGoal)
        MOLCACHE_EXCLUDES(adminMutex_);

    /**
     * Run one control-plane epoch on the caller's thread: drain
     * departures, audit (per ServiceOptions::auditEpochs), rebuild the
     * summary snapshot.  This is the only epoch entry point — the
     * control thread calls it too — so embedders running with
     * epochMillis == 0 get the identical control plane, just paced by
     * themselves.
     */
    void runEpochNow() MOLCACHE_EXCLUDES(adminMutex_);

    /** Last completed epoch's snapshot (copy; see ServiceSummary). */
    ServiceSummary summary() const MOLCACHE_EXCLUDES(summaryMutex_);

    /** Epochs completed so far. */
    u64
    epochsCompleted() const
    {
        return epochsRun_.load(std::memory_order_acquire);
    }

    u32
    shardCount() const
    {
        return static_cast<u32>(shards_.size());
    }

    const ServiceOptions &
    options() const
    {
        return options_;
    }

  private:
    /** One tile cluster behind its own lock (see file comment). */
    struct Shard
    {
        mc::Mutex mutex;
        std::unique_ptr<MolecularCache> cache MOLCACHE_PT_GUARDED_BY(mutex);
        /** Round-robin home-tile cursor for new regions. */
        u32 nextTile MOLCACHE_GUARDED_BY(mutex) = 0;
    };

    /** 16-bit ASID allocator with recycling: departures push their ASID
     * back, so dense per-ASID structures stay sized by peak concurrent
     * tenants, not lifetime tenants.  One pool per shard (ASIDs are
     * per-cache); objects live in asidPools_, which is guarded by
     * adminMutex_. */
    struct AsidPool
    {
        std::vector<u16> freeList;
        u32 nextFresh = 0;

        bool acquire(Asid *out);
        void release(Asid asid);
    };

    /** Control-plane view of one tenant (weak: handles own the state). */
    struct TenantRecord
    {
        std::weak_ptr<const detail::TenantState> live;
        std::string name;
        u32 shard = 0;
        Asid asid{};
        u32 generation = 0;
        double goal = 0.0;
        bool departing = false;
    };

    /** Validates @p options, then builds one seeded cache per shard. */
    static std::vector<std::unique_ptr<Shard>> buildShards(
        const ServiceOptions &options);

    void controlLoop() MOLCACHE_EXCLUDES(controlMutex_, adminMutex_);
    void runEpochLocked() MOLCACHE_REQUIRES(adminMutex_)
        MOLCACHE_EXCLUDES(summaryMutex_);
    u32 pickShard(const TenantSpec &spec) const
        MOLCACHE_REQUIRES(adminMutex_);

    const ServiceOptions options_;
    // Shard array: immutable after construction (the vector and the
    // Shard objects it points to are built once; all mutable state
    // inside a Shard is guarded by its own mutex).
    const std::vector<std::unique_ptr<Shard>> shards_;

    mutable mc::Mutex adminMutex_;
    std::vector<TenantRecord> tenants_ MOLCACHE_GUARDED_BY(adminMutex_);
    std::vector<AsidPool> asidPools_ MOLCACHE_GUARDED_BY(adminMutex_);
    std::vector<u32> liveByShard_ MOLCACHE_GUARDED_BY(adminMutex_);
    u64 tenantsAttached_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 tenantsDetached_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 tenantsDrained_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 invariantChecksRun_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;
    u64 invariantViolations_ MOLCACHE_GUARDED_BY(adminMutex_) = 0;

    mutable mc::Mutex summaryMutex_;
    ServiceSummary summary_ MOLCACHE_GUARDED_BY(summaryMutex_);

    std::atomic<u64> epochsRun_{0};

    mc::Mutex controlMutex_;
    mc::CondVar controlCv_;
    bool stopRequested_ MOLCACHE_GUARDED_BY(controlMutex_) = false;
    // lint: allow(raw-thread): joined in ~Service after the stop handshake
    // lint: unguarded(written by ctor/dtor only, never concurrently)
    std::thread controlThread_;
};

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_SERVICE_SERVICE_HPP
