/**
 * @file
 * Seeded service-level chaos schedules (docs/fault_model.md,
 * "Service-level faults & the degradation ladder").
 *
 * PR 1's FaultInjector drives faults off the *access tick* of one
 * single-threaded cache; a service shard serves interleaved tenants from
 * many threads, so tick-based schedules stop being reproducible there.
 * A ChaosSchedule is the control-plane analogue: events fire at
 * *control-plane epochs* — the single-writer moments where the service
 * already holds a shard quiescent under its lock — which keeps a fault
 * storm deterministic per (spec, geometry) regardless of worker count.
 *
 * Four event kinds ladder up the blast radius:
 *   TransientFlip — one poisoned line, scrubbed by the next probe;
 *   HardFault     — repeated hard faults on one molecule until its
 *                   failure counter decommissions it;
 *   ShardOutage   — every molecule of one shard fenced at once (the
 *                   whole tile cluster goes dark);
 *   ShardStall    — no state damage, the shard just stops meeting its
 *                   latency SLO for `stallEpochs` epochs; the service
 *                   answers checked accesses with Overloaded +
 *                   suggested-retry-after instead of serving them.
 *
 * The schedule itself is pure data: building and draining it touches no
 * cache.  Applying a drained event to the target shard's cache is
 * `applyShardChaos`, which lives in chaos.cpp behind the service's
 * normal locking (the control plane applies events while holding the
 * target shard's mutex, which is exactly the quiescence the simulator
 * fault mutators need).
 */

#ifndef MOLCACHE_SERVICE_CHAOS_HPP
#define MOLCACHE_SERVICE_CHAOS_HPP

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace molcache {

class MolecularCache;

namespace mc {

/** What one chaos event does (see file comment for the ladder). */
enum class ChaosKind : u8 {
    TransientFlip = 0,
    HardFault,
    ShardOutage,
    ShardStall,
};

const char *chaosKindName(ChaosKind kind);

/** One scheduled fault, fired by the control-plane epoch it names. */
struct ChaosEvent
{
    /** Epoch the event fires at (inclusive; due events fire in order). */
    u64 epoch = 0;
    ChaosKind kind = ChaosKind::TransientFlip;
    /** Target shard index. */
    u32 shard = 0;
    /** Shard-local molecule index (TransientFlip / HardFault). */
    u32 molecule = 0;
    /** Line index within the molecule (TransientFlip). */
    u32 line = 0;
    /** Stall duration in epochs (ShardStall). */
    u64 stallEpochs = 0;
};

/** Knob bundle for a seeded storm; all-zero counts = chaos off. */
struct ChaosSpec
{
    u64 seed = 1;
    /** First / last epoch events may fire (inclusive window). */
    u64 windowStart = 2;
    u64 windowEnd = 32;
    u32 transientFlips = 0;
    u32 hardFaults = 0;
    /** Whole-shard outages; capped at shards-1 so at least one shard
     * stays healthy to remap onto. */
    u32 shardOutages = 0;
    u32 shardStalls = 0;
    /** Duration of each stall event. */
    u64 stallEpochs = 3;

    bool
    any() const
    {
        return transientFlips != 0 || hardFaults != 0 ||
               shardOutages != 0 || shardStalls != 0;
    }
};

/**
 * The seeded, epoch-keyed event queue.  Deterministic: the same spec and
 * shard geometry always build the same storm, independent of worker
 * count, epoch pacing or wall clock.  Drained with the FaultInjector
 * cursor idiom: events sort by epoch once, drainOne() hands out due
 * events in order without ever re-scanning.
 */
class ChaosSchedule
{
  public:
    ChaosSchedule() = default;

    /**
     * Build the storm for a service of @p shards shards, each a
     * single-cluster cache of @p moleculesPerShard molecules with
     * @p linesPerMolecule lines each.  Outage targets are distinct
     * shards (and capped at shards-1, see ChaosSpec::shardOutages).
     */
    static ChaosSchedule build(const ChaosSpec &spec, u32 shards,
                               u32 moleculesPerShard, u32 linesPerMolecule);

    /** Next event due at or before @p epoch, or nullptr when none is
     * (yet).  Events fire once, in schedule order. */
    const ChaosEvent *drainOne(u64 epoch);

    /** Events not fired yet. */
    size_t
    pending() const
    {
        return events_.size() - next_;
    }

    /** The whole storm, sorted by epoch (introspection / tests). */
    const std::vector<ChaosEvent> &
    events() const
    {
        return events_;
    }

  private:
    std::vector<ChaosEvent> events_;
    size_t next_ = 0;
};

/**
 * Apply one drained event to the target shard's cache.  The caller must
 * hold that shard quiescent (the service control plane calls this under
 * the shard's mutex).  ShardStall events are service-side bookkeeping
 * and are a no-op here.
 */
void applyShardChaos(MolecularCache &cache, const ChaosEvent &event);

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_SERVICE_CHAOS_HPP
