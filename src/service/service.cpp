#include "service/service.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "exec/seed_stream.hpp"
#include "fault/invariant_checker.hpp"
#include "util/logging.hpp"

namespace molcache {
namespace mc {

const char *
attachErrorName(AttachError error)
{
    switch (error) {
    case AttachError::None:
        return "none";
    case AttachError::TooManyTenants:
        return "too-many-tenants";
    case AttachError::NoAsid:
        return "no-asid";
    case AttachError::BadSpec:
        return "bad-spec";
    case AttachError::Overloaded:
        return "overloaded";
    case AttachError::ShardUnavailable:
        return "shard-unavailable";
    }
    return "unknown";
}

bool
Service::AsidPool::acquire(Asid *out)
{
    if (!freeList.empty()) {
        *out = Asid{freeList.back()};
        freeList.pop_back();
        return true;
    }
    if (nextFresh >= kInvalidAsid.value())
        return false;
    *out = Asid{static_cast<u16>(nextFresh)};
    ++nextFresh;
    return true;
}

void
Service::AsidPool::release(Asid asid)
{
    freeList.push_back(asid.value());
}

std::vector<std::unique_ptr<Service::Shard>>
Service::buildShards(const ServiceOptions &options)
{
    options.validate();
    std::vector<std::unique_ptr<Shard>> shards;
    shards.reserve(options.shards);
    for (u32 i = 0; i < options.shards; ++i) {
        // Shards are independent caches; give each its own seed stream
        // (the sweep engine's SplitMix64 derivation) so identical
        // tenants on different shards don't mirror placement decisions.
        MolecularCacheParams params = options.cache;
        params.seed = deriveJobSeed(options.cache.seed, i);
        auto shard = std::make_unique<Shard>();
        shard->cache = std::make_unique<MolecularCache>(params);
        shards.push_back(std::move(shard));
    }
    return shards;
}

Service::Service(const ServiceOptions &options)
    : options_(options), shards_(buildShards(options_)),
      shardMolecules_(options_.cache.moleculesPerTile *
                      options_.cache.tilesPerCluster)
{
    {
        MutexLock admin(adminMutex_);
        asidPools_.resize(shards_.size());
        liveByShard_.assign(shards_.size(), 0u);
        shardHealth_.assign(shards_.size(), ShardHealth{});
        for (ShardHealth &health : shardHealth_)
            health.healthy = shardMolecules_;
        healthyMoleculesTotal_ =
            static_cast<u64>(shards_.size()) * shardMolecules_;
        if (options_.chaos.any())
            chaosSchedule_ = ChaosSchedule::build(
                options_.chaos, static_cast<u32>(shards_.size()),
                shardMolecules_, options_.cache.linesPerMolecule());
    }
    if (options_.epochMillis != 0) {
        // The control loop is open-ended (runs until ~Service), which
        // doesn't fit the pool's bounded forEach jobs.
        // lint: allow(raw-thread): joined in ~Service after the stop handshake
        controlThread_ = std::thread([this] { controlLoop(); });
    }
}

Service::~Service()
{
    if (controlThread_.joinable()) {
        {
            MutexLock lock(controlMutex_);
            stopRequested_ = true;
        }
        controlCv_.notifyAll();
        controlThread_.join();
    }
}

void
Service::controlLoop()
{
    for (;;) {
        {
            MutexLock lock(controlMutex_);
            if (!stopRequested_)
                controlCv_.waitFor(controlMutex_, options_.epochMillis);
            if (stopRequested_)
                return;
        }
        runEpochNow();
    }
}

u32
Service::pickShard() const
{
    u32 best = static_cast<u32>(shards_.size());
    for (u32 i = 0; i < liveByShard_.size(); ++i) {
        if (shardHealth_[i].quarantined)
            continue;
        if (best >= shards_.size() || liveByShard_[i] < liveByShard_[best])
            best = i;
    }
    return best;
}

TenantHandle
Service::attach(const TenantSpec &spec, AttachError *error)
{
    const auto fail = [error, this](AttachError reason) {
        attachErrors_[static_cast<size_t>(reason)].fetch_add(
            1, std::memory_order_relaxed);
        if (error != nullptr)
            *error = reason;
        return TenantHandle{};
    };

    const double goal =
        spec.missRateGoal == 0.0 ? options_.defaultGoal : spec.missRateGoal;
    if (goal <= 0.0 || goal > 1.0 || spec.lineMultiple == 0)
        return fail(AttachError::BadSpec);
    if (spec.shard != TenantSpec::kAnyShard &&
        spec.shard >= shards_.size())
        return fail(AttachError::BadSpec);
    const u32 floor = spec.floorMolecules == TenantSpec::kDefaultFloor
                          ? options_.defaultFloor
                          : spec.floorMolecules;

    MutexLock admin(adminMutex_);
    if (options_.maxTenants != 0) {
        u32 live = 0;
        for (const u32 count : liveByShard_)
            live += count;
        if (live >= options_.maxTenants)
            return fail(AttachError::TooManyTenants);
    }

    // Overload protection: admit against *healthy* capacity, with
    // hysteresis so admission doesn't flap at the watermark (closed on
    // the high one, reopened only below the low one).
    const u32 demand = floor != 0 ? floor : 1u;
    if (options_.admitHighWater > 0.0) {
        const double healthy =
            static_cast<double>(healthyMoleculesTotal_);
        const double projected =
            static_cast<double>(demandMolecules_ + demand);
        const double low = options_.admitLowWater > 0.0
                               ? options_.admitLowWater
                               : options_.admitHighWater;
        if (admissionClosed_) {
            if (projected <= low * healthy)
                admissionClosed_ = false;
            else
                return fail(AttachError::Overloaded);
        } else if (projected > options_.admitHighWater * healthy) {
            admissionClosed_ = true;
            return fail(AttachError::Overloaded);
        }
    }

    u32 shard_index = 0;
    if (spec.shard != TenantSpec::kAnyShard) {
        if (shardHealth_[spec.shard].quarantined)
            return fail(AttachError::ShardUnavailable);
        shard_index = spec.shard;
    } else {
        shard_index = pickShard();
        if (shard_index >= shards_.size())
            return fail(AttachError::ShardUnavailable);
    }

    Asid asid{};
    if (!asidPools_[shard_index].acquire(&asid))
        return fail(AttachError::NoAsid);

    Shard &sh = *shards_[shard_index];
    u32 generation = 0;
    {
        MutexLock lock(sh.mutex);
        const u32 tile = sh.nextTile;
        sh.nextTile = (sh.nextTile + 1u) % options_.cache.tilesPerCluster;
        sh.cache->registerApplication(asid, goal, ClusterId{0}, tile,
                                      spec.lineMultiple);
        if (floor != 0)
            sh.cache->setRegionFloor(asid, floor);
        // The stats slot's retire count at attach time: (asid,
        // generation) stays unique across ASID recycling.
        generation = sh.cache->stats().generationOf(asid);
    }

    auto state = std::make_shared<detail::TenantState>();
    state->routing.store(detail::TenantState::pack(shard_index, asid.value(),
                                                   generation),
                         std::memory_order_relaxed);
    state->name = spec.name.empty()
                      ? molcache::detail::concat("tenant", asid.value())
                      : spec.name;

    TenantRecord record;
    record.live = state;
    record.name = state->name;
    record.shard = shard_index;
    record.asid = asid;
    record.generation = generation;
    record.goal = goal;
    record.effectiveGoal = goal;
    record.floor = floor;
    record.lineMultiple = spec.lineMultiple;
    record.demand = demand;
    tenants_.push_back(std::move(record));
    ++liveByShard_[shard_index];
    demandMolecules_ += demand;
    ++tenantsAttached_;
    if (error != nullptr)
        *error = AttachError::None;
    return TenantHandle{std::move(state)};
}

void
Service::detach(const TenantHandle &handle)
{
    MOLCACHE_EXPECT(handle.valid(), "detach() on an empty TenantHandle");
    if (!handle.valid())
        return;
    MutexLock admin(adminMutex_);
    for (TenantRecord &record : tenants_) {
        // Identity match on the shared state: routing facts can change
        // under a quarantine remap, the state object never does.
        if (record.live.lock() != handle.state_)
            continue;
        if (!record.departing) {
            record.departing = true;
            MOLCACHE_INVARIANT(liveByShard_[record.shard] > 0,
                               "live-tenant count underflow");
            --liveByShard_[record.shard];
            MOLCACHE_INVARIANT(demandMolecules_ >= record.demand,
                               "tenant-demand underflow");
            demandMolecules_ -= record.demand;
            ++tenantsDetached_;
        }
        return; // second detach of the same tenant is a no-op
    }
    // No record: the tenant already drained (detach after the epoch
    // collected it) — idempotent by design.
}

AccessResult
Service::access(const TenantHandle &handle, Addr addr, bool isWrite)
{
    MOLCACHE_EXPECT(handle.valid(), "access() through an empty TenantHandle");
    if (!handle.valid())
        return AccessResult{};
    const detail::TenantState &state = *handle.state_;
    for (;;) {
        const u64 route = state.routing.load(std::memory_order_acquire);
        Shard &sh = *shards_[detail::TenantState::shardOf(route)];
        MutexLock lock(sh.mutex);
        // A remap republishes the routing word *before* it waits for
        // this shard's lock to tear the old region down, so a stale
        // route can never survive the lock acquisition: re-check and
        // re-route if the tenant moved while we waited.
        if (state.routing.load(std::memory_order_relaxed) != route)
            continue;
        return sh.cache->access(
            MemAccess{addr, Asid{detail::TenantState::asidOf(route)},
                      isWrite ? AccessType::Write : AccessType::Read});
    }
}

AccessOutcome
Service::accessChecked(const TenantHandle &handle, Addr addr, bool isWrite)
{
    AccessOutcome outcome;
    u64 retry = 0;
    if (backpressure(handle, &retry) == AccessStatus::Overloaded) {
        outcome.status = AccessStatus::Overloaded;
        outcome.retryAfterEpochs = retry;
        accessesShed_.fetch_add(1, std::memory_order_relaxed);
        return outcome;
    }
    outcome.result = access(handle, addr, isWrite);
    return outcome;
}

AccessStatus
Service::backpressure(const TenantHandle &handle,
                      u64 *retryAfterEpochs) const
{
    MOLCACHE_EXPECT(handle.valid(),
                    "backpressure() on an empty TenantHandle");
    if (!handle.valid())
        return AccessStatus::Ok;
    const u64 route = handle.state_->routing.load(std::memory_order_acquire);
    const Shard &sh = *shards_[detail::TenantState::shardOf(route)];
    const u64 until = sh.stallUntilEpoch.load(std::memory_order_acquire);
    if (until == 0)
        return AccessStatus::Ok; // fast path: never stalled
    const u64 epoch = epochsRun_.load(std::memory_order_acquire);
    if (until <= epoch)
        return AccessStatus::Ok;
    if (retryAfterEpochs != nullptr)
        *retryAfterEpochs = until - epoch;
    return AccessStatus::Overloaded;
}

void
Service::accessBatch(const TenantHandle &handle,
                     std::span<const TenantAccess> in,
                     std::span<AccessResult> out)
{
    MOLCACHE_EXPECT(in.size() == out.size(),
                    "accessBatch() span length mismatch");
    MOLCACHE_EXPECT(handle.valid(),
                    "accessBatch() through an empty TenantHandle");
    if (!handle.valid()) {
        std::fill(out.begin(), out.end(), AccessResult{});
        return;
    }
    const detail::TenantState &state = *handle.state_;
    // Stage through a stack chunk so the path stays allocation-free and
    // one lock hold covers a whole chunk without starving other tenants
    // of the shard for arbitrarily long blocks.
    constexpr size_t kChunk = 256;
    std::array<MemAccess, kChunk> staged;
    for (size_t off = 0; off < in.size(); off += kChunk) {
        const size_t n = std::min(kChunk, in.size() - off);
        for (;;) {
            const u64 route = state.routing.load(std::memory_order_acquire);
            const Asid asid{detail::TenantState::asidOf(route)};
            for (size_t i = 0; i < n; ++i) {
                staged[i] = MemAccess{in[off + i].addr, asid,
                                      in[off + i].write
                                          ? AccessType::Write
                                          : AccessType::Read};
            }
            Shard &sh = *shards_[detail::TenantState::shardOf(route)];
            MutexLock lock(sh.mutex);
            if (state.routing.load(std::memory_order_relaxed) != route)
                continue; // re-homed mid-batch: restage this chunk
            sh.cache->accessBatch(
                std::span<const MemAccess>{staged.data(), n},
                out.subspan(off, n));
            break;
        }
    }
}

void
Service::setGoal(const TenantHandle &handle, double missRateGoal)
{
    MOLCACHE_EXPECT(handle.valid(), "setGoal() on an empty TenantHandle");
    if (!handle.valid())
        return;
    MutexLock admin(adminMutex_);
    for (TenantRecord &record : tenants_) {
        if (record.live.lock() != handle.state_)
            continue;
        record.goal = missRateGoal;
        // The degradation ladder re-applies its capacity factor on the
        // next epoch; until then steer at the caller's goal.
        record.effectiveGoal = missRateGoal;
        Shard &sh = *shards_[record.shard];
        MutexLock lock(sh.mutex);
        sh.cache->setResizeGoal(record.asid, missRateGoal); // validates
        return;
    }
    // No record: the tenant already drained — like detach, a no-op.
}

void
Service::runEpochNow()
{
    MutexLock admin(adminMutex_);
    runEpochLocked();
}

void
Service::applyChaosLocked(u64 epoch)
{
    while (const ChaosEvent *event = chaosSchedule_.drainOne(epoch)) {
        Shard &sh = *shards_[event->shard];
        switch (event->kind) {
        case ChaosKind::TransientFlip: {
            MutexLock lock(sh.mutex);
            applyShardChaos(*sh.cache, *event);
            ++chaosTransientFlips_;
            break;
        }
        case ChaosKind::HardFault: {
            MutexLock lock(sh.mutex);
            applyShardChaos(*sh.cache, *event);
            ++chaosHardFaults_;
            break;
        }
        case ChaosKind::ShardOutage: {
            MutexLock lock(sh.mutex);
            applyShardChaos(*sh.cache, *event);
            ++chaosShardOutages_;
            break;
        }
        case ChaosKind::ShardStall: {
            // Service-side only: no cache damage, the shard just sheds
            // checked accesses until the stall expires.
            const u64 until = epoch + event->stallEpochs;
            if (until > sh.stallUntilEpoch.load(std::memory_order_relaxed))
                sh.stallUntilEpoch.store(until, std::memory_order_release);
            ++chaosShardStalls_;
            break;
        }
        }
    }
}

void
Service::updateHealthLocked(u64 epoch)
{
    for (u32 i = 0; i < shards_.size(); ++i) {
        Shard &sh = *shards_[i];
        u32 decommissioned = 0;
        {
            MutexLock lock(sh.mutex);
            decommissioned = sh.cache->decommissionedMolecules();
        }
        ShardHealth &health = shardHealth_[i];
        health.healthy = shardMolecules_ - decommissioned;
        if (!health.quarantined &&
            static_cast<double>(decommissioned) >=
                options_.quarantineThreshold *
                    static_cast<double>(shardMolecules_)) {
            health.quarantined = true;
            health.quarantinedAt = epoch;
            ++shardsQuarantined_;
            warn("service epoch ", epoch, ": shard ", i, " quarantined (",
                 decommissioned, "/", shardMolecules_,
                 " molecules decommissioned)");
        }
    }
}

bool
Service::remapTenantLocked(TenantRecord &record, u32 dest, u64 epoch)
{
    std::shared_ptr<detail::TenantState> state = record.live.lock();
    if (state == nullptr)
        return false; // expired mid-epoch; the next drain collects it
    Asid new_asid{};
    if (!asidPools_[dest].acquire(&new_asid))
        return false;

    const u32 src = record.shard;
    const Asid old_asid = record.asid;
    u32 generation = 0;
    {
        Shard &dst = *shards_[dest];
        MutexLock lock(dst.mutex);
        const u32 tile = dst.nextTile;
        dst.nextTile = (dst.nextTile + 1u) % options_.cache.tilesPerCluster;
        dst.cache->registerApplication(new_asid, record.effectiveGoal,
                                       ClusterId{0}, tile,
                                       record.lineMultiple);
        if (record.floor != 0)
            dst.cache->setRegionFloor(new_asid, record.floor);
        generation = dst.cache->stats().generationOf(new_asid);
    }

    // Republish the routing word BEFORE tearing the source down: a
    // worker that already won the source lock finishes its access
    // there (the region is still registered until we take that lock),
    // and every access after our lock acquisition re-checks the word
    // and lands on the destination.  No window exists where a worker
    // can use the old ASID after the unregister.
    state->routing.store(detail::TenantState::pack(dest, new_asid.value(),
                                                   generation),
                         std::memory_order_release);

    {
        Shard &sh = *shards_[src];
        MutexLock lock(sh.mutex);
        // Remap churn: everything resident at the source is dropped
        // (invalidations), and the destination starts cold.
        remapInvalidations_ += sh.cache->residentLines(old_asid);
        const AccessCounters &c = sh.cache->stats().forAsid(old_asid);
        record.carryAccesses += c.accesses;
        record.carryHits += c.hits;
        record.carryMisses += c.misses;
        sh.cache->unregisterApplication(old_asid);
        sh.cache->retireApplicationStats(old_asid);
    }
    asidPools_[src].release(old_asid);

    MOLCACHE_INVARIANT(liveByShard_[src] > 0,
                       "remap live-tenant count underflow");
    --liveByShard_[src];
    ++liveByShard_[dest];
    record.shard = dest;
    record.asid = new_asid;
    record.generation = generation;
    ++record.remaps;
    record.remapEpoch = epoch;
    record.recovering = true;
    record.preRemapEwma = record.ewmaValid ? record.missEwma : 1.0;
    record.ewmaValid = false; // re-seed the EWMA at the destination
    record.lastAccesses = 0;
    record.lastMisses = 0;
    ++tenantsRemapped_;
    maxEpochsToRemap_ = std::max(maxEpochsToRemap_,
                                 epoch - shardHealth_[src].quarantinedAt);
    return true;
}

void
Service::remapQuarantinedLocked(u64 epoch)
{
    remapsPending_ = 0;
    // Priority order: strictest miss-rate goal first (it has the most
    // QoS to lose from staying on a dead shard), deterministic ASID
    // tiebreak.  Keys are copied out so the comparator touches no
    // guarded state.
    struct Candidate
    {
        double goal;
        u16 asid;
        size_t idx;
    };
    std::vector<Candidate> candidates;
    for (size_t idx = 0; idx < tenants_.size(); ++idx) {
        const TenantRecord &record = tenants_[idx];
        // Departing tenants drain in place; live ones get re-homed.
        if (shardHealth_[record.shard].quarantined && !record.departing &&
            !record.live.expired())
            candidates.push_back({record.goal, record.asid.value(), idx});
    }
    if (candidates.empty())
        return;
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         if (a.goal != b.goal)
                             return a.goal < b.goal;
                         return a.asid < b.asid;
                     });
    for (size_t i = 0; i < candidates.size(); ++i) {
        const u32 dest = pickShard();
        if (dest >= shards_.size()) {
            // Every shard is quarantined: nothing to remap onto; all
            // remaining candidates wait for the next epoch.
            remapsPending_ += candidates.size() - i;
            return;
        }
        if (!remapTenantLocked(tenants_[candidates[i].idx], dest, epoch))
            ++remapsPending_; // no free ASID there (or expired); retry
    }
}

void
Service::degradeGoalsLocked()
{
    u64 healthy = 0;
    for (const ShardHealth &health : shardHealth_)
        if (!health.quarantined)
            healthy += health.healthy;
    healthyMoleculesTotal_ = healthy;
    if (!options_.degradeGoals)
        return;
    const u64 total = static_cast<u64>(shards_.size()) * shardMolecules_;
    if (healthy == total)
        return; // full capacity: nothing to relax
    for (TenantRecord &record : tenants_) {
        if (record.departing)
            continue;
        double effective = 1.0;
        if (healthy != 0)
            effective = std::min(
                1.0, record.goal * (static_cast<double>(total) /
                                    static_cast<double>(healthy)));
        if (effective == record.effectiveGoal)
            continue;
        record.effectiveGoal = effective;
        Shard &sh = *shards_[record.shard];
        MutexLock lock(sh.mutex);
        sh.cache->setResizeGoal(record.asid, effective);
    }
}

void
Service::runEpochLocked()
{
    const u64 epoch = epochsRun_.load(std::memory_order_relaxed) + 1u;

    // 1) Drain departures whose last handle reference has dropped.  The
    // weak_ptr is the drain barrier: while any worker still holds the
    // tenant, the region stays registered and servable.
    for (auto it = tenants_.begin(); it != tenants_.end();) {
        if (it->departing && it->live.expired()) {
            Shard &sh = *shards_[it->shard];
            {
                MutexLock lock(sh.mutex);
                sh.cache->unregisterApplication(it->asid);
                sh.cache->retireApplicationStats(it->asid);
            }
            asidPools_[it->shard].release(it->asid);
            ++tenantsDrained_;
            it = tenants_.erase(it);
        } else {
            ++it;
        }
    }

    // 2) The resilience plane: fire due chaos, quarantine shards over
    // the decommission threshold, re-home their tenants, relax goals to
    // the surviving capacity.  With chaos off none of this runs and the
    // epoch is byte-identical to the pre-resilience control plane.
    if (options_.chaos.any()) {
        applyChaosLocked(epoch);
        updateHealthLocked(epoch);
        remapQuarantinedLocked(epoch);
        degradeGoalsLocked();
    }

    // 3) Audit + merge per-shard statistics into one snapshot.
    const bool audit = options_.auditEpochs != 0 &&
                       epoch % options_.auditEpochs == 0;
    ServiceSummary snap;
    snap.epoch = epoch;
    snap.shards.reserve(shards_.size());
    snap.tenants.reserve(tenants_.size());
    u64 recovering_tenants = 0;
    for (u32 i = 0; i < shards_.size(); ++i) {
        Shard &sh = *shards_[i];
        MutexLock lock(sh.mutex);
        if (audit) {
            const InvariantChecker::Report report =
                InvariantChecker::check(*sh.cache);
            invariantChecksRun_ += report.checksRun;
            invariantViolations_ +=
                static_cast<u64>(report.violations.size());
            for (const std::string &violation : report.violations)
                warn("service epoch ", epoch, ", shard ", i,
                     ": invariant violation: ", violation);
        }
        const AccessCounters &g = sh.cache->stats().global();
        ServiceShardSummary shard_summary;
        shard_summary.shard = i;
        shard_summary.accesses = g.accesses;
        shard_summary.hits = g.hits;
        shard_summary.misses = g.misses;
        shard_summary.writebacks = g.writebacks;
        shard_summary.regions =
            static_cast<u32>(sh.cache->registeredAsids().size());
        shard_summary.freeMolecules = sh.cache->freeMolecules();
        shard_summary.decommissionedMolecules =
            sh.cache->decommissionedMolecules();
        shard_summary.resizeCycles = sh.cache->resizeCycles();
        shard_summary.healthyMolecules =
            shardMolecules_ - shard_summary.decommissionedMolecules;
        shard_summary.quarantined = shardHealth_[i].quarantined;
        shard_summary.stalledUntilEpoch =
            sh.stallUntilEpoch.load(std::memory_order_relaxed);

        // A quarantined shard counts as drained once its last region
        // (departing tenants included) is gone.
        ShardHealth &health = shardHealth_[i];
        if (health.quarantined && health.drainedAt == 0 &&
            shard_summary.regions == 0) {
            health.drainedAt = epoch;
            maxEpochsToDrain_ = std::max(
                maxEpochsToDrain_, epoch - health.quarantinedAt);
            ++shardsDrained_;
        }

        snap.accesses += shard_summary.accesses;
        snap.hits += shard_summary.hits;
        snap.misses += shard_summary.misses;
        snap.writebacks += shard_summary.writebacks;
        snap.shards.push_back(std::move(shard_summary));

        for (TenantRecord &record : tenants_) {
            if (record.shard != i)
                continue;
            const AccessCounters &c = sh.cache->stats().forAsid(record.asid);
            // Per-epoch interval miss rate -> EWMA: the re-convergence
            // criterion for remapped tenants (and telemetry for all).
            const u64 delta_accesses = c.accesses - record.lastAccesses;
            const u64 delta_misses = c.misses - record.lastMisses;
            record.lastAccesses = c.accesses;
            record.lastMisses = c.misses;
            if (delta_accesses > 0) {
                const double rate = static_cast<double>(delta_misses) /
                                    static_cast<double>(delta_accesses);
                record.missEwma = record.ewmaValid
                                      ? 0.3 * rate + 0.7 * record.missEwma
                                      : rate;
                record.ewmaValid = true;
            }
            if (record.recovering) {
                // Warm-up accounting: misses the move forced on the
                // tenant until it is back at goal (or at its own
                // pre-remap level, whichever comes first).
                remapForcedMisses_ += delta_misses;
                const double slack = options_.recoverySlack;
                if (record.ewmaValid && delta_accesses > 0 &&
                    (record.missEwma <= record.effectiveGoal + slack ||
                     record.missEwma <= record.preRemapEwma + slack)) {
                    record.recovering = false;
                    maxEpochsBackToGoal_ =
                        std::max(maxEpochsBackToGoal_,
                                 epoch - record.remapEpoch);
                }
            }
            if (record.recovering && !record.departing)
                ++recovering_tenants;

            ServiceTenantSummary tenant_summary;
            tenant_summary.name = record.name;
            tenant_summary.shard = i;
            tenant_summary.asid = record.asid.value();
            tenant_summary.generation = record.generation;
            tenant_summary.goal = record.goal;
            tenant_summary.effectiveGoal = record.effectiveGoal;
            tenant_summary.degraded =
                record.effectiveGoal > record.goal;
            tenant_summary.departing = record.departing;
            tenant_summary.remaps = record.remaps;
            tenant_summary.recovering = record.recovering;
            tenant_summary.missEwma = record.missEwma;
            tenant_summary.accesses = record.carryAccesses + c.accesses;
            tenant_summary.hits = record.carryHits + c.hits;
            tenant_summary.misses = record.carryMisses + c.misses;
            tenant_summary.missRate =
                tenant_summary.accesses == 0
                    ? 0.0
                    : static_cast<double>(tenant_summary.misses) /
                          static_cast<double>(tenant_summary.accesses);
            snap.tenants.push_back(std::move(tenant_summary));
        }
    }
    u32 live = 0;
    for (const u32 count : liveByShard_)
        live += count;
    snap.tenantsLive = live;
    snap.tenantsAttached = tenantsAttached_;
    snap.tenantsDetached = tenantsDetached_;
    snap.tenantsDrained = tenantsDrained_;
    snap.invariantChecksRun = invariantChecksRun_;
    snap.invariantViolations = invariantViolations_;

    ServiceResilienceSummary &res = snap.resilience;
    res.chaosEnabled = options_.chaos.any();
    res.chaosTransientFlips = chaosTransientFlips_;
    res.chaosHardFaults = chaosHardFaults_;
    res.chaosShardOutages = chaosShardOutages_;
    res.chaosShardStalls = chaosShardStalls_;
    res.chaosPending = chaosSchedule_.pending();
    res.shardsQuarantined = shardsQuarantined_;
    res.shardsDrained = shardsDrained_;
    res.tenantsRemapped = tenantsRemapped_;
    res.remapsPending = remapsPending_;
    res.remapInvalidations = remapInvalidations_;
    res.remapForcedMisses = remapForcedMisses_;
    res.tenantsRecovering = recovering_tenants;
    res.accessesShed = accessesShed_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kAttachErrorCount; ++i)
        res.attachRejects[i] =
            attachErrors_[i].load(std::memory_order_relaxed);
    res.maxEpochsToDrain = maxEpochsToDrain_;
    res.maxEpochsToRemap = maxEpochsToRemap_;
    res.maxEpochsBackToGoal = maxEpochsBackToGoal_;

    // 4) Publish the snapshot, then the epoch number (release pairs
    // with epochsCompleted()'s acquire: a reader that observes epoch N
    // can read snapshot N through summary()).
    {
        MutexLock lock(summaryMutex_);
        summary_ = std::move(snap);
    }
    epochsRun_.store(epoch, std::memory_order_release);
}

ServiceSummary
Service::summary() const
{
    MutexLock lock(summaryMutex_);
    return summary_;
}

} // namespace mc
} // namespace molcache
