#include "service/service.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "exec/seed_stream.hpp"
#include "fault/invariant_checker.hpp"
#include "util/logging.hpp"

namespace molcache {
namespace mc {

const char *
attachErrorName(AttachError error)
{
    switch (error) {
    case AttachError::None:
        return "none";
    case AttachError::TooManyTenants:
        return "too-many-tenants";
    case AttachError::NoAsid:
        return "no-asid";
    case AttachError::BadSpec:
        return "bad-spec";
    }
    return "unknown";
}

bool
Service::AsidPool::acquire(Asid *out)
{
    if (!freeList.empty()) {
        *out = Asid{freeList.back()};
        freeList.pop_back();
        return true;
    }
    if (nextFresh >= kInvalidAsid.value())
        return false;
    *out = Asid{static_cast<u16>(nextFresh)};
    ++nextFresh;
    return true;
}

void
Service::AsidPool::release(Asid asid)
{
    freeList.push_back(asid.value());
}

std::vector<std::unique_ptr<Service::Shard>>
Service::buildShards(const ServiceOptions &options)
{
    options.validate();
    std::vector<std::unique_ptr<Shard>> shards;
    shards.reserve(options.shards);
    for (u32 i = 0; i < options.shards; ++i) {
        // Shards are independent caches; give each its own seed stream
        // (the sweep engine's SplitMix64 derivation) so identical
        // tenants on different shards don't mirror placement decisions.
        MolecularCacheParams params = options.cache;
        params.seed = deriveJobSeed(options.cache.seed, i);
        auto shard = std::make_unique<Shard>();
        shard->cache = std::make_unique<MolecularCache>(params);
        shards.push_back(std::move(shard));
    }
    return shards;
}

Service::Service(const ServiceOptions &options)
    : options_(options), shards_(buildShards(options_))
{
    {
        MutexLock admin(adminMutex_);
        asidPools_.resize(shards_.size());
        liveByShard_.assign(shards_.size(), 0u);
    }
    if (options_.epochMillis != 0) {
        // The control loop is open-ended (runs until ~Service), which
        // doesn't fit the pool's bounded forEach jobs.
        // lint: allow(raw-thread): joined in ~Service after the stop handshake
        controlThread_ = std::thread([this] { controlLoop(); });
    }
}

Service::~Service()
{
    if (controlThread_.joinable()) {
        {
            MutexLock lock(controlMutex_);
            stopRequested_ = true;
        }
        controlCv_.notifyAll();
        controlThread_.join();
    }
}

void
Service::controlLoop()
{
    for (;;) {
        {
            MutexLock lock(controlMutex_);
            if (!stopRequested_)
                controlCv_.waitFor(controlMutex_, options_.epochMillis);
            if (stopRequested_)
                return;
        }
        runEpochNow();
    }
}

u32
Service::pickShard(const TenantSpec &) const
{
    u32 best = 0;
    for (u32 i = 1; i < liveByShard_.size(); ++i)
        if (liveByShard_[i] < liveByShard_[best])
            best = i;
    return best;
}

TenantHandle
Service::attach(const TenantSpec &spec, AttachError *error)
{
    const auto fail = [error](AttachError reason) {
        if (error != nullptr)
            *error = reason;
        return TenantHandle{};
    };

    const double goal =
        spec.missRateGoal == 0.0 ? options_.defaultGoal : spec.missRateGoal;
    if (goal <= 0.0 || goal > 1.0 || spec.lineMultiple == 0)
        return fail(AttachError::BadSpec);
    if (spec.shard != TenantSpec::kAnyShard &&
        spec.shard >= shards_.size())
        return fail(AttachError::BadSpec);
    const u32 floor = spec.floorMolecules == TenantSpec::kDefaultFloor
                          ? options_.defaultFloor
                          : spec.floorMolecules;

    MutexLock admin(adminMutex_);
    if (options_.maxTenants != 0) {
        u32 live = 0;
        for (const u32 count : liveByShard_)
            live += count;
        if (live >= options_.maxTenants)
            return fail(AttachError::TooManyTenants);
    }
    const u32 shard_index =
        spec.shard == TenantSpec::kAnyShard ? pickShard(spec) : spec.shard;

    Asid asid{};
    if (!asidPools_[shard_index].acquire(&asid))
        return fail(AttachError::NoAsid);

    Shard &sh = *shards_[shard_index];
    u32 generation = 0;
    {
        MutexLock lock(sh.mutex);
        const u32 tile = sh.nextTile;
        sh.nextTile = (sh.nextTile + 1u) % options_.cache.tilesPerCluster;
        sh.cache->registerApplication(asid, goal, ClusterId{0}, tile,
                                      spec.lineMultiple);
        if (floor != 0)
            sh.cache->setRegionFloor(asid, floor);
        // The stats slot's retire count at attach time: (asid,
        // generation) stays unique across ASID recycling.
        generation = sh.cache->stats().generationOf(asid);
    }

    auto state = std::make_shared<detail::TenantState>();
    state->shard = shard_index;
    state->asid = asid;
    state->generation = generation;
    state->name = spec.name.empty()
                      ? molcache::detail::concat("tenant", asid.value())
                      : spec.name;

    TenantRecord record;
    record.live = state;
    record.name = state->name;
    record.shard = shard_index;
    record.asid = asid;
    record.generation = generation;
    record.goal = goal;
    tenants_.push_back(std::move(record));
    ++liveByShard_[shard_index];
    ++tenantsAttached_;
    if (error != nullptr)
        *error = AttachError::None;
    return TenantHandle{std::move(state)};
}

void
Service::detach(const TenantHandle &handle)
{
    MOLCACHE_EXPECT(handle.valid(), "detach() on an empty TenantHandle");
    if (!handle.valid())
        return;
    MutexLock admin(adminMutex_);
    for (TenantRecord &record : tenants_) {
        if (record.shard != handle.shard() || record.asid != handle.asid() ||
            record.generation != handle.generation())
            continue;
        if (!record.departing) {
            record.departing = true;
            MOLCACHE_INVARIANT(liveByShard_[record.shard] > 0,
                               "live-tenant count underflow");
            --liveByShard_[record.shard];
            ++tenantsDetached_;
        }
        return; // second detach of the same tenant is a no-op
    }
    // No record: the tenant already drained (detach after the epoch
    // collected it) — idempotent by design.
}

AccessResult
Service::access(const TenantHandle &handle, Addr addr, bool isWrite)
{
    MOLCACHE_EXPECT(handle.valid(), "access() through an empty TenantHandle");
    if (!handle.valid())
        return AccessResult{};
    const detail::TenantState &state = *handle.state_;
    Shard &sh = *shards_[state.shard];
    MutexLock lock(sh.mutex);
    return sh.cache->access(MemAccess{addr, state.asid,
                                      isWrite ? AccessType::Write
                                              : AccessType::Read});
}

void
Service::accessBatch(const TenantHandle &handle,
                     std::span<const TenantAccess> in,
                     std::span<AccessResult> out)
{
    MOLCACHE_EXPECT(in.size() == out.size(),
                    "accessBatch() span length mismatch");
    MOLCACHE_EXPECT(handle.valid(),
                    "accessBatch() through an empty TenantHandle");
    if (!handle.valid()) {
        std::fill(out.begin(), out.end(), AccessResult{});
        return;
    }
    const detail::TenantState &state = *handle.state_;
    Shard &sh = *shards_[state.shard];
    // Stage through a stack chunk so the path stays allocation-free and
    // one lock hold covers a whole chunk without starving other tenants
    // of the shard for arbitrarily long blocks.
    constexpr size_t kChunk = 256;
    std::array<MemAccess, kChunk> staged;
    for (size_t off = 0; off < in.size(); off += kChunk) {
        const size_t n = std::min(kChunk, in.size() - off);
        for (size_t i = 0; i < n; ++i) {
            staged[i] = MemAccess{in[off + i].addr, state.asid,
                                  in[off + i].write ? AccessType::Write
                                                    : AccessType::Read};
        }
        MutexLock lock(sh.mutex);
        sh.cache->accessBatch(std::span<const MemAccess>{staged.data(), n},
                              out.subspan(off, n));
    }
}

void
Service::setGoal(const TenantHandle &handle, double missRateGoal)
{
    MOLCACHE_EXPECT(handle.valid(), "setGoal() on an empty TenantHandle");
    if (!handle.valid())
        return;
    const detail::TenantState &state = *handle.state_;
    {
        Shard &sh = *shards_[state.shard];
        MutexLock lock(sh.mutex);
        sh.cache->setResizeGoal(state.asid, missRateGoal); // validates
    }
    MutexLock admin(adminMutex_);
    for (TenantRecord &record : tenants_) {
        if (record.shard == state.shard && record.asid == state.asid &&
            record.generation == state.generation) {
            record.goal = missRateGoal;
            return;
        }
    }
}

void
Service::runEpochNow()
{
    MutexLock admin(adminMutex_);
    runEpochLocked();
}

void
Service::runEpochLocked()
{
    const u64 epoch = epochsRun_.load(std::memory_order_relaxed) + 1u;

    // 1) Drain departures whose last handle reference has dropped.  The
    // weak_ptr is the drain barrier: while any worker still holds the
    // tenant, the region stays registered and servable.
    for (auto it = tenants_.begin(); it != tenants_.end();) {
        if (it->departing && it->live.expired()) {
            Shard &sh = *shards_[it->shard];
            {
                MutexLock lock(sh.mutex);
                sh.cache->unregisterApplication(it->asid);
                sh.cache->retireApplicationStats(it->asid);
            }
            asidPools_[it->shard].release(it->asid);
            ++tenantsDrained_;
            it = tenants_.erase(it);
        } else {
            ++it;
        }
    }

    // 2) Audit + merge per-shard statistics into one snapshot.
    const bool audit = options_.auditEpochs != 0 &&
                       epoch % options_.auditEpochs == 0;
    ServiceSummary snap;
    snap.epoch = epoch;
    snap.shards.reserve(shards_.size());
    snap.tenants.reserve(tenants_.size());
    for (u32 i = 0; i < shards_.size(); ++i) {
        Shard &sh = *shards_[i];
        MutexLock lock(sh.mutex);
        if (audit) {
            const InvariantChecker::Report report =
                InvariantChecker::check(*sh.cache);
            invariantChecksRun_ += report.checksRun;
            invariantViolations_ +=
                static_cast<u64>(report.violations.size());
            for (const std::string &violation : report.violations)
                warn("service epoch ", epoch, ", shard ", i,
                     ": invariant violation: ", violation);
        }
        const AccessCounters &g = sh.cache->stats().global();
        ServiceShardSummary shard_summary;
        shard_summary.shard = i;
        shard_summary.accesses = g.accesses;
        shard_summary.hits = g.hits;
        shard_summary.misses = g.misses;
        shard_summary.writebacks = g.writebacks;
        shard_summary.regions =
            static_cast<u32>(sh.cache->registeredAsids().size());
        shard_summary.freeMolecules = sh.cache->freeMolecules();
        shard_summary.decommissionedMolecules =
            sh.cache->decommissionedMolecules();
        shard_summary.resizeCycles = sh.cache->resizeCycles();
        snap.accesses += shard_summary.accesses;
        snap.hits += shard_summary.hits;
        snap.misses += shard_summary.misses;
        snap.writebacks += shard_summary.writebacks;
        snap.shards.push_back(std::move(shard_summary));

        for (const TenantRecord &record : tenants_) {
            if (record.shard != i)
                continue;
            const AccessCounters &c = sh.cache->stats().forAsid(record.asid);
            ServiceTenantSummary tenant_summary;
            tenant_summary.name = record.name;
            tenant_summary.shard = i;
            tenant_summary.asid = record.asid.value();
            tenant_summary.generation = record.generation;
            tenant_summary.goal = record.goal;
            tenant_summary.departing = record.departing;
            tenant_summary.accesses = c.accesses;
            tenant_summary.hits = c.hits;
            tenant_summary.misses = c.misses;
            tenant_summary.missRate = c.missRate();
            snap.tenants.push_back(std::move(tenant_summary));
        }
    }
    u32 live = 0;
    for (const u32 count : liveByShard_)
        live += count;
    snap.tenantsLive = live;
    snap.tenantsAttached = tenantsAttached_;
    snap.tenantsDetached = tenantsDetached_;
    snap.tenantsDrained = tenantsDrained_;
    snap.invariantChecksRun = invariantChecksRun_;
    snap.invariantViolations = invariantViolations_;

    // 3) Publish the snapshot, then the epoch number (release pairs
    // with epochsCompleted()'s acquire: a reader that observes epoch N
    // can read snapshot N through summary()).
    {
        MutexLock lock(summaryMutex_);
        summary_ = std::move(snap);
    }
    epochsRun_.store(epoch, std::memory_order_release);
}

ServiceSummary
Service::summary() const
{
    MutexLock lock(summaryMutex_);
    return summary_;
}

} // namespace mc
} // namespace molcache
