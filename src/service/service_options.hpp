/**
 * @file
 * ServiceOptions: the knob bundle for mc::Service (molcached).
 *
 * Mirrors the RunOptions pattern (src/sim/run_options.hpp): a plain
 * copyable value with fluent with*() setters so construction sites read
 * like keyword arguments.  Two molcached-specific twists:
 *
 *  - every setter range-checks its argument eagerly and records a
 *    violation *with the caller's file:line* (std::source_location), so
 *    validate() can report "bench/service_churn.cpp:87: service.shards
 *    must be >= 1" instead of an anonymous failure deep inside the
 *    service constructor — the same file:line contract PR 1 set for
 *    config-file errors;
 *  - fromConfig() builds the options from the registered `service.*`
 *    config keys (src/util/config_keys.cpp), so a config file and the
 *    fluent builder are interchangeable front ends.
 *
 * Shard geometry: `cache` describes ONE shard, and a shard is exactly
 * one tile cluster — the cluster is Ulmo's search domain, regions never
 * span it, so cluster boundaries are where the cache can be split into
 * independently-locked instances without any cross-shard coherence.
 * validate() therefore requires cache.clusters == 1 and `shards` scales
 * the service out instead.
 */

#ifndef MOLCACHE_SERVICE_SERVICE_OPTIONS_HPP
#define MOLCACHE_SERVICE_SERVICE_OPTIONS_HPP

#include <source_location>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "service/chaos.hpp"
#include "util/config.hpp"

namespace molcache {
namespace mc {

struct ServiceOptions
{
    /** Per-shard cache geometry; clusters must stay 1 (see above). */
    MolecularCacheParams cache;

    /** Independently-locked cache shards (tile clusters). */
    u32 shards = 2;

    /**
     * Control-plane epoch period in milliseconds: the service's own
     * thread drains departed tenants, merges shard statistics and runs
     * the invariant audit this often.  0 disables the thread — the
     * embedder paces epochs by calling Service::runEpochNow(), which is
     * also what deterministic tests do.
     */
    u64 epochMillis = 20;

    /** Run the InvariantChecker audit every N epochs (0 = never). */
    u32 auditEpochs = 1;

    /** Admission cap on live tenants (0 = unlimited). */
    u32 maxTenants = 0;

    /** Miss-rate goal for tenants whose spec leaves the goal at 0. */
    double defaultGoal = 0.1;

    /** Capacity floor (molecules) for tenants whose spec asks for the
     * default (0 = no floor beyond the guardian's own). */
    u32 defaultFloor = 0;

    /** Seeded chaos storm fired by the control-plane epochs; all-zero
     * event counts (the default) leave chaos off and the service
     * byte-identical to its pre-resilience behaviour. */
    ChaosSpec chaos;

    /** Quarantine a shard once this fraction of its molecules is
     * decommissioned: admissions stop, its tenants remap to healthy
     * shards, and it drains (docs/fault_model.md). */
    double quarantineThreshold = 0.5;

    /**
     * Overload-protection watermarks over *healthy* capacity: attach()
     * rejects with AttachError::Overloaded once the summed tenant
     * demand (capacity floors, min 1 molecule each) exceeds
     * admitHighWater x healthy molecules, and keeps rejecting until
     * demand falls back below admitLowWater x healthy molecules — the
     * hysteresis stops admission from flapping at the boundary.
     * admitHighWater == 0 (the default) disables capacity admission.
     */
    double admitHighWater = 0.0;
    double admitLowWater = 0.0;

    /** Proportionally relax per-tenant miss-rate goals when healthy
     * capacity shrinks (goal x total/healthy, capped at 1.0) so the
     * guardian degrades tenants fairly instead of thrashing. */
    bool degradeGoals = true;

    /** A remapped tenant counts as re-converged once its per-epoch
     * miss-rate EWMA is within this slack of its (degraded) goal or of
     * its own pre-remap EWMA, whichever is easier. */
    double recoverySlack = 0.05;

    /** @{ Fluent setters; invalid arguments are recorded (with the call
     * site) and reported by validate(). */
    ServiceOptions &withCacheParams(
        const MolecularCacheParams &params,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withShards(
        u32 count,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withEpochMillis(
        u64 millis,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withAuditEpochs(
        u32 epochs,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withMaxTenants(
        u32 count,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withDefaultGoal(
        double goal,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withDefaultFloor(
        u32 molecules,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withGuardian(
        bool enabled,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withChaos(
        const ChaosSpec &spec,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withQuarantineThreshold(
        double fraction,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withAdmitWatermarks(
        double high, double low,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withDegradeGoals(
        bool enabled,
        std::source_location loc = std::source_location::current());
    ServiceOptions &withRecoverySlack(
        double slack,
        std::source_location loc = std::source_location::current());
    /** @} */

    /**
     * Build options from the `service.*` config keys, starting from the
     * defaults above (unknown keys in @p cfg are the caller's
     * warnUnknownKeys problem, as everywhere).  Out-of-range values are
     * recorded against @p loc — the config consumer's call site.
     */
    static ServiceOptions fromConfig(
        const Config &cfg,
        std::source_location loc = std::source_location::current());

    /**
     * Violations recorded so far, each "file:line: message".  Empty
     * means every setter argument was in range; cross-field rules are
     * only checked by validate().
     */
    const std::vector<std::string> &errors() const { return errors_; }

    /**
     * Fatal if any setter recorded a violation or a cross-field rule
     * fails (shards >= 1, cache.clusters == 1, goal in (0,1]); also
     * runs cache.validate().  Service's constructor calls this.
     */
    void validate() const;

  private:
    void note(const std::source_location &loc, const std::string &message);

    std::vector<std::string> errors_;
};

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_SERVICE_SERVICE_OPTIONS_HPP
