#include "service/service_options.hpp"

#include "util/logging.hpp"

namespace molcache {
namespace mc {

void
ServiceOptions::note(const std::source_location &loc,
                     const std::string &message)
{
    errors_.push_back(detail::concat(loc.file_name(), ":", loc.line(), ": ",
                                     message));
}

ServiceOptions &
ServiceOptions::withCacheParams(const MolecularCacheParams &params,
                                std::source_location loc)
{
    if (params.clusters != 1)
        note(loc, detail::concat(
                      "per-shard cache geometry must have clusters == 1 "
                      "(got ",
                      params.clusters,
                      "); scale out with service.shards instead"));
    cache = params;
    return *this;
}

ServiceOptions &
ServiceOptions::withShards(u32 count, std::source_location loc)
{
    if (count == 0)
        note(loc, "service.shards must be >= 1, got 0");
    shards = count;
    return *this;
}

ServiceOptions &
ServiceOptions::withEpochMillis(u64 millis, std::source_location)
{
    epochMillis = millis;
    return *this;
}

ServiceOptions &
ServiceOptions::withAuditEpochs(u32 epochs, std::source_location)
{
    auditEpochs = epochs;
    return *this;
}

ServiceOptions &
ServiceOptions::withMaxTenants(u32 count, std::source_location)
{
    maxTenants = count;
    return *this;
}

ServiceOptions &
ServiceOptions::withDefaultGoal(double goal, std::source_location loc)
{
    if (goal <= 0.0 || goal > 1.0)
        note(loc, detail::concat("service.default_goal must be in (0, 1], "
                                 "got ",
                                 goal));
    defaultGoal = goal;
    return *this;
}

ServiceOptions &
ServiceOptions::withDefaultFloor(u32 molecules, std::source_location loc)
{
    const u32 per_shard = cache.moleculesPerTile * cache.tilesPerCluster;
    if (molecules > per_shard)
        note(loc, detail::concat("service.default_floor (", molecules,
                                 ") exceeds a whole shard (", per_shard,
                                 " molecules)"));
    defaultFloor = molecules;
    return *this;
}

ServiceOptions &
ServiceOptions::withGuardian(bool enabled, std::source_location)
{
    cache.guardian.enabled = enabled;
    return *this;
}

ServiceOptions &
ServiceOptions::withChaos(const ChaosSpec &spec, std::source_location loc)
{
    if (spec.windowEnd < spec.windowStart)
        note(loc, detail::concat("service.chaos window is empty (start ",
                                 spec.windowStart, " > end ",
                                 spec.windowEnd, ")"));
    chaos = spec;
    return *this;
}

ServiceOptions &
ServiceOptions::withQuarantineThreshold(double fraction,
                                        std::source_location loc)
{
    if (fraction <= 0.0 || fraction > 1.0)
        note(loc, detail::concat("service.quarantine_threshold must be in "
                                 "(0, 1], got ",
                                 fraction));
    quarantineThreshold = fraction;
    return *this;
}

ServiceOptions &
ServiceOptions::withAdmitWatermarks(double high, double low,
                                    std::source_location loc)
{
    if (high < 0.0)
        note(loc, detail::concat("service.admit_high_water must be >= 0, "
                                 "got ",
                                 high));
    if (low < 0.0 || (high > 0.0 && low > high))
        note(loc, detail::concat("service.admit_low_water must be in "
                                 "[0, admit_high_water], got ",
                                 low));
    admitHighWater = high;
    admitLowWater = low;
    return *this;
}

ServiceOptions &
ServiceOptions::withDegradeGoals(bool enabled, std::source_location)
{
    degradeGoals = enabled;
    return *this;
}

ServiceOptions &
ServiceOptions::withRecoverySlack(double slack, std::source_location loc)
{
    if (slack < 0.0 || slack >= 1.0)
        note(loc, detail::concat("service.recovery_slack must be in "
                                 "[0, 1), got ",
                                 slack));
    recoverySlack = slack;
    return *this;
}

ServiceOptions
ServiceOptions::fromConfig(const Config &cfg, std::source_location loc)
{
    ServiceOptions opts;
    opts.withShards(
        static_cast<u32>(cfg.getInt("service.shards",
                                    static_cast<i64>(opts.shards))),
        loc);
    opts.withEpochMillis(
        static_cast<u64>(cfg.getInt("service.epoch_ms",
                                    static_cast<i64>(opts.epochMillis))),
        loc);
    opts.withAuditEpochs(
        static_cast<u32>(cfg.getInt("service.audit_epochs",
                                    static_cast<i64>(opts.auditEpochs))),
        loc);
    opts.withMaxTenants(
        static_cast<u32>(cfg.getInt("service.max_tenants",
                                    static_cast<i64>(opts.maxTenants))),
        loc);
    opts.withDefaultGoal(cfg.getDouble("service.default_goal",
                                       opts.defaultGoal),
                         loc);
    opts.withDefaultFloor(
        static_cast<u32>(cfg.getInt("service.default_floor",
                                    static_cast<i64>(opts.defaultFloor))),
        loc);
    opts.withGuardian(cfg.getBool("service.guardian",
                                  opts.cache.guardian.enabled),
                      loc);
    ChaosSpec chaos = opts.chaos;
    chaos.seed = static_cast<u64>(
        cfg.getInt("service.chaos.seed", static_cast<i64>(chaos.seed)));
    chaos.windowStart = static_cast<u64>(
        cfg.getInt("service.chaos.window_start",
                   static_cast<i64>(chaos.windowStart)));
    chaos.windowEnd = static_cast<u64>(
        cfg.getInt("service.chaos.window_end",
                   static_cast<i64>(chaos.windowEnd)));
    chaos.transientFlips = static_cast<u32>(
        cfg.getInt("service.chaos.transient_flips",
                   static_cast<i64>(chaos.transientFlips)));
    chaos.hardFaults = static_cast<u32>(
        cfg.getInt("service.chaos.hard_faults",
                   static_cast<i64>(chaos.hardFaults)));
    chaos.shardOutages = static_cast<u32>(
        cfg.getInt("service.chaos.shard_outages",
                   static_cast<i64>(chaos.shardOutages)));
    chaos.shardStalls = static_cast<u32>(
        cfg.getInt("service.chaos.shard_stalls",
                   static_cast<i64>(chaos.shardStalls)));
    chaos.stallEpochs = static_cast<u64>(
        cfg.getInt("service.chaos.stall_epochs",
                   static_cast<i64>(chaos.stallEpochs)));
    opts.withChaos(chaos, loc);
    opts.withQuarantineThreshold(
        cfg.getDouble("service.quarantine_threshold",
                      opts.quarantineThreshold),
        loc);
    opts.withAdmitWatermarks(
        cfg.getDouble("service.admit_high_water", opts.admitHighWater),
        cfg.getDouble("service.admit_low_water", opts.admitLowWater), loc);
    opts.withDegradeGoals(cfg.getBool("service.degrade_goals",
                                      opts.degradeGoals),
                          loc);
    opts.withRecoverySlack(cfg.getDouble("service.recovery_slack",
                                         opts.recoverySlack),
                           loc);
    return opts;
}

void
ServiceOptions::validate() const
{
    std::vector<std::string> all = errors_;
    if (shards == 0)
        all.push_back("service.shards must be >= 1");
    if (shards > 0xffffu)
        all.push_back(detail::concat(
            "service.shards must fit the 16-bit routing field (<= 65535), "
            "got ",
            shards));
    if (quarantineThreshold <= 0.0 || quarantineThreshold > 1.0)
        all.push_back(detail::concat(
            "service.quarantine_threshold must be in (0, 1], got ",
            quarantineThreshold));
    if (admitHighWater > 0.0 && admitLowWater > admitHighWater)
        all.push_back(detail::concat(
            "service.admit_low_water (", admitLowWater,
            ") exceeds service.admit_high_water (", admitHighWater, ")"));
    if (chaos.windowEnd < chaos.windowStart)
        all.push_back(detail::concat("service.chaos window is empty (start ",
                                     chaos.windowStart, " > end ",
                                     chaos.windowEnd, ")"));
    if (cache.clusters != 1)
        all.push_back(detail::concat(
            "per-shard cache geometry must have clusters == 1, got ",
            cache.clusters));
    if (defaultGoal <= 0.0 || defaultGoal > 1.0)
        all.push_back(detail::concat(
            "service.default_goal must be in (0, 1], got ", defaultGoal));
    if (!all.empty()) {
        std::string joined;
        for (const std::string &e : all) {
            if (!joined.empty())
                joined += "\n  ";
            joined += e;
        }
        fatal("invalid ServiceOptions:\n  ", joined);
    }
    cache.validate();
}

} // namespace mc
} // namespace molcache
