#include "service/service_json.hpp"

namespace molcache {
namespace mc {

void
writeServiceSummaryJson(JsonWriter &json, const ServiceSummary &summary)
{
    json.beginObject();
    json.key("epoch");
    json.value(summary.epoch);
    json.key("accesses");
    json.value(summary.accesses);
    json.key("hits");
    json.value(summary.hits);
    json.key("misses");
    json.value(summary.misses);
    json.key("writebacks");
    json.value(summary.writebacks);
    json.key("miss_rate");
    json.value(summary.missRate());
    json.key("tenants_live");
    json.value(static_cast<u64>(summary.tenantsLive));
    json.key("tenants_attached");
    json.value(summary.tenantsAttached);
    json.key("tenants_detached");
    json.value(summary.tenantsDetached);
    json.key("tenants_drained");
    json.value(summary.tenantsDrained);
    json.key("invariant_checks_run");
    json.value(summary.invariantChecksRun);
    json.key("invariant_violations");
    json.value(summary.invariantViolations);
    json.key("contract_violations");
    json.value(summary.contractViolations);

    json.key("shards");
    json.beginArray();
    for (const ServiceShardSummary &shard : summary.shards) {
        json.beginObject();
        json.key("shard");
        json.value(static_cast<u64>(shard.shard));
        json.key("accesses");
        json.value(shard.accesses);
        json.key("hits");
        json.value(shard.hits);
        json.key("misses");
        json.value(shard.misses);
        json.key("writebacks");
        json.value(shard.writebacks);
        json.key("regions");
        json.value(static_cast<u64>(shard.regions));
        json.key("free_molecules");
        json.value(static_cast<u64>(shard.freeMolecules));
        json.key("decommissioned_molecules");
        json.value(static_cast<u64>(shard.decommissionedMolecules));
        json.key("resize_cycles");
        json.value(shard.resizeCycles);
        json.endObject();
    }
    json.endArray();

    json.key("tenants");
    json.beginArray();
    for (const ServiceTenantSummary &tenant : summary.tenants) {
        json.beginObject();
        json.key("name");
        json.value(tenant.name);
        json.key("shard");
        json.value(static_cast<u64>(tenant.shard));
        json.key("asid");
        json.value(static_cast<u64>(tenant.asid));
        json.key("generation");
        json.value(static_cast<u64>(tenant.generation));
        json.key("goal");
        json.value(tenant.goal);
        json.key("departing");
        json.value(tenant.departing);
        json.key("accesses");
        json.value(tenant.accesses);
        json.key("hits");
        json.value(tenant.hits);
        json.key("misses");
        json.value(tenant.misses);
        json.key("miss_rate");
        json.value(tenant.missRate);
        json.endObject();
    }
    json.endArray();

    json.endObject();
}

void
writeServiceSummaryDocument(JsonWriter &json, const ServiceSummary &summary)
{
    json.beginObject();
    writeSchemaVersion(json);
    json.key("kind");
    json.value("service_summary");
    json.key("summary");
    writeServiceSummaryJson(json, summary);
    json.endObject();
}

} // namespace mc
} // namespace molcache
