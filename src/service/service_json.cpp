#include "service/service_json.hpp"

namespace molcache {
namespace mc {

namespace {

/** The resilience block (docs/molcached.md, "Recovery-SLO telemetry").
 * Only written when the resilience plane has engaged, so fault-free
 * telemetry stays byte-identical to the pre-resilience schema. */
void
writeResilienceJson(JsonWriter &json, const ServiceResilienceSummary &res)
{
    json.beginObject();
    json.key("chaos_enabled");
    json.value(res.chaosEnabled);
    json.key("chaos_transient_flips");
    json.value(res.chaosTransientFlips);
    json.key("chaos_hard_faults");
    json.value(res.chaosHardFaults);
    json.key("chaos_shard_outages");
    json.value(res.chaosShardOutages);
    json.key("chaos_shard_stalls");
    json.value(res.chaosShardStalls);
    json.key("chaos_pending");
    json.value(res.chaosPending);
    json.key("shards_quarantined");
    json.value(res.shardsQuarantined);
    json.key("shards_drained");
    json.value(res.shardsDrained);
    json.key("tenants_remapped");
    json.value(res.tenantsRemapped);
    json.key("remaps_pending");
    json.value(res.remapsPending);
    json.key("remap_invalidations");
    json.value(res.remapInvalidations);
    json.key("remap_forced_misses");
    json.value(res.remapForcedMisses);
    json.key("tenants_recovering");
    json.value(res.tenantsRecovering);
    json.key("accesses_shed");
    json.value(res.accessesShed);
    json.key("attach_rejects");
    json.beginObject();
    for (size_t i = 1; i < kAttachErrorCount; ++i) {
        // Slot 0 is AttachError::None — a success, never a rejection.
        json.key(attachErrorName(static_cast<AttachError>(i)));
        json.value(res.attachRejects[i]);
    }
    json.endObject();
    json.key("max_epochs_to_drain");
    json.value(res.maxEpochsToDrain);
    json.key("max_epochs_to_remap");
    json.value(res.maxEpochsToRemap);
    json.key("max_epochs_back_to_goal");
    json.value(res.maxEpochsBackToGoal);
    json.endObject();
}

} // namespace

void
writeServiceSummaryJson(JsonWriter &json, const ServiceSummary &summary)
{
    // The resilience plane's fields (the whole `resilience` block plus
    // the per-shard health and per-tenant recovery keys) are additive
    // and gated together: a run where the plane never engaged emits the
    // exact pre-resilience document.
    const bool resilient = summary.resilience.active();
    json.beginObject();
    json.key("epoch");
    json.value(summary.epoch);
    json.key("accesses");
    json.value(summary.accesses);
    json.key("hits");
    json.value(summary.hits);
    json.key("misses");
    json.value(summary.misses);
    json.key("writebacks");
    json.value(summary.writebacks);
    json.key("miss_rate");
    json.value(summary.missRate());
    json.key("tenants_live");
    json.value(static_cast<u64>(summary.tenantsLive));
    json.key("tenants_attached");
    json.value(summary.tenantsAttached);
    json.key("tenants_detached");
    json.value(summary.tenantsDetached);
    json.key("tenants_drained");
    json.value(summary.tenantsDrained);
    json.key("invariant_checks_run");
    json.value(summary.invariantChecksRun);
    json.key("invariant_violations");
    json.value(summary.invariantViolations);
    json.key("contract_violations");
    json.value(summary.contractViolations);
    if (resilient) {
        json.key("resilience");
        writeResilienceJson(json, summary.resilience);
    }

    json.key("shards");
    json.beginArray();
    for (const ServiceShardSummary &shard : summary.shards) {
        json.beginObject();
        json.key("shard");
        json.value(static_cast<u64>(shard.shard));
        json.key("accesses");
        json.value(shard.accesses);
        json.key("hits");
        json.value(shard.hits);
        json.key("misses");
        json.value(shard.misses);
        json.key("writebacks");
        json.value(shard.writebacks);
        json.key("regions");
        json.value(static_cast<u64>(shard.regions));
        json.key("free_molecules");
        json.value(static_cast<u64>(shard.freeMolecules));
        json.key("decommissioned_molecules");
        json.value(static_cast<u64>(shard.decommissionedMolecules));
        json.key("resize_cycles");
        json.value(shard.resizeCycles);
        if (resilient) {
            json.key("healthy_molecules");
            json.value(static_cast<u64>(shard.healthyMolecules));
            json.key("quarantined");
            json.value(shard.quarantined);
            json.key("stalled_until_epoch");
            json.value(shard.stalledUntilEpoch);
        }
        json.endObject();
    }
    json.endArray();

    json.key("tenants");
    json.beginArray();
    for (const ServiceTenantSummary &tenant : summary.tenants) {
        json.beginObject();
        json.key("name");
        json.value(tenant.name);
        json.key("shard");
        json.value(static_cast<u64>(tenant.shard));
        json.key("asid");
        json.value(static_cast<u64>(tenant.asid));
        json.key("generation");
        json.value(static_cast<u64>(tenant.generation));
        json.key("goal");
        json.value(tenant.goal);
        if (resilient) {
            json.key("effective_goal");
            json.value(tenant.effectiveGoal);
            json.key("degraded");
            json.value(tenant.degraded);
            json.key("remaps");
            json.value(static_cast<u64>(tenant.remaps));
            json.key("recovering");
            json.value(tenant.recovering);
            json.key("miss_ewma");
            json.value(tenant.missEwma);
        }
        json.key("departing");
        json.value(tenant.departing);
        json.key("accesses");
        json.value(tenant.accesses);
        json.key("hits");
        json.value(tenant.hits);
        json.key("misses");
        json.value(tenant.misses);
        json.key("miss_rate");
        json.value(tenant.missRate);
        json.endObject();
    }
    json.endArray();

    json.endObject();
}

void
writeServiceSummaryDocument(JsonWriter &json, const ServiceSummary &summary)
{
    json.beginObject();
    writeSchemaVersion(json);
    json.key("kind");
    json.value("service_summary");
    json.key("summary");
    writeServiceSummaryJson(json, summary);
    json.endObject();
}

} // namespace mc
} // namespace molcache
