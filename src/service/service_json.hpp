/**
 * @file
 * ServiceSummary -> schema-versioned JSON (the molcached telemetry
 * artifact: bench/service_churn --json, uploaded by the CI adversarial
 * job and checked by its sanity gate).
 */

#ifndef MOLCACHE_SERVICE_SERVICE_JSON_HPP
#define MOLCACHE_SERVICE_SERVICE_JSON_HPP

#include "service/service.hpp"
#include "stats/json.hpp"

namespace molcache {
namespace mc {

/** The summary body (no envelope). */
void writeServiceSummaryJson(JsonWriter &json, const ServiceSummary &summary);

/** Standalone document: {schemaVersion, kind: "service_summary",
 * summary: {...}} — same envelope contract as sim/sweep results. */
void writeServiceSummaryDocument(JsonWriter &json,
                                 const ServiceSummary &summary);

} // namespace mc
} // namespace molcache

#endif // MOLCACHE_SERVICE_SERVICE_JSON_HPP
