#include "service/chaos.hpp"

#include <algorithm>

#include "contract/contract.hpp"
#include "core/sim_access.hpp"
#include "util/random.hpp"

namespace molcache {
namespace mc {

const char *
chaosKindName(ChaosKind kind)
{
    switch (kind) {
    case ChaosKind::TransientFlip:
        return "transient-flip";
    case ChaosKind::HardFault:
        return "hard-fault";
    case ChaosKind::ShardOutage:
        return "shard-outage";
    case ChaosKind::ShardStall:
        return "shard-stall";
    }
    return "unknown";
}

ChaosSchedule
ChaosSchedule::build(const ChaosSpec &spec, u32 shards,
                     u32 moleculesPerShard, u32 linesPerMolecule)
{
    MOLCACHE_EXPECT(shards > 0, "chaos schedule for a shardless service");
    MOLCACHE_EXPECT(moleculesPerShard > 0 && linesPerMolecule > 0,
                    "chaos schedule for an empty shard geometry");
    ChaosSchedule schedule;
    if (!spec.any())
        return schedule;

    const auto rng = makeRandomSource(RngKind::Pcg32, spec.seed);
    const u64 window_start = std::min(spec.windowStart, spec.windowEnd);
    const u64 window = spec.windowEnd - window_start + 1;
    const auto epochAt = [&] { return window_start + rng->next64() % window; };

    // Outages hit distinct shards and never all of them: the remap
    // ladder needs at least one healthy destination.
    const u32 outages =
        std::min(spec.shardOutages, shards > 1 ? shards - 1 : 0u);
    std::vector<u32> victims(shards);
    for (u32 i = 0; i < shards; ++i)
        victims[i] = i;
    for (u32 i = 0; i < outages; ++i) {
        const u32 pick =
            i + static_cast<u32>(rng->next64() % (shards - i));
        std::swap(victims[i], victims[pick]);
        ChaosEvent event;
        event.epoch = epochAt();
        event.kind = ChaosKind::ShardOutage;
        event.shard = victims[i];
        schedule.events_.push_back(event);
    }

    for (u32 i = 0; i < spec.transientFlips; ++i) {
        ChaosEvent event;
        event.epoch = epochAt();
        event.kind = ChaosKind::TransientFlip;
        event.shard = static_cast<u32>(rng->next64() % shards);
        event.molecule = static_cast<u32>(rng->next64() % moleculesPerShard);
        event.line = static_cast<u32>(rng->next64() % linesPerMolecule);
        schedule.events_.push_back(event);
    }

    for (u32 i = 0; i < spec.hardFaults; ++i) {
        ChaosEvent event;
        event.epoch = epochAt();
        event.kind = ChaosKind::HardFault;
        event.shard = static_cast<u32>(rng->next64() % shards);
        event.molecule = static_cast<u32>(rng->next64() % moleculesPerShard);
        schedule.events_.push_back(event);
    }

    for (u32 i = 0; i < spec.shardStalls; ++i) {
        ChaosEvent event;
        event.epoch = epochAt();
        event.kind = ChaosKind::ShardStall;
        event.shard = static_cast<u32>(rng->next64() % shards);
        event.stallEpochs = spec.stallEpochs == 0 ? 1 : spec.stallEpochs;
        schedule.events_.push_back(event);
    }

    // One deterministic firing order: epoch, then severity (outages
    // before point faults so a doomed shard quarantines in one epoch),
    // then target, so equal-seed storms replay identically.
    std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                     [](const ChaosEvent &a, const ChaosEvent &b) {
                         if (a.epoch != b.epoch)
                             return a.epoch < b.epoch;
                         if (a.kind != b.kind)
                             return static_cast<u8>(a.kind) >
                                    static_cast<u8>(b.kind);
                         if (a.shard != b.shard)
                             return a.shard < b.shard;
                         return a.molecule < b.molecule;
                     });
    return schedule;
}

const ChaosEvent *
ChaosSchedule::drainOne(u64 epoch)
{
    if (next_ >= events_.size() || events_[next_].epoch > epoch)
        return nullptr;
    return &events_[next_++];
}

void
applyShardChaos(MolecularCache &cache, const ChaosEvent &event)
{
    // The control plane holds the target shard's mutex here, so the
    // cache is as quiescent as the single-threaded harness the fault
    // mutators were written for.
    SimAccess sim(cache);
    switch (event.kind) {
    case ChaosKind::TransientFlip:
        sim.injectTransientFlip(MoleculeId{event.molecule}, event.line);
        return;
    case ChaosKind::HardFault: {
        // One chaos hard-fault event means "this array is failing":
        // keep faulting the molecule until the threshold fences it.
        const u32 threshold = cache.params().hardFaultThreshold;
        for (u32 i = 0; i < threshold; ++i)
            sim.injectHardFault(MoleculeId{event.molecule});
        return;
    }
    case ChaosKind::ShardOutage:
        // A shard is one tile cluster; fencing cluster 0 fences the
        // whole shard.
        sim.injectClusterOutage(ClusterId{0});
        return;
    case ChaosKind::ShardStall:
        return; // service-side bookkeeping only
    }
}

} // namespace mc
} // namespace molcache
