/**
 * @file
 * API semantics of mc::Service (molcached) — the single-threaded half
 * of the service suite.  Everything here runs with epochMillis == 0 so
 * the test paces epochs deterministically through runEpochNow(); the
 * concurrent half (drain under contention, zero-allocation windows)
 * lives in churn_soak_test.cpp.
 */

#include <gtest/gtest.h>

#include "service/service.hpp"
#include "service/service_json.hpp"
#include "util/config_keys.hpp"

#include <sstream>

namespace molcache {
namespace {

/** Small per-shard geometry so floors/capacity tests stay readable. */
mc::ServiceOptions
manualOptions()
{
    mc::ServiceOptions options;
    options.withShards(2).withEpochMillis(0).withAuditEpochs(1);
    return options;
}

TEST(ServiceOptionsTest, SetterRecordsCallSiteOnBadArgument)
{
    mc::ServiceOptions options;
    options.withShards(0);
    ASSERT_EQ(options.errors().size(), 1u);
    // The recorded violation carries THIS file and names the knob the
    // way a config file would spell it.
    EXPECT_NE(options.errors()[0].find("service_test.cpp"),
              std::string::npos)
        << options.errors()[0];
    EXPECT_NE(options.errors()[0].find("service.shards"), std::string::npos);
}

TEST(ServiceOptionsDeathTest, ValidateIsFatalOnRecordedErrors)
{
    mc::ServiceOptions options;
    options.withDefaultGoal(1.5);
    EXPECT_EXIT(options.validate(), ::testing::ExitedWithCode(1),
                "service.default_goal");
}

TEST(ServiceOptionsDeathTest, ValidateRejectsMultiClusterShard)
{
    mc::ServiceOptions options;
    options.cache.clusters = 2; // a shard must be exactly one cluster
    EXPECT_EXIT(options.validate(), ::testing::ExitedWithCode(1),
                "cluster");
}

TEST(ServiceOptionsTest, FromConfigReadsRegisteredKeys)
{
    const Config cfg = Config::fromTokens(
        {"service.shards=4", "service.epoch_ms=0", "service.audit_epochs=3",
         "service.max_tenants=16", "service.default_goal=0.25",
         "service.default_floor=2", "service.guardian=0"});
    // Every key the builder consumes is in the registry, so a config
    // carrying only service.* keys passes the unknown-key audit.
    EXPECT_EQ(cfg.warnUnknownKeys(knownConfigKeyNames()), 0u);

    const mc::ServiceOptions options = mc::ServiceOptions::fromConfig(cfg);
    EXPECT_TRUE(options.errors().empty());
    EXPECT_EQ(options.shards, 4u);
    EXPECT_EQ(options.epochMillis, 0u);
    EXPECT_EQ(options.auditEpochs, 3u);
    EXPECT_EQ(options.maxTenants, 16u);
    EXPECT_DOUBLE_EQ(options.defaultGoal, 0.25);
    EXPECT_EQ(options.defaultFloor, 2u);
    EXPECT_FALSE(options.cache.guardian.enabled);
}

TEST(ServiceOptionsTest, FromConfigRecordsOutOfRangeValues)
{
    const Config cfg = Config::fromTokens({"service.default_goal=7.0"});
    const mc::ServiceOptions options = mc::ServiceOptions::fromConfig(cfg);
    ASSERT_FALSE(options.errors().empty());
    EXPECT_NE(options.errors()[0].find("service.default_goal"),
              std::string::npos);
}

TEST(ServiceTest, AttachAccessDetachDrainLifecycle)
{
    mc::Service service(manualOptions());

    mc::TenantSpec spec;
    spec.name = "alpha";
    mc::AttachError error = mc::AttachError::BadSpec;
    mc::TenantHandle alpha = service.attach(spec, &error);
    ASSERT_TRUE(alpha);
    EXPECT_EQ(error, mc::AttachError::None);
    EXPECT_EQ(alpha.name(), "alpha");
    EXPECT_LT(alpha.shard(), service.shardCount());

    for (u64 i = 0; i < 1000; ++i)
        service.access(alpha, 0x1000 + i * 64, (i % 5) == 0);

    service.runEpochNow();
    mc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.epoch, 1u);
    EXPECT_EQ(summary.accesses, 1000u);
    EXPECT_EQ(summary.accesses, summary.hits + summary.misses);
    EXPECT_EQ(summary.tenantsLive, 1u);
    ASSERT_EQ(summary.tenants.size(), 1u);
    EXPECT_EQ(summary.tenants[0].name, "alpha");
    EXPECT_GT(summary.invariantChecksRun, 0u);
    EXPECT_EQ(summary.invariantViolations, 0u);

    // detach() marks departure; the live handle must keep the region
    // registered and usable across epochs (drain waits for it).
    service.detach(alpha);
    service.runEpochNow();
    summary = service.summary();
    EXPECT_EQ(summary.tenantsDetached, 1u);
    EXPECT_EQ(summary.tenantsDrained, 0u);
    EXPECT_EQ(summary.tenantsLive, 0u) << "departing must not count live";
    service.access(alpha, 0x1000); // still valid: handle pins the region

    alpha.reset();
    service.runEpochNow();
    summary = service.summary();
    EXPECT_EQ(summary.tenantsDrained, 1u);
    EXPECT_TRUE(summary.tenants.empty());
    // Lifetime counters survive the drain.
    EXPECT_EQ(summary.accesses, 1001u);
}

TEST(ServiceTest, DetachIsIdempotent)
{
    mc::Service service(manualOptions());
    mc::TenantHandle tenant = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(tenant);
    service.detach(tenant);
    service.detach(tenant);
    tenant.reset();
    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.tenantsDetached, 1u);
    EXPECT_EQ(summary.tenantsDrained, 1u);
}

TEST(ServiceTest, AttachEnforcesAdmissionCap)
{
    mc::ServiceOptions options = manualOptions();
    options.withMaxTenants(1);
    mc::Service service(options);

    mc::TenantHandle first = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(first);
    mc::AttachError error = mc::AttachError::None;
    EXPECT_FALSE(service.attach(mc::TenantSpec{}, &error));
    EXPECT_EQ(error, mc::AttachError::TooManyTenants);
    EXPECT_STREQ(mc::attachErrorName(error), "too-many-tenants");

    // Departure frees the admission slot as soon as the drain runs.
    service.detach(first);
    first.reset();
    service.runEpochNow();
    EXPECT_TRUE(service.attach(mc::TenantSpec{}, &error));
    EXPECT_EQ(error, mc::AttachError::None);
}

TEST(ServiceTest, AttachRejectsBadSpecs)
{
    mc::Service service(manualOptions());
    mc::AttachError error = mc::AttachError::None;

    mc::TenantSpec badGoal;
    badGoal.missRateGoal = 1.5;
    EXPECT_FALSE(service.attach(badGoal, &error));
    EXPECT_EQ(error, mc::AttachError::BadSpec);

    mc::TenantSpec badShard;
    badShard.shard = service.shardCount();
    EXPECT_FALSE(service.attach(badShard, &error));
    EXPECT_EQ(error, mc::AttachError::BadSpec);

    mc::TenantSpec badLine;
    badLine.lineMultiple = 0;
    EXPECT_FALSE(service.attach(badLine, &error));
    EXPECT_EQ(error, mc::AttachError::BadSpec);
}

TEST(ServiceTest, AsidRecyclingBumpsGeneration)
{
    mc::Service service(manualOptions());
    mc::TenantSpec pinned;
    pinned.shard = 0;

    mc::TenantHandle first = service.attach(pinned);
    ASSERT_TRUE(first);
    const Asid asid = first.asid();
    EXPECT_EQ(first.generation(), 0u);

    service.detach(first);
    first.reset();
    service.runEpochNow();

    // The freed ASID is recycled into the same shard — but under a new
    // generation, so (asid, generation) still names tenants uniquely.
    mc::TenantHandle second = service.attach(pinned);
    ASSERT_TRUE(second);
    EXPECT_EQ(second.asid(), asid);
    EXPECT_EQ(second.generation(), 1u);

    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    ASSERT_EQ(summary.tenants.size(), 1u);
    EXPECT_EQ(summary.tenants[0].generation, 1u);
}

TEST(ServiceTest, SetGoalShowsUpInSummary)
{
    mc::Service service(manualOptions());
    mc::TenantHandle tenant = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(tenant);

    service.setGoal(tenant, 0.33);
    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    ASSERT_EQ(summary.tenants.size(), 1u);
    EXPECT_DOUBLE_EQ(summary.tenants[0].goal, 0.33);
}

TEST(ServiceTest, ShardPlacementHonoursPinAndBalances)
{
    mc::Service service(manualOptions());

    mc::TenantSpec pinned;
    pinned.shard = 1;
    mc::TenantHandle a = service.attach(pinned);
    ASSERT_TRUE(a);
    EXPECT_EQ(a.shard(), 1u);

    // Least-loaded placement must route the wildcard to the empty shard.
    mc::TenantHandle b = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(b);
    EXPECT_EQ(b.shard(), 0u);
}

TEST(ServiceTest, SummaryMergesShardCounters)
{
    mc::Service service(manualOptions());
    mc::TenantSpec shard0, shard1;
    shard0.shard = 0;
    shard1.shard = 1;
    mc::TenantHandle a = service.attach(shard0);
    mc::TenantHandle b = service.attach(shard1);
    ASSERT_TRUE(a && b);
    for (u64 i = 0; i < 64; ++i) {
        service.access(a, i * 64);
        service.access(b, i * 64);
    }
    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    ASSERT_EQ(summary.shards.size(), 2u);
    u64 accesses = 0, hits = 0, misses = 0;
    for (const mc::ServiceShardSummary &shard : summary.shards) {
        accesses += shard.accesses;
        hits += shard.hits;
        misses += shard.misses;
    }
    EXPECT_EQ(summary.accesses, accesses);
    EXPECT_EQ(summary.hits, hits);
    EXPECT_EQ(summary.misses, misses);
    EXPECT_EQ(summary.accesses, 128u);
}

TEST(ServiceTest, AuditEpochsThrottlesTheChecker)
{
    mc::ServiceOptions options = manualOptions();
    options.withAuditEpochs(2); // audit every second epoch only
    mc::Service service(options);

    service.runEpochNow(); // epoch 1: no audit
    const u64 afterFirst = service.summary().invariantChecksRun;
    EXPECT_EQ(afterFirst, 0u);
    service.runEpochNow(); // epoch 2: audit runs
    EXPECT_GT(service.summary().invariantChecksRun, 0u);
}

TEST(ServiceTest, ControlThreadPacesEpochsByItself)
{
    mc::ServiceOptions options = manualOptions();
    options.withEpochMillis(1);
    mc::Service service(options);
    // The dtor's stop handshake plus the loop below cover the whole
    // thread lifecycle; bounded wait so a wedged control thread fails
    // the test instead of hanging it.
    for (int i = 0; i < 2000 && service.epochsCompleted() < 3; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(service.epochsCompleted(), 3u);
}

TEST(ServiceTest, SummaryJsonCarriesSchemaAndKind)
{
    mc::Service service(manualOptions());
    mc::TenantHandle tenant = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(tenant);
    service.access(tenant, 0x40);
    service.runEpochNow();

    std::ostringstream out;
    JsonWriter json(out);
    mc::writeServiceSummaryDocument(json, service.summary());
    const std::string text = out.str();
    EXPECT_NE(text.find("\"schemaVersion\""), std::string::npos);
    EXPECT_NE(text.find("\"kind\": \"service_summary\""), std::string::npos);
    EXPECT_NE(text.find("\"tenants\""), std::string::npos);
    EXPECT_NE(text.find("\"generation\""), std::string::npos);
}

/** accessBatch must be semantically identical to per-reference access:
 * same results out, same summary counters after — on two services
 * built from the same options and fed the same reference stream
 * (blocks sized to cross the 256-reference staging chunk). */
TEST(ServiceTest, AccessBatchMatchesScalarAccess)
{
    mc::Service scalarSvc(manualOptions());
    mc::Service batchSvc(manualOptions());
    mc::TenantSpec spec;
    spec.shard = 0;
    mc::TenantHandle scalarTenant = scalarSvc.attach(spec);
    mc::TenantHandle batchTenant = batchSvc.attach(spec);
    ASSERT_TRUE(scalarTenant);
    ASSERT_TRUE(batchTenant);

    std::vector<mc::Service::TenantAccess> refs;
    u64 x = 12345;
    for (u32 i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        refs.push_back({(x >> 20) % 4096 * 64, (x & 7) == 0});
    }
    std::vector<AccessResult> batched(refs.size());
    // Odd block size: blocks straddle the internal 256-entry chunks.
    for (size_t off = 0; off < refs.size(); off += 301) {
        const size_t n = std::min<size_t>(301, refs.size() - off);
        batchSvc.accessBatch(batchTenant,
                             {refs.data() + off, n},
                             {batched.data() + off, n});
    }
    for (size_t i = 0; i < refs.size(); ++i) {
        const AccessResult want =
            scalarSvc.access(scalarTenant, refs[i].addr, refs[i].write);
        EXPECT_EQ(want.hit, batched[i].hit) << i;
        EXPECT_EQ(want.level, batched[i].level) << i;
        EXPECT_EQ(want.latencyCycles, batched[i].latencyCycles) << i;
        EXPECT_EQ(want.energyNj, batched[i].energyNj) << i;
    }

    scalarSvc.runEpochNow();
    batchSvc.runEpochNow();
    const mc::ServiceSummary s = scalarSvc.summary();
    const mc::ServiceSummary b = batchSvc.summary();
    EXPECT_EQ(s.accesses, b.accesses);
    EXPECT_EQ(s.hits, b.hits);
    EXPECT_EQ(s.misses, b.misses);
}

} // namespace
} // namespace molcache
