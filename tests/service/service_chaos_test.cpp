/**
 * @file
 * The resilience plane of mc::Service, deterministically: chaos
 * schedules, the quarantine -> remap -> degrade ladder, overload
 * backpressure, and the recovery-SLO telemetry (docs/fault_model.md,
 * "Service-level faults & the degradation ladder").
 *
 * Everything runs with epochMillis == 0 so the test paces the control
 * plane through runEpochNow(); chaos targets are predicted by building
 * the SAME seeded ChaosSchedule the service builds internally, so
 * tenants can be pinned onto (or away from) the doomed shard.  The
 * concurrent storm is bench/chaos_drill's job, not this file's.
 */

#include <gtest/gtest.h>

#include "service/chaos.hpp"
#include "service/service.hpp"
#include "service/service_json.hpp"

#include <set>
#include <sstream>
#include <string>

namespace molcache {
namespace {

mc::ServiceOptions
manualOptions(u32 shards = 2)
{
    mc::ServiceOptions options;
    options.withShards(shards).withEpochMillis(0).withAuditEpochs(1);
    return options;
}

u32
shardMolecules(const mc::ServiceOptions &options)
{
    return options.cache.moleculesPerTile * options.cache.tilesPerCluster;
}

/** The schedule the service will build for @p options — the test's
 * crystal ball for chaos targets. */
mc::ChaosSchedule
predictSchedule(const mc::ServiceOptions &options)
{
    return mc::ChaosSchedule::build(options.chaos, options.shards,
                                    shardMolecules(options),
                                    options.cache.linesPerMolecule());
}

/** First event of @p kind in the predicted schedule (asserts one). */
mc::ChaosEvent
firstEvent(const mc::ChaosSchedule &schedule, mc::ChaosKind kind)
{
    for (const mc::ChaosEvent &event : schedule.events())
        if (event.kind == kind)
            return event;
    ADD_FAILURE() << "no " << mc::chaosKindName(kind)
                  << " in the schedule";
    return {};
}

/* ------------------------------------------------------------------ */
/* ChaosSchedule                                                       */

TEST(ChaosScheduleTest, BuildIsDeterministicSortedAndWindowed)
{
    mc::ChaosSpec spec;
    spec.seed = 42;
    spec.windowStart = 3;
    spec.windowEnd = 17;
    spec.transientFlips = 5;
    spec.hardFaults = 4;
    spec.shardOutages = 2;
    spec.shardStalls = 3;
    const mc::ChaosSchedule a = mc::ChaosSchedule::build(spec, 4, 256, 8);
    const mc::ChaosSchedule b = mc::ChaosSchedule::build(spec, 4, 256, 8);
    ASSERT_EQ(a.events().size(), b.events().size());
    ASSERT_EQ(a.events().size(), 5u + 4u + 2u + 3u);
    for (size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].epoch, b.events()[i].epoch);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].shard, b.events()[i].shard);
        EXPECT_EQ(a.events()[i].molecule, b.events()[i].molecule);
        EXPECT_GE(a.events()[i].epoch, spec.windowStart);
        EXPECT_LE(a.events()[i].epoch, spec.windowEnd);
        EXPECT_LT(a.events()[i].shard, 4u);
        EXPECT_LT(a.events()[i].molecule, 256u);
        if (i > 0) {
            EXPECT_LE(a.events()[i - 1].epoch, a.events()[i].epoch)
                << "events must be sorted by epoch";
        }
    }
    // A different seed moves the storm.
    spec.seed = 43;
    const mc::ChaosSchedule c = mc::ChaosSchedule::build(spec, 4, 256, 8);
    bool differs = false;
    for (size_t i = 0; i < c.events().size(); ++i)
        differs = differs || c.events()[i].epoch != a.events()[i].epoch ||
                  c.events()[i].shard != a.events()[i].shard;
    EXPECT_TRUE(differs);
}

TEST(ChaosScheduleTest, OutagesAreCappedAndHitDistinctShards)
{
    mc::ChaosSpec spec;
    spec.shardOutages = 7; // asks for more than shards - 1
    spec.windowStart = 1;
    spec.windowEnd = 10;
    const mc::ChaosSchedule three = mc::ChaosSchedule::build(spec, 3, 64, 8);
    std::set<u32> hit;
    u32 outages = 0;
    for (const mc::ChaosEvent &event : three.events())
        if (event.kind == mc::ChaosKind::ShardOutage) {
            ++outages;
            hit.insert(event.shard);
        }
    EXPECT_EQ(outages, 2u) << "capped at shards - 1";
    EXPECT_EQ(hit.size(), outages) << "distinct shards";
    // A single-shard service gets no outages at all: there would be no
    // healthy destination to remap onto.
    const mc::ChaosSchedule one = mc::ChaosSchedule::build(spec, 1, 64, 8);
    for (const mc::ChaosEvent &event : one.events())
        EXPECT_NE(event.kind, mc::ChaosKind::ShardOutage);
}

TEST(ChaosScheduleTest, DrainOneHandsOutDueEventsThenStops)
{
    mc::ChaosSpec spec;
    spec.windowStart = 2;
    spec.windowEnd = 2;
    spec.transientFlips = 3;
    mc::ChaosSchedule schedule = mc::ChaosSchedule::build(spec, 2, 64, 8);
    EXPECT_EQ(schedule.pending(), 3u);
    EXPECT_EQ(schedule.drainOne(1), nullptr) << "nothing due before the "
                                                "window";
    EXPECT_EQ(schedule.pending(), 3u);
    u32 drained = 0;
    while (schedule.drainOne(2) != nullptr)
        ++drained;
    EXPECT_EQ(drained, 3u);
    EXPECT_EQ(schedule.pending(), 0u);
    EXPECT_EQ(schedule.drainOne(100), nullptr);
}

/* ------------------------------------------------------------------ */
/* AttachError names and per-reason counters                           */

TEST(ServiceChaosTest, AttachErrorNameCoversEveryReason)
{
    // Every enum value must map to a distinct, stable name — the JSON
    // attach_rejects keys.  A new AttachError that falls through to
    // the "unknown" default is a bug this test pins down.
    const std::set<std::string> expected = {
        "none",       "too-many-tenants",  "no-asid",
        "bad-spec",   "overloaded",        "shard-unavailable"};
    std::set<std::string> seen;
    for (size_t i = 0; i < mc::kAttachErrorCount; ++i) {
        const char *name =
            mc::attachErrorName(static_cast<mc::AttachError>(i));
        EXPECT_STRNE(name, "unknown") << "enum value " << i;
        seen.insert(name);
    }
    EXPECT_EQ(seen, expected);
}

TEST(ServiceChaosTest, AttachRejectionsAreCountedPerReason)
{
    mc::ServiceOptions options = manualOptions();
    options.withMaxTenants(1);
    mc::Service service(options);

    mc::TenantHandle keeper = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(keeper);

    mc::TenantSpec bad;
    bad.missRateGoal = 2.0;
    mc::AttachError error = mc::AttachError::None;
    EXPECT_FALSE(service.attach(bad, &error));
    EXPECT_EQ(error, mc::AttachError::BadSpec);
    EXPECT_FALSE(service.attach(bad, &error));

    error = mc::AttachError::None;
    EXPECT_FALSE(service.attach(mc::TenantSpec{}, &error));
    EXPECT_EQ(error, mc::AttachError::TooManyTenants);

    service.runEpochNow();
    const mc::ServiceResilienceSummary res =
        service.summary().resilience;
    using Reject = mc::AttachError;
    EXPECT_EQ(res.attachRejects[static_cast<size_t>(Reject::BadSpec)], 2u);
    EXPECT_EQ(
        res.attachRejects[static_cast<size_t>(Reject::TooManyTenants)], 1u);
    EXPECT_EQ(res.attachRejects[static_cast<size_t>(Reject::None)], 0u);
    // Legacy rejection reasons alone must NOT flip the telemetry onto
    // the resilience schema (fault-free byte-stability).
    EXPECT_FALSE(res.active());
}

/* ------------------------------------------------------------------ */
/* The degradation ladder                                              */

/** Options with a single whole-shard outage at epoch 1 and nothing
 * else; returns the doomed shard through @p victim. */
mc::ServiceOptions
outageOptions(u32 *victim, u32 shards = 2)
{
    mc::ServiceOptions options = manualOptions(shards);
    mc::ChaosSpec chaos;
    chaos.seed = 7;
    chaos.windowStart = 1;
    chaos.windowEnd = 1;
    chaos.shardOutages = 1;
    options.withChaos(chaos);
    *victim =
        firstEvent(predictSchedule(options), mc::ChaosKind::ShardOutage)
            .shard;
    return options;
}

TEST(ServiceChaosTest, OutageQuarantinesTheShardAndRemapsItsTenants)
{
    u32 victim = 0;
    mc::Service service(outageOptions(&victim));
    const u32 survivor = victim == 0 ? 1u : 0u;

    mc::TenantSpec pinned;
    pinned.name = "doomed";
    pinned.shard = victim;
    mc::TenantHandle doomed = service.attach(pinned);
    ASSERT_TRUE(doomed);
    for (u64 i = 0; i < 500; ++i)
        service.access(doomed, 0x10000 + i * 64);

    service.runEpochNow(); // outage -> quarantine -> remap, one epoch
    const mc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.resilience.chaosShardOutages, 1u);
    EXPECT_EQ(summary.resilience.shardsQuarantined, 1u);
    EXPECT_EQ(summary.resilience.tenantsRemapped, 1u);
    EXPECT_EQ(summary.resilience.remapsPending, 0u);
    ASSERT_EQ(summary.shards.size(), 2u);
    EXPECT_TRUE(summary.shards[victim].quarantined);
    EXPECT_FALSE(summary.shards[survivor].quarantined);
    EXPECT_EQ(summary.shards[victim].healthyMolecules, 0u);

    // The handle follows the remap: same tenant object, new home; the
    // pre-remap access counters are carried across.
    EXPECT_EQ(doomed.shard(), survivor);
    ASSERT_EQ(summary.tenants.size(), 1u);
    EXPECT_EQ(summary.tenants[0].shard, survivor);
    EXPECT_EQ(summary.tenants[0].remaps, 1u);
    EXPECT_TRUE(summary.tenants[0].recovering);
    EXPECT_EQ(summary.resilience.tenantsRecovering, 1u);
    EXPECT_GE(summary.tenants[0].accesses, 500u) << "carried counters";

    // And it still serves through the re-homed routing.
    service.access(doomed, 0x10000);

    // Recovery: with traffic flowing, the EWMA re-converges within a
    // bounded number of epochs and the SLO records it.
    bool recovered = false;
    for (u32 epoch = 0; epoch < 20 && !recovered; ++epoch) {
        for (u64 i = 0; i < 2000; ++i)
            service.access(doomed, 0x10000 + i % 128 * 64);
        service.runEpochNow();
        recovered = !service.summary().tenants[0].recovering;
    }
    EXPECT_TRUE(recovered);
    EXPECT_EQ(service.summary().resilience.tenantsRecovering, 0u);
    EXPECT_GE(service.summary().resilience.maxEpochsBackToGoal, 1u);
    EXPECT_GT(service.summary().resilience.remapForcedMisses, 0u);
}

TEST(ServiceChaosTest, QuarantinedShardRejectsPinnedAttaches)
{
    u32 victim = 0;
    mc::Service service(outageOptions(&victim));
    service.runEpochNow();

    mc::TenantSpec pinned;
    pinned.shard = victim;
    mc::AttachError error = mc::AttachError::None;
    EXPECT_FALSE(service.attach(pinned, &error));
    EXPECT_EQ(error, mc::AttachError::ShardUnavailable);

    // Unpinned placement routes around the quarantine.
    mc::TenantHandle routed = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(routed);
    EXPECT_NE(routed.shard(), victim);

    service.runEpochNow();
    const mc::ServiceResilienceSummary res = service.summary().resilience;
    EXPECT_EQ(res.attachRejects[static_cast<size_t>(
                  mc::AttachError::ShardUnavailable)],
              1u);
    EXPECT_TRUE(res.active());
}

TEST(ServiceChaosTest, GoalsDegradeProportionallyToLostCapacity)
{
    u32 victim = 0;
    mc::Service service(outageOptions(&victim));
    mc::TenantSpec spec;
    spec.missRateGoal = 0.2;
    mc::TenantHandle tenant = service.attach(spec);
    ASSERT_TRUE(tenant);

    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    ASSERT_EQ(summary.tenants.size(), 1u);
    // Half the molecules are gone: goal x (512 / 256) = 0.4.
    EXPECT_DOUBLE_EQ(summary.tenants[0].goal, 0.2);
    EXPECT_DOUBLE_EQ(summary.tenants[0].effectiveGoal, 0.4);
    EXPECT_TRUE(summary.tenants[0].degraded);
}

TEST(ServiceChaosTest, DegradeGoalsOffLeavesGoalsAlone)
{
    u32 victim = 0;
    mc::ServiceOptions options = outageOptions(&victim);
    options.withDegradeGoals(false);
    mc::Service service(options);
    mc::TenantSpec spec;
    spec.missRateGoal = 0.2;
    mc::TenantHandle tenant = service.attach(spec);
    ASSERT_TRUE(tenant);

    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    ASSERT_EQ(summary.tenants.size(), 1u);
    EXPECT_DOUBLE_EQ(summary.tenants[0].effectiveGoal, 0.2);
    EXPECT_FALSE(summary.tenants[0].degraded);
}

TEST(ServiceChaosTest, PartialLossQuarantineInvalidatesResidentLines)
{
    // A single hard-faulted molecule with a hair-trigger threshold:
    // the shard is quarantined while its regions still hold lines, so
    // the remap's invalidation churn is visible in the telemetry.
    mc::ServiceOptions options = manualOptions();
    mc::ChaosSpec chaos;
    chaos.seed = 11;
    chaos.windowStart = 1;
    chaos.windowEnd = 1;
    chaos.hardFaults = 1;
    options.withChaos(chaos).withQuarantineThreshold(0.003);
    const u32 victim =
        firstEvent(predictSchedule(options), mc::ChaosKind::HardFault)
            .shard;
    mc::Service service(options);

    mc::TenantSpec pinned;
    pinned.shard = victim;
    mc::TenantHandle tenant = service.attach(pinned);
    ASSERT_TRUE(tenant);
    for (u64 i = 0; i < 2000; ++i)
        service.access(tenant, 0x4000 + i % 256 * 64);

    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.resilience.shardsQuarantined, 1u);
    EXPECT_EQ(summary.resilience.tenantsRemapped, 1u);
    EXPECT_GT(summary.resilience.remapInvalidations, 0u)
        << "the warm region's resident lines count as remap churn";
    EXPECT_EQ(summary.shards[victim].healthyMolecules,
              shardMolecules(options) - 1u);
}

/* ------------------------------------------------------------------ */
/* Departure edge cases around a quarantine                            */

TEST(ServiceChaosTest, DetachDuringQuarantineDrainsInPlace)
{
    u32 victim = 0;
    mc::Service service(outageOptions(&victim));
    mc::TenantSpec pinned;
    pinned.shard = victim;
    mc::TenantHandle tenant = service.attach(pinned);
    ASSERT_TRUE(tenant);

    // Departing before the storm: the tenant must NOT be remapped (it
    // is leaving anyway) — it drains on the quarantined shard once the
    // last handle drops.
    service.detach(tenant);
    service.runEpochNow(); // outage fires; tenant still held
    mc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.resilience.tenantsRemapped, 0u);
    EXPECT_EQ(summary.resilience.shardsQuarantined, 1u);
    EXPECT_EQ(summary.tenantsDrained, 0u);
    // The held handle still serves (the decommissioned region answers
    // uncacheably rather than faulting).
    service.access(tenant, 0x1000);

    tenant.reset();
    service.runEpochNow();
    summary = service.summary();
    EXPECT_EQ(summary.tenantsDrained, 1u);
    EXPECT_EQ(summary.resilience.shardsDrained, 1u);
    EXPECT_GE(summary.resilience.maxEpochsToDrain, 1u);
}

TEST(ServiceChaosTest, DoubleDetachAfterRemapIsStillIdempotent)
{
    u32 victim = 0;
    mc::Service service(outageOptions(&victim));
    mc::TenantSpec pinned;
    pinned.shard = victim;
    mc::TenantHandle tenant = service.attach(pinned);
    ASSERT_TRUE(tenant);

    service.runEpochNow(); // remapped to the survivor
    EXPECT_NE(tenant.shard(), victim);
    service.detach(tenant);
    service.detach(tenant); // identity-matched: second is a no-op
    tenant.reset();
    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.tenantsDetached, 1u);
    EXPECT_EQ(summary.tenantsDrained, 1u);
    EXPECT_EQ(summary.tenantsLive, 0u);
}

TEST(ServiceChaosTest, HandleOutlivesItsDecommissionedShard)
{
    // The handle is attached, its whole shard dies, the tenant is
    // re-homed — and the ORIGINAL handle keeps working throughout:
    // routing is re-read per access, never cached by the caller.
    u32 victim = 0;
    mc::Service service(outageOptions(&victim));
    mc::TenantSpec pinned;
    pinned.shard = victim;
    mc::TenantHandle tenant = service.attach(pinned);
    ASSERT_TRUE(tenant);
    const u32 asidBefore = tenant.asid().value();
    EXPECT_EQ(tenant.shard(), victim);

    service.runEpochNow();
    EXPECT_NE(tenant.shard(), victim);
    for (u64 i = 0; i < 1000; ++i)
        service.access(tenant, 0x9000 + i * 64);
    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    ASSERT_EQ(summary.tenants.size(), 1u);
    EXPECT_GE(summary.tenants[0].accesses, 1000u);
    EXPECT_EQ(summary.tenants[0].asid, tenant.asid().value());
    // The ASID may or may not change across shards; the (asid,
    // generation) pair in the summary must match the handle's view.
    EXPECT_EQ(summary.tenants[0].generation, tenant.generation());
    (void)asidBefore;
}

TEST(ServiceChaosTest, AsidRecyclesIntoTheRemappedSlotWithNewGeneration)
{
    u32 victim = 0;
    mc::Service service(outageOptions(&victim));
    const u32 survivor = victim == 0 ? 1u : 0u;
    mc::TenantSpec pinned;
    pinned.shard = victim;
    mc::TenantHandle tenant = service.attach(pinned);
    ASSERT_TRUE(tenant);

    service.runEpochNow(); // remap onto the survivor
    ASSERT_EQ(tenant.shard(), survivor);
    const u16 remappedAsid = tenant.asid().value();
    const u32 remappedGeneration = tenant.generation();

    // Retire the remapped tenant, then attach a fresh one onto the
    // survivor: the pool hands the recycled ASID back, and the retired
    // stats slot's generation bump keeps the identities distinct.
    service.detach(tenant);
    tenant.reset();
    service.runEpochNow();

    mc::TenantSpec fresh;
    fresh.shard = survivor;
    mc::TenantHandle reborn = service.attach(fresh);
    ASSERT_TRUE(reborn);
    EXPECT_EQ(reborn.asid().value(), remappedAsid);
    EXPECT_GT(reborn.generation(), remappedGeneration);
}

/* ------------------------------------------------------------------ */
/* Backpressure and overload protection                                */

TEST(ServiceChaosTest, StallShedsCheckedAccessesWithRetryAfter)
{
    mc::ServiceOptions options = manualOptions();
    mc::ChaosSpec chaos;
    chaos.seed = 5;
    chaos.windowStart = 1;
    chaos.windowEnd = 1;
    chaos.shardStalls = 1;
    chaos.stallEpochs = 3;
    options.withChaos(chaos);
    const mc::ChaosEvent stall =
        firstEvent(predictSchedule(options), mc::ChaosKind::ShardStall);
    mc::Service service(options);

    mc::TenantSpec pinned;
    pinned.shard = stall.shard;
    mc::TenantHandle tenant = service.attach(pinned);
    ASSERT_TRUE(tenant);
    EXPECT_EQ(service.backpressure(tenant), mc::AccessStatus::Ok);

    service.runEpochNow(); // the stall fires: epochs [2, 4] shed
    u64 retryAfter = 0;
    EXPECT_EQ(service.backpressure(tenant, &retryAfter),
              mc::AccessStatus::Overloaded);
    EXPECT_EQ(retryAfter, chaos.stallEpochs);

    const mc::AccessOutcome shed = service.accessChecked(tenant, 0x1000);
    EXPECT_EQ(shed.status, mc::AccessStatus::Overloaded);
    EXPECT_EQ(shed.retryAfterEpochs, chaos.stallEpochs);
    // Plain access() deliberately ignores stalls (advisory contract).
    service.access(tenant, 0x1000);

    for (u64 i = 0; i < chaos.stallEpochs; ++i)
        service.runEpochNow();
    EXPECT_EQ(service.backpressure(tenant), mc::AccessStatus::Ok);
    const mc::AccessOutcome served = service.accessChecked(tenant, 0x1040);
    EXPECT_EQ(served.status, mc::AccessStatus::Ok);

    service.runEpochNow(); // merge the post-stall access into the summary
    const mc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.resilience.chaosShardStalls, 1u);
    EXPECT_EQ(summary.resilience.accessesShed, 1u);
    EXPECT_EQ(summary.accesses, 2u) << "the shed access never reached a "
                                       "shard";
}

TEST(ServiceChaosTest, AdmissionWatermarksCloseAndReopenWithHysteresis)
{
    mc::ServiceOptions options = manualOptions();
    const double healthy = 2.0 * shardMolecules(options);
    // Close above 5 demanded molecules, reopen at or below 4.
    options.withAdmitWatermarks(5.0 / healthy, 4.0 / healthy);
    mc::Service service(options);

    mc::TenantSpec two;
    two.floorMolecules = 2;
    mc::TenantHandle a = service.attach(two);
    mc::TenantHandle b = service.attach(two);
    ASSERT_TRUE(a);
    ASSERT_TRUE(b); // demand 4 of 5

    mc::AttachError error = mc::AttachError::None;
    EXPECT_FALSE(service.attach(two, &error)) << "projected 6 > 5";
    EXPECT_EQ(error, mc::AttachError::Overloaded);

    // Hysteresis: once closed, even a demand that fits under the HIGH
    // watermark is rejected until demand falls below the LOW one.
    mc::TenantSpec one;
    one.floorMolecules = 1;
    EXPECT_FALSE(service.attach(one, &error)) << "projected 5 <= high, "
                                                 "but admission is closed";
    EXPECT_EQ(error, mc::AttachError::Overloaded);

    // Departure sheds demand immediately (no epoch needed)...
    service.detach(b);
    b.reset();
    // ...projected 2 + 1 = 3 <= 4: admission reopens.
    mc::TenantHandle c = service.attach(one, &error);
    EXPECT_TRUE(c);
    EXPECT_EQ(error, mc::AttachError::None);

    service.runEpochNow();
    const mc::ServiceResilienceSummary res = service.summary().resilience;
    EXPECT_EQ(
        res.attachRejects[static_cast<size_t>(mc::AttachError::Overloaded)],
        2u);
    EXPECT_TRUE(res.active());
}

/* ------------------------------------------------------------------ */
/* Telemetry schema                                                    */

TEST(ServiceChaosTest, ResilienceJsonAppearsOnlyWhenEngaged)
{
    // Fault-free service: byte-identical legacy schema.
    {
        mc::Service service(manualOptions());
        mc::TenantHandle tenant = service.attach(mc::TenantSpec{});
        service.runEpochNow();
        std::ostringstream out;
        JsonWriter json(out);
        mc::writeServiceSummaryDocument(json, service.summary());
        EXPECT_EQ(out.str().find("resilience"), std::string::npos);
        EXPECT_EQ(out.str().find("effective_goal"), std::string::npos);
        EXPECT_EQ(out.str().find("quarantined"), std::string::npos);
    }
    // Chaos on: the resilience block and the per-shard/per-tenant
    // resilience keys appear.
    {
        u32 victim = 0;
        mc::Service service(outageOptions(&victim));
        mc::TenantHandle tenant = service.attach(mc::TenantSpec{});
        service.runEpochNow();
        std::ostringstream out;
        JsonWriter json(out);
        mc::writeServiceSummaryDocument(json, service.summary());
        const std::string text = out.str();
        for (const char *key :
             {"\"resilience\"", "\"chaos_shard_outages\"",
              "\"shards_quarantined\"", "\"attach_rejects\"",
              "\"shard-unavailable\"", "\"max_epochs_back_to_goal\"",
              "\"healthy_molecules\"", "\"quarantined\"",
              "\"effective_goal\"", "\"recovering\"", "\"miss_ewma\""})
            EXPECT_NE(text.find(key), std::string::npos) << key;
    }
}

TEST(ServiceChaosTest, ChaosConfigKeysRoundTripThroughFromConfig)
{
    const Config cfg = Config::fromTokens(
        {"service.chaos.seed=9", "service.chaos.window_start=5",
         "service.chaos.window_end=25", "service.chaos.transient_flips=3",
         "service.chaos.hard_faults=2", "service.chaos.shard_outages=1",
         "service.chaos.shard_stalls=4", "service.chaos.stall_epochs=6",
         "service.quarantine_threshold=0.25",
         "service.admit_high_water=0.9", "service.admit_low_water=0.7",
         "service.degrade_goals=0", "service.recovery_slack=0.1"});
    const mc::ServiceOptions options = mc::ServiceOptions::fromConfig(cfg);
    EXPECT_TRUE(options.errors().empty());
    EXPECT_EQ(options.chaos.seed, 9u);
    EXPECT_EQ(options.chaos.windowStart, 5u);
    EXPECT_EQ(options.chaos.windowEnd, 25u);
    EXPECT_EQ(options.chaos.transientFlips, 3u);
    EXPECT_EQ(options.chaos.hardFaults, 2u);
    EXPECT_EQ(options.chaos.shardOutages, 1u);
    EXPECT_EQ(options.chaos.shardStalls, 4u);
    EXPECT_EQ(options.chaos.stallEpochs, 6u);
    EXPECT_TRUE(options.chaos.any());
    EXPECT_DOUBLE_EQ(options.quarantineThreshold, 0.25);
    EXPECT_DOUBLE_EQ(options.admitHighWater, 0.9);
    EXPECT_DOUBLE_EQ(options.admitLowWater, 0.7);
    EXPECT_FALSE(options.degradeGoals);
    EXPECT_DOUBLE_EQ(options.recoverySlack, 0.1);
}

} // namespace
} // namespace molcache
