/**
 * @file
 * Concurrent churn soak for mc::Service — the threaded half of the
 * service suite (the single-threaded API semantics live in
 * service_test.cpp).  Worker threads loop attach/access/detach against
 * a live service while the test paces epochs, asserting after every
 * round that the InvariantChecker is clean and every departed tenant
 * drained.  Between churn rounds it quiesces and measures an all-hit
 * access window under the counting allocator: the service facade must
 * preserve the core's zero-allocation steady-state access path
 * (docs/perf.md) — one shard-mutex lock is the only thing it may add.
 *
 * Own test binary: it replaces global operator new/delete, which must
 * not perturb the other suites.  CI runs it under TSan as part of the
 * service label selection (.github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "contract/contract.hpp"
#include "service/service.hpp"
#include "util/units.hpp"

namespace {

std::atomic<unsigned long long> g_heapAllocs{0};

void *
countedAlloc(std::size_t size)
{
    ++g_heapAllocs;
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++g_heapAllocs;
    const std::size_t rounded = (size + align - 1) / align * align;
    void *p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace molcache {
namespace {

mc::ServiceOptions
soakOptions()
{
    mc::ServiceOptions options;
    options.withShards(2).withEpochMillis(0).withAuditEpochs(1);
    options.cache.resizePeriod = 256; // keep the control plane busy
    return options;
}

/**
 * One churn round: every thread attaches its own tenant, hammers it
 * (disjoint address windows, so shard traffic interleaves freely),
 * detaches and drops the handle; the main thread paces epochs the
 * whole time.  Returns the per-thread contract-counter delta sum.
 */
u64
churnRound(mc::Service &service, u32 threads, u32 accessesPerTenant)
{
    std::atomic<u64> contractDelta{0};
    std::atomic<u32> running{threads};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            const u64 before = contract::counters().total();
            mc::TenantSpec spec;
            spec.name = "soak" + std::to_string(t);
            mc::TenantHandle tenant = service.attach(spec);
            if (tenant) {
                const Addr base = static_cast<Addr>(t + 1) << 32;
                for (u32 i = 0; i < accessesPerTenant; ++i)
                    service.access(tenant, base + (i % 512) * 64,
                                   (i % 7) == 0);
                service.detach(tenant);
                tenant.reset();
            }
            contractDelta.fetch_add(contract::counters().total() - before,
                                    std::memory_order_relaxed);
            running.fetch_sub(1, std::memory_order_release);
        });
    }
    // Epochs run concurrently with the churn: drains, audits and
    // summary rebuilds must all be safe against live workers.
    while (running.load(std::memory_order_acquire) != 0) {
        service.runEpochNow();
        std::this_thread::yield();
    }
    for (std::thread &worker : pool)
        worker.join();
    return contractDelta.load(std::memory_order_acquire);
}

TEST(ServiceChurnSoak, RepeatedThreadedChurnStaysClean)
{
    mc::Service service(soakOptions());
    const u32 threads = 8;

    for (u32 round = 0; round < 4; ++round) {
        const u64 violations = churnRound(service, threads, 4000);
        EXPECT_EQ(violations, 0u) << "round " << round;

        // All handles are dead: one more epoch must finish every drain.
        service.runEpochNow();
        const mc::ServiceSummary summary = service.summary();
        EXPECT_EQ(summary.tenantsDrained, summary.tenantsDetached)
            << "round " << round;
        EXPECT_EQ(summary.tenantsLive, 0u) << "round " << round;
        EXPECT_EQ(summary.invariantViolations, 0u) << "round " << round;
        EXPECT_GT(summary.invariantChecksRun, 0u) << "round " << round;
        EXPECT_EQ(summary.accesses, summary.hits + summary.misses);
    }
    // Every departure recycled its ASID, so lifetime churn has not
    // grown the per-shard tenant population.
    EXPECT_EQ(service.summary().tenantsAttached, 4u * threads);
}

TEST(ServiceChurnSoak, AccessPathStaysAllocationFreeBetweenChurnRounds)
{
    mc::ServiceOptions options = soakOptions();
    // No resize inside the measured window (same regime as the hotpath
    // allocation gate): the window must be pure steady-state hits.
    options.cache.resizePeriod = 1u << 30;
    options.cache.maxResizePeriod = 1u << 30;
    options.cache.initialMolecules = 2;
    options.cache.initialAllocation = InitialAllocation::Small;
    mc::Service service(options);

    // Churn in the background first, so the steady state we measure is
    // one reached *after* real concurrent traffic, not a fresh cache.
    churnRound(service, 4, 2000);
    service.runEpochNow();

    mc::TenantHandle tenant = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(tenant);
    // One molecule's worth of distinct lines: warmup fills every slot,
    // the measured passes all hit.
    const u32 lines = 128;
    for (int pass = 0; pass < 3; ++pass)
        for (u32 i = 0; i < lines; ++i)
            service.access(tenant, static_cast<Addr>(i) * 64,
                           (i % 7) == 0);

    u64 hits = 0;
    const unsigned long long before = g_heapAllocs.load();
    for (int pass = 0; pass < 10; ++pass)
        for (u32 i = 0; i < lines; ++i)
            hits += service.access(tenant, static_cast<Addr>(i) * 64).hit
                        ? 1
                        : 0;
    const unsigned long long after = g_heapAllocs.load();

    ASSERT_EQ(hits, 10u * lines)
        << "measurement window must be all hits (steady state)";
    EXPECT_EQ(after - before, 0u)
        << "service access path must not allocate in steady state";

    // The epoch machinery may allocate (snapshots are built there) —
    // but it must not have been charged to the access window above.
    service.detach(tenant);
    tenant.reset();
    service.runEpochNow();
    EXPECT_EQ(service.summary().invariantViolations, 0u);
}

TEST(ServiceChurnSoak, DrainWaitsForForeignThreadHandle)
{
    mc::Service service(soakOptions());
    mc::TenantHandle tenant = service.attach(mc::TenantSpec{});
    ASSERT_TRUE(tenant);
    service.detach(tenant);

    // A worker still holding a copy keeps the region alive across
    // epochs on another thread.
    std::atomic<bool> stop{false};
    std::thread worker([&service, copy = tenant, &stop] {
        while (!stop.load(std::memory_order_acquire))
            service.access(copy, 0x80);
    });
    tenant.reset();
    for (int i = 0; i < 16; ++i)
        service.runEpochNow();
    EXPECT_EQ(service.summary().tenantsDrained, 0u)
        << "drain must wait for the worker's handle";

    stop.store(true, std::memory_order_release);
    worker.join();
    service.runEpochNow();
    const mc::ServiceSummary summary = service.summary();
    EXPECT_EQ(summary.tenantsDrained, 1u);
    EXPECT_EQ(summary.invariantViolations, 0u);
}

} // namespace
} // namespace molcache
