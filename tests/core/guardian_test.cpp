/**
 * @file
 * Unit tests of the QoS guardian (core/guardian.hpp): the hysteresis
 * dead-band, flip-guard and oscillation backoff, admission control with
 * explicit degraded mode, capacity floors, pool pressure and the
 * convergence watchdog — both through the public guardian API and
 * end-to-end through Resizer::resizeRegion.
 */

#include "core/guardian.hpp"

#include <gtest/gtest.h>

#include "core/resizer.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

/** Broker over an infinite (or bounded) molecule supply for unit tests. */
class FakeBroker final : public MoleculeBroker
{
  public:
    explicit FakeBroker(u32 available = 1000000)
        : available_(available)
    {
    }

    u32
    grant(Region &region, u32 count) override
    {
        const u32 got = std::min(count, available_);
        available_ -= got;
        for (u32 i = 0; i < got; ++i) {
            region.addMolecule(next_, TileId{0}, false);
            ++next_;
        }
        return got;
    }

    u32
    withdraw(Region &region, u32 count) override
    {
        u32 got = 0;
        while (got < count && region.size() > 1) {
            region.removeMolecule(region.pickWithdrawal());
            ++available_;
            ++got;
        }
        return got;
    }

  private:
    u32 available_;
    MoleculeId next_{100};
};

/** Small geometry: 2 tiles x 8 molecules => cluster capacity 16, so the
 * feasibility model's capacity predictions are easy to hit by hand. */
MolecularCacheParams
params()
{
    MolecularCacheParams p;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.maxAllocationChunk = 8;
    p.minIntervalSample = 100;
    p.guardian.enabled = true;
    return p;
}

Region
makeRegion(u32 molecules, u32 floor = 0)
{
    Region r(Asid{1}, PlacementPolicy::Random, 1, TileId{0},
             ClusterId{0}, 8_KiB);
    for (u32 m = 0; m < molecules; ++m)
        r.addMolecule(MoleculeId{m}, TileId{0}, true);
    r.maxAllocation = 8;
    r.lastGrant = molecules;
    r.capacityFloor = floor;
    return r;
}

/** Drive one interval's worth of synthetic statistics into the region. */
void
feedInterval(Region &r, u32 accesses, u32 misses, u32 replacements)
{
    for (u32 i = 0; i < accesses; ++i)
        r.noteAccess(i >= misses); // first `misses` accesses miss
    for (u32 i = 0; i < replacements; ++i)
        r.noteReplacement(r.rows()[0][i % r.rows()[0].size()], 0);
}

/** First evaluation only observes; prime it so decisions flow. */
void
primeRegion(Region &r, const Resizer &resizer, FakeBroker &broker,
            QosGuardian *guardian, double mr = 0.3)
{
    feedInterval(r, 1000, static_cast<u32>(mr * 1000),
                 static_cast<u32>(mr * 1000));
    resizer.resizeRegion(r, 0.1, broker, guardian);
}

TEST(Guardian, GateHoldDeadBand)
{
    QosGuardian g(params());
    const Region r = makeRegion(4);
    double eff = 0.0;
    // Inside goal*(1 +- 0.10): hold.
    EXPECT_TRUE(g.gateHold(r, 0.105, 0.1, &eff));
    EXPECT_TRUE(g.gateHold(r, 0.095, 0.1, &eff));
    // Outside the band: pass through with the configured goal.
    EXPECT_FALSE(g.gateHold(r, 0.30, 0.1, &eff));
    EXPECT_DOUBLE_EQ(eff, 0.1);
    EXPECT_FALSE(g.gateHold(r, 0.02, 0.1, &eff));
    EXPECT_GE(g.telemetry(r.asid()).holdEpochs, 2u);
}

TEST(Guardian, HysteresisHoldThroughResizer)
{
    const MolecularCacheParams p = params();
    const Resizer resizer(p);
    QosGuardian g(p);
    FakeBroker broker;
    Region r = makeRegion(8);
    primeRegion(r, resizer, broker, &g, 0.30);
    // mr 0.105 is inside the dead-band: the epoch is held, yet the
    // interval closes and history advances (no stale-interval buildup).
    feedInterval(r, 1000, 105, 105);
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker, &g);
    EXPECT_TRUE(out.evaluated);
    EXPECT_EQ(out.delta, 0);
    EXPECT_EQ(r.size(), 8u);
    EXPECT_EQ(r.intervalAccesses(), 0u);
    EXPECT_NEAR(r.lastMissRate, 0.105, 1e-9);
    EXPECT_GE(g.telemetry(r.asid()).holdEpochs, 1u);
}

TEST(Guardian, FlipGuardBlocksImmediateReversal)
{
    QosGuardian g(params());
    const Region r = makeRegion(4);
    double eff = 0.0;
    // A grow action (delta +4) was just taken...
    g.afterDecision(r, +4, 0.30, 0.1);
    // ...so an immediate shrink (mr far below goal) is held.
    EXPECT_TRUE(g.gateHold(r, 0.02, 0.1, &eff));
    // Two quiet epochs (cooldownEpochs = 2) later the guard lifts.
    g.afterDecision(r, 0, 0.30, 0.1);
    g.afterDecision(r, 0, 0.30, 0.1);
    EXPECT_FALSE(g.gateHold(r, 0.02, 0.1, &eff));
    // Same-direction actions were never blocked.
    g.afterDecision(r, +4, 0.30, 0.1);
    EXPECT_FALSE(g.gateHold(r, 0.30, 0.1, &eff));
}

TEST(Guardian, OscillationTripWidensBandAndBacksOffPeriod)
{
    QosGuardian g(params());
    const Region r = makeRegion(4);
    const Asid asid = r.asid();
    EXPECT_EQ(g.scaledPeriod(asid, 25000), 25000u);

    // Alternating deltas: the second flip reaches maxSignFlips = 2.
    g.afterDecision(r, +2, 0.30, 0.1);
    g.afterDecision(r, -2, 0.02, 0.1);
    g.afterDecision(r, +2, 0.30, 0.1);
    const GuardianAppTelemetry t = g.telemetry(asid);
    EXPECT_EQ(t.oscillationEvents, 1u);
    // The window restarts on the trip, so the recorded worst case stays
    // at the configured bound instead of growing without limit.
    EXPECT_EQ(t.maxSignFlips, params().guardian.maxSignFlips);
    // Period backoff doubled the resize period (capped at the max).
    EXPECT_EQ(g.scaledPeriod(asid, 25000), 50000u);
    // The trip imposes a cooldown pause: even a far-out miss rate holds.
    double eff = 0.0;
    EXPECT_TRUE(g.gateHold(r, 0.9, 0.1, &eff));

    // One full calm window halves the backoff again.
    for (u32 i = 0; i < params().guardian.oscillationWindow + 2; ++i)
        g.afterDecision(r, 0, 0.105, 0.1);
    EXPECT_EQ(g.scaledPeriod(asid, 25000), 25000u);
}

TEST(Guardian, WidenedBandHoldsWhatNormalBandWouldNot)
{
    QosGuardian g(params());
    const Region r = makeRegion(4);
    double eff = 0.0;
    // mr 0.115 is outside the normal 10% band around goal 0.1.
    EXPECT_FALSE(g.gateHold(r, 0.115, 0.1, &eff));
    // Trip the oscillation detector: band scale doubles to 0.2.
    g.afterDecision(r, +2, 0.30, 0.1);
    g.afterDecision(r, -2, 0.02, 0.1);
    g.afterDecision(r, +2, 0.30, 0.1);
    // Drain the cooldown pause (cooldownEpochs = 2).
    EXPECT_TRUE(g.gateHold(r, 0.115, 0.1, &eff));
    EXPECT_TRUE(g.gateHold(r, 0.115, 0.1, &eff));
    // Now the hold comes from the widened dead-band [0.08, 0.12] itself.
    EXPECT_TRUE(g.gateHold(r, 0.115, 0.1, &eff));
}

TEST(Guardian, InfeasibleGoalEntersDegradedModeWithShortfall)
{
    QosGuardian g(params()); // cluster capacity 16
    const Region r = makeRegion(8);
    // k ~= 0.9 * 8 = 7.2 => predicted floor 7.2/16 = 0.45 >> goal 0.1.
    for (u32 i = 0; i < params().guardian.feasibilityEpochs; ++i)
        g.afterDecision(r, 0, 0.9, 0.1);
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_EQ(t.verdict, FeasibilityVerdict::Infeasible);
    EXPECT_NEAR(t.shortfall, 0.35, 0.02);
    // Degraded mode: the region is judged against the achievable goal,
    // so a miss rate near it is held instead of chasing more capacity.
    double eff = 0.0;
    EXPECT_TRUE(g.gateHold(r, 0.44, 0.1, &eff));
    EXPECT_FALSE(g.gateHold(r, 0.9, 0.1, &eff));
    EXPECT_NEAR(eff, 0.45, 0.02); // Algorithm 1 steers to the substitute
    // An infeasible region is excused from the watchdog.
    EXPECT_FALSE(t.stuck);
}

TEST(Guardian, InfeasibleNeedsConsecutiveEpochs)
{
    QosGuardian g(params());
    const Region r = makeRegion(8);
    for (u32 i = 0; i + 1 < params().guardian.feasibilityEpochs; ++i)
        g.afterDecision(r, 0, 0.9, 0.1);
    EXPECT_EQ(g.telemetry(r.asid()).verdict, FeasibilityVerdict::Unknown);
}

TEST(Guardian, DegradedModeExitsWhenGoalReached)
{
    QosGuardian g(params());
    const Region r = makeRegion(8);
    for (u32 i = 0; i < params().guardian.feasibilityEpochs; ++i)
        g.afterDecision(r, 0, 0.9, 0.1);
    ASSERT_EQ(g.telemetry(r.asid()).verdict,
              FeasibilityVerdict::Infeasible);
    // The working set shrank: the goal is met, degraded mode ends.
    g.afterDecision(r, 0, 0.08, 0.1);
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_EQ(t.verdict, FeasibilityVerdict::Feasible);
    EXPECT_DOUBLE_EQ(t.shortfall, 0.0);
}

TEST(Guardian, ClampWithdrawStopsAtFloor)
{
    QosGuardian g(params());
    const Region above = makeRegion(6, /*floor=*/2);
    EXPECT_EQ(g.clampWithdraw(above, 3), 3u); // room of 4: untouched
    EXPECT_EQ(g.clampWithdraw(above, 10), 4u); // clipped to the floor
    const Region at = makeRegion(2, /*floor=*/2);
    EXPECT_EQ(g.clampWithdraw(at, 1), 0u);
    EXPECT_EQ(g.telemetry(Asid{1}).floorHits, 2u);
    // No floor configured: pass-through, no accounting.
    const Region unfloored = makeRegion(2);
    EXPECT_EQ(g.clampWithdraw(unfloored, 1), 1u);
}

TEST(Guardian, RestoreFloorRegrantsLostCapacity)
{
    QosGuardian g(params());
    FakeBroker broker;
    Region r = makeRegion(1, /*floor=*/4);
    EXPECT_EQ(g.restoreFloor(r, broker), 3u);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(g.telemetry(r.asid()).floorRestoreGrants, 3u);
    // At (or above) the floor: nothing to do.
    EXPECT_EQ(g.restoreFloor(r, broker), 0u);
}

TEST(Guardian, ResizerHonoursFloorEndToEnd)
{
    const MolecularCacheParams p = params();
    const Resizer resizer(p);
    QosGuardian g(p);
    FakeBroker broker;
    Region r = makeRegion(4, /*floor=*/4);
    primeRegion(r, resizer, broker, &g, 0.30);
    // Perfect hit rate wants a withdrawal; the floor forbids it.
    feedInterval(r, 1000, 0, 0);
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker, &g);
    EXPECT_EQ(out.delta, 0);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_GE(g.telemetry(r.asid()).floorHits, 1u);
}

TEST(Guardian, WatchdogFlagsStuckAndTimesReconvergence)
{
    MolecularCacheParams p = params();
    p.guardian.watchdogEpochs = 4;
    // Default geometry => cluster capacity 256, so mr 0.3 at size 4
    // predicts ~0.005 at capacity: feasible-looking, just not converged.
    p.moleculesPerTile = 64;
    p.tilesPerCluster = 4;
    QosGuardian g(p);
    const Region r = makeRegion(4);
    for (u32 i = 0; i < 4; ++i) {
        EXPECT_FALSE(g.telemetry(r.asid()).stuck);
        g.afterDecision(r, 0, 0.30, 0.1);
    }
    EXPECT_TRUE(g.telemetry(r.asid()).stuck);
    EXPECT_EQ(g.summary().stuckRegions, 1u);
    EXPECT_GE(g.summary().maxEpochsToGoal, 4u);
    // Reaching the goal clears the flag and records the time-to-goal.
    g.afterDecision(r, 0, 0.09, 0.1);
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_FALSE(t.stuck);
    EXPECT_EQ(t.lastEpochsToGoal, 4u);
    EXPECT_EQ(t.maxEpochsToGoal, 4u);
}

TEST(Guardian, PoolPressureHoldsGrowthAtFairShare)
{
    QosGuardian g(params()); // cluster capacity 16
    const Region big = makeRegion(16);
    // Repeated empty grants drive the pressure EWMA toward 1.
    for (u32 i = 0; i < 20; ++i)
        g.noteGrant(big.asid(), 8, 0);
    EXPECT_GT(g.poolPressure(), params().guardian.pressureThreshold);
    double eff = 0.0;
    // At (or past) the fair share, growth is paused under pressure...
    EXPECT_TRUE(g.gateHold(big, 0.5, 0.1, &eff));
    // ...but shrinking is always allowed.
    EXPECT_FALSE(g.gateHold(big, 0.01, 0.1, &eff));
    // A small region may still grow toward its share.
    const Region small = makeRegion(2);
    EXPECT_FALSE(g.gateHold(small, 0.5, 0.1, &eff));
}

TEST(Guardian, SummaryAggregatesAcrossRegions)
{
    QosGuardian g(params());
    const Region a = makeRegion(8); // Asid 1 (makeRegion default)
    Region b(Asid{2}, PlacementPolicy::Random, 1, TileId{0}, ClusterId{0},
             8_KiB);
    b.addMolecule(MoleculeId{50}, TileId{0}, true);
    b.capacityFloor = 2;
    for (u32 i = 0; i < params().guardian.feasibilityEpochs; ++i)
        g.afterDecision(a, 0, 0.9, 0.1); // infeasible
    g.clampWithdraw(b, 1);               // floor hit on the other region
    const GuardianSummary s = g.summary();
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.infeasibleRegions, 1u);
    EXPECT_EQ(s.floorHits, 1u);
    EXPECT_GT(s.maxShortfall, 0.0);
}

} // namespace
} // namespace molcache
