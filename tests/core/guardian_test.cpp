/**
 * @file
 * Unit tests of the QoS guardian (core/guardian.hpp): the hysteresis
 * dead-band, flip-guard and oscillation backoff, admission control with
 * explicit degraded mode, capacity floors, pool pressure and the
 * convergence watchdog — both through the public guardian API and
 * end-to-end through Resizer::resizeRegion.
 */

#include "core/guardian.hpp"

#include <gtest/gtest.h>

#include "core/resizer.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

/** Broker over an infinite (or bounded) molecule supply for unit tests. */
class FakeBroker final : public MoleculeBroker
{
  public:
    explicit FakeBroker(u32 available = 1000000)
        : available_(available)
    {
    }

    u32
    grant(Region &region, u32 count) override
    {
        const u32 got = std::min(count, available_);
        available_ -= got;
        for (u32 i = 0; i < got; ++i) {
            region.addMolecule(next_, TileId{0}, false);
            ++next_;
        }
        return got;
    }

    u32
    withdraw(Region &region, u32 count) override
    {
        u32 got = 0;
        while (got < count && region.size() > 1) {
            region.removeMolecule(region.pickWithdrawal());
            ++available_;
            ++got;
        }
        return got;
    }

  private:
    u32 available_;
    MoleculeId next_{100};
};

/** Small geometry: 2 tiles x 8 molecules => cluster capacity 16, so the
 * feasibility model's capacity predictions are easy to hit by hand. */
MolecularCacheParams
params()
{
    MolecularCacheParams p;
    p.moleculesPerTile = 8;
    p.tilesPerCluster = 2;
    p.maxAllocationChunk = 8;
    p.minIntervalSample = 100;
    p.guardian.enabled = true;
    return p;
}

Region
makeRegion(u32 molecules, u32 floor = 0)
{
    Region r(Asid{1}, PlacementPolicy::Random, 1, TileId{0},
             ClusterId{0}, 8_KiB);
    for (u32 m = 0; m < molecules; ++m)
        r.addMolecule(MoleculeId{m}, TileId{0}, true);
    r.maxAllocation = 8;
    r.lastGrant = molecules;
    r.capacityFloor = floor;
    return r;
}

/** Drive one interval's worth of synthetic statistics into the region. */
void
feedInterval(Region &r, u32 accesses, u32 misses, u32 replacements)
{
    for (u32 i = 0; i < accesses; ++i)
        r.noteAccess(i >= misses); // first `misses` accesses miss
    for (u32 i = 0; i < replacements; ++i)
        r.noteReplacement(r.rows()[0][i % r.rows()[0].size()], 0);
}

/** First evaluation only observes; prime it so decisions flow. */
void
primeRegion(Region &r, const Resizer &resizer, FakeBroker &broker,
            QosGuardian *guardian, double mr = 0.3)
{
    feedInterval(r, 1000, static_cast<u32>(mr * 1000),
                 static_cast<u32>(mr * 1000));
    resizer.resizeRegion(r, 0.1, broker, guardian);
}

TEST(Guardian, GateHoldDeadBand)
{
    QosGuardian g(params());
    const Region r = makeRegion(4);
    double eff = 0.0;
    // Inside goal*(1 +- 0.10): hold.
    EXPECT_TRUE(g.gateHold(r, 0.105, 0.1, &eff));
    EXPECT_TRUE(g.gateHold(r, 0.095, 0.1, &eff));
    // Outside the band: pass through with the configured goal.
    EXPECT_FALSE(g.gateHold(r, 0.30, 0.1, &eff));
    EXPECT_DOUBLE_EQ(eff, 0.1);
    EXPECT_FALSE(g.gateHold(r, 0.02, 0.1, &eff));
    EXPECT_GE(g.telemetry(r.asid()).holdEpochs, 2u);
}

TEST(Guardian, HysteresisHoldThroughResizer)
{
    const MolecularCacheParams p = params();
    const Resizer resizer(p);
    QosGuardian g(p);
    FakeBroker broker;
    Region r = makeRegion(8);
    primeRegion(r, resizer, broker, &g, 0.30);
    // mr 0.105 is inside the dead-band: the epoch is held, yet the
    // interval closes and history advances (no stale-interval buildup).
    feedInterval(r, 1000, 105, 105);
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker, &g);
    EXPECT_TRUE(out.evaluated);
    EXPECT_EQ(out.delta, 0);
    EXPECT_EQ(r.size(), 8u);
    EXPECT_EQ(r.intervalAccesses(), 0u);
    EXPECT_NEAR(r.lastMissRate, 0.105, 1e-9);
    EXPECT_GE(g.telemetry(r.asid()).holdEpochs, 1u);
}

TEST(Guardian, FlipGuardBlocksImmediateReversal)
{
    QosGuardian g(params());
    const Region r = makeRegion(4);
    double eff = 0.0;
    // A grow action (delta +4) was just taken...
    g.afterDecision(r, +4, 0.30, 0.1);
    // ...so an immediate shrink (mr far below goal) is held.
    EXPECT_TRUE(g.gateHold(r, 0.02, 0.1, &eff));
    // Two quiet epochs (cooldownEpochs = 2) later the guard lifts.
    g.afterDecision(r, 0, 0.30, 0.1);
    g.afterDecision(r, 0, 0.30, 0.1);
    EXPECT_FALSE(g.gateHold(r, 0.02, 0.1, &eff));
    // Same-direction actions were never blocked.
    g.afterDecision(r, +4, 0.30, 0.1);
    EXPECT_FALSE(g.gateHold(r, 0.30, 0.1, &eff));
}

TEST(Guardian, OscillationTripWidensBandAndBacksOffPeriod)
{
    QosGuardian g(params());
    const Region r = makeRegion(4);
    const Asid asid = r.asid();
    EXPECT_EQ(g.scaledPeriod(asid, 25000), 25000u);

    // Alternating deltas: the second flip reaches maxSignFlips = 2.
    g.afterDecision(r, +2, 0.30, 0.1);
    g.afterDecision(r, -2, 0.02, 0.1);
    g.afterDecision(r, +2, 0.30, 0.1);
    const GuardianAppTelemetry t = g.telemetry(asid);
    EXPECT_EQ(t.oscillationEvents, 1u);
    // The window restarts on the trip, so the recorded worst case stays
    // at the configured bound instead of growing without limit.
    EXPECT_EQ(t.maxSignFlips, params().guardian.maxSignFlips);
    // Period backoff doubled the resize period (capped at the max).
    EXPECT_EQ(g.scaledPeriod(asid, 25000), 50000u);
    // The trip imposes a cooldown pause: even a far-out miss rate holds.
    double eff = 0.0;
    EXPECT_TRUE(g.gateHold(r, 0.9, 0.1, &eff));

    // One full calm window halves the backoff again.
    for (u32 i = 0; i < params().guardian.oscillationWindow + 2; ++i)
        g.afterDecision(r, 0, 0.105, 0.1);
    EXPECT_EQ(g.scaledPeriod(asid, 25000), 25000u);
}

TEST(Guardian, WidenedBandHoldsWhatNormalBandWouldNot)
{
    QosGuardian g(params());
    const Region r = makeRegion(4);
    double eff = 0.0;
    // mr 0.115 is outside the normal 10% band around goal 0.1.
    EXPECT_FALSE(g.gateHold(r, 0.115, 0.1, &eff));
    // Trip the oscillation detector: band scale doubles to 0.2.
    g.afterDecision(r, +2, 0.30, 0.1);
    g.afterDecision(r, -2, 0.02, 0.1);
    g.afterDecision(r, +2, 0.30, 0.1);
    // Drain the cooldown pause (cooldownEpochs = 2).
    EXPECT_TRUE(g.gateHold(r, 0.115, 0.1, &eff));
    EXPECT_TRUE(g.gateHold(r, 0.115, 0.1, &eff));
    // Now the hold comes from the widened dead-band [0.08, 0.12] itself.
    EXPECT_TRUE(g.gateHold(r, 0.115, 0.1, &eff));
}

TEST(Guardian, InfeasibleGoalEntersDegradedModeWithShortfall)
{
    QosGuardian g(params()); // cluster capacity 16
    const Region r = makeRegion(8);
    // k ~= 0.9 * 8 = 7.2 => predicted floor 7.2/16 = 0.45 >> goal 0.1.
    for (u32 i = 0; i < params().guardian.feasibilityEpochs; ++i)
        g.afterDecision(r, 0, 0.9, 0.1);
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_EQ(t.verdict, FeasibilityVerdict::Infeasible);
    EXPECT_NEAR(t.shortfall, 0.35, 0.02);
    // Degraded mode: the region is judged against the achievable goal,
    // so a miss rate near it is held instead of chasing more capacity.
    double eff = 0.0;
    EXPECT_TRUE(g.gateHold(r, 0.44, 0.1, &eff));
    EXPECT_FALSE(g.gateHold(r, 0.9, 0.1, &eff));
    EXPECT_NEAR(eff, 0.45, 0.02); // Algorithm 1 steers to the substitute
    // An infeasible region is excused from the watchdog.
    EXPECT_FALSE(t.stuck);
}

TEST(Guardian, InfeasibleNeedsConsecutiveEpochs)
{
    QosGuardian g(params());
    const Region r = makeRegion(8);
    for (u32 i = 0; i + 1 < params().guardian.feasibilityEpochs; ++i)
        g.afterDecision(r, 0, 0.9, 0.1);
    EXPECT_EQ(g.telemetry(r.asid()).verdict, FeasibilityVerdict::Unknown);
}

TEST(Guardian, DegradedModeExitsWhenGoalReached)
{
    QosGuardian g(params());
    const Region r = makeRegion(8);
    for (u32 i = 0; i < params().guardian.feasibilityEpochs; ++i)
        g.afterDecision(r, 0, 0.9, 0.1);
    ASSERT_EQ(g.telemetry(r.asid()).verdict,
              FeasibilityVerdict::Infeasible);
    // The working set shrank: the goal is met, degraded mode ends.
    g.afterDecision(r, 0, 0.08, 0.1);
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_EQ(t.verdict, FeasibilityVerdict::Feasible);
    EXPECT_DOUBLE_EQ(t.shortfall, 0.0);
}

TEST(Guardian, ClampWithdrawStopsAtFloor)
{
    QosGuardian g(params());
    const Region above = makeRegion(6, /*floor=*/2);
    EXPECT_EQ(g.clampWithdraw(above, 3), 3u); // room of 4: untouched
    EXPECT_EQ(g.clampWithdraw(above, 10), 4u); // clipped to the floor
    const Region at = makeRegion(2, /*floor=*/2);
    EXPECT_EQ(g.clampWithdraw(at, 1), 0u);
    EXPECT_EQ(g.telemetry(Asid{1}).floorHits, 2u);
    // No floor configured: pass-through, no accounting.
    const Region unfloored = makeRegion(2);
    EXPECT_EQ(g.clampWithdraw(unfloored, 1), 1u);
}

TEST(Guardian, RestoreFloorRegrantsLostCapacity)
{
    QosGuardian g(params());
    FakeBroker broker;
    Region r = makeRegion(1, /*floor=*/4);
    EXPECT_EQ(g.restoreFloor(r, broker), 3u);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(g.telemetry(r.asid()).floorRestoreGrants, 3u);
    // At (or above) the floor: nothing to do.
    EXPECT_EQ(g.restoreFloor(r, broker), 0u);
}

TEST(Guardian, ResizerHonoursFloorEndToEnd)
{
    const MolecularCacheParams p = params();
    const Resizer resizer(p);
    QosGuardian g(p);
    FakeBroker broker;
    Region r = makeRegion(4, /*floor=*/4);
    primeRegion(r, resizer, broker, &g, 0.30);
    // Perfect hit rate wants a withdrawal; the floor forbids it.
    feedInterval(r, 1000, 0, 0);
    const RegionResize out = resizer.resizeRegion(r, 0.1, broker, &g);
    EXPECT_EQ(out.delta, 0);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_GE(g.telemetry(r.asid()).floorHits, 1u);
}

TEST(Guardian, WatchdogFlagsStuckAndTimesReconvergence)
{
    MolecularCacheParams p = params();
    p.guardian.watchdogEpochs = 4;
    // Default geometry => cluster capacity 256, so mr 0.3 at size 4
    // predicts ~0.005 at capacity: feasible-looking, just not converged.
    p.moleculesPerTile = 64;
    p.tilesPerCluster = 4;
    QosGuardian g(p);
    const Region r = makeRegion(4);
    for (u32 i = 0; i < 4; ++i) {
        EXPECT_FALSE(g.telemetry(r.asid()).stuck);
        g.afterDecision(r, 0, 0.30, 0.1);
    }
    EXPECT_TRUE(g.telemetry(r.asid()).stuck);
    EXPECT_EQ(g.summary().stuckRegions, 1u);
    EXPECT_GE(g.summary().maxEpochsToGoal, 4u);
    // Reaching the goal clears the flag and records the time-to-goal.
    g.afterDecision(r, 0, 0.09, 0.1);
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_FALSE(t.stuck);
    EXPECT_EQ(t.lastEpochsToGoal, 4u);
    EXPECT_EQ(t.maxEpochsToGoal, 4u);
}

TEST(Guardian, PoolPressureHoldsGrowthAtFairShare)
{
    QosGuardian g(params()); // cluster capacity 16
    const Region big = makeRegion(16);
    // Repeated empty grants drive the pressure EWMA toward 1.
    for (u32 i = 0; i < 20; ++i)
        g.noteGrant(big.asid(), 8, 0);
    EXPECT_GT(g.poolPressure(), params().guardian.pressureThreshold);
    double eff = 0.0;
    // At (or past) the fair share, growth is paused under pressure...
    EXPECT_TRUE(g.gateHold(big, 0.5, 0.1, &eff));
    // ...but shrinking is always allowed.
    EXPECT_FALSE(g.gateHold(big, 0.01, 0.1, &eff));
    // A small region may still grow toward its share.
    const Region small = makeRegion(2);
    EXPECT_FALSE(g.gateHold(small, 0.5, 0.1, &eff));
}

TEST(Guardian, ColdStartZeroWidthWindowSurvivesFirstEpoch)
{
    // A zero-width oscillation window must not make the first decision's
    // sign-window bookkeeping (index modulus) or the feasibility model
    // divide by zero; the cold-start verdict stays Unknown.
    MolecularCacheParams p = params();
    p.guardian.oscillationWindow = 0;
    QosGuardian g(p);
    const Region r = makeRegion(4);
    g.afterDecision(r, +4, 0.30, 0.1);
    EXPECT_EQ(g.telemetry(r.asid()).verdict, FeasibilityVerdict::Unknown);

    // Same first epoch on an empty region: no size to feed the
    // miss-vs-size model, still no crash, still Unknown.
    const Region empty = makeRegion(0);
    g.afterDecision(empty, 0, 0.9, 0.1);
    EXPECT_EQ(g.telemetry(empty.asid()).verdict,
              FeasibilityVerdict::Unknown);
}

// ---------------------------------------------------------------------
// Predictive mode & hint trust (docs/algorithm1.md).
// ---------------------------------------------------------------------

MolecularCacheParams
predictiveParams(double initialTrust = 0.5)
{
    MolecularCacheParams p = params();
    p.guardian.predictive.enabled = true;
    p.guardian.predictive.initialTrust = initialTrust;
    return p;
}

PhaseHint
hint(const Region &r, u64 footprintMolecules, u64 lead = 0,
     double confidence = 0.9)
{
    PhaseHint h;
    h.asid = r.asid();
    h.leadAccesses = lead;
    h.predictedFootprintBytes = footprintMolecules * 8 * 1024;
    h.confidence = confidence;
    return h;
}

/** Feed @p intervals evaluated epochs at @p missRate so the armed hint
 * accumulates post-shift evidence and is scored. */
void
scoreArmedHint(QosGuardian &g, Region &r, double missRate,
               u32 intervals = 4)
{
    for (u32 i = 0; i < intervals; ++i) {
        feedInterval(r, 1000, static_cast<u32>(missRate * 1000), 0);
        g.afterDecision(r, 0, missRate, 0.1);
        r.closeInterval();
    }
}

TEST(Guardian, PredictiveOffIgnoresHints)
{
    QosGuardian g(params()); // predictive disabled
    const Region r = makeRegion(4);
    EXPECT_FALSE(g.acceptHint(hint(r, 12), r));
    FakeBroker broker;
    Region rw = makeRegion(4);
    EXPECT_EQ(g.predictiveStep(rw, broker), 0);
    EXPECT_EQ(g.telemetry(r.asid()).hintsSeen, 0u);
}

TEST(Guardian, LowConfidenceHintRejectedAtTheDoor)
{
    QosGuardian g(predictiveParams(/*initialTrust=*/0.9));
    const Region r = makeRegion(4);
    EXPECT_FALSE(g.acceptHint(hint(r, 12, 0, /*confidence=*/0.1), r));
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_EQ(t.hintsSeen, 1u);
    EXPECT_EQ(t.hintsRejected, 1u);
    EXPECT_EQ(t.hintsHonored, 0u);
}

TEST(Guardian, UnprovenTenantScoresButNeverActs)
{
    // initialTrust (0.5) sits below actAbove (0.55): the first forecast
    // is observation-only — no wakeup pull (acceptHint false), no
    // capacity movement — but it IS scored, and a truthful one earns
    // the trust that lets the next hint act.
    QosGuardian g(predictiveParams());
    Region r = makeRegion(4);
    EXPECT_FALSE(g.acceptHint(hint(r, 12), r));
    FakeBroker broker;
    EXPECT_EQ(g.predictiveStep(r, broker), 0);
    EXPECT_EQ(r.size(), 4u);
    // The promised misses materialize: the grow claim was truthful.
    scoreArmedHint(g, r, 0.30);
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_GT(t.trust, 0.55);
    EXPECT_FALSE(t.quarantined);
    EXPECT_EQ(t.hintsHonored, 0u);
    // Proven: the next hint is action-eligible.
    EXPECT_TRUE(g.acceptHint(hint(r, 12), r));
}

TEST(Guardian, TrustedGrowHintPreGrantsBeforeTheShift)
{
    QosGuardian g(predictiveParams(/*initialTrust=*/0.9));
    Region r = makeRegion(4);
    FakeBroker broker;
    // Shift due within one nominal period: the pre-grant fires now.
    EXPECT_TRUE(g.acceptHint(hint(r, 12, /*lead=*/5000), r));
    const i32 delta = g.predictiveStep(r, broker);
    EXPECT_EQ(delta, 8); // target 12 - size 4
    EXPECT_EQ(r.size(), 12u);
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_EQ(t.hintsHonored, 1u);
    EXPECT_EQ(t.preGrantMolecules, 8u);
    // No double-grant: the armed hint acts exactly once.
    EXPECT_EQ(g.predictiveStep(r, broker), 0);
}

TEST(Guardian, GrowHintWaitsUntilTheLastWakeupBeforeDue)
{
    QosGuardian g(predictiveParams(/*initialTrust=*/0.9));
    Region r = makeRegion(4);
    FakeBroker broker;
    // Due two nominal periods out: acting now would be a wakeup early.
    EXPECT_TRUE(g.acceptHint(hint(r, 12, /*lead=*/50'000), r));
    EXPECT_EQ(g.predictiveStep(r, broker), 0);
    EXPECT_EQ(r.size(), 4u);
    // Advance to within one period of the shift: now it fires.
    for (u32 i = 0; i < 30'000; ++i)
        r.noteAccess(true);
    EXPECT_EQ(g.predictiveStep(r, broker), 8);
}

TEST(Guardian, PreWithdrawNeedsPoolPressureAndWaitsForDue)
{
    QosGuardian g(predictiveParams(/*initialTrust=*/0.9));
    Region r = makeRegion(12);
    FakeBroker broker;
    // Uncontended pool: the shrink is promised but molecules stay warm
    // where they are; reactive control reclaims them at its own pace.
    EXPECT_TRUE(g.acceptHint(hint(r, 2), r));
    EXPECT_EQ(g.predictiveStep(r, broker), 0);
    EXPECT_EQ(r.size(), 12u);

    // Under pressure the promised molecules are handed back — but only
    // once the shift is due, never while the departing phase runs.
    QosGuardian g2(predictiveParams(/*initialTrust=*/0.9));
    Region r2 = makeRegion(12);
    for (u32 i = 0; i < 20; ++i)
        g2.noteGrant(r2.asid(), 8, 0);
    EXPECT_TRUE(g2.acceptHint(hint(r2, 2, /*lead=*/4000), r2));
    EXPECT_EQ(g2.predictiveStep(r2, broker), 0); // not due yet
    for (u32 i = 0; i < 4000; ++i)
        r2.noteAccess(true);
    const i32 delta = g2.predictiveStep(r2, broker);
    EXPECT_LT(delta, 0);
    EXPECT_EQ(g2.telemetry(r2.asid()).preWithdrawMolecules,
              static_cast<u64>(-delta));
}

TEST(Guardian, OscillationCooldownBlocksPreGrantAndKeepsWideBand)
{
    QosGuardian g(predictiveParams(/*initialTrust=*/0.9));
    Region r = makeRegion(4);
    // Trip the oscillation detector: alternating-sign actions.
    g.afterDecision(r, +4, 0.30, 0.1);
    g.afterDecision(r, -4, 0.05, 0.1);
    g.afterDecision(r, +4, 0.30, 0.1);
    ASSERT_GT(g.telemetry(r.asid()).oscillationEvents, 0u);
    // An armed trusted hint does NOT act through the cooldown...
    FakeBroker broker;
    EXPECT_TRUE(g.acceptHint(hint(r, 12, 1000), r));
    EXPECT_EQ(g.predictiveStep(r, broker), 0);
    EXPECT_EQ(r.size(), 4u);
    // ...and the widened dead-band keeps holding reactive decisions the
    // normal band would have released.
    double eff = 0.0;
    EXPECT_TRUE(g.gateHold(r, 0.115, 0.1, &eff));
}

TEST(Guardian, FlipGuardNotReversedByReactiveAfterPreGrant)
{
    // A pre-grant counts as an action for the reactive flip-guard: the
    // controller cannot immediately withdraw what the hint just moved.
    QosGuardian g(predictiveParams(/*initialTrust=*/0.9));
    Region r = makeRegion(4);
    FakeBroker broker;
    EXPECT_TRUE(g.acceptHint(hint(r, 12, 1000), r));
    ASSERT_GT(g.predictiveStep(r, broker), 0);
    double eff = 0.0;
    EXPECT_TRUE(g.gateHold(r, 0.02, 0.1, &eff)); // shrink held
}

TEST(Guardian, LyingTenantQuarantinedThenRestoredOnProbation)
{
    QosGuardian g(predictiveParams());
    Region r = makeRegion(4);
    // A grow promise whose misses never materialize: one scored lie at
    // confidence 0.9 drops trust 0.5 -> 0.2975, under the threshold.
    EXPECT_FALSE(g.acceptHint(hint(r, 12), r));
    scoreArmedHint(g, r, 0.0);
    GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_TRUE(t.quarantined);
    EXPECT_EQ(t.quarantineEvents, 1u);
    EXPECT_LT(t.trust, 0.30);

    // Quarantined hints are armed for scoring only: rejected, no action.
    FakeBroker broker;
    EXPECT_FALSE(g.acceptHint(hint(r, 12), r));
    EXPECT_EQ(g.predictiveStep(r, broker), 0);
    EXPECT_EQ(r.size(), 4u);

    // Probation: truthful forecasts re-earn trust past restoreAbove
    // while the quarantine epochs tick; then service resumes.
    scoreArmedHint(g, r, 0.30);
    EXPECT_FALSE(g.acceptHint(hint(r, 12), r)); // still quarantined
    scoreArmedHint(g, r, 0.30);
    t = g.telemetry(r.asid());
    EXPECT_GT(t.trust, 0.65);
    EXPECT_FALSE(t.quarantined);
    EXPECT_TRUE(g.acceptHint(hint(r, 12), r));
}

TEST(Guardian, SupersededHintScoredOnPartialEvidence)
{
    QosGuardian g(predictiveParams());
    Region r = makeRegion(4);
    EXPECT_FALSE(g.acceptHint(hint(r, 12), r));
    // One clean post-shift interval of evidence, then a newer forecast
    // arrives: the old hint is finalized on what was observed instead
    // of expiring unjudged — and the earned trust makes the *new* hint
    // action-eligible (finalize runs before the trust gate).
    scoreArmedHint(g, r, 0.30, /*intervals=*/1);
    EXPECT_TRUE(g.acceptHint(hint(r, 12), r));
    EXPECT_GT(g.telemetry(r.asid()).trust, 0.55);
}

TEST(Guardian, RestoreFloorRacesPreGrantWithoutOverProvisioning)
{
    // A region squeezed below its floor with a grow hint in flight:
    // restoreFloor tops it up to the floor first, and the predictive
    // step then only adds what is still missing toward the promised
    // target — the two paths never double-provision past the target.
    const MolecularCacheParams p = predictiveParams(0.9);
    const Resizer resizer(p);
    QosGuardian g(p);
    FakeBroker broker;
    Region r = makeRegion(2, /*floor=*/4);
    EXPECT_TRUE(g.acceptHint(hint(r, 8, 1000), r));
    feedInterval(r, 1000, 300, 0);
    resizer.resizeRegion(r, 0.1, broker, &g);
    EXPECT_EQ(r.size(), 8u); // floor restore (2->4) + pre-grant (4->8)
    const GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_EQ(t.floorRestoreGrants, 2u);
    EXPECT_EQ(t.preGrantMolecules, 4u);
}

TEST(Guardian, PreWithdrawClampedAtTheCapacityFloor)
{
    // Even a trusted, due, pressure-justified pre-withdraw cannot pull
    // a region below its floor (Resizer::predictivePulse runs through
    // the guarded broker).
    const MolecularCacheParams p = predictiveParams(0.9);
    const Resizer resizer(p);
    QosGuardian g(p);
    FakeBroker broker;
    Region r = makeRegion(6, /*floor=*/4);
    for (u32 i = 0; i < 20; ++i)
        g.noteGrant(r.asid(), 8, 0);
    EXPECT_TRUE(g.acceptHint(hint(r, 1), r));
    const i32 delta = resizer.predictivePulse(r, broker, &g);
    EXPECT_EQ(delta, -2); // 6 -> 4, stopped by the floor, not target 1
    EXPECT_EQ(r.size(), 4u);
    EXPECT_GE(g.telemetry(r.asid()).floorHits, 1u);
}

TEST(Guardian, FixedWindowOutsideGoalAccounting)
{
    QosGuardian g(params());
    Region r = makeRegion(4);
    r.resizeGoal = 0.1;
    // One nominal period (25000) of accesses at 50% misses: outside.
    for (u32 i = 0; i < 25'000; ++i) {
        const bool hit = (i & 1u) == 0;
        r.noteAccess(hit);
        g.noteAccess(r, hit);
    }
    GuardianAppTelemetry t = g.telemetry(r.asid());
    EXPECT_EQ(t.epochsOutsideGoal, 1u);
    EXPECT_EQ(t.accessesOutsideGoal, 25'000u);
    // One window of all hits: inside goal, counters unchanged.
    for (u32 i = 0; i < 25'000; ++i) {
        r.noteAccess(true);
        g.noteAccess(r, true);
    }
    t = g.telemetry(r.asid());
    EXPECT_EQ(t.epochsOutsideGoal, 1u);
    EXPECT_EQ(t.accessesOutsideGoal, 25'000u);
}

TEST(Guardian, SummaryAggregatesAcrossRegions)
{
    QosGuardian g(params());
    const Region a = makeRegion(8); // Asid 1 (makeRegion default)
    Region b(Asid{2}, PlacementPolicy::Random, 1, TileId{0}, ClusterId{0},
             8_KiB);
    b.addMolecule(MoleculeId{50}, TileId{0}, true);
    b.capacityFloor = 2;
    for (u32 i = 0; i < params().guardian.feasibilityEpochs; ++i)
        g.afterDecision(a, 0, 0.9, 0.1); // infeasible
    g.clampWithdraw(b, 1);               // floor hit on the other region
    const GuardianSummary s = g.summary();
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.infeasibleRegions, 1u);
    EXPECT_EQ(s.floorHits, 1u);
    EXPECT_GT(s.maxShortfall, 0.0);
}

} // namespace
} // namespace molcache
