/**
 * @file
 * Pins the memoized probe schedule (Region::probeSchedule, the access
 * hot path) against the reference lookup planner (planLookup) across
 * randomized membership churn — grants, withdrawals/decommissions
 * (both reach the region as removeMolecule), rehomes, shared-bit
 * toggles and row collapse — for every placement policy with and
 * without the row-restricted-lookup ablation.  See docs/perf.md.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/placement.hpp"
#include "core/region.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

constexpr u32 kTiles = 8;
constexpr u32 kMolsPerTile = 8;
constexpr u32 kMols = kTiles * kMolsPerTile;

TileId
tileOf(MoleculeId mol)
{
    return TileId{mol.value() / kMolsPerTile};
}

/** The schedule probeSchedule() promises: the reference plan with the
 * home tile's foreign shared-bit molecules appended to the home probes
 * (shared molecules are exempt from the row restriction — their owner's
 * rows are not ours). */
ProbeSchedule
referenceSchedule(const Region &region, Addr addr, bool rowRestricted,
                  const std::vector<MoleculeId> &sharedHome)
{
    const LookupPlan plan =
        planLookup(region, region.homeTile(), addr, rowRestricted);
    ProbeSchedule ref;
    ref.home = plan.home.molecules;
    for (const MoleculeId m : sharedHome)
        if (!region.contains(m))
            ref.home.push_back(m);
    ref.remote = plan.remote;
    return ref;
}

void
expectSameSchedule(const ProbeSchedule &got, const ProbeSchedule &want,
                   Addr addr)
{
    ASSERT_EQ(got.home, want.home) << "home probes diverge at addr "
                                   << addr;
    ASSERT_EQ(got.remote.size(), want.remote.size())
        << "remote tile count diverges at addr " << addr;
    for (size_t t = 0; t < got.remote.size(); ++t) {
        ASSERT_EQ(got.remote[t].tile, want.remote[t].tile);
        ASSERT_EQ(got.remote[t].molecules, want.remote[t].molecules);
    }
}

/** Randomized churn against one (policy, rowRestricted) configuration. */
void
runChurn(PlacementPolicy policy, bool rowRestricted, u64 seed)
{
    Region region(Asid{1}, policy, /*lineMultiple=*/1, TileId{0},
                  ClusterId{0}, 8_KiB, /*initialRowMax=*/4);
    Pcg32 rng(seed);

    std::vector<MoleculeId> owned;
    std::vector<bool> isOwned(kMols, false);
    // Shared-bit molecules per tile (the cache's sharedByTile_ stand-in)
    // and the generation stamp that invalidates schedules folding them.
    std::vector<std::vector<MoleculeId>> sharedByTile(kTiles);
    u64 sharedGen = 0;

    // Initial allocation: molecules opening their own rows.
    for (u32 m = 0; m < 4; ++m) {
        const MoleculeId mol{m * kMolsPerTile}; // spread across tiles
        region.addMolecule(mol, tileOf(mol), /*initial=*/true);
        owned.push_back(mol);
        isOwned[mol.value()] = true;
    }

    for (u32 step = 0; step < 400; ++step) {
        const u32 op = rng.next32() % 10;
        if (op < 4) {
            // Grant: add a random unowned molecule.
            const MoleculeId mol{rng.next32() % kMols};
            if (!isOwned[mol.value()]) {
                region.addMolecule(mol, tileOf(mol), /*initial=*/false);
                owned.push_back(mol);
                isOwned[mol.value()] = true;
            }
        } else if (op < 7) {
            // Withdrawal / decommission: both remove from the view.
            // Removing a row's last molecule collapses the row.
            if (owned.size() > 1) {
                const size_t at = rng.next32() % owned.size();
                const MoleculeId mol = owned[at];
                region.removeMolecule(mol);
                isOwned[mol.value()] = false;
                owned.erase(owned.begin() + static_cast<long>(at));
            }
        } else if (op == 7) {
            // Context switch: re-home within the cluster.
            region.rehome(TileId{rng.next32() % kTiles});
        } else {
            // Shared-bit toggle on a random (foreign or owned) molecule.
            const MoleculeId mol{rng.next32() % kMols};
            auto &list = sharedByTile[tileOf(mol).value()];
            const auto it = std::find(list.begin(), list.end(), mol);
            if (it == list.end())
                list.push_back(mol);
            else
                list.erase(it);
            ++sharedGen;
        }

        const auto &sharedHome =
            sharedByTile[region.homeTile().value()];
        for (u32 probe = 0; probe < 8; ++probe) {
            const Addr addr =
                static_cast<Addr>(rng.next32()) * 64; // line aligned
            const ProbeSchedule want =
                referenceSchedule(region, addr, rowRestricted, sharedHome);
            const ProbeSchedule &got = region.probeSchedule(
                addr, rowRestricted, sharedGen,
                sharedHome.empty() ? nullptr : &sharedHome);
            expectSameSchedule(got, want, addr);
            // Memoized: asking again without churn must reproduce it.
            const ProbeSchedule &again = region.probeSchedule(
                addr, rowRestricted, sharedGen,
                sharedHome.empty() ? nullptr : &sharedHome);
            expectSameSchedule(again, want, addr);
        }
    }
}

TEST(ProbeSchedule, MatchesPlanLookupRandom)
{
    runChurn(PlacementPolicy::Random, false, 11);
}

TEST(ProbeSchedule, MatchesPlanLookupRandomRowRestrictedFlag)
{
    // rowRestrictedLookup is a Randy-only ablation: with Random it must
    // be a no-op and the schedules must still match the reference.
    runChurn(PlacementPolicy::Random, true, 12);
}

TEST(ProbeSchedule, MatchesPlanLookupRandy)
{
    runChurn(PlacementPolicy::Randy, false, 13);
}

TEST(ProbeSchedule, MatchesPlanLookupRandyRowRestricted)
{
    runChurn(PlacementPolicy::Randy, true, 14);
}

TEST(ProbeSchedule, MatchesPlanLookupLruDirect)
{
    runChurn(PlacementPolicy::LruDirect, false, 15);
}

TEST(ProbeSchedule, MatchesPlanLookupLruDirectRowRestrictedFlag)
{
    runChurn(PlacementPolicy::LruDirect, true, 16);
}

TEST(ProbeSchedule, SwitchingRestrictionModeInvalidatesMemo)
{
    // The same region queried alternately with and without the
    // restriction must rebuild (not reuse) the cached schedules.
    Region region(Asid{1}, PlacementPolicy::Randy, 1, TileId{0},
                  ClusterId{0}, 8_KiB, 4);
    for (u32 m = 0; m < 8; ++m)
        region.addMolecule(MoleculeId{m}, tileOf(MoleculeId{m}), true);
    const std::vector<MoleculeId> none;
    for (const Addr addr : {0ull, 8192ull, 16384ull, 123456ull}) {
        for (const bool restricted : {true, false, true}) {
            const ProbeSchedule want =
                referenceSchedule(region, addr, restricted, none);
            const ProbeSchedule &got =
                region.probeSchedule(addr, restricted, 0, nullptr);
            expectSameSchedule(got, want, addr);
        }
    }
}

} // namespace
} // namespace molcache
