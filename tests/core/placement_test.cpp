#include "core/placement.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace molcache {
namespace {

Region
makeRegion(PlacementPolicy policy)
{
    Region r(Asid{1}, policy, 1, TileId{0}, ClusterId{0}, 8_KiB, 4);
    r.addMolecule(MoleculeId{0}, TileId{0}, true);
    r.addMolecule(MoleculeId{1}, TileId{0}, true);
    r.addMolecule(MoleculeId{2}, TileId{1}, false);
    r.addMolecule(MoleculeId{3}, TileId{2}, false);
    return r;
}

TEST(Placement, HomeTileFirst)
{
    const Region r = makeRegion(PlacementPolicy::Random);
    const LookupPlan plan = planLookup(r, TileId{0}, 0x1000, false);
    EXPECT_EQ(plan.home.tile, TileId{0});
    EXPECT_EQ(plan.home.molecules.size(), 2u);
    ASSERT_EQ(plan.remote.size(), 2u);
    EXPECT_EQ(plan.remote[0].tile, TileId{1});
    EXPECT_EQ(plan.remote[1].tile, TileId{2});
    EXPECT_EQ(plan.totalProbes(), 4u);
}

TEST(Placement, RequestFromRemoteTileSwapsRoles)
{
    const Region r = makeRegion(PlacementPolicy::Random);
    const LookupPlan plan = planLookup(r, TileId{1}, 0x1000, false);
    EXPECT_EQ(plan.home.tile, TileId{1});
    EXPECT_EQ(plan.home.molecules.size(), 1u);
    EXPECT_EQ(plan.remote.size(), 2u); // tiles 0 and 2
}

TEST(Placement, EmptyRegionYieldsEmptyPlan)
{
    const Region r(Asid{1}, PlacementPolicy::Random, 1, TileId{0},
                   ClusterId{0}, 8_KiB);
    const LookupPlan plan = planLookup(r, TileId{0}, 0x1000, false);
    EXPECT_EQ(plan.totalProbes(), 0u);
    EXPECT_TRUE(plan.remote.empty());
}

TEST(Placement, TileWithoutRegionMoleculesYieldsEmptyHome)
{
    const Region r = makeRegion(PlacementPolicy::Random);
    const LookupPlan plan = planLookup(r, TileId{7}, 0x1000, false);
    EXPECT_TRUE(plan.home.molecules.empty());
    EXPECT_EQ(plan.remote.size(), 3u);
    EXPECT_EQ(plan.totalProbes(), 4u);
}

TEST(Placement, RowRestrictedProbesSubset)
{
    // Layout: molecules 0 and 1 open rows 0 and 1; the non-initial 2 and
    // 3 widen the (tied-hottest) row 0 => row0 = {0,2,3}, row1 = {1}.
    const Region r = makeRegion(PlacementPolicy::Randy);
    ASSERT_EQ(r.rowMax(), 2u);
    // Unrestricted: all 4 molecules.
    const LookupPlan full = planLookup(r, TileId{0}, 0, false);
    EXPECT_EQ(full.totalProbes(), 4u);
    // Restricted to the address's row: addr 0 -> row 0 (3 molecules),
    // addr 8KiB -> row 1 (1 molecule).
    EXPECT_EQ(planLookup(r, TileId{0}, 0, true).totalProbes(), 3u);
    EXPECT_EQ(planLookup(r, TileId{0}, (8_KiB).value(), true).totalProbes(),
              1u);
}

TEST(Placement, RowRestrictionIgnoredForRandomPolicy)
{
    const Region r = makeRegion(PlacementPolicy::Random);
    const LookupPlan plan = planLookup(r, TileId{0}, 0, true);
    EXPECT_EQ(plan.totalProbes(), 4u); // Random has no rows to restrict to
}

} // namespace
} // namespace molcache
