/**
 * @file
 * Differential gate for the batched access plane (docs/perf.md):
 * identical traces through MolecularCache::access() one reference at a
 * time and through accessBatch() in odd-sized blocks must produce
 * identical per-reference AccessResults, identical global and per-ASID
 * statistics, identical energy to the last bit, identical region
 * counters, and identical way-memoization telemetry — across every
 * placement policy, every resize scheme, memoization on and off, the
 * configurations that take the scalar fallback (row-restricted lookup,
 * guardian on), faulted runs, and ASID-recycling churn.
 *
 * The batch plane defers and hoists per-reference bookkeeping, so any
 * ordering bug (a flush missed before a resize decision, a stale lane
 * surviving a generation bump, a fault applied one tick late) shows up
 * here as a counter or result divergence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/molecular_cache.hpp"
#include "core/sim_access.hpp"
#include "fault/fault_injector.hpp"
#include "sim/experiment.hpp"
#include "util/units.hpp"

namespace molcache {
namespace {

/** Deterministic xorshift trace over @p apps ASIDs; ~25% writes. */
std::vector<MemAccess>
makeTrace(u64 n, u32 apps = 4, u64 lines = 300000)
{
    std::vector<MemAccess> trace;
    trace.reserve(n);
    u64 x = 88172645463325252ull;
    for (u64 i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const u16 asid = static_cast<u16>(i % apps);
        const u64 line = x % lines;
        trace.push_back(MemAccess{line * 64 + asid * (u64{1} << 32),
                                  Asid{asid},
                                  (x >> 20) % 4 == 0 ? AccessType::Write
                                                     : AccessType::Read});
    }
    return trace;
}

/**
 * Two caches built from the same params, driven through the same
 * operation sequence: one takes every reference through access(), the
 * other through accessBatch() in blocks of 257 (odd, so block edges
 * sweep across resize periods and fault ticks).  run() compares every
 * AccessResult field-by-field; finish() compares the accumulated state.
 */
class Twin
{
  public:
    explicit Twin(const MolecularCacheParams &params)
        : scalar_(params), batch_(params)
    {
    }

    void
    attach(Asid asid, double goal, u32 homeTile = 0)
    {
        scalar_.registerApplication(asid, goal, ClusterId{0}, homeTile, 1);
        batch_.registerApplication(asid, goal, ClusterId{0}, homeTile, 1);
    }

    void
    detach(Asid asid)
    {
        scalar_.unregisterApplication(asid);
        batch_.unregisterApplication(asid);
    }

    void
    injectFaults(const std::vector<FaultEvent> &events)
    {
        FaultInjector forScalar;
        FaultInjector forBatch;
        for (const FaultEvent &event : events) {
            forScalar.schedule(event);
            forBatch.schedule(event);
        }
        SimAccess{scalar_}.setFaultInjector(std::move(forScalar));
        SimAccess{batch_}.setFaultInjector(std::move(forBatch));
    }

    void
    run(const std::vector<MemAccess> &trace)
    {
        constexpr size_t kBlock = 257;
        std::vector<AccessResult> batched(trace.size());
        for (size_t off = 0; off < trace.size(); off += kBlock) {
            const size_t n = std::min(kBlock, trace.size() - off);
            batch_.accessBatch({trace.data() + off, n},
                               {batched.data() + off, n});
        }
        u64 mismatches = 0;
        for (size_t i = 0; i < trace.size(); ++i) {
            const AccessResult want = scalar_.access(trace[i]);
            const AccessResult &got = batched[i];
            if (want.hit != got.hit || want.level != got.level ||
                want.latencyCycles != got.latencyCycles ||
                want.energyNj != got.energyNj) {
                if (mismatches == 0) {
                    ADD_FAILURE()
                        << "first divergence at reference " << i << ": "
                        << "hit " << want.hit << "/" << got.hit
                        << " level " << int{want.level} << "/"
                        << int{got.level} << " latency "
                        << want.latencyCycles.value() << "/"
                        << got.latencyCycles.value() << " energy "
                        << want.energyNj << "/" << got.energyNj;
                }
                ++mismatches;
            }
        }
        EXPECT_EQ(mismatches, 0u);
    }

    void
    finish(const std::vector<Asid> &asids)
    {
        const AccessCounters &s = scalar_.stats().global();
        const AccessCounters &b = batch_.stats().global();
        EXPECT_EQ(s.accesses, b.accesses);
        EXPECT_EQ(s.hits, b.hits);
        EXPECT_EQ(s.misses, b.misses);
        EXPECT_EQ(s.writes, b.writes);
        EXPECT_EQ(s.writebacks, b.writebacks);
        EXPECT_EQ(s.latencyCycles, b.latencyCycles);
        EXPECT_EQ(scalar_.wayMemoHits(), batch_.wayMemoHits());
        EXPECT_EQ(scalar_.wayMemoMispredicts(), batch_.wayMemoMispredicts());
        EXPECT_EQ(scalar_.wayMemoInvalidations(),
                  batch_.wayMemoInvalidations());
        EXPECT_EQ(scalar_.resizeCycles(), batch_.resizeCycles());
        // Bit-exact: the batch plane accumulates energy in the same
        // floating-point order as the scalar plane.
        EXPECT_EQ(scalar_.totalEnergyNj(), batch_.totalEnergyNj());
        EXPECT_EQ(scalar_.averageProbesPerAccess(),
                  batch_.averageProbesPerAccess());
        const FaultStats &sf = scalar_.faultStats();
        const FaultStats &bf = batch_.faultStats();
        EXPECT_EQ(sf.eventsApplied(), bf.eventsApplied());
        EXPECT_EQ(sf.transientFlipsDetected, bf.transientFlipsDetected);
        EXPECT_EQ(sf.moleculesDecommissioned, bf.moleculesDecommissioned);
        for (const Asid asid : asids) {
            const AccessCounters &sa = scalar_.stats().forAsid(asid);
            const AccessCounters &ba = batch_.stats().forAsid(asid);
            EXPECT_EQ(sa.accesses, ba.accesses) << asid.value();
            EXPECT_EQ(sa.hits, ba.hits) << asid.value();
            EXPECT_EQ(sa.writes, ba.writes) << asid.value();
            EXPECT_EQ(sa.latencyCycles, ba.latencyCycles) << asid.value();
            EXPECT_EQ(scalar_.region(asid).accesses(),
                      batch_.region(asid).accesses())
                << asid.value();
            EXPECT_EQ(scalar_.region(asid).hits(), batch_.region(asid).hits())
                << asid.value();
            EXPECT_EQ(scalar_.region(asid).size(), batch_.region(asid).size())
                << asid.value();
        }
    }

  private:
    MolecularCache scalar_;
    MolecularCache batch_;
};

MolecularCacheParams
diffParams(PlacementPolicy policy, ResizeScheme scheme, bool memo)
{
    MolecularCacheParams p = fig5MolecularParams(2_MiB, policy);
    p.resizeScheme = scheme;
    p.wayMemoization = memo;
    return p;
}

std::vector<Asid>
fourAsids()
{
    return {Asid{0}, Asid{1}, Asid{2}, Asid{3}};
}

void
runMatrixCase(PlacementPolicy policy, ResizeScheme scheme, bool memo)
{
    SCOPED_TRACE(testing::Message()
                 << "placement=" << static_cast<int>(policy)
                 << " scheme=" << static_cast<int>(scheme)
                 << " memo=" << memo);
    Twin twin(diffParams(policy, scheme, memo));
    for (const Asid asid : fourAsids())
        twin.attach(asid, 0.1, asid.value());
    twin.run(makeTrace(60000));
    twin.finish(fourAsids());
}

/** Every placement x resize scheme, memoization on. */
TEST(BatchDifferential, PlacementResizeMatrixMemoOn)
{
    for (const PlacementPolicy policy :
         {PlacementPolicy::Random, PlacementPolicy::Randy,
          PlacementPolicy::LruDirect}) {
        for (const ResizeScheme scheme :
             {ResizeScheme::Constant, ResizeScheme::GlobalAdaptive,
              ResizeScheme::PerAppAdaptive})
            runMatrixCase(policy, scheme, true);
    }
}

/** Memoization off routes accessBatch through the scalar fallback; the
 * fallback must be exercised and identical too. */
TEST(BatchDifferential, PlacementResizeMatrixMemoOff)
{
    for (const PlacementPolicy policy :
         {PlacementPolicy::Random, PlacementPolicy::Randy,
          PlacementPolicy::LruDirect})
        runMatrixCase(policy, ResizeScheme::GlobalAdaptive, false);
}

/** Row-restricted lookup is ineligible for the hoisted fast path. */
TEST(BatchDifferential, RowRestrictedLookupFallback)
{
    MolecularCacheParams p = diffParams(
        PlacementPolicy::Randy, ResizeScheme::GlobalAdaptive, true);
    p.rowRestrictedLookup = true;
    Twin twin(p);
    for (const Asid asid : fourAsids())
        twin.attach(asid, 0.1, asid.value());
    twin.run(makeTrace(40000));
    twin.finish(fourAsids());
}

/** Guardian (with predictive apportioning) hooks the resize path, so
 * batches fall back to the scalar loop — and must stay identical. */
TEST(BatchDifferential, GuardianPredictiveOn)
{
    MolecularCacheParams p = diffParams(
        PlacementPolicy::Randy, ResizeScheme::PerAppAdaptive, true);
    p.guardian.enabled = true;
    p.guardian.predictive.enabled = true;
    Twin twin(p);
    for (const Asid asid : fourAsids())
        twin.attach(asid, 0.1, asid.value());
    twin.run(makeTrace(40000));
    twin.finish(fourAsids());
}

/**
 * Faults inside batch blocks: transient flips (which permanently fuse
 * memoization off mid-run), hard faults and a tile outage, all at ticks
 * deliberately unaligned with the 257-reference block size.
 */
TEST(BatchDifferential, FaultedRunFusesIdentically)
{
    Twin twin(diffParams(PlacementPolicy::Randy,
                         ResizeScheme::GlobalAdaptive, true));
    for (const Asid asid : fourAsids())
        twin.attach(asid, 0.1, asid.value());
    twin.injectFaults({
        {5000, FaultKind::TransientFlip, 3, 2},
        {5003, FaultKind::TransientFlip, 7, 0},
        {17001, FaultKind::HardFault, 11, 0},
        {29999, FaultKind::TileOutage, 2, 0},
        {41234, FaultKind::TransientFlip, 19, 5},
    });
    twin.run(makeTrace(60000));
    twin.finish(fourAsids());
}

/**
 * ASID-recycling churn: detach two tenants mid-stream and re-register
 * their ASIDs for successor regions.  The successor's generation
 * counter restarts and the region map node may even reuse the freed
 * address, so this pins the lane-invalidation path (a dangling lane
 * would replay the predecessor's probe schedule).
 */
TEST(BatchDifferential, AsidRecyclingChurn)
{
    Twin twin(diffParams(PlacementPolicy::Randy,
                         ResizeScheme::PerAppAdaptive, true));
    for (const Asid asid : fourAsids())
        twin.attach(asid, 0.1, asid.value());
    const std::vector<MemAccess> trace = makeTrace(90000);
    const auto slice = [&](size_t from, size_t count) {
        return std::vector<MemAccess>(
            trace.begin() + static_cast<std::ptrdiff_t>(from),
            trace.begin() + static_cast<std::ptrdiff_t>(from + count));
    };
    twin.run(slice(0, 30000));
    twin.detach(Asid{1});
    twin.detach(Asid{3});
    // Recycled: same ASIDs, different goals and home tiles.
    twin.attach(Asid{1}, 0.2, 2);
    twin.attach(Asid{3}, 0.05, 0);
    twin.run(slice(30000, 30000));
    twin.detach(Asid{1});
    twin.attach(Asid{1}, 0.1, 1);
    twin.run(slice(60000, 30000));
    twin.finish(fourAsids());
}

} // namespace
} // namespace molcache
